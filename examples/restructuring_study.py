"""De Morgan restructuring vs buffer insertion (section 4.2, Table 4).

On a NOR-rich path under a hard constraint, compare the two structure
modifications the protocol can reach for:

* buffer insertion -- dilutes the load but keeps the slow NOR;
* NOR -> INV.NAND.INV rewriting -- same inverter budget, but the stacked
  P network is gone.

Also demonstrates the netlist-level rewrite with logic equivalence
checking on a benchmark circuit.

Run:  python examples/restructuring_study.py
"""

import numpy as np

from repro.buffering import default_flimits, distribute_with_buffers
from repro.cells import GateKind, default_library
from repro.iscas import load_benchmark
from repro.netlist import equivalent
from repro.restructuring import distribute_with_restructuring, rewrite_all_nors
from repro.sizing import min_delay_bound
from repro.timing import make_path


def main() -> None:
    library = default_library()
    limits = default_flimits(library)

    path = make_path(
        [GateKind.INV, GateKind.NOR2, GateKind.NAND2, GateKind.NOR3,
         GateKind.INV],
        library,
        cterm_ff=10.0 * library.cref,
        cside_ff=[0.0, 250.0 * library.cref, 0.0, 120.0 * library.cref, 0.0],
    )
    tmin, _, _, _ = min_delay_bound(path, library)
    tc = 0.95 * tmin  # below the sizing floor: structure must change
    print(f"path Tmin (sizing only) : {tmin:.1f} ps")
    print(f"constraint Tc           : {tc:.1f} ps  (0.95 x Tmin -- hard)")

    buffered, _, inserted = distribute_with_buffers(path, library, tc,
                                                    limits=limits)
    restructured, rewritten = distribute_with_restructuring(path, library, tc,
                                                            limits=limits)
    restr_area = restructured.area_um + rewritten.side_inverter_area_um

    print(f"\nbuffer insertion        : feasible={buffered.feasible}  "
          f"area={buffered.area_um:.0f} um  ({len(inserted)} buffers)")
    print(f"De Morgan restructuring : feasible={restructured.feasible}  "
          f"area={restr_area:.0f} um  "
          f"({len(rewritten.replaced)} NORs rewritten, side inverters "
          f"included)")
    if buffered.feasible and restructured.feasible:
        gain = 100.0 * (1.0 - restr_area / buffered.area_um)
        print(f"restructuring area gain : {gain:.0f}%  (paper Table 4: 4-16%)")

    # Netlist-level rewrite with formal-ish checking (random vectors).
    circuit = load_benchmark("c1355")
    rewritten_circuit, renamed = rewrite_all_nors(circuit)
    rng = np.random.default_rng(11)
    vectors = [
        {net: bool(rng.integers(2)) for net in circuit.inputs}
        for _ in range(128)
    ]
    ok = equivalent(circuit, rewritten_circuit, vectors)
    print(f"\nnetlist rewrite on c1355: {len(renamed)} NOR gates replaced, "
          f"equivalence over 128 random vectors: {ok}")


if __name__ == "__main__":
    main()
