"""Technology migration study: the protocol across process nodes.

The delay model is parametric in the process descriptor, so the same
protocol answers "what does this path cost at the next node?"  This
example sizes one path for the same *relative* constraint on three nodes
(0.25 / 0.18 / 0.13 um) and reports how Tmin, the area and the power
proxy scale -- plus the domain boundaries, which are node-independent by
construction (they are ratios).

Run:  python examples/technology_migration.py
"""

from repro.cells import GateKind, default_library
from repro.process import CMOS013, CMOS018, CMOS025
from repro.sizing import delay_bounds, distribute_constraint
from repro.timing import make_path

KINDS = [
    GateKind.INV,
    GateKind.NAND2,
    GateKind.NOR2,
    GateKind.INV,
    GateKind.NAND3,
    GateKind.INV,
    GateKind.AOI21,
    GateKind.INV,
]


def main() -> None:
    print(f"{'node':<10}{'VDD':<6}{'tau':<7}{'Tmin (ps)':<11}"
          f"{'Tmax/Tmin':<11}{'area@1.3Tmin':<14}{'CLoad (fF)'}")
    for tech in (CMOS025, CMOS018, CMOS013):
        library = default_library(tech)
        path = make_path(KINDS, library, cterm_ff=40.0 * library.cref)
        bounds = delay_bounds(path, library)
        result = distribute_constraint(path, library, 1.3 * bounds.tmin_ps)
        print(
            f"{tech.name:<10}{tech.vdd:<6.2f}{tech.tau_ps:<7.1f}"
            f"{bounds.tmin_ps:<11.1f}"
            f"{bounds.tmax_ps / bounds.tmin_ps:<11.2f}"
            f"{result.area_um:<14.1f}"
            f"{path.cterm_ff:.1f}"
        )
    print(
        "\nThe absolute numbers scale with tau and the capacitance"
        "\ndensities; the Tmax/Tmin ratio -- and with it the weak/medium/"
        "\nhard domain classification -- is a property of the *path*, which"
        "\nis why the protocol transfers across nodes unchanged."
    )


if __name__ == "__main__":
    main()
