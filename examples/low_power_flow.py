"""Circuit-level low-power flow: meet timing, then count the power.

The "low power oriented" punchline of the paper: meeting a delay
constraint with the *minimum transistor budget* is a power optimization,
because switched capacitance scales with gate width.  This example runs
the circuit-level protocol driver on the 16-bit adder and compares the
power bill against a naive "upsize everything" implementation meeting the
same constraint.

Run:  python examples/low_power_flow.py
"""

from repro.analysis import circuit_area_um, estimate_activity, estimate_power
from repro.buffering import default_flimits
from repro.cells import default_library
from repro.iscas import load_benchmark
from repro.protocol import optimize_circuit
from repro.timing import analyze


def main() -> None:
    library = default_library()
    limits = default_flimits(library)
    circuit = load_benchmark("adder16")

    baseline = analyze(circuit, library)
    print(f"adder16          : {len(circuit)} gates")
    print(f"unsized delay    : {baseline.critical_delay_ps:.0f} ps")

    tc = 0.80 * baseline.critical_delay_ps
    print(f"constraint Tc    : {tc:.0f} ps (80% of the unsized delay)")

    result = optimize_circuit(circuit, library, tc_ps=tc, k_paths=4,
                              limits=limits)
    print(f"\nprotocol result  : {result.critical_delay_ps:.0f} ps "
          f"(feasible={result.feasible}, {result.passes} passes, "
          f"{len(result.path_results)} path optimizations)")

    # Naive alternative: uniformly upsize every gate until timing holds.
    naive = circuit.copy()
    factor = 1.0
    while factor < 64.0:
        factor *= 1.3
        for gate in naive.gates.values():
            cell = library.cell(gate.kind)
            gate.cin_ff = factor * cell.cin_min(library.tech)
        if analyze(naive, library).critical_delay_ps <= tc:
            break
    naive_delay = analyze(naive, library).critical_delay_ps
    print(f"naive uniform x{factor:.1f}: {naive_delay:.0f} ps "
          f"(feasible={naive_delay <= tc})")

    activity = estimate_activity(circuit, n_vectors=256, seed=7)
    p_protocol = estimate_power(result.circuit, library, activity=activity)
    p_naive = estimate_power(naive, library, activity=activity)
    a_protocol = circuit_area_um(result.circuit, library)
    a_naive = circuit_area_um(naive, library)

    print(f"\n{'':<18}{'protocol':>12}{'naive upsize':>14}")
    print(f"{'area (sum W, um)':<18}{a_protocol:>12.0f}{a_naive:>14.0f}")
    print(f"{'dynamic power':<18}{p_protocol.dynamic_uw:>10.1f} uW"
          f"{p_naive.dynamic_uw:>12.1f} uW")
    print(f"{'total power':<18}{p_protocol.total_uw:>10.1f} uW"
          f"{p_naive.total_uw:>12.1f} uW")
    saving = 100.0 * (1.0 - p_protocol.total_uw / p_naive.total_uw)
    print(f"\npower saved by selective (path-driven) sizing: {saving:.0f}%")


if __name__ == "__main__":
    main()
