"""Quickstart: the Session / Job facade in sixty seconds.

The canonical entry point is :class:`repro.Session`:

1. open a session (it owns the characterised 0.25 um library and caches
   every expensive artefact -- Flimit table, benchmarks, STA, bounds);
2. declare a :class:`repro.Job`: which circuit, how hard a constraint;
3. ``session.bounds(job)`` gives the critical path's [Tmin, Tmax] window;
4. ``session.optimize(job)`` runs the paper's Fig. 7 protocol;
5. every result is a ``RunRecord`` -- inspect it live or archive it as
   lossless JSON.

Run:  python examples/quickstart.py
"""

import json

from repro import Job, Session


def main() -> None:
    session = Session()
    library = session.library
    print(f"process          : {library.tech.name} (VDD {library.tech.vdd} V)")
    print(f"minimum drive    : CREF = {library.cref:.2f} fF")

    # One declarative job: the 'fpd' benchmark, constrained to 1.3 x Tmin.
    job = Job(benchmark="fpd", tc_ratio=1.3)

    window = session.bounds(job)
    bounds = window.payload["bounds"]
    print(f"\nbenchmark        : {job.name} "
          f"({window.extra['path_gates']} gates on the critical path)")
    print(f"Tmax (min area)  : {bounds.tmax_ps:7.1f} ps   "
          f"(sum W = {bounds.area_tmax_um:.1f} um)")
    print(f"Tmin             : {bounds.tmin_ps:7.1f} ps   "
          f"(sum W = {bounds.area_tmin_um:.1f} um)")

    # The protocol picks the cheapest adequate technique for the job.
    record = session.optimize(job)
    outcome = record.payload
    tc = record.extra["tc_ps"]
    print(f"\nconstraint Tc    : {tc:7.1f} ps  (1.30 x Tmin)")
    print(f"domain           : {outcome.domain.domain}")
    print(f"method           : {outcome.method}")
    print(f"achieved delay   : {outcome.delay_ps:7.1f} ps  "
          f"(slack {outcome.slack_ps:+.1f} ps)")
    print(f"area             : {outcome.area_um:7.1f} um  "
          f"(vs {bounds.area_tmin_um:.1f} um at full speed)")

    # A second job on the same benchmark hits every session cache: the
    # Flimit table, the extraction and the eq. 4 bounds are all reused.
    relaxed = session.optimize(job.with_constraint(tc_ratio=3.0))
    print(f"\nrelaxed Tc       : {relaxed.extra['tc_ps']:7.1f} ps "
          f"-> method {relaxed.payload.method!r}, "
          f"area {relaxed.payload.area_um:.1f} um")
    print(f"cache stats      : {session.stats.as_dict()}")

    # An impossible constraint: the delay window says so up front,
    # instead of letting an iterative sizer loop forever (section 3.1).
    print(f"\nTc = 0.8 x Tmin  : sizing feasible = "
          f"{bounds.feasible(0.8 * bounds.tmin_ps)} "
          "(structure modification required -- see the protocol example)")

    # Every record serializes losslessly -- the archival / transport form.
    envelope = json.loads(record.to_json())
    print(f"\nrecord envelope  : kind={envelope['kind']!r}, "
          f"keys={sorted(envelope)}")


if __name__ == "__main__":
    main()
