"""Quickstart: size a combinational path at minimum area under a delay goal.

The 60-second tour of the library:

1. build the default 0.25 um characterised library;
2. describe a bounded path (fixed input drive, fixed terminal load);
3. compute its delay window [Tmin, Tmax] (eq. 4 of the paper);
4. distribute a delay constraint with the constant sensitivity method;
5. inspect the resulting sizes, area and slack.

Run:  python examples/quickstart.py
"""

from repro.cells import GateKind, default_library
from repro.sizing import delay_bounds, distribute_constraint
from repro.timing import make_path


def main() -> None:
    library = default_library()
    print(f"process          : {library.tech.name} (VDD {library.tech.vdd} V)")
    print(f"minimum drive    : CREF = {library.cref:.2f} fF")

    # An 8-gate path driving a register bank (40 reference inverters).
    path = make_path(
        [
            GateKind.INV,
            GateKind.NAND2,
            GateKind.INV,
            GateKind.NOR2,
            GateKind.INV,
            GateKind.NAND3,
            GateKind.INV,
            GateKind.INV,
        ],
        library,
        cterm_ff=40.0 * library.cref,
    )

    bounds = delay_bounds(path, library)
    print(f"\npath             : {' -> '.join(k.value for k in path.kinds)}")
    print(f"Tmax (min area)  : {bounds.tmax_ps:7.1f} ps   "
          f"(sum W = {bounds.area_tmax_um:.1f} um)")
    print(f"Tmin             : {bounds.tmin_ps:7.1f} ps   "
          f"(sum W = {bounds.area_tmin_um:.1f} um)")

    # A constraint 30% above the floor: feasible, met at minimum area.
    tc = 1.3 * bounds.tmin_ps
    result = distribute_constraint(path, library, tc)
    print(f"\nconstraint Tc    : {tc:7.1f} ps  (1.30 x Tmin)")
    print(f"achieved delay   : {result.achieved_delay_ps:7.1f} ps  "
          f"(slack {result.slack_ps:+.1f} ps)")
    print(f"area             : {result.area_um:7.1f} um  "
          f"(vs {bounds.area_tmin_um:.1f} um at full speed)")
    print(f"sensitivity a    : {result.a:7.3f} ps/fF")
    print("\nper-gate input capacitances (fF):")
    for stage, cin in zip(path.stages, result.sizes):
        print(f"  {stage.cell.name:<6} {cin:8.2f}")

    # An impossible constraint: the feasibility check says so up front,
    # instead of letting an iterative sizer loop forever (section 3.1).
    impossible = distribute_constraint(path, library, 0.8 * bounds.tmin_ps)
    print(f"\nTc = 0.8 x Tmin  : feasible = {impossible.feasible} "
          "(structure modification required -- see the protocol example)")


if __name__ == "__main__":
    main()
