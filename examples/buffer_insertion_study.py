"""When does a buffer beat a bigger transistor?  The Flimit story.

Reproduces the section 4.1 reasoning interactively:

1. the characterised fan-out limits of the library (Table 2);
2. a sweep of one node's side load on a 5-gate path, showing the sizing
   engine absorbing small loads and buffer insertion taking over once the
   fan-out ratio cannot be brought below the limit;
3. the transistor-level simulator cross-checking one crossover.

Run:  python examples/buffer_insertion_study.py
"""

from repro.buffering import (
    TABLE2_GATES,
    default_flimits,
    flimit,
    min_delay_with_buffers,
)
from repro.cells import GateKind, default_library
from repro.sizing import min_delay_bound
from repro.spice import SimOptions, simulate_path
from repro.timing import make_path


def main() -> None:
    library = default_library()

    print("fan-out limits, inverter-driven (paper Table 2):")
    for gate in TABLE2_GATES:
        print(f"  inv -> {gate.value:<6}  Flimit = {flimit(library, gate):5.2f}")
    print("  (the weaker the gate -- NOR3 worst -- the earlier a buffer pays)")

    limits = default_flimits(library)
    kinds = [GateKind.INV, GateKind.NAND2, GateKind.NOR2, GateKind.NAND2,
             GateKind.INV]
    print(f"\nside-load sweep on {' -> '.join(k.value for k in kinds)}:")
    print(f"{'side load':<12}{'sizing Tmin':<14}{'buffered Tmin':<16}"
          f"{'gain':<8}{'buffers'}")
    for mult in (50, 150, 250, 400, 700):
        side = [0.0, 0.0, mult * library.cref, 0.0, 0.0]
        path = make_path(kinds, library, cterm_ff=10.0 * library.cref,
                         cside_ff=side)
        result = min_delay_with_buffers(path, library, limits=limits)
        print(
            f"{mult:>4} x CREF  "
            f"{result.baseline_delay_ps:>8.1f} ps   "
            f"{result.delay_ps:>9.1f} ps     "
            f"{100.0 * result.gain:>4.1f}%   "
            f"{len(result.inserted_at)}"
        )
    print("  (small loads are absorbed by sizing; past the limit, load"
          "\n   dilution through a buffer is the better transistor budget)")

    # Cross-check one buffered implementation with the analog simulator.
    side = [0.0, 0.0, 400 * library.cref, 0.0, 0.0]
    path = make_path(kinds, library, cterm_ff=10.0 * library.cref, cside_ff=side)
    buffered = min_delay_with_buffers(path, library, limits=limits)
    tmin, sizes, _, _ = min_delay_bound(buffered.path, library)
    sim = simulate_path(buffered.path, sizes, library,
                        options=SimOptions(n_steps=2500))
    print(f"\ntransistor-level check of the buffered path:")
    print(f"  model  : {tmin:7.1f} ps")
    print(f"  sim    : {sim.path_delay_ps:7.1f} ps "
          f"({100 * abs(sim.path_delay_ps / tmin - 1):.1f}% apart)")


if __name__ == "__main__":
    main()
