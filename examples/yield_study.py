"""Sizing vs guard band: what process variation costs a sized circuit.

The paper motivates its deterministic bounds by the margins iterative
flows must carry against uncertainty ("very large safety margins
resulting in oversized designs", section 2).  The ``repro.mc`` batch
engine makes that story quantitative at circuit scale:

1. optimize c880 at several constraint levels (circuit scope), buying
   successively tighter nominal delays with silicon;
2. Monte-Carlo each optimized sizing across hundreds of process
   corners in one vectorized pass (compiled once per structure,
   corners as array draws);
3. read off, per sizing, the guard band a blind flow would need
   (p99 / nominal) and the yield the nominal constraint achieves.

The tight sizings pay area *and* still need a guard band -- the margin
is a property of the process spread, not of how hard the optimizer
worked, which is exactly the paper's argument for knowing the bounds.

Run:  python examples/yield_study.py
"""

from repro import Job, Session
from repro.mc import mc_analyze

BENCH = "c880"
TC_RATIOS = (1.4, 1.8, 2.4)
SAMPLES = 400


def main() -> None:
    session = Session()
    print(f"benchmark    : {BENCH}")
    print(f"corners      : {SAMPLES} per sizing "
          "(tau/R/Vt/C spreads, die-to-die defaults)\n")

    header = (f"{'Tc/Tmin':>8}  {'Tc (ps)':>9}  {'area (um)':>10}  "
              f"{'nominal (ps)':>12}  {'guard band':>10}  {'yield@Tc':>8}")
    print(header)
    print("-" * len(header))
    for ratio in TC_RATIOS:
        job = Job(benchmark=BENCH, tc_ratio=ratio, scope="circuit",
                  k_paths=2, max_passes=3)
        record = session.optimize(job)
        sized = record.payload.circuit
        tc_ps = record.extra["tc_ps"]

        result = mc_analyze(
            sized,
            session.library,
            n_samples=SAMPLES,
            tc_ps=tc_ps,
            compiled=session.compiled(sized),
        )
        print(f"{ratio:>8.2f}  {tc_ps:>9.1f}  "
              f"{record.extra['area_um']:>10.1f}  "
              f"{result.nominal_ps:>12.1f}  "
              f"{result.guard_band:>10.3f}  "
              f"{result.yield_fraction:>8.3f}")

    # The compiled struct-of-arrays form is cached per structure: three
    # sizings of one netlist share one compilation.
    stats = session.stats.as_dict()
    print(f"\ncompilations : {stats['compile_misses']} "
          f"({stats['compile_hits']} sizings re-bound)")
    print("guard band   : p99 / nominal -- the margin a variation-blind "
          "flow must add")


if __name__ == "__main__":
    main()
