"""Tc-sweep campaigns and Pareto frontiers: the curves behind the paper.

Every figure of the paper is a curve over the constraint axis -- delay
bounds (Fig. 1), area vs ``Tc`` per technique (Figs. 4/8), the
constraint-domain map (Fig. 6).  ``repro.explore`` turns one session
into those curves:

1. declare a :class:`repro.SweepSpec` -- benchmarks x constraint points
   (x weight modes x restructuring, if you want the full grid);
2. ``run_sweep`` walks the grid *warm-started*: characterisation,
   bounds, first-pass extraction and eq. 4 fixed points are shared, and
   each point's incremental STA engine is seeded from the nearest
   already-solved neighbour -- with payloads byte-identical to cold runs;
3. give it a ``store`` directory and every completed point is journaled
   (JSONL); re-running with ``resume=True`` skips them;
4. the summary table marks the delay/area/power Pareto frontier.

Run:  python examples/tc_sweep_pareto.py
"""

from repro import Session, SweepSpec
from repro.explore import run_sweep


def main() -> None:
    session = Session()
    spec = SweepSpec(
        benchmarks=("fpd",),
        tc_ratio_points=(1.1, 1.25, 1.4, 1.6, 1.8, 2.2),
        k_paths=2,
        max_passes=3,
    )
    print(f"sweep        : {spec.benchmarks} x {spec.points} "
          f"({spec.point_count} points)")

    # store="campaigns/fpd-demo" + resume=True would make this resumable.
    result = run_sweep(session, spec)
    print(f"computed     : {result.computed} points "
          f"in {result.elapsed_s:.2f} s (warm-started)\n")

    print(result.summary.format())

    frontier = result.summary.frontier()
    print(f"\nPareto front : {len(frontier)} of {len(result.records)} points")
    for point in frontier:
        print(f"  {point.label:30s} delay {point.delay_ps:7.1f} ps  "
              f"area {point.area_um:6.1f} um  power {point.power_uw:6.2f} uW")

    # The per-point records are full RunRecord envelopes: everything the
    # single-job API returns, archived losslessly.
    record = result.records[0]
    print(f"\nfirst record : {record.job.label!r} -> "
          f"{record.payload.critical_delay_ps:.1f} ps, "
          f"feasible={record.payload.feasible}")

    # Session cache stats show the warm-start at work: one benchmark
    # parse, one bounds solve, one extraction -- not one per point.
    stats = session.stats.as_dict()
    print(f"cache stats  : bounds_misses={stats['bounds_misses']}, "
          f"path_misses={stats['path_misses']}, "
          f"jobs_run={stats['jobs_run']}")


if __name__ == "__main__":
    main()
