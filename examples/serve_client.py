"""Serving: the multi-tenant daemon, request coalescing and the store.

``repro.serve`` wraps one shared :class:`repro.Session` in an asyncio
daemon: tenants submit declarative jobs over a local socket, identical
in-flight requests coalesce onto one execution, and completed records
land in a content-addressed store so repeats never recompute.

This example embeds the daemon in-process (``start_server_thread`` --
the same surface the tests use), then acts as several tenants at once:

1. five threads submit the *same* optimization concurrently -- the
   daemon runs it once and fans the identical record out to all five;
2. a sixth submission arrives after completion -- served from the store
   without touching the queue;
3. the status endpoint shows the coalescing and cache counters.

Run:  python examples/serve_client.py
"""

import json
import tempfile
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro import Job
from repro.serve import ServeClient, ServeConfig, start_server_thread

TENANTS = 5


def main() -> None:
    tmp = Path(tempfile.mkdtemp(prefix="pops-serve-demo-"))
    config = ServeConfig(
        socket_path=str(tmp / "pops.sock"),
        threads=2,
        heavy_threads=2,
        store_dir=str(tmp / "store"),
        cache_limit=256,
    )
    server, thread = start_server_thread(config)
    client = ServeClient(socket_path=config.socket_path)
    print(f"daemon up        : {client.ping()['pops']} on {config.socket_path}")

    # -- 1. five tenants, one identical job, one execution -------------
    job = Job(benchmark="fpd", tc_ratio=1.4)
    server.pause()  # hold the workers so all five arrive in flight
    with ThreadPoolExecutor(max_workers=TENANTS) as pool:
        futures = [
            pool.submit(client.submit, "optimize", job)
            for _ in range(TENANTS)
        ]
        while server.stats.submitted < TENANTS:
            pass
        server.resume()
        results = [future.result() for future in futures]

    payloads = {json.dumps(done["record"], sort_keys=True) for done in results}
    print(f"\ntenants          : {TENANTS} concurrent identical submissions")
    print(f"executions       : {server.stats.executed} "
          f"(coalesced {server.stats.coalesced})")
    print(f"distinct records : {len(payloads)}")
    print(f"waiters on run   : {results[0]['waiters']}")

    # -- 2. a repeat submission is a store hit, not a recompute --------
    done = client.submit("optimize", job)
    print(f"\nrepeat submit    : cached = {done['cached']} "
          f"(store hits {server.stats.store_hits})")

    # -- 3. observability ----------------------------------------------
    status = client.status()
    serve = status["serve"]
    print("\nserve counters   : "
          + ", ".join(f"{key}={serve[key]}" for key in sorted(serve)))
    caches = status["session"]["caches"]
    line = ", ".join(
        f"{name} {cache['size']}/{cache['maxsize']}"
        for name, cache in sorted(caches.items())
    )
    print(f"session caches   : {line}")

    client.shutdown(drain=True)
    thread.join(timeout=60)
    print("\nshutdown         : drained clean "
          f"(socket gone: {not Path(config.socket_path).exists()})")


if __name__ == "__main__":
    main()
