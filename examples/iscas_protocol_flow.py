"""The full Fig. 7 protocol on an ISCAS'85 benchmark, via the Session API.

Opens a session, sweeps four delay constraints over one benchmark's
critical path and lets the protocol pick the technique (sizing, buffer
insertion, restructuring) for each -- the per-path version of the paper's
evaluation.  The sweep is a list of declarative Jobs run through
``session.optimize_many``; the session characterises the library and
extracts the path once, every job after the first rides the caches.

Run:  python examples/iscas_protocol_flow.py [benchmark]
"""

import sys

from repro import Job, Session


def main(benchmark: str = "c432") -> None:
    session = Session()
    print("characterising library (Flimit table) ...")

    base = Job(benchmark=benchmark)
    circuit = session.resolve_circuit(base)
    stats = circuit.stats()
    print(f"benchmark        : {benchmark}  "
          f"({stats['total_gates']} gates, depth {stats['depth']})")

    window = session.bounds(base)
    bounds = window.payload["bounds"]
    print(f"critical path    : {window.extra['path_gates']} gates, "
          f"{window.extra['extraction_delay_ps']:.0f} ps at minimum drive")
    print(f"delay window     : Tmin {bounds.tmin_ps:.0f} ps ... "
          f"Tmax {bounds.tmax_ps:.0f} ps")

    ratios = (3.0, 1.6, 1.1, 0.97)
    jobs = [base.with_constraint(tc_ratio=ratio) for ratio in ratios]
    records = session.optimize_many(jobs)

    print(f"\n{'Tc/Tmin':<9}{'domain':<12}{'method':<18}"
          f"{'delay (ps)':<12}{'area (um)':<11}{'feasible'}")
    for ratio, record in zip(ratios, records):
        outcome = record.payload
        print(
            f"{ratio:<9.2f}{outcome.domain.domain.value:<12}"
            f"{outcome.method:<18}{outcome.delay_ps:<12.0f}"
            f"{outcome.area_um:<11.0f}{outcome.feasible}"
        )

    stats_dict = session.stats.as_dict()
    print(f"\nsession caches   : {stats_dict['characterizations']} "
          f"characterisation(s), {stats_dict['bounds_hits']} bounds hits, "
          f"{stats_dict['path_hits']} extraction hits")
    print(
        "\nReading the table: the weak constraint needs only sizing; as Tc"
        "\ntightens the protocol reaches for buffers, and below Tmin only a"
        "\nstructure modification (extra stages) can meet the constraint."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "c432")
