"""The full Fig. 7 protocol on an ISCAS'85 benchmark critical path.

Extracts the critical path of c432, classifies three delay constraints
into the weak / medium / hard domains and lets the protocol pick the
technique (sizing, buffer insertion, restructuring) for each, reporting
delay, area and the selected method -- the per-path version of the
paper's evaluation.

Run:  python examples/iscas_protocol_flow.py [benchmark]
"""

import sys

from repro.buffering import default_flimits
from repro.cells import default_library
from repro.iscas import load_benchmark
from repro.protocol import optimize_path
from repro.sizing import delay_bounds
from repro.timing import critical_path


def main(benchmark: str = "c432") -> None:
    library = default_library()
    print(f"characterising library (Flimit table) ...")
    limits = default_flimits(library)

    circuit = load_benchmark(benchmark)
    stats = circuit.stats()
    print(f"benchmark        : {benchmark}  "
          f"({stats['total_gates']} gates, depth {stats['depth']})")

    extracted = critical_path(circuit, library)
    print(f"critical path    : {len(extracted.gate_names)} gates, "
          f"{extracted.delay_ps:.0f} ps at minimum drive")

    bounds = delay_bounds(extracted.path, library)
    print(f"delay window     : Tmin {bounds.tmin_ps:.0f} ps ... "
          f"Tmax {bounds.tmax_ps:.0f} ps")

    print(f"\n{'Tc/Tmin':<9}{'domain':<12}{'method':<18}"
          f"{'delay (ps)':<12}{'area (um)':<11}{'feasible'}")
    for ratio in (3.0, 1.6, 1.1, 0.97):
        tc = ratio * bounds.tmin_ps
        outcome = optimize_path(extracted.path, library, tc, limits=limits)
        print(
            f"{ratio:<9.2f}{outcome.domain.domain.value:<12}"
            f"{outcome.method:<18}{outcome.delay_ps:<12.0f}"
            f"{outcome.area_um:<11.0f}{outcome.feasible}"
        )

    print(
        "\nReading the table: the weak constraint needs only sizing; as Tc"
        "\ntightens the protocol reaches for buffers, and below Tmin only a"
        "\nstructure modification (extra stages) can meet the constraint."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "c432")
