"""Warm-started Tc sweeps vs cold independent jobs (the ISSUE 3 bar).

A sweep's constraint points share everything that does not depend on
``Tc``: characterisation, benchmark parsing, delay bounds, first-pass
extractions, eq. 4 fixed points, and the incremental STA engine (seeded
from the nearest already-solved neighbour).  This bench runs the same
20-point grid both ways, asserts the record payloads are *byte
identical* (warm starting is a cost optimization, never a result
change), and asserts the >= 2x wall-clock bar on a CORE circuit.

A small warm-sweep kernel also feeds the CI perf gate
(``compare_bench.py`` against ``BENCH_BASELINE.json``).
"""

import json
import time

from repro.api import Session, SweepSpec
from repro.explore import run_sweep
from repro.protocol.report import format_table

from conftest import emit

#: The acceptance grid: 20 constraint points on one CORE circuit.
SWEEP_BENCH = "c432"
SWEEP_RATIOS = tuple(round(1.05 + 0.05 * i, 4) for i in range(20))


def _payload_bytes(record) -> bytes:
    return json.dumps(
        record.to_dict(with_timing=False), sort_keys=True
    ).encode("utf-8")


def test_warm_sweep_2x_faster_and_byte_identical(lib, limits):
    spec = SweepSpec(
        benchmarks=(SWEEP_BENCH,),
        tc_ratio_points=SWEEP_RATIOS,
        k_paths=2,
        max_passes=2,
    )
    jobs = spec.jobs()

    # Cold: 20 independent jobs, each in its own fresh session (the
    # library object is shared, so characterisation -- already paid by
    # the fixture -- is excluded from both sides).
    start = time.perf_counter()
    cold = [Session(library=lib).optimize(job) for job in jobs]
    t_cold = time.perf_counter() - start

    # Warm: one campaign through one session.
    start = time.perf_counter()
    warm = run_sweep(Session(library=lib), spec, with_power=False)
    t_warm = time.perf_counter() - start

    for a, b in zip(warm.records, cold):
        assert _payload_bytes(a) == _payload_bytes(b)

    speedup = t_cold / t_warm
    rows = [
        ("cold (20 independent jobs)", f"{t_cold:.2f}", "1.0x"),
        ("warm (one campaign)", f"{t_warm:.2f}", f"{speedup:.2f}x"),
    ]
    emit(
        f"Tc sweep -- 20 points on {SWEEP_BENCH}, warm vs cold "
        "(byte-identical payloads)",
        format_table(("mode", "wall (s)", "speedup"), rows),
    )
    assert speedup >= 2.0, f"warm sweep only {speedup:.2f}x faster"


def test_sweep_resume_skips_completed_points(lib, tmp_path):
    spec = SweepSpec(
        benchmarks=("fpd",),
        tc_ratio_points=(1.2, 1.5, 1.8),
        k_paths=2,
        max_passes=2,
    )
    store = str(tmp_path / "campaign")
    session = Session(library=lib)
    first = run_sweep(session, spec, store=store)
    assert first.computed == 3

    start = time.perf_counter()
    again = run_sweep(session, spec, store=store, resume=True)
    t_resume = time.perf_counter() - start
    assert again.computed == 0
    assert again.resumed == 3
    for a, b in zip(first.records, again.records):
        assert _payload_bytes(a) == _payload_bytes(b)
    # Resume replays the optimize records from the journal (the summary's
    # power column is recomputed -- deterministic and cheap next to the
    # optimizations themselves), so it must beat the original run.
    assert t_resume < first.elapsed_s


# -- CI perf-gate kernel ----------------------------------------------


def test_kernel_warm_sweep_fpd(benchmark, lib, limits):
    """Warm 5-point sweep on the 60-gate paper example (gate kernel)."""
    spec = SweepSpec(
        benchmarks=("fpd",),
        tc_ratio_points=(1.1, 1.3, 1.5, 1.7, 1.9),
        k_paths=2,
        max_passes=2,
    )

    def sweep():
        return run_sweep(
            Session(library=lib), spec, with_power=False
        )

    result = benchmark(sweep)
    assert len(result.records) == 5
