"""Assemble EXPERIMENTS.md from a recorded bench harness run.

Usage:  python benchmarks/make_experiments.py [bench_output.txt]

Extracts every printed experiment block from the harness output and
pairs it with the paper-vs-measured commentary below.
"""

import re
import sys

HEADER = """# EXPERIMENTS — paper vs. measured

Recorded outcomes of the bench harness (``pytest benchmarks/
--benchmark-only -s``) against every table and figure of Verle et al.,
DATE 2005.  The blocks below are copied verbatim from a full run
(``bench_output.txt``); they regenerate deterministically.

**Reading guide.** Absolute picoseconds/µm are *not* expected to match
the paper — the process descriptor is calibrated to public 0.25 µm
numbers, the ISCAS'85 circuits are seeded synthetic stand-ins with the
published critical-path lengths, and AMPS is an algorithmic surrogate.
What must match (and is asserted by the benches) is the paper's *shape*:
orderings, win/lose relations, approximate factors, domain boundaries
and crossovers.

| Experiment | Paper's claim | Reproduced? |
|---|---|---|
| Fig. 1 | eq. 4 iteration descends from Tmax to Tmin as total C_IN grows | yes — monotone descent, ~2x Tmax/Tmin window |
| Fig. 2 | POPS Tmin ≤ AMPS Tmin on every circuit | yes — AMPS 1-5% above POPS everywhere |
| Fig. 2 (val.) | model Tmin confirmed by SPICE | yes — transistor-level simulator within a few % |
| Fig. 3 | delay/area trade traced by the sensitivity coefficient a | yes — monotone delay and area vs a |
| Fig. 4 | POPS area < AMPS area at Tc = 1.2 Tmin | yes — AMPS 5-25% above; Sutherland fails outright at 1.2 Tmin |
| Table 1 | POPS ~100-340x faster constraint distribution | yes in shape — 10-300x measured, driven by a ~1000x evaluation-count gap |
| Table 2 | Flimit ordering inv > nand2 > nand3 > nor2 > nor3, ~5.7..2.7 | yes — 6.0/5.1/4.5/3.4/2.5 calculated; simulated column preserves the ordering at a ~1.4x offset (eq. 2 ignores slope effects on transitions) |
| Table 3 | buffering gains 2-22% of Tmin, fan-out dependent | yes — 0-27%, heavy-fanout circuits gain, regular ones do not |
| Fig. 6 | weak/medium/hard domains; buffering wins below ~2.5 Tmin | yes — crossover present, domains annotated |
| Fig. 8 | methods tie when weak; global buffering wins when hard | yes — up to ~5x area saved in the hard domain |
| Table 4 | restructuring beats buffering by 4-16% in area | partly — 2-16% in the medium domain vs the paper's (local) buffering flow; vs fully global joint re-sizing the two structures converge to within ~2% (see the bench docstring for the methodology) |

---

"""

SECTIONS = [
    "Fig. 1 --", "Fig. 2 --", "Fig. 2 (validation)", "Fig. 3 --",
    "Fig. 4 --", "Table 1 --", "Table 2 --", "Table 3 --", "Fig. 6 --",
    "Fig. 8 (weak", "Fig. 8 (medium", "Fig. 8 (hard", "Table 4 (hard",
    "Table 4 (medium", "Ablation --", "Extension --",
]


def main(path: str = "bench_output.txt") -> None:
    text = open(path, encoding="utf-8", errors="replace").read()
    blocks = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        line = lines[i]
        if any(line.startswith(p) for p in SECTIONS):
            block = [line]
            i += 1
            blank = 0
            while i < len(lines) and blank < 2:
                if lines[i].strip() == "":
                    blank += 1
                else:
                    blank = 0
                block.append(lines[i])
                i += 1
            cleaned = [
                l for l in block if not re.fullmatch(r"[.s]*", l.strip())
                or l.strip() == ""
            ]
            # Drop pytest progress-dot lines that land inside a block.
            cleaned = [l for l in cleaned if not re.fullmatch(r"\.+", l.strip())]
            blocks.append("\n".join(cleaned).rstrip())
        else:
            i += 1
    out = HEADER + "\n\n".join(f"```\n{b}\n```" for b in blocks) + "\n"
    with open("EXPERIMENTS.md", "w", encoding="utf-8") as handle:
        handle.write(out)
    print(f"EXPERIMENTS.md written with {len(blocks)} recorded blocks")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt")
