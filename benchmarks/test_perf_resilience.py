"""Resilience overhead gate: the no-fault hot path must stay in the noise.

Every serve job now crosses two resilience checkpoints: the deadline
guard at the top of :meth:`JobExecutor.run` (resolve the timeout
precedence chain, dispatch inline when none applies) and the
fault-injection probe at the top of ``_dispatch`` (one module-global
read when no plan is installed).  This bench A/Bs the instrumented
entry point against the pristine session call it wraps and asserts the
no-fault overhead stays within 5% -- the ISSUE's acceptance bar for the
whole resilience layer -- and contributes the
``test_kernel_resilience_nofault_run`` kernel to the CI perf gate
(``BENCH_BASELINE.json`` via ``benchmarks/compare_bench.py``).
"""

import time

from repro.api.job import Job
from repro.api.session import Session
from repro.protocol.report import format_table
from repro.resilience import faults
from repro.serve.scheduler import JobExecutor

from conftest import emit

#: Interleaved measurement rounds; min-of-rounds defeats transient noise.
ROUNDS = 7

#: Jobs per round, enough to amortise the clock reads.
JOBS_PER_ROUND = 40

#: The acceptance bar: no-fault resilience overhead on the job hot path.
MAX_OVERHEAD = 0.05

#: Timer/scheduler jitter floor added to the ratio check so a kernel
#: measured in microseconds cannot fail on clock granularity alone.
EPSILON_S = 2e-4


def _arms(lib):
    """The instrumented executor entry and the pristine core it wraps."""
    session = Session(library=lib)
    executor = JobExecutor(session, threads=1, heavy_threads=1)
    payload = Job(benchmark="c432").to_dict()
    session.bounds(Job.from_dict(payload))  # warm the extraction memos

    def wrapped():
        return executor.run("bounds", payload)

    def core():
        return session.bounds(Job.from_dict(payload)).to_dict()

    return executor, wrapped, core


def test_nofault_resilience_overhead_under_gate(lib):
    assert faults.active() is None  # the disabled path under test
    executor, wrapped_fn, core_fn = _arms(lib)

    wrapped = []
    core = []
    for _ in range(ROUNDS):
        # Interleave A and B inside every round so drift (thermal,
        # competing load) hits both arms equally.
        start = time.perf_counter()
        for _ in range(JOBS_PER_ROUND):
            wrapped_fn()
        wrapped.append(time.perf_counter() - start)

        start = time.perf_counter()
        for _ in range(JOBS_PER_ROUND):
            core_fn()
        core.append(time.perf_counter() - start)
    executor.shutdown()

    best_wrapped = min(wrapped)
    best_core = min(core)
    overhead = best_wrapped / (best_core + EPSILON_S) - 1.0
    body = format_table(
        ("entry point", "best round (ms)", "per job (us)"),
        [
            ("executor.run (no deadline, no plan)",
             f"{1e3 * best_wrapped:.3f}",
             f"{1e6 * best_wrapped / JOBS_PER_ROUND:.2f}"),
            ("session.bounds (pristine)", f"{1e3 * best_core:.3f}",
             f"{1e6 * best_core / JOBS_PER_ROUND:.2f}"),
        ],
    )
    emit(
        "Resilience -- no-fault overhead on the serve job hot path "
        f"(gate: <= {100 * MAX_OVERHEAD:.0f}%)",
        body + f"\noverhead: {100 * overhead:+.2f}%",
    )
    assert overhead <= MAX_OVERHEAD, (
        f"no-fault resilience checkpoints cost {100 * overhead:.2f}% "
        f"(gate {100 * MAX_OVERHEAD:.0f}%)"
    )


# -- tier-1 kernel for the CI perf gate -------------------------------


def test_kernel_resilience_nofault_run(benchmark, lib):
    """The resilience-guarded entry with no plan, tracked in the baseline."""
    executor, wrapped_fn, _ = _arms(lib)
    record = benchmark(wrapped_fn)
    executor.shutdown()
    assert record["kind"] == "bounds"
