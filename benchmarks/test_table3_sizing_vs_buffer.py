"""Table 3 -- minimum delay: gate sizing vs buffer insertion.

Per benchmark critical path: the Tmin reachable by sizing alone against
the Tmin after Flimit-driven buffer insertion with global re-sizing, and
the percentage gain.  Shape to reproduce: gains concentrated on circuits
with heavily loaded nodes (up to ~20%), near-zero on regular structures
(adder, c3540, c6288).
"""

import pytest

from repro.buffering.insertion import min_delay_with_buffers
from repro.protocol.report import format_table

from conftest import CORE_CIRCUITS, emit

#: Paper Table 3 gains (percent).
PAPER_GAINS = {
    "adder16": 3,
    "c432": 13,
    "c499": 9,
    "c880": 22,
    "c1355": 14,
    "c1908": 15,
    "c3540": 2,
    "c5315": 12,
    "c6288": 3,
    "c7552": 18,
}


@pytest.fixture(scope="module")
def table3(lib, limits, paths):
    rows = {}
    for name in CORE_CIRCUITS:
        rows[name] = min_delay_with_buffers(
            paths[name].path, lib, limits=limits, mode="global"
        )
    return rows


def test_table3_values(benchmark, lib, limits, paths, table3):
    benchmark.pedantic(
        min_delay_with_buffers,
        args=(paths["c432"].path, lib),
        kwargs={"limits": limits},
        rounds=1,
        iterations=1,
    )
    out = []
    for name in CORE_CIRCUITS:
        result = table3[name]
        out.append(
            (
                name,
                f"{result.baseline_delay_ps / 1000.0:.2f}",
                f"{result.delay_ps / 1000.0:.2f}",
                f"{100.0 * result.gain:.0f}%",
                f"{PAPER_GAINS[name]}%",
                len(result.inserted_at),
            )
        )
    body = format_table(
        ("circuit", "sizing Tmin (ns)", "buff Tmin (ns)", "gain", "paper gain",
         "buffers"),
        out,
    )
    body += (
        "\n(paper Table 3: buffer insertion buys 2-22% of Tmin depending on"
        "\n the path's fan-out profile; never hurts -- the engine keeps a"
        "\n buffer only when it improves the minimum delay)"
    )
    emit("Table 3 -- sizing vs buffer insertion", body)

    gains = {name: table3[name].gain for name in CORE_CIRCUITS}
    # Buffering never loses (insertion is improvement-gated).
    assert all(g >= 0.0 for g in gains.values())
    # Some circuit benefits noticeably.
    assert max(gains.values()) > 0.05
    # The heavy-fanout vs regular-structure split of the paper.
    heavy = [gains["c1355"], gains["c7552"]]
    regular = [gains["adder16"], gains["c3540"]]
    assert min(heavy) > max(regular)
