"""Fig. 4 -- area (sum W) under Tc = 1.2 Tmin: POPS vs AMPS.

The constraint-distribution comparison: both tools must meet the same
hard constraint on each benchmark's critical path; the paper reports the
resulting total transistor width.  Shape: POPS (constant sensitivity)
needs less area than the iterative greedy sizer on every circuit.
"""

import pytest

from repro.baselines.amps import amps_distribute_constraint
from repro.baselines.sutherland import sutherland_distribute
from repro.protocol.report import format_table
from repro.sizing.sensitivity import distribute_constraint

from conftest import CORE_CIRCUITS, emit

TC_RATIO = 1.2


@pytest.fixture(scope="module")
def fig4_rows(lib, paths):
    rows = []
    for name in CORE_CIRCUITS:
        path = paths[name].path
        ours = distribute_constraint(path, lib, 0.0 + TC_RATIO * _tmin(path, lib))
        amps = amps_distribute_constraint(path, lib, TC_RATIO * ours.tmin_ps)
        suth = sutherland_distribute(path, lib, TC_RATIO * ours.tmin_ps)
        rows.append((name, ours, amps, suth))
    return rows


def _tmin(path, lib):
    from repro.sizing.bounds import min_delay_bound

    tmin, _, _, _ = min_delay_bound(path, lib)
    return tmin


def test_fig4_table(benchmark, lib, paths, fig4_rows):
    # Representative timed kernel: the POPS side on c499.
    path = paths["c499"].path
    tmin = _tmin(path, lib)
    benchmark.pedantic(
        distribute_constraint, args=(path, lib, TC_RATIO * tmin),
        rounds=3, iterations=1,
    )
    table = []
    for name, ours, amps, suth in fig4_rows:
        table.append(
            (
                name,
                f"{ours.area_um:.0f}",
                f"{amps.area_um:.0f}" if amps.met_constraint else "fail",
                f"{suth.area_um:.0f}" if suth.met_constraint else "fail",
                f"{100.0 * (amps.area_um / ours.area_um - 1.0):.0f}%",
            )
        )
    body = format_table(
        ("circuit", "POPS sum W (um)", "AMPS sum W", "Sutherland sum W",
         "AMPS excess"),
        table,
    )
    body += (
        "\n(paper Fig. 4: POPS below AMPS on every circuit at Tc = 1.2 Tmin;"
        "\n the Sutherland equal-delay column is the section 3.2 motivation)"
    )
    emit("Fig. 4 -- area under Tc = 1.2 Tmin", body)

    for name, ours, amps, _ in fig4_rows:
        assert ours.feasible, name
        if amps.met_constraint:
            assert ours.area_um <= amps.area_um * 1.02, name


def test_fig4_distribution_kernel(benchmark, lib, paths):
    """Timed kernel: POPS constraint distribution on c432."""
    from repro.sizing.bounds import min_delay_bound

    path = paths["c432"].path
    tmin, _, _, _ = min_delay_bound(path, lib)

    def kernel():
        return distribute_constraint(path, lib, TC_RATIO * tmin)

    result = benchmark(kernel)
    assert result.feasible
