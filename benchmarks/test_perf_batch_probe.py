"""Batch candidate evaluation: cone-sparse probes vs the scalar loop.

The optimizer's probe traffic -- central-difference sensitivities, trial
buffer pairs -- evaluates many single-gate edits of one base state.
``repro.timing.batch_probe`` turns a probe batch into columns of one
compiled-circuit propagation restricted to the union of affected
fan-out cones.  This bench measures all three strategies (scalar
``IncrementalSta`` loop, dense batch, cone-sparse batch) over the
paper's circuit set, asserts *exact* agreement (the kernel's contract is
bit-identity with the scalar path), gates the ISSUE's >= 3x bar on
c7552, and provides the CI perf kernel tracked in ``BENCH_BASELINE.json``.
"""

import time

import numpy as np

from repro.iscas.loader import load_benchmark
from repro.protocol.report import format_table
from repro.timing.batch_probe import BatchProbeEngine
from repro.timing.incremental import IncrementalSta
from repro.timing.sta import gate_sizes

from conftest import CORE_CIRCUITS, emit

#: Probed gates per circuit in the speedup table (two columns per gate);
#: capped so the scalar reference loop keeps the table affordable.
N_PROBE_GATES = 96


def _probe_set(circuit, lib, n_gates=N_PROBE_GATES, rel_step=1e-3):
    """(gate, cin) probe columns: a central difference per sampled gate."""
    sizes = gate_sizes(circuit, lib)
    names = list(circuit.gates)
    if len(names) > n_gates:
        step = len(names) / n_gates
        names = [names[int(i * step)] for i in range(n_gates)]
    probes = []
    for name in names:
        base = sizes[name]
        h = max(abs(base) * rel_step, 1e-9)
        probes.append((name, base + h))
        probes.append((name, base - h))
    return probes


def _scalar_probe_loop(circuit, engine, probes):
    out = []
    for name, cin in probes:
        gate = circuit.gates[name]
        original = gate.cin_ff
        gate.cin_ff = cin
        out.append(engine.update((name,)).critical_delay_ps)
        gate.cin_ff = original
        engine.update((name,))
    return np.array(out)


def test_batch_probe_speedup_table(lib):
    rows = []
    sparse_speedup = {}
    for name in CORE_CIRCUITS:
        circuit = load_benchmark(name)
        probes = _probe_set(circuit, lib)

        engine = IncrementalSta(circuit, lib)
        start = time.perf_counter()
        scalar = _scalar_probe_loop(circuit, engine, probes)
        t_scalar = time.perf_counter() - start

        dense_engine = BatchProbeEngine(circuit, lib, mode="dense")
        start = time.perf_counter()
        dense = dense_engine.sizing_delays(probes)
        t_dense = time.perf_counter() - start

        sparse_engine = BatchProbeEngine(circuit, lib)
        start = time.perf_counter()
        sparse = sparse_engine.sizing_delays(probes)
        t_sparse = time.perf_counter() - start

        # The kernel's contract: bit-identical to the scalar loop, always.
        assert np.array_equal(sparse, scalar)
        assert np.array_equal(dense, scalar)

        speedup = t_scalar / t_sparse if t_sparse > 0 else float("inf")
        sparse_speedup[name] = speedup
        rows.append(
            (
                name,
                len(circuit.gates),
                len(probes),
                f"{1000.0 * t_scalar:.1f}",
                f"{1000.0 * t_dense:.1f}",
                f"{1000.0 * t_sparse:.1f}",
                f"{speedup:.1f}x",
            )
        )
    body = format_table(
        (
            "circuit",
            "gates",
            "columns",
            "scalar (ms)",
            "dense (ms)",
            "sparse (ms)",
            "speedup",
        ),
        rows,
    )
    emit("Batch probes -- scalar loop vs dense vs cone-sparse batch", body)
    # The ISSUE's acceptance bar: >= 3x over the scalar probe loop on c7552.
    assert sparse_speedup["c7552"] >= 3.0
    # The gain must hold across the larger half of the set.
    for name in ("c1908", "c3540", "c5315"):
        assert sparse_speedup[name] > 1.0, name


# -- tier-1 kernel for the CI perf gate --------------------------------


def test_kernel_batch_probes(benchmark, lib):
    """One 512-column cone-sparse sizing batch on c7552 (warm engine)."""
    circuit = load_benchmark("c7552")
    engine = BatchProbeEngine(circuit, lib)
    probes = _probe_set(circuit, lib, n_gates=256)
    assert len(probes) == 512

    delays = benchmark(engine.sizing_delays, probes)
    assert np.all(delays > 0)
