"""Ablations of the reproduction's design choices.

Not a paper table -- these benches quantify the knobs DESIGN.md calls
out, so a reader can see what each choice buys:

* uniform (paper) vs area-weighted (KKT-exact) sensitivity targets;
* single-inverter vs inverter-pair buffers;
* the projected-gradient polish after the eq. 4 fixed point;
* seed (CREF) independence of the Tmin iteration.
"""

import pytest

from repro.buffering.insertion import min_delay_with_buffers
from repro.protocol.report import format_table
from repro.sizing.bounds import min_delay_bound
from repro.sizing.sensitivity import distribute_constraint

from conftest import emit

CIRCUITS = ("c432", "c880", "c1355", "c7552")


def test_ablation_weight_mode(benchmark, lib, paths):
    """Uniform vs area-weighted sensitivity: sum W at Tc = 1.3 Tmin."""
    rows = []
    path432 = paths["c432"].path
    tmin432, _, _, _ = min_delay_bound(path432, lib)
    benchmark.pedantic(
        distribute_constraint, args=(path432, lib, 1.3 * tmin432),
        kwargs={"weight_mode": "area"}, rounds=3, iterations=1,
    )
    for name in CIRCUITS:
        path = paths[name].path
        tmin, _, _, _ = min_delay_bound(path, lib)
        tc = 1.3 * tmin
        uniform = distribute_constraint(path, lib, tc, weight_mode="uniform")
        weighted = distribute_constraint(path, lib, tc, weight_mode="area")
        saving = 100.0 * (1.0 - weighted.area_um / uniform.area_um)
        rows.append(
            (name, f"{uniform.area_um:.1f}", f"{weighted.area_um:.1f}",
             f"{saving:.1f}%")
        )
        assert uniform.feasible and weighted.feasible
        # The KKT-exact variant never uses meaningfully more width.
        assert weighted.area_um <= uniform.area_um * 1.02
    emit(
        "Ablation -- sensitivity weighting (uniform = paper, area = KKT)",
        format_table(("circuit", "uniform sum W", "area-weighted sum W",
                      "saving"), rows),
    )


def test_ablation_buffer_stages(benchmark, lib, limits, paths):
    """Single inverters vs polarity-preserving pairs for Tmin gains."""
    rows = []
    benchmark.pedantic(
        min_delay_with_buffers, args=(paths["c432"].path, lib),
        kwargs={"limits": limits, "buffer_stages": 2}, rounds=1, iterations=1,
    )
    for name in CIRCUITS:
        path = paths[name].path
        single = min_delay_with_buffers(path, lib, limits=limits,
                                        buffer_stages=1)
        pair = min_delay_with_buffers(path, lib, limits=limits,
                                      buffer_stages=2)
        rows.append(
            (
                name,
                f"{100.0 * single.gain:.1f}%",
                f"{100.0 * pair.gain:.1f}%",
                len(single.inserted_at),
                len(pair.inserted_at),
            )
        )
        # A pair costs an extra stage, so it usually trails the single
        # inverter the Flimit metric assumes; greedy multi-round
        # trajectories can flip that by a hair, hence the soft band.
        assert pair.gain <= single.gain + 0.02
    emit(
        "Ablation -- buffer realisation (1 inverter vs pair)",
        format_table(
            ("circuit", "gain x1", "gain x2", "buffers x1", "buffers x2"),
            rows,
        ),
    )


def test_ablation_polish(benchmark, lib, paths):
    """What the exact-gradient polish adds on top of the eq. 4 fixed point."""
    rows = []
    benchmark.pedantic(
        min_delay_bound, args=(paths["c880"].path, lib),
        kwargs={"polish": False}, rounds=3, iterations=1,
    )
    for name in CIRCUITS:
        path = paths[name].path
        raw, _, _, iters = min_delay_bound(path, lib, polish=False)
        polished, _, _, _ = min_delay_bound(path, lib, polish=True)
        rows.append(
            (
                name,
                f"{raw:.1f}",
                f"{polished:.1f}",
                f"{100.0 * (raw / polished - 1.0):.2f}%",
                iters,
            )
        )
        # The fixed point alone is already within a percent or two: the
        # neglected Miller derivatives are a second-order correction.
        assert raw >= polished - 1e-6
        assert raw <= polished * 1.05
    emit(
        "Ablation -- eq. 4 fixed point vs +projected-gradient polish",
        format_table(
            ("circuit", "fixed point (ps)", "+polish (ps)", "gap",
             "eq.4 sweeps"),
            rows,
        ),
    )


def test_ablation_seed_independence(benchmark, lib, paths):
    """The paper's claim: Tmin does not depend on the CREF seed."""
    path = paths["c1355"].path
    benchmark.pedantic(
        min_delay_bound, args=(path, lib),
        kwargs={"cref_ff": 10.0 * lib.cref}, rounds=3, iterations=1,
    )
    rows = []
    reference, _, _, _ = min_delay_bound(path, lib)
    for mult in (0.5, 1.0, 4.0, 16.0):
        tmin, _, _, iters = min_delay_bound(path, lib, cref_ff=mult * lib.cref)
        rows.append((f"{mult:.1f} x CREF", f"{tmin:.2f}",
                     f"{1e6 * abs(tmin / reference - 1.0):.1f} ppm", iters))
        assert tmin == pytest.approx(reference, rel=1e-3)
    emit(
        "Ablation -- Tmin seed independence (c1355 path)",
        format_table(("seed drive", "Tmin (ps)", "deviation", "sweeps"), rows),
    )
