"""Table 4 -- buffer insertion vs De Morgan logic restructuring.

On NOR-loaded critical nodes, compare the implementation area of

* polarity-preserving buffer insertion (NOR kept, inverter pair after --
  the paper's "same number of inserted inverters" comparison), and
* replacing the NOR by ``INV -> NAND -> INV``.

Methodology notes:

* The paper's circuits exposed NOR gates at the overloaded nodes (their
  library was NOR-rich); our synthetic stand-ins put arbitrary kinds
  there, so the bench deterministically *NOR-stresses* each extracted
  path -- the buffering target stages become NORs of matching arity --
  recreating the Table 4 scenario exactly.
* Buffer insertion is applied in the paper's local flow (buffers
  square-root sized, gates redistributed around them).  Against a fully
  *global* joint re-sizing the two structures converge to within ~2%
  (also reported); the paper's area gains live in the difference.
"""

import pytest

from repro.buffering.insertion import distribute_with_buffers, min_delay_with_buffers
from repro.cells.gate_types import nor_kind
from repro.protocol.report import format_table
from repro.restructuring.demorgan import distribute_with_restructuring
from repro.sizing.bounds import min_delay_bound
from repro.timing.path import PathStage

from conftest import emit

CIRCUITS = ("c1355", "c1908", "c5315", "c7552")

#: Paper Table 4 gains (percent) for (hard, medium).
PAPER_GAINS = {
    "c1355": (16, 4),
    "c1908": (11, 11),
    "c5315": (11, 6),
    "c7552": (None, 6),  # hard-constraint row is unreadable in the scan
}

DOMAIN_POINTS = (("hard", 1.05), ("medium", 1.6))


def _nor_stressed(path, sites, lib):
    """The Table 4 workload: NORs at the buffering target stages."""
    variant = path
    for index in sites:
        stage = variant.stages[index]
        width = 2 if stage.cell.n_inputs <= 2 else 3
        variant = variant.with_stage_replaced(
            index,
            PathStage(
                cell=lib.cell(nor_kind(width)),
                cside_ff=stage.cside_ff,
                name=stage.name,
            ),
        )
    return variant


@pytest.fixture(scope="module")
def table4(lib, limits, paths):
    data = {label: [] for label, _ in DOMAIN_POINTS}
    for name in CIRCUITS:
        path = paths[name].path
        sites = list(
            min_delay_with_buffers(path, lib, limits=limits).inserted_at
        )
        if not sites:
            continue
        variant = _nor_stressed(path, sites, lib)
        tmin, _, _, _ = min_delay_bound(variant, lib)
        for label, ratio in DOMAIN_POINTS:
            tc = ratio * tmin
            local_buf, _, _ = distribute_with_buffers(
                variant, lib, tc, limits=limits, mode="local", buffer_stages=2
            )
            global_buf, _, _ = distribute_with_buffers(
                variant, lib, tc, limits=limits, mode="global", buffer_stages=2
            )
            restructured, rewritten = distribute_with_restructuring(
                variant, lib, tc, indices=sites, limits=limits
            )
            restr_area = (
                restructured.area_um + rewritten.side_inverter_area_um
                if restructured.feasible
                else float("inf")
            )
            data[label].append(
                (
                    name,
                    local_buf.area_um if local_buf.feasible else float("inf"),
                    global_buf.area_um if global_buf.feasible else float("inf"),
                    restr_area,
                    len(sites),
                )
            )
    return data


def test_table4_values(benchmark, lib, limits, paths, table4):
    path = paths["c1355"].path
    tmin, _, _, _ = min_delay_bound(path, lib)
    benchmark.pedantic(
        distribute_with_restructuring, args=(path, lib, 1.6 * tmin),
        kwargs={"limits": limits}, rounds=1, iterations=1,
    )

    for label, _ in DOMAIN_POINTS:
        rows = []
        for name, buff, global_buf, restr, n_sites in table4[label]:
            gain = 100.0 * (1.0 - restr / buff) if buff > 0 else 0.0
            paper = PAPER_GAINS[name][0 if label == "hard" else 1]
            rows.append(
                (
                    name,
                    f"{buff:.0f}",
                    f"{restr:.0f}",
                    f"{gain:.0f}%",
                    f"{paper}%" if paper is not None else "n/a",
                    f"{global_buf:.0f}",
                    n_sites,
                )
            )
        emit(
            f"Table 4 ({label} constraint) -- buffering vs restructuring",
            format_table(
                ("circuit", "buff sum W (um)", "restruct sum W (um)", "gain",
                 "paper gain", "(global buff)", "NOR sites"),
                rows,
            ),
        )

    assert table4["medium"], "no buffering sites found on any circuit"

    # Medium domain: restructuring wins on most circuits (the paper's
    # 4-11% band).
    medium_gains = [
        1.0 - restr / buff for _, buff, _, restr, _ in table4["medium"]
    ]
    wins = sum(1 for g in medium_gains if g > 0)
    assert wins >= max(1, len(medium_gains) - 1)
    assert max(medium_gains) > 0.02

    # Both domains: restructuring is never meaningfully worse than the
    # buffer-pair implementation, and tracks the global optimum closely.
    for label, _ in DOMAIN_POINTS:
        for name, buff, global_buf, restr, _ in table4[label]:
            assert restr <= buff * 1.06, (label, name)
            assert restr <= global_buf * 1.10, (label, name)
