"""Coalesced multi-tenant serving vs naive per-tenant sessions (ISSUE 6).

The serving layer's whole value proposition is deduplication: N tenants
asking for the same optimization must cost one execution (request
coalescing while in flight, the content-addressed store afterwards),
where the naive deployment -- one fresh ``Session`` per tenant -- pays
N full runs.  This bench measures both deployments on the same job mix,
asserts the coalesced batch wins by a wide margin, and checks the
served records stay byte-identical to the naive ones.

A small coalescing kernel also feeds the CI perf gate
(``compare_bench.py`` against ``BENCH_BASELINE.json``).
"""

import json
import time
from concurrent.futures import ThreadPoolExecutor

from repro.api import Job, RunRecord, Session
from repro.protocol.report import format_table
from repro.serve import ServeClient, ServeConfig, start_server_thread

from conftest import emit

#: Tenants all asking for the same protocol run.
TENANTS = 8
SERVE_BENCH = "c880"


def _payload_bytes(record_dict) -> bytes:
    record = RunRecord.from_dict(record_dict)
    return json.dumps(
        record.to_dict(with_timing=False), sort_keys=True
    ).encode("utf-8")


def test_coalesced_batch_beats_naive_serial(tmp_path):
    job = Job(benchmark=SERVE_BENCH, tc_ratio=1.3)

    # Naive deployment: every tenant pays a cold session and a full run.
    start = time.perf_counter()
    naive = [
        Session().optimize(job).to_dict() for _ in range(TENANTS)
    ]
    t_naive = time.perf_counter() - start

    # Served deployment: one daemon, N concurrent identical submissions.
    config = ServeConfig(
        socket_path=str(tmp_path / "pops.sock"),
        threads=2,
        heavy_threads=2,
        store_dir=str(tmp_path / "store"),
    )
    server, thread = start_server_thread(config)
    client = ServeClient(socket_path=config.socket_path)
    try:
        server.pause()  # all tenants arrive before the run starts
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=TENANTS) as pool:
            futures = [
                pool.submit(client.submit, "optimize", job)
                for _ in range(TENANTS)
            ]
            while server.stats.submitted < TENANTS:
                time.sleep(0.002)
            server.resume()
            served = [future.result(timeout=600) for future in futures]
        t_served = time.perf_counter() - start

        assert server.stats.executed == 1
        assert server.stats.coalesced == TENANTS - 1
        reference = _payload_bytes(naive[0])
        for done in served:
            assert _payload_bytes(done["record"]) == reference
    finally:
        server.request_shutdown(drain=True)
        thread.join(timeout=60)

    speedup = t_naive / t_served
    rows = [
        (f"naive ({TENANTS} fresh sessions)", f"{t_naive:.2f}", "1.0x"),
        ("served (coalesced batch)", f"{t_served:.2f}", f"{speedup:.2f}x"),
    ]
    emit(
        f"Multi-tenant dedup -- {TENANTS} identical optimize requests on "
        f"{SERVE_BENCH} (byte-identical records)",
        format_table(("deployment", "wall (s)", "speedup"), rows),
    )
    # One execution vs TENANTS executions: even with protocol overhead
    # the coalesced batch must win by well over half the naive bill.
    assert speedup >= 2.0, f"coalesced batch only {speedup:.2f}x faster"


# -- CI perf-gate kernel ----------------------------------------------


def test_kernel_serve_coalesced_batch(benchmark, tmp_path):
    """Daemon round-trip: 4 coalesced optimize tenants on fpd (kernel)."""
    config = ServeConfig(
        socket_path=str(tmp_path / "kernel.sock"),
        threads=2,
        heavy_threads=2,
        store_dir=str(tmp_path / "kernel-store"),
    )
    server, thread = start_server_thread(config)
    client = ServeClient(socket_path=config.socket_path)
    tick = iter(range(10_000_000))

    def batch():
        # a fresh tc_ratio each round defeats the result store, so the
        # kernel times queue + coalescing + execution, not a disk read
        job = Job(benchmark="fpd", tc_ratio=1.31 + next(tick) * 1e-6)
        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(client.submit, "optimize", job) for _ in range(4)
            ]
            return [future.result(timeout=600) for future in futures]

    try:
        results = benchmark(batch)
        assert len(results) == 4
        assert all(done["record"]["kind"] == "optimize-path" for done in results)
    finally:
        server.request_shutdown(drain=True)
        thread.join(timeout=60)
