"""Fig. 6 -- constraint domains on a 13-gate array.

Traces delay vs area for the two implementation families -- pure gate
sizing and buffer insertion with global sizing -- over a sweep of delay
constraints, and locates the weak / medium / hard domain boundaries the
protocol uses (2.5 Tmin and 1.2 Tmin).
"""

import pytest

from repro.buffering.insertion import distribute_with_buffers, min_delay_with_buffers
from repro.cells.gate_types import GateKind
from repro.protocol.domains import classify_constraint
from repro.protocol.report import format_table
from repro.sizing.bounds import min_delay_bound
from repro.sizing.sensitivity import distribute_constraint
from repro.timing.path import make_path

from conftest import emit


@pytest.fixture(scope="module")
def fig6_path(lib):
    """A 13-gate array with a couple of loaded nodes (the figure's path)."""
    kinds = [
        GateKind.INV,
        GateKind.NAND2,
        GateKind.INV,
        GateKind.NOR2,
        GateKind.INV,
        GateKind.NAND3,
        GateKind.INV,
        GateKind.NOR2,
        GateKind.INV,
        GateKind.NAND2,
        GateKind.INV,
        GateKind.NAND2,
        GateKind.INV,
    ]
    side = [0.0] * 13
    # A genuinely overloaded node right behind the (fixed) path input:
    # with no upstream taper room, sizing cannot absorb it below the
    # Flimit, which is exactly where buffering beats transistors.
    side[1] = 800.0 * lib.cref
    side[8] = 300.0 * lib.cref
    return make_path(kinds, lib, cterm_ff=50.0 * lib.cref, cside_ff=side)


def test_fig6_fronts(benchmark, lib, limits, fig6_path):
    tmin, _, _, _ = min_delay_bound(fig6_path, lib)
    buffered_min = min_delay_with_buffers(fig6_path, lib, limits=limits)

    benchmark.pedantic(
        distribute_constraint, args=(fig6_path, lib, 1.5 * tmin),
        rounds=3, iterations=1,
    )

    ratios = [1.05, 1.1, 1.2, 1.5, 2.0, 2.5, 3.0]
    rows = []
    crossover_count = 0
    for ratio in ratios:
        tc = ratio * tmin
        plain = distribute_constraint(fig6_path, lib, tc)
        buffered, _, inserted = distribute_with_buffers(
            fig6_path, lib, tc, limits=limits
        )
        domain = classify_constraint(tc, tmin).domain.value
        plain_area = f"{plain.area_um:.0f}" if plain.feasible else "infeasible"
        buff_area = f"{buffered.area_um:.0f}" if buffered.feasible else "infeasible"
        if (
            plain.feasible
            and buffered.feasible
            and buffered.area_um < plain.area_um
        ):
            crossover_count += 1
        rows.append((f"{ratio:.2f}", domain, plain_area, buff_area,
                     len(inserted)))

    body = format_table(
        ("Tc/Tmin", "domain", "sizing sum W (um)", "buffered sum W (um)",
         "buffers"),
        rows,
    )
    body += (
        f"\n\nTmin (sizing)     = {tmin:.1f} ps"
        f"\nTmin (buffered)   = {buffered_min.delay_ps:.1f} ps"
        "\n(paper Fig. 6: in the weak domain the curves coincide -- sizing"
        "\n suffices; in the medium domain buffering implements the same Tc"
        "\n with less area; in the hard domain only buffering + global"
        "\n sizing reaches the constraint cheaply)"
    )
    emit("Fig. 6 -- constraint domains, sizing vs buffer insertion", body)

    # Buffered implementations must win somewhere below the weak domain.
    assert crossover_count >= 1
    # Buffering extends the feasible range downward.
    assert buffered_min.delay_ps <= tmin + 1e-6


def test_fig6_domain_boundaries(benchmark):
    """The Fig. 6 annotation itself: the classification thresholds."""
    from repro.protocol.domains import ConstraintDomain

    tmin = 1000.0
    benchmark.pedantic(classify_constraint, args=(1500.0, tmin), rounds=3,
                       iterations=100)
    assert classify_constraint(3000.0, tmin).domain is ConstraintDomain.WEAK
    assert classify_constraint(2000.0, tmin).domain is ConstraintDomain.MEDIUM
    assert classify_constraint(1100.0, tmin).domain is ConstraintDomain.HARD
    assert classify_constraint(900.0, tmin).domain is ConstraintDomain.INFEASIBLE
