"""Shared fixtures for the paper-reproduction bench harness.

Every bench prints the rows/series of its table or figure in the paper's
layout (run with ``-s`` to see them inline; pytest captures them otherwise)
and times its POPS kernel with pytest-benchmark.
"""

from __future__ import annotations

import os

import pytest

from repro.buffering.insertion import default_flimits
from repro.cells.library import default_library
from repro.iscas.loader import load_benchmark
from repro.timing.critical_paths import critical_path


@pytest.fixture(scope="session")
def lib():
    return default_library()


@pytest.fixture(scope="session")
def limits(lib):
    """Library Flimit characterisation (protocol step 1), done once."""
    return default_flimits(lib)


#: The circuit subset used by the heavier benches (full paper set minus
#: c6288, whose 116-gate path makes the AMPS baseline dominate wall time;
#: the Tmin benches include it).
CORE_CIRCUITS = (
    "adder16",
    "c432",
    "c499",
    "c880",
    "c1355",
    "c1908",
    "c3540",
    "c5315",
    "c7552",
)


@pytest.fixture(scope="session")
def paths(lib):
    """name -> extracted critical path, for the paper's benchmark set."""
    out = {}
    for name in CORE_CIRCUITS + ("c6288", "fpd"):
        out[name] = critical_path(load_benchmark(name), lib)
    return out


#: Tables are also appended here so a captured run (no ``-s``) still
#: leaves the regenerated paper tables on disk.
TABLES_PATH = os.path.join(os.path.dirname(__file__), "..", "bench_tables.txt")


@pytest.fixture(scope="session", autouse=True)
def _fresh_tables_file():
    with open(TABLES_PATH, "w", encoding="utf-8") as handle:
        handle.write("# Regenerated paper tables (latest bench run)\n")
    yield


def emit(title: str, body: str) -> None:
    """Print a bench's paper-style output block (and persist it)."""
    bar = "=" * max(len(title), 20)
    block = f"\n{bar}\n{title}\n{bar}\n{body}\n"
    print(block)
    with open(TABLES_PATH, "a", encoding="utf-8") as handle:
        handle.write(block)
