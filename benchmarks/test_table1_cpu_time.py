"""Table 1 -- CPU time of constraint distribution: POPS vs AMPS.

The paper reports per-circuit wall times: POPS in tens of milliseconds,
AMPS in tens of seconds -- a ~two-orders-of-magnitude gap rooted in the
algorithm (a handful of fixed-point solves vs thousands of trial
evaluations).  We measure both on the same machine and report the same
columns plus the measured speed-up and the underlying evaluation counts.
"""

import time


from repro.baselines.amps import amps_distribute_constraint
from repro.protocol.report import format_table
from repro.sizing.bounds import min_delay_bound
from repro.sizing.sensitivity import distribute_constraint

from conftest import CORE_CIRCUITS, emit

#: Table 1 of the paper (gate count on path, POPS ms, AMPS ms).
PAPER_TABLE1 = {
    "adder16": (99, 159, 23700),
    "fpd": (14, 19, 6120),
    "c432": (29, 29, 9950),
    "c499": (29, 30, 9050),
    "c880": (28, 29, 9850),
    "c1355": (30, 49, 11400),
    "c1908": (44, 49, 11760),
    "c3540": (58, 69, 15890),
    "c5315": (60, 90, 19400),
    "c7552": (47, 69, 16400),
}

TC_RATIO = 1.2


def test_table1_cpu_comparison(benchmark, lib, paths):
    # The timed kernel IS the POPS column entry for fpd; the loop below
    # measures every circuit for the printed table.
    path_fpd = paths["fpd"].path
    tmin_fpd, _, _, _ = min_delay_bound(path_fpd, lib)
    benchmark.pedantic(
        distribute_constraint, args=(path_fpd, lib, TC_RATIO * tmin_fpd),
        rounds=3, iterations=1,
    )
    rows = []
    speedups = []
    eval_ratios = []
    for name in ("fpd",) + CORE_CIRCUITS:
        path = paths[name].path
        tmin, _, _, _ = min_delay_bound(path, lib)
        tc = TC_RATIO * tmin

        start = time.perf_counter()
        ours = distribute_constraint(path, lib, tc)
        pops_ms = 1000.0 * (time.perf_counter() - start)

        start = time.perf_counter()
        amps = amps_distribute_constraint(path, lib, tc)
        amps_ms = 1000.0 * (time.perf_counter() - start)

        speedup = amps_ms / pops_ms if pops_ms > 0 else float("inf")
        speedups.append(speedup)
        eval_ratios.append(amps.evaluations / max(ours.solver_evaluations, 1))
        gates, paper_pops, paper_amps = PAPER_TABLE1[name]
        rows.append(
            (
                name,
                len(path),
                f"{pops_ms:.0f}",
                f"{amps_ms:.0f}",
                f"{speedup:.0f}x",
                f"{paper_amps / paper_pops:.0f}x",
                ours.solver_evaluations,
                amps.evaluations,
            )
        )
        assert ours.feasible, name

    body = format_table(
        (
            "circuit",
            "path gates",
            "POPS (ms)",
            "AMPS (ms)",
            "speedup",
            "paper speedup",
            "POPS evals",
            "AMPS evals",
        ),
        rows,
    )
    body += (
        "\n(paper Table 1: POPS 19-210 ms, AMPS 6-24 s, i.e. ~100-340x."
        "\n The algorithmic gap is the evaluation-count ratio (~10^3);"
        "\n our wall-clock ratio is smaller because the fixed-point solve"
        "\n carries more per-call overhead in Python than a delay"
        "\n evaluation -- the shape, POPS growing slowly with path length"
        "\n while AMPS grows ~quadratically, is the reproduced claim)"
    )
    emit("Table 1 -- constraint-distribution CPU time", body)

    # The headline claim, in its load-bearing form: the deterministic
    # method needs tens of solver evaluations where the iterative sizer
    # needs thousands (the wall-clock version is machine/load dependent).
    assert max(eval_ratios) > 100.0
    assert max(speedups) > 4.0


def test_table1_pops_kernel(benchmark, lib, paths):
    """Timed kernel: the POPS side of Table 1 on c5315 (longest core path)."""
    path = paths["c5315"].path
    tmin, _, _, _ = min_delay_bound(path, lib)

    def kernel():
        return distribute_constraint(path, lib, TC_RATIO * tmin)

    result = benchmark(kernel)
    assert result.feasible
