"""Fig. 3 -- the constant sensitivity method on an 11-gate path.

Each point imposes ``dT/dC_IN(i) = a`` on every free gate; sweeping ``a``
from large negative values to 0 traces the delay-vs-area design space
ending at the ``a = 0`` minimum -- the figure's annotated curve
(a = -0.8, -0.6, -0.06, 0).
"""

import numpy as np
import pytest

from repro.cells.gate_types import GateKind
from repro.protocol.report import format_table
from repro.sizing.sensitivity import sensitivity_sweep, solve_sensitivity
from repro.timing.path import make_path

from conftest import emit


@pytest.fixture(scope="module")
def fig3_path(lib):
    kinds = [
        GateKind.NAND2,
        GateKind.INV,
        GateKind.NOR2,
        GateKind.INV,
        GateKind.NAND3,
        GateKind.INV,
        GateKind.NOR3,
        GateKind.INV,
        GateKind.NAND2,
        GateKind.INV,
        GateKind.INV,
    ]
    return make_path(kinds, lib, cterm_ff=60.0 * lib.cref)


def test_fig3_series(benchmark, lib, fig3_path):
    a_values = np.array([-0.8, -0.6, -0.3, -0.15, -0.06, -0.02, 0.0])
    sweep = benchmark.pedantic(
        sensitivity_sweep, args=(fig3_path, lib, a_values), rounds=3, iterations=1
    )
    rows = [
        (
            f"{sol.a:+.2f}",
            f"{lib.tech.width_for_cin(float(sol.sizes.sum())):.1f}",
            f"{sol.area_um:.1f}",
            f"{sol.delay_ps:.1f}",
        )
        for sol in sweep
    ]
    body = format_table(
        ("a (ps/fF)", "sum W drive (um)", "sum W total (um)", "delay (ps)"), rows
    )
    body += (
        "\n(paper Fig. 3: delay decreases and area grows monotonically as"
        "\n a -> 0; the a = 0 point is the Tmin of Fig. 1)"
    )
    emit("Fig. 3 -- constant sensitivity design-space sweep", body)

    delays = [s.delay_ps for s in sweep]
    areas = [s.area_um for s in sweep]
    assert all(b <= a + 1e-6 for a, b in zip(delays, delays[1:]))
    assert all(b >= a - 1e-6 for a, b in zip(areas, areas[1:]))


def test_fig3_solve_kernel(benchmark, lib, fig3_path):
    """Timed kernel: one eq. 6 fixed-point solve (the sweep's unit step)."""
    sol = benchmark(solve_sensitivity, fig3_path, lib, -0.3)
    assert sol.delay_ps > 0
