"""Table 2 -- fan-out limit (Flimit) for a gate controlled by an inverter.

The library characterisation step: for each gate kind, the fan-out above
which local buffer insertion beats driving the load directly, computed
from the closed-form model and validated with the transistor-level
simulator (the paper's "Calcul." and "Simulation" columns).
"""

import pytest

from repro.buffering.flimit import TABLE2_GATES, flimit, flimit_simulated
from repro.cells.gate_types import GateKind
from repro.protocol.report import format_table

from conftest import emit

#: Paper Table 2 (calculated, simulated).
PAPER_TABLE2 = {
    GateKind.INV: (5.7, 5.9),
    GateKind.NAND2: (4.9, 5.4),
    GateKind.NAND3: (4.5, 5.2),
    GateKind.NOR2: (3.8, 3.5),
    GateKind.NOR3: (2.7, 2.5),
}


@pytest.fixture(scope="module")
def table2(lib):
    rows = {}
    for gate in TABLE2_GATES:
        rows[gate] = (
            flimit(lib, gate),
            flimit_simulated(lib, gate),
        )
    return rows


def test_table2_values(benchmark, lib, table2):
    benchmark.pedantic(flimit, args=(lib, GateKind.NAND2), rounds=3, iterations=1)
    out = []
    for gate in TABLE2_GATES:
        calc, sim = table2[gate]
        p_calc, p_sim = PAPER_TABLE2[gate]
        out.append(
            ("inv", gate.value, f"{calc:.1f}", f"{sim:.1f}", f"{p_calc:.1f}",
             f"{p_sim:.1f}")
        )
    body = format_table(
        ("gate i-1", "gate i", "Flimit calc", "Flimit sim", "paper calc",
         "paper sim"),
        out,
    )
    body += (
        "\n(paper Table 2: the efficiency ordering inv > nand2 > nand3 >"
        "\n nor2 > nor3, with NOR3 needing help at barely F = 2.7)"
    )
    emit("Table 2 -- buffer-insertion fan-out limits", body)

    # Ordering (the metric's purpose).
    calc = {g: table2[g][0] for g in TABLE2_GATES}
    assert (
        calc[GateKind.INV]
        > calc[GateKind.NAND2]
        > calc[GateKind.NAND3]
        > calc[GateKind.NOR2]
        > calc[GateKind.NOR3]
    )
    # Calculated magnitudes near the paper's.
    for gate in TABLE2_GATES:
        model, _ = table2[gate]
        assert model == pytest.approx(PAPER_TABLE2[gate][0], rel=0.30)
    # The simulated limits preserve the ordering and sit above the model
    # by a consistent factor: eq. 2 ignores the input-slope lengthening of
    # transition times, which flatters the un-buffered (A) structure less
    # than the buffered one at high fan-out.  Same-scale agreement (the
    # paper's own sim column deviates up to 10% with a fully calibrated
    # model) is the contract here.
    sims = {g: table2[g][1] for g in TABLE2_GATES}
    assert sims[GateKind.NOR3] < sims[GateKind.NOR2] < sims[GateKind.INV]
    for gate in TABLE2_GATES:
        model, sim = table2[gate]
        assert 0.7 * model <= sim <= 2.2 * model


def test_table2_flimit_kernel(benchmark, lib):
    """Timed kernel: one closed-form Flimit characterisation."""
    value = benchmark(flimit, lib, GateKind.NOR3)
    assert value > 1.0
