"""Batch Monte-Carlo engine vs the scalar per-corner loop (ISSUE 4 bar).

The scalar flow pays one full STA (plus a library rebuild) per corner;
the batch engine compiles the circuit once and propagates every corner
as ``(gates, samples)`` arrays.  This bench measures the speedup over a
circuit spread, asserts the *same samples* come out of both paths
(vectorization is a cost optimization, never a result change), and
asserts the acceptance bar: >= 20x on c880 at 1000 corners, scalar loop
included at full length (no extrapolation).

Two pytest-benchmark kernels feed the CI perf gate
(``compare_bench.py`` against ``BENCH_BASELINE.json``).
"""

import time

import numpy as np

from repro.iscas.loader import load_benchmark
from repro.mc import (
    batch_analyze,
    compile_circuit,
    mc_scalar_samples,
    sample_corners,
)
from repro.protocol.report import format_table

from conftest import emit

#: The acceptance point: 1000 corners on c880.
ACCEPT_BENCH = "c880"
ACCEPT_SAMPLES = 1000
ACCEPT_SPEEDUP = 20.0

#: Circuits of the comparison table (fewer corners -- the scalar side
#: dominates wall time).
TABLE_CIRCUITS = ("fpd", "c432", "c880")
TABLE_SAMPLES = 200


def _batch_seconds(circuit, lib, n_samples):
    """(wall seconds, samples) of compile + sample + batch propagate."""
    start = time.perf_counter()
    compiled = compile_circuit(circuit, lib)
    corners = sample_corners(lib.tech, n_samples=n_samples, seed=42)
    result = batch_analyze(compiled, corners)
    return time.perf_counter() - start, result.critical_delay_ps


def test_mc_speedup_table(lib):
    rows = []
    for name in TABLE_CIRCUITS:
        circuit = load_benchmark(name)
        start = time.perf_counter()
        scalar = mc_scalar_samples(circuit, lib, n_samples=TABLE_SAMPLES, seed=42)
        t_scalar = time.perf_counter() - start
        t_batch, samples = _batch_seconds(circuit, lib, TABLE_SAMPLES)
        np.testing.assert_allclose(samples, scalar, rtol=1e-12, atol=0.0)
        rows.append(
            (
                name,
                len(circuit.gates),
                f"{t_scalar:.3f}",
                f"{t_batch:.4f}",
                f"{t_scalar / t_batch:.0f}x",
            )
        )
    emit(
        f"Monte-Carlo corners -- scalar loop vs batch engine "
        f"({TABLE_SAMPLES} corners, identical samples)",
        format_table(
            ("circuit", "gates", "scalar (s)", "batch (s)", "speedup"), rows
        ),
    )


def test_mc_batch_beats_scalar_20x_at_1000_samples(lib):
    circuit = load_benchmark(ACCEPT_BENCH)
    start = time.perf_counter()
    scalar = mc_scalar_samples(
        circuit, lib, n_samples=ACCEPT_SAMPLES, seed=42
    )
    t_scalar = time.perf_counter() - start
    t_batch, samples = _batch_seconds(circuit, lib, ACCEPT_SAMPLES)

    np.testing.assert_allclose(samples, scalar, rtol=1e-12, atol=0.0)
    speedup = t_scalar / t_batch
    emit(
        f"Monte-Carlo acceptance -- {ACCEPT_BENCH} at {ACCEPT_SAMPLES} corners",
        format_table(
            ("mode", "wall (s)", "speedup"),
            (
                ("scalar per-corner loop", f"{t_scalar:.2f}", "1.0x"),
                ("batch engine (compile+sample+propagate)",
                 f"{t_batch:.3f}", f"{speedup:.0f}x"),
            ),
        ),
    )
    assert speedup >= ACCEPT_SPEEDUP, (
        f"batch engine only {speedup:.1f}x faster than the scalar loop"
    )


# -- CI perf-gate kernels ----------------------------------------------


def test_kernel_mc_batch_c880(benchmark, lib):
    """1000-corner batch propagation on a prebuilt compilation."""
    compiled = compile_circuit(load_benchmark(ACCEPT_BENCH), lib)

    def run():
        corners = sample_corners(lib.tech, n_samples=ACCEPT_SAMPLES, seed=42)
        return batch_analyze(compiled, corners)

    result = benchmark(run)
    assert result.n_samples == ACCEPT_SAMPLES


def test_kernel_mc_compile_c7552(benchmark, lib):
    """Struct-of-arrays compilation of the largest paper circuit."""
    circuit = load_benchmark("c7552")

    def run():
        return compile_circuit(circuit, lib)

    compiled = benchmark(run)
    assert compiled.n_gates == len(circuit.gates)
