"""Compare a pytest-benchmark JSON run against the committed baseline.

Usage::

    python -m pytest benchmarks/test_perf_incremental.py --benchmark-only \
        --benchmark-json=bench_current.json
    python benchmarks/compare_bench.py bench_current.json \
        --baseline BENCH_BASELINE.json [--threshold 0.30] [--update]

Raw wall times are machine-dependent, so every kernel's mean time is
first normalised by the calibration kernel of the *same* run (a pure
Python spin loop: ``test_kernel_calibration``); the normalised ratios
are comparable across hosts.  A kernel regresses when its normalised
time exceeds the baseline's by more than ``--threshold`` (default 30%,
the CI gate).  Kernels present in the baseline but missing from the
current run fail the comparison -- deleting a kernel must be an explicit
baseline update (``--update`` rewrites the baseline from the current
run).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict

CALIBRATION = "test_kernel_calibration"


def load_means(path: str) -> Dict[str, float]:
    """``kernel name -> mean seconds`` from a pytest-benchmark JSON."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    means = {
        bench["name"]: float(bench["stats"]["mean"])
        for bench in data.get("benchmarks", [])
    }
    if not means:
        raise SystemExit(f"{path}: no benchmarks recorded")
    if CALIBRATION not in means:
        raise SystemExit(f"{path}: calibration kernel {CALIBRATION!r} missing")
    return means


def normalise(means: Dict[str, float]) -> Dict[str, float]:
    """Each kernel's mean divided by the run's calibration mean."""
    cal = means[CALIBRATION]
    return {
        name: mean / cal for name, mean in means.items() if name != CALIBRATION
    }


def compare(
    current: Dict[str, float], baseline: Dict[str, float], threshold: float
) -> int:
    """Print a comparison table; return the number of failures."""
    failures = 0
    width = max((len(n) for n in set(current) | set(baseline)), default=10)
    print(f"{'kernel':<{width}}  {'baseline':>10}  {'current':>10}  {'ratio':>7}  verdict")
    for name in sorted(baseline):
        base = baseline[name]
        if name not in current:
            print(f"{name:<{width}}  {base:>10.4f}  {'MISSING':>10}  {'-':>7}  FAIL")
            failures += 1
            continue
        ratio = current[name] / base if base > 0 else float("inf")
        regressed = ratio > 1.0 + threshold
        verdict = "FAIL" if regressed else "ok"
        failures += int(regressed)
        print(
            f"{name:<{width}}  {base:>10.4f}  {current[name]:>10.4f}  "
            f"{ratio:>6.2f}x  {verdict}"
        )
    for name in sorted(set(current) - set(baseline)):
        print(f"{name:<{width}}  {'NEW':>10}  {current[name]:>10.4f}  {'-':>7}  ok (new)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="pytest-benchmark JSON of the current run")
    parser.add_argument(
        "--baseline", default="BENCH_BASELINE.json", help="committed baseline JSON"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="allowed fractional slowdown per kernel (default 0.30)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the current run instead of comparing",
    )
    args = parser.parse_args(argv)

    current = normalise(load_means(args.current))
    if args.update:
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(
                {"normalised_to": CALIBRATION, "kernels": current},
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        print(f"baseline written: {args.baseline} ({len(current)} kernels)")
        return 0

    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)["kernels"]
    failures = compare(current, baseline, args.threshold)
    if failures:
        print(f"\n{failures} kernel(s) regressed beyond {args.threshold:.0%}")
        return 1
    print(f"\nall kernels within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
