"""Fig. 2 -- minimum delay (Tmin): POPS vs AMPS on ISCAS'85 paths.

The paper shows, per benchmark, the critical-path minimum delay reached by
POPS (deterministic eq. 4 fixed point) against AMPS (iterative industrial
sizer), validated by SPICE.  Shape to reproduce: POPS <= AMPS everywhere,
by a few percent.  We also validate the POPS figure with the
transistor-level simulator on the smaller paths, mirroring the paper's
HSPICE check.
"""

import pytest

from repro.baselines.amps import amps_minimum_delay
from repro.protocol.report import format_table
from repro.sizing.bounds import min_delay_bound
from repro.spice.simulator import SimOptions, simulate_path

from conftest import CORE_CIRCUITS, emit

#: Paper Fig. 2 Tmin in ns (read off the bar chart).
PAPER_TMIN_NS = {
    "adder16": 4.5,
    "c432": 2.2,
    "c499": 1.8,
    "c880": 2.1,
    "c1355": 2.2,
    "c1908": 2.7,
    "c3540": 3.3,
    "c5315": 3.6,
    "c6288": 8.0,
    "c7552": 3.1,
}


@pytest.fixture(scope="module")
def fig2_rows(lib, paths):
    rows = []
    for name in CORE_CIRCUITS + ("c6288",):
        path = paths[name].path
        tmin, sizes, _, _ = min_delay_bound(path, lib)
        amps = amps_minimum_delay(path, lib, random_restarts=0)
        rows.append((name, tmin, amps.delay_ps, sizes, path))
    return rows


def test_fig2_table(benchmark, lib, paths, fig2_rows):
    # Representative timed kernel: POPS Tmin on the c880 path.
    benchmark.pedantic(
        min_delay_bound, args=(paths["c880"].path, lib), rounds=3, iterations=1
    )
    table_rows = []
    for name, tmin, amps_tmin, _, _ in fig2_rows:
        table_rows.append(
            (
                name,
                f"{tmin / 1000.0:.2f}",
                f"{amps_tmin / 1000.0:.2f}",
                f"{100.0 * (amps_tmin / tmin - 1.0):.1f}%",
                f"{PAPER_TMIN_NS[name]:.1f}",
            )
        )
    body = format_table(
        ("circuit", "POPS Tmin (ns)", "AMPS Tmin (ns)", "AMPS excess",
         "paper POPS (ns)"),
        table_rows,
    )
    body += (
        "\n(paper Fig. 2: POPS at or below AMPS on every circuit; absolute"
        "\n values differ -- calibrated process + synthetic stand-ins -- but"
        "\n the ordering and the few-percent gap are the reproduced shape)"
    )
    emit("Fig. 2 -- Tmin: POPS vs AMPS", body)

    for name, tmin, amps_tmin, _, _ in fig2_rows:
        assert tmin <= amps_tmin + 1e-6, name


def test_fig2_spice_validation(benchmark, lib, fig2_rows):
    """The paper's SPICE check, on the two smallest paths."""
    path_adder = next(r for r in fig2_rows if r[0] == "adder16")
    benchmark.pedantic(
        simulate_path,
        args=(path_adder[4], path_adder[3], lib),
        kwargs={"options": SimOptions(n_steps=1500)},
        rounds=1,
        iterations=1,
    )
    rows = []
    for name, tmin, _, sizes, path in fig2_rows:
        if name not in ("adder16", "c432"):
            continue
        sim = simulate_path(path, sizes, lib, options=SimOptions(n_steps=2500))
        rows.append((name, f"{tmin:.0f}", f"{sim.path_delay_ps:.0f}",
                     f"{100.0 * abs(sim.path_delay_ps / tmin - 1.0):.1f}%"))
        assert sim.path_delay_ps == pytest.approx(tmin, rel=0.30)
    emit(
        "Fig. 2 (validation) -- model vs transistor-level simulation",
        format_table(("circuit", "model Tmin (ps)", "simulated (ps)", "gap"), rows),
    )


def test_fig2_pops_kernel(benchmark, lib, paths):
    """Timed kernel: POPS Tmin on the c432 critical path."""
    path = paths["c432"].path
    result = benchmark(min_delay_bound, path, lib)
    assert result[0] > 0
