"""Observability overhead gate: disabled tracing must stay in the noise.

The incremental-STA engine is the stack's hottest kernel, and its
``update`` wrapper is where the tracer hook lives: with no tracer
attached the wrapper costs one attribute check before delegating to the
pristine ``_update_core`` body.  This bench A/Bs the two entry points on
the same engine and asserts the wrapper stays within 5% -- the ISSUE's
acceptance bar for the whole obs layer -- and contributes the
``test_kernel_obs_disabled_update`` kernel to the CI perf gate
(``BENCH_BASELINE.json`` via ``benchmarks/compare_bench.py``).
"""

import time

from repro.iscas.loader import load_benchmark
from repro.protocol.report import format_table
from repro.timing.incremental import IncrementalSta
from repro.timing.sta import trace_critical_gates

from conftest import emit

#: Interleaved measurement rounds; min-of-rounds defeats transient noise.
ROUNDS = 7

#: Edits per round, enough to amortise the clock reads.
EDITS_PER_ROUND = 60

#: The acceptance bar: disabled-tracer overhead on the update kernel.
MAX_OVERHEAD = 0.05

#: Timer/scheduler jitter floor added to the ratio check so a kernel
#: measured in microseconds cannot fail on clock granularity alone.
EPSILON_S = 2e-4


def _edit_closure(circuit, engine):
    """One alternating size edit on a deep critical-path gate."""
    name = trace_critical_gates(engine.result(), circuit)[-1]
    gate = circuit.gates[name]
    state = {"scale": 1.0}

    def edit(update):
        state["scale"] = 1.25 if state["scale"] == 1.0 else 1.0
        gate.cin_ff = 4.0 * state["scale"]
        return update([name])

    return edit


def test_disabled_tracer_overhead_under_gate(lib):
    circuit = load_benchmark("c7552")
    engine = IncrementalSta(circuit, lib)
    assert engine.tracer is None  # the disabled path under test
    edit = _edit_closure(circuit, engine)

    wrapped = []
    core = []
    for _ in range(ROUNDS):
        # Interleave A and B inside every round so drift (thermal,
        # competing load) hits both arms equally.
        start = time.perf_counter()
        for _ in range(EDITS_PER_ROUND):
            edit(engine.update)
        wrapped.append(time.perf_counter() - start)

        start = time.perf_counter()
        for _ in range(EDITS_PER_ROUND):
            edit(engine._update_core)
        core.append(time.perf_counter() - start)

    best_wrapped = min(wrapped)
    best_core = min(core)
    overhead = best_wrapped / (best_core + EPSILON_S) - 1.0
    body = format_table(
        ("entry point", "best round (ms)", "per edit (us)"),
        [
            ("engine.update (tracer off)", f"{1e3 * best_wrapped:.3f}",
             f"{1e6 * best_wrapped / EDITS_PER_ROUND:.2f}"),
            ("engine._update_core", f"{1e3 * best_core:.3f}",
             f"{1e6 * best_core / EDITS_PER_ROUND:.2f}"),
        ],
    )
    emit(
        "Observability -- disabled-tracer overhead on incremental STA "
        f"(gate: <= {100 * MAX_OVERHEAD:.0f}%)",
        body + f"\noverhead: {100 * overhead:+.2f}%",
    )
    assert overhead <= MAX_OVERHEAD, (
        f"disabled-tracer update wrapper costs {100 * overhead:.2f}% "
        f"(gate {100 * MAX_OVERHEAD:.0f}%)"
    )


# -- tier-1 kernel for the CI perf gate -------------------------------


def test_kernel_obs_disabled_update(benchmark, lib):
    """The traced entry point with tracing off, tracked in the baseline."""
    circuit = load_benchmark("c7552")
    engine = IncrementalSta(circuit, lib)
    edit = _edit_closure(circuit, engine)
    result = benchmark(edit, engine.update)
    assert result.critical_delay_ps > 0
