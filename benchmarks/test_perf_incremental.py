"""Incremental vs full STA: cone re-propagation on the optimizer hot loop.

Every eq. 4 sweep, sensitivity probe and trial buffer insertion perturbs
a handful of gates; the incremental engine re-times only their fan-out
cones.  This bench measures the full-vs-incremental speedup over the
paper's circuit set, asserts *exact* agreement of the annotations (the
engine's contract is bit-identity with the oracle), and provides the
tier-1 kernels the CI perf gate tracks against ``BENCH_BASELINE.json``
(see ``benchmarks/compare_bench.py``).
"""

import time

from repro.iscas.loader import load_benchmark
from repro.protocol.report import format_table
from repro.timing.incremental import IncrementalSta
from repro.timing.sta import analyze, trace_critical_gates

from conftest import CORE_CIRCUITS, emit

#: Edits measured per circuit in the speedup table.
N_EDITS = 8


def _perturbation_times(circuit, lib, n_edits=N_EDITS):
    """Mean (full, incremental) seconds per single-gate size edit."""
    engine = IncrementalSta(circuit, lib)
    result = engine.result()
    # Perturb critical-path gates (worst case: the deepest cones) and a
    # spread of off-path gates (typical case).
    targets = trace_critical_gates(result, circuit)[:n_edits // 2]
    names = list(circuit.gates)
    targets += [names[i * len(names) // n_edits] for i in range(n_edits - len(targets))]

    t_full = 0.0
    t_inc = 0.0
    for name in targets:
        gate = circuit.gates[name]
        base = gate.cin_ff if gate.cin_ff is not None else 1.0
        gate.cin_ff = base * 1.25

        start = time.perf_counter()
        incremental = engine.update([name])
        t_inc += time.perf_counter() - start

        start = time.perf_counter()
        full = analyze(circuit, lib)
        t_full += time.perf_counter() - start

        # The engine's contract: bit-identical annotations, always.
        assert incremental.critical_delay_ps == full.critical_delay_ps
        assert incremental.arrivals == full.arrivals
    return t_full / len(targets), t_inc / len(targets)


def test_incremental_speedup_table(lib):
    rows = []
    speedup_by_circuit = {}
    for name in CORE_CIRCUITS:
        circuit = load_benchmark(name)
        full_s, inc_s = _perturbation_times(circuit, lib)
        speedup = full_s / inc_s if inc_s > 0 else float("inf")
        speedup_by_circuit[name] = speedup
        rows.append(
            (
                name,
                len(circuit.gates),
                f"{1000.0 * full_s:.2f}",
                f"{1000.0 * inc_s:.3f}",
                f"{speedup:.1f}x",
            )
        )
    body = format_table(
        ("circuit", "gates", "full STA (ms)", "incremental (ms)", "speedup"),
        rows,
    )
    emit("Incremental STA -- single-gate perturbation cost vs full re-analysis", body)
    # The ISSUE's acceptance bar: >= 3x on c7552 single-gate perturbations.
    assert speedup_by_circuit["c7552"] >= 3.0
    # Large circuits must all gain; tiny ones are allowed to tie.
    for name in ("c3540", "c5315", "c7552"):
        assert speedup_by_circuit[name] > 1.0, name


# -- tier-1 kernels for the CI perf gate ------------------------------
#
# Each kernel is timed by pytest-benchmark and compared (normalised by
# the calibration kernel below) against the committed baseline.


def test_kernel_calibration(benchmark):
    """Pure-Python spin: the machine-speed yardstick for compare_bench."""

    def spin():
        total = 0
        for i in range(200_000):
            total += i * i
        return total

    benchmark(spin)


def test_kernel_full_sta_c7552(benchmark, lib):
    circuit = load_benchmark("c7552")
    result = benchmark(analyze, circuit, lib)
    assert result.critical_delay_ps > 0


def test_kernel_incremental_update_c7552(benchmark, lib):
    circuit = load_benchmark("c7552")
    engine = IncrementalSta(circuit, lib)
    name = trace_critical_gates(engine.result(), circuit)[-1]
    gate = circuit.gates[name]
    state = {"scale": 1.0}

    def one_edit():
        # Alternate the size so every round really re-propagates.
        state["scale"] = 1.25 if state["scale"] == 1.0 else 1.0
        gate.cin_ff = 4.0 * state["scale"]
        return engine.update([name])

    result = benchmark(one_edit)
    assert result.critical_delay_ps > 0


def test_kernel_structure_refresh_c7552(benchmark, lib):
    """Trial-insertion cost: structure diff plus the pair's cone."""
    from repro.buffering.netlist_insertion import (
        insert_buffer_pair,
        remove_buffer_pair,
    )

    circuit = load_benchmark("c7552")
    engine = IncrementalSta(circuit, lib)
    name = trace_critical_gates(engine.result(), circuit)[0]

    def trial():
        insert_buffer_pair(circuit, name, lib)
        delay = engine.refresh_structure().critical_delay_ps
        remove_buffer_pair(circuit, name)
        engine.refresh_structure()
        return delay

    delay = benchmark(trial)
    assert delay > 0
