"""Extension -- process variation and the safety-margin story.

Not a paper table.  Section 2 of the paper argues that estimation
uncertainty forces iterative flows into "very large safety margins
resulting in oversized designs".  This bench makes the margin
quantitative on our model: the Monte-Carlo delay distribution of a
protocol-sized path across process corners and wire-load classes, and the
Tc guard band a yield target implies.
"""


from repro.analysis.variation import (
    delay_distribution,
    required_guard_band,
)
from repro.protocol.report import format_table
from repro.sizing.bounds import min_delay_bound
from repro.sizing.sensitivity import distribute_constraint

from conftest import emit

CIRCUITS = ("c432", "c1355")


def test_ext_guardband(benchmark, lib, paths):
    path = paths["c432"].path
    tmin, _, _, _ = min_delay_bound(path, lib)
    solution = distribute_constraint(path, lib, 1.3 * tmin)

    dist = benchmark.pedantic(
        delay_distribution,
        args=(path, solution.sizes, lib),
        kwargs={"n_samples": 200},
        rounds=1,
        iterations=1,
    )

    rows = []
    for name in CIRCUITS:
        p = paths[name].path
        t, _, _, _ = min_delay_bound(p, lib)
        sol = distribute_constraint(p, lib, 1.3 * t)
        d = delay_distribution(p, sol.sizes, lib, n_samples=200)
        band99 = required_guard_band(p, sol.sizes, lib, target_yield=0.99,
                                     n_samples=200)
        rows.append(
            (
                name,
                f"{d.nominal_ps:.0f}",
                f"{d.mean_ps:.0f}",
                f"{d.std_ps:.1f}",
                f"{d.p99_ps:.0f}",
                f"{band99:.3f}",
                f"{100.0 * d.yield_at(sol.tc_ps):.0f}%",
            )
        )
    body = format_table(
        ("circuit", "nominal (ps)", "mean", "sigma", "p99", "99% guard band",
         "yield at Tc"),
        rows,
    )
    body += (
        "\n(a flow without the deterministic bounds must multiply its"
        "\n constraint by the guard band column -- the 'oversized designs'"
        "\n the paper's introduction attributes to estimation uncertainty)"
    )
    emit("Extension -- process-variation guard bands", body)

    assert dist.std_ps > 0
    assert dist.p01_ps <= dist.p50_ps <= dist.p99_ps


def test_ext_wireload_pessimism(benchmark, lib, paths):
    """Routing estimate classes shift Tmin -- the routing-uncertainty axis."""
    from repro.iscas.loader import load_benchmark
    from repro.netlist.wireload import WLM_LARGE, WLM_MEDIUM, WLM_SMALL
    from repro.timing.sta import analyze

    circuit = load_benchmark("c432")
    benchmark.pedantic(
        analyze, args=(circuit, lib), kwargs={"wire_model": WLM_MEDIUM},
        rounds=3, iterations=1,
    )
    rows = []
    bare = analyze(circuit, lib).critical_delay_ps
    rows.append(("(no wires)", f"{bare:.0f}", "--"))
    previous = bare
    for model in (WLM_SMALL, WLM_MEDIUM, WLM_LARGE):
        delay = analyze(circuit, lib, wire_model=model).critical_delay_ps
        rows.append((model.name, f"{delay:.0f}",
                     f"+{100.0 * (delay / bare - 1.0):.0f}%"))
        assert delay > previous
        previous = delay
    emit(
        "Extension -- wire-load pessimism on the c432 critical delay",
        format_table(("wire class", "critical delay (ps)", "vs unrouted"),
                     rows),
    )
