"""NLDM backend: vectorized table interpolation vs the scalar lookup loop.

The table backend's batch surfaces evaluate whole probe batches as
columns of one stacked bilinear interpolation
(``repro.liberty.tables.interp_table_stack``) instead of one
``searchsorted`` + lookup per gate per column.  This bench drives the
cone-sparse probe engine under the committed sample ``.lib`` on c7552,
asserts bit-identity with the scalar ``IncrementalSta`` loop (the
backend contract), gates the ISSUE's >= 5x bar for the vectorized path,
and provides the ``test_kernel_nldm_batch`` CI perf kernel tracked in
``BENCH_BASELINE.json``.
"""

import os
import time

import numpy as np
import pytest

from repro.iscas.loader import load_benchmark
from repro.liberty import library_from_lib
from repro.protocol.report import format_table
from repro.timing.batch_probe import BatchProbeEngine
from repro.timing.incremental import IncrementalSta

from conftest import emit
from test_perf_batch_probe import _probe_set, _scalar_probe_loop

SAMPLE_LIB = os.path.join(
    os.path.dirname(__file__), "..", "examples", "sample_nldm.lib"
)


@pytest.fixture(scope="session")
def nldm_lib():
    return library_from_lib(SAMPLE_LIB)


def test_nldm_batch_speedup(nldm_lib):
    """512 probe columns on c7552: batched interpolation vs per-gate lookups."""
    circuit = load_benchmark("c7552")
    probes = _probe_set(circuit, nldm_lib, n_gates=256)
    assert len(probes) == 512

    engine = IncrementalSta(circuit, nldm_lib)
    start = time.perf_counter()
    scalar = _scalar_probe_loop(circuit, engine, probes)
    t_scalar = time.perf_counter() - start

    pe = BatchProbeEngine(circuit, nldm_lib)
    start = time.perf_counter()
    batch = pe.sizing_delays(probes)
    t_batch = time.perf_counter() - start

    # Backend contract: the batch surface is bit-identical to the scalar.
    assert np.array_equal(batch, scalar)

    speedup = t_scalar / t_batch if t_batch > 0 else float("inf")
    body = format_table(
        ("circuit", "columns", "scalar (ms)", "batch (ms)", "speedup"),
        [
            (
                "c7552",
                len(probes),
                f"{1000.0 * t_scalar:.1f}",
                f"{1000.0 * t_batch:.1f}",
                f"{speedup:.1f}x",
            )
        ],
    )
    emit("NLDM probes -- scalar table lookups vs vectorized batch", body)
    # The ISSUE's acceptance bar: >= 5x over the per-gate scalar lookup loop.
    assert speedup >= 5.0


# -- tier-1 kernel for the CI perf gate --------------------------------


def test_kernel_nldm_batch(benchmark, nldm_lib):
    """One 512-column NLDM interpolation batch on c7552 (warm engine)."""
    circuit = load_benchmark("c7552")
    engine = BatchProbeEngine(circuit, nldm_lib)
    probes = _probe_set(circuit, nldm_lib, n_gates=256)
    assert len(probes) == 512

    delays = benchmark(engine.sizing_delays, probes)
    assert np.all(delays > 0)
