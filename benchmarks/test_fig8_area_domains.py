"""Fig. 8 -- implementation area per constraint domain and method.

For each benchmark and each constraint severity (weak / medium / hard),
the area of the implementation produced by the three methods of the
paper's comparison: pure sizing, local buffer insertion, and buffer
insertion with global sizing.  Shape to reproduce: the methods tie in the
weak domain, and global buffering wins increasingly as the constraint
hardens.
"""

import math

import pytest

from repro.buffering.insertion import distribute_with_buffers
from repro.protocol.report import format_table
from repro.sizing.bounds import min_delay_bound
from repro.sizing.sensitivity import distribute_constraint

from conftest import emit

CIRCUITS = ("adder16", "c432", "c499", "c880", "c1355", "c1908", "c3540",
            "c5315", "c7552")

#: (label, Tc/Tmin) for the three Fig. 8 panels.
DOMAIN_POINTS = (("weak", 3.0), ("medium", 1.6), ("hard", 1.05))


def _areas_for(lib, limits, path, tc):
    plain = distribute_constraint(path, lib, tc)
    local, _, _ = distribute_with_buffers(path, lib, tc, limits=limits,
                                          mode="local")
    global_, _, _ = distribute_with_buffers(path, lib, tc, limits=limits,
                                            mode="global")
    def fmt(result):
        return result.area_um if result.feasible else math.inf
    return fmt(plain), fmt(local), fmt(global_)


@pytest.fixture(scope="module")
def fig8(lib, limits, paths):
    data = {}
    for label, ratio in DOMAIN_POINTS:
        rows = []
        for name in CIRCUITS:
            path = paths[name].path
            tmin, _, _, _ = min_delay_bound(path, lib)
            rows.append((name,) + _areas_for(lib, limits, path, ratio * tmin))
        data[label] = rows
    return data


def test_fig8_panels(benchmark, lib, limits, paths, fig8):
    path = paths["c432"].path
    tmin, _, _, _ = min_delay_bound(path, lib)
    benchmark.pedantic(
        distribute_with_buffers, args=(path, lib, 1.05 * tmin),
        kwargs={"limits": limits}, rounds=1, iterations=1,
    )

    for label, ratio in DOMAIN_POINTS:
        rows = [
            (
                name,
                "inf" if math.isinf(a) else f"{a:.0f}",
                "inf" if math.isinf(b) else f"{b:.0f}",
                "inf" if math.isinf(c) else f"{c:.0f}",
            )
            for name, a, b, c in fig8[label]
        ]
        emit(
            f"Fig. 8 ({label} constraint, Tc = {ratio} Tmin) -- sum W (um)",
            format_table(
                ("circuit", "sizing", "local buff", "global buff"), rows
            ),
        )

    # Weak domain: methods agree (buffers bring nothing, so the engines
    # fall back to plain sizing-level areas).
    for name, plain, local, global_ in fig8["weak"]:
        assert global_ <= plain * 1.05 + 1e-9, name

    # Hard domain: global buffering is never worse, and wins somewhere.
    wins = 0
    for name, plain, local, global_ in fig8["hard"]:
        assert global_ <= min(plain, local) * 1.05, name
        if global_ < min(plain, local) * 0.98:
            wins += 1
    assert wins >= 1

    # Area grows as the constraint hardens, method-wise.
    for idx, name in enumerate(CIRCUITS):
        weak_area = fig8["weak"][idx][3]
        hard_area = fig8["hard"][idx][3]
        assert hard_area > weak_area, name
