"""Fig. 1 -- sensitivity of the path delay to gate sizing.

Regenerates the Fig. 1 trajectory: the eq. 4 iteration walking from the
all-minimum (Tmax) corner down to Tmin, plotted as path delay vs total
input capacitance (in CREF units).  The paper's 11-gate path is modelled
with the same gate mix used throughout section 3.
"""

import pytest

from repro.cells.gate_types import GateKind
from repro.protocol.report import format_table
from repro.sizing.bounds import delay_bounds
from repro.timing.path import make_path

from conftest import emit


@pytest.fixture(scope="module")
def fig1_path(lib):
    kinds = [
        GateKind.INV,
        GateKind.NAND2,
        GateKind.NOR2,
        GateKind.INV,
        GateKind.NAND3,
        GateKind.INV,
        GateKind.NOR3,
        GateKind.INV,
        GateKind.NAND2,
        GateKind.INV,
        GateKind.INV,
    ]
    return make_path(kinds, lib, cterm_ff=60.0 * lib.cref)


def test_fig1_series(benchmark, lib, fig1_path):
    """Print the delay-vs-capacitance trajectory and the two bounds."""
    bounds = benchmark.pedantic(
        delay_bounds, args=(fig1_path, lib), rounds=3, iterations=1
    )
    # Decimate the trace like the figure does.
    history = list(bounds.history)
    keep = history[:6] + history[6:-1:10] + [history[-1]]
    rows = [
        (p.iteration, f"{p.total_cin_over_cref:.1f}", f"{p.delay_ps:.1f}")
        for p in keep
    ]
    body = format_table(("iter", "sum CIN/CREF", "delay (ps)"), rows)
    body += (
        f"\n\nTmax (min area)  = {bounds.tmax_ps:.1f} ps"
        f"\nTmin             = {bounds.tmin_ps:.1f} ps"
        f"\nTmax/Tmin        = {bounds.tmax_ps / bounds.tmin_ps:.2f}"
        f"\n(paper Fig. 1: delay falls from ~1000 ps to ~500 ps while"
        f"\n sum CIN/CREF grows toward the optimum; same convex shape)"
    )
    emit("Fig. 1 -- path delay vs gate sizing iteration", body)

    assert bounds.tmin_ps < bounds.tmax_ps
    # The trajectory actually descends.
    assert history[-1].delay_ps < history[0].delay_ps


def test_fig1_bounds_kernel(benchmark, lib, fig1_path):
    """Timed kernel: the full Tmin/Tmax computation of Fig. 1."""
    result = benchmark(delay_bounds, fig1_path, lib)
    assert result.tmin_ps > 0
