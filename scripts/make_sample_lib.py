#!/usr/bin/env python
"""Export the default analytic library to a sample NLDM ``.lib``.

Writes ``examples/sample_nldm.lib`` (or ``--out``): every default cell
characterised through the analytic eq. 1-3 model on an 8x8
(input slew, external load) grid.  The file is a committed fixture --
the NLDM backend tests and the README/CLI examples run against it --
so regenerate it only when the analytic model or the export grid
changes, and commit the result.

Usage::

    PYTHONPATH=src python scripts/make_sample_lib.py [--out PATH] [--name NAME]
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cells.library import default_library  # noqa: E402
from repro.liberty import library_from_lib, write_library  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(__file__), "..", "examples", "sample_nldm.lib"
        ),
        help="output .lib path (default: examples/sample_nldm.lib)",
    )
    parser.add_argument(
        "--name", default="repro_sample", help="liberty library name"
    )
    args = parser.parse_args(argv)

    library = default_library()
    out = os.path.normpath(args.out)
    write_library(library, out, name=args.name)

    # Self-check: the file must load back into an NLDM library with one
    # table row per cell and the analytic cin floors.
    loaded = library_from_lib(out)
    backend = loaded.delay_backend
    print(
        f"wrote {out}: {len(loaded)} cells, "
        f"digest {backend.tables.digest[:12]}, "
        f"cref {loaded.cref:.4f} fF"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
