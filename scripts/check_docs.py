#!/usr/bin/env python
"""Check internal links and anchors in the repo's markdown docs.

Stdlib-only, so it runs anywhere (CI docs step, tests/test_docs.py).
For every checked file it validates:

- relative links point at files/directories that exist in the repo;
- fragment links (``#anchor``, on their own or after a relative path)
  resolve to a heading in the target file, using GitHub's slug rules
  (lowercase, spaces to hyphens, punctuation dropped);
- inline code spans are ignored, so ``[x](y)`` inside backticks is not
  treated as a link.

External links (http/https/mailto) are not fetched.

Exit status: 0 when clean, 1 with one ``file: message`` line per
problem on stderr.
"""

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKED_FILES = ("README.md", "docs/ARCHITECTURE.md")

_LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_CODE_SPAN_RE = re.compile(r"`[^`]*`")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_SLUG_DROP_RE = re.compile(r"[^\w\- ]")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading text."""
    text = _CODE_SPAN_RE.sub(lambda m: m.group(0).strip("`"), heading)
    text = _LINK_RE.sub(lambda m: m.group(0)[1 : m.group(0).index("]")], text)
    text = _SLUG_DROP_RE.sub("", text.lower())
    return text.replace(" ", "-")


def _strip_code(text: str) -> str:
    """Remove fenced blocks and inline code spans before link scanning."""
    out = []
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(_CODE_SPAN_RE.sub("", line))
    return "\n".join(out)


def heading_slugs(path: Path) -> set:
    """All GitHub anchor slugs defined by a markdown file's headings."""
    slugs = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING_RE.match(line)
        if match:
            base = github_slug(match.group(2))
            # Duplicate headings get -1, -2, ... suffixes on GitHub.
            n = slugs.get(base, 0)
            slugs[base] = n + 1
            if n:
                slugs["%s-%d" % (base, n)] = 1
    return set(slugs)


def check_file(path: Path) -> list:
    """All link problems in one markdown file, as message strings."""
    problems = []
    text = _strip_code(path.read_text(encoding="utf-8"))
    for target in _LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        ref, _, fragment = target.partition("#")
        if ref:
            dest = (path.parent / ref).resolve()
            if not dest.exists():
                problems.append("broken link %r (no such file)" % target)
                continue
        else:
            dest = path
        if fragment:
            if dest.is_dir() or dest.suffix.lower() != ".md":
                continue
            if fragment not in heading_slugs(dest):
                try:
                    shown = dest.relative_to(REPO_ROOT)
                except ValueError:
                    shown = dest
                problems.append(
                    "broken anchor %r (no heading #%s in %s)"
                    % (target, fragment, shown)
                )
    return problems


def main(argv=None) -> int:
    names = (argv or sys.argv)[1:] or list(CHECKED_FILES)
    failures = 0
    for name in names:
        path = REPO_ROOT / name
        if not path.exists():
            print("%s: file missing" % name, file=sys.stderr)
            failures += 1
            continue
        for problem in check_file(path):
            print("%s: %s" % (name, problem), file=sys.stderr)
            failures += 1
    if failures:
        print("check_docs: %d problem(s)" % failures, file=sys.stderr)
        return 1
    print("check_docs: %d file(s) clean" % len(names))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
