"""Lossless JSON-compatible conversion of every result the facade emits.

Numbers survive the round trip exactly: Python's ``json`` serialises floats
with ``repr``, which is read back to the identical IEEE-754 value, and numpy
arrays are flattened to plain float lists.  Enum-keyed tables (the Flimit
lookup) are stored as explicit ``driver``/``gate`` rows, and bounded paths
are stored structurally -- gate kind, side load, name -- and re-bound to a
characterised library on the way back, so deserialisation needs the same
library the run used (the default library is deterministic, making records
portable between processes).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.power import PowerReport
from repro.buffering.flimit import FlimitEntry
from repro.cells.gate_types import GateKind
from repro.cells.library import Library
from repro.netlist.circuit import Circuit
from repro.protocol.domains import (
    ConstraintDomain,
    DomainClassification,
)
from repro.protocol.optimizer import CircuitOptimizationResult, ProtocolResult
from repro.sizing.bounds import BoundsHistoryPoint, DelayBounds
from repro.timing.delay_model import Edge
from repro.timing.path import BoundedPath, PathStage


def array_to_list(arr: Sequence[float]) -> List[float]:
    """A numpy vector as a plain list of Python floats."""
    return [float(x) for x in np.asarray(arr, dtype=float)]


def _finite(value: float) -> float:
    """Pass through a float; JSON handles inf/nan via Python's extension."""
    return float(value)


# -- circuits ----------------------------------------------------------


def circuit_to_dict(circuit: Circuit) -> Dict[str, Any]:
    """Structural + sizing snapshot of a netlist."""
    return {
        "name": circuit.name,
        "inputs": list(circuit.inputs),
        "outputs": list(circuit.outputs),
        "gates": [
            {
                "name": gate.name,
                "kind": gate.kind.value,
                "fanin": list(gate.fanin),
                "cin_ff": None if gate.cin_ff is None else float(gate.cin_ff),
            }
            for gate in circuit.gates.values()
        ],
    }


def circuit_from_dict(data: Mapping[str, Any]) -> Circuit:
    """Rebuild a :class:`Circuit` from :func:`circuit_to_dict` output."""
    circuit = Circuit(data["name"])
    for net in data["inputs"]:
        circuit.add_input(net)
    for gate in data["gates"]:
        circuit.add_gate(
            gate["name"],
            GateKind(gate["kind"]),
            gate["fanin"],
            cin_ff=gate["cin_ff"],
        )
    for net in data["outputs"]:
        circuit.add_output(net)
    return circuit


# -- bounded paths -----------------------------------------------------


def path_to_dict(path: BoundedPath) -> Dict[str, Any]:
    """Structural snapshot of a bounded path (cells stored by kind)."""
    return {
        "stages": [
            {
                "kind": stage.cell.kind.value,
                "cside_ff": float(stage.cside_ff),
                "name": stage.name,
            }
            for stage in path.stages
        ],
        "cin_first_ff": float(path.cin_first_ff),
        "cterm_ff": float(path.cterm_ff),
        "input_edge": path.input_edge.value,
        "tin_first_ps": float(path.tin_first_ps),
    }


def path_from_dict(data: Mapping[str, Any], library: Library) -> BoundedPath:
    """Re-bind a serialized path to a characterised library."""
    stages = tuple(
        PathStage(
            cell=library.cell(GateKind(stage["kind"])),
            cside_ff=stage["cside_ff"],
            name=stage["name"],
        )
        for stage in data["stages"]
    )
    return BoundedPath(
        stages=stages,
        cin_first_ff=data["cin_first_ff"],
        cterm_ff=data["cterm_ff"],
        input_edge=Edge(data["input_edge"]),
        tin_first_ps=data["tin_first_ps"],
    )


# -- protocol results --------------------------------------------------


def classification_to_dict(classification: DomainClassification) -> Dict[str, Any]:
    """Serialize a Fig. 6 domain classification."""
    return {
        "domain": classification.domain.value,
        "tc_ps": _finite(classification.tc_ps),
        "tmin_ps": _finite(classification.tmin_ps),
    }


def classification_from_dict(data: Mapping[str, Any]) -> DomainClassification:
    """Rebuild a :class:`DomainClassification`."""
    return DomainClassification(
        domain=ConstraintDomain(data["domain"]),
        tc_ps=data["tc_ps"],
        tmin_ps=data["tmin_ps"],
    )


def protocol_result_to_dict(result: ProtocolResult) -> Dict[str, Any]:
    """Serialize a path-protocol outcome."""
    return {
        "method": result.method,
        "domain": classification_to_dict(result.domain),
        "path": path_to_dict(result.path),
        "sizes": array_to_list(result.sizes),
        "delay_ps": _finite(result.delay_ps),
        "area_um": _finite(result.area_um),
        "tc_ps": _finite(result.tc_ps),
        "feasible": bool(result.feasible),
        "tmin_ps": _finite(result.tmin_ps),
    }


def protocol_result_from_dict(
    data: Mapping[str, Any], library: Library
) -> ProtocolResult:
    """Rebuild a :class:`ProtocolResult`."""
    return ProtocolResult(
        method=data["method"],
        domain=classification_from_dict(data["domain"]),
        path=path_from_dict(data["path"], library),
        sizes=np.asarray(data["sizes"], dtype=float),
        delay_ps=data["delay_ps"],
        area_um=data["area_um"],
        tc_ps=data["tc_ps"],
        feasible=data["feasible"],
        tmin_ps=data["tmin_ps"],
    )


def circuit_result_to_dict(result: CircuitOptimizationResult) -> Dict[str, Any]:
    """Serialize a circuit-driver outcome."""
    return {
        "circuit": circuit_to_dict(result.circuit),
        "tc_ps": _finite(result.tc_ps),
        "critical_delay_ps": _finite(result.critical_delay_ps),
        "feasible": bool(result.feasible),
        "passes": int(result.passes),
        "rescued_gates": list(result.rescued_gates),
        "path_results": [protocol_result_to_dict(r) for r in result.path_results],
    }


def circuit_result_from_dict(
    data: Mapping[str, Any], library: Library
) -> CircuitOptimizationResult:
    """Rebuild a :class:`CircuitOptimizationResult`."""
    return CircuitOptimizationResult(
        circuit=circuit_from_dict(data["circuit"]),
        tc_ps=data["tc_ps"],
        critical_delay_ps=data["critical_delay_ps"],
        feasible=data["feasible"],
        passes=data["passes"],
        rescued_gates=tuple(data.get("rescued_gates", ())),
        path_results=[
            protocol_result_from_dict(r, library) for r in data["path_results"]
        ],
    )


# -- delay bounds ------------------------------------------------------


def bounds_to_dict(bounds: DelayBounds) -> Dict[str, Any]:
    """Serialize a ``(Tmin, Tmax)`` window with its Fig. 1 history."""
    return {
        "tmin_ps": _finite(bounds.tmin_ps),
        "tmax_ps": _finite(bounds.tmax_ps),
        "sizes_tmin": array_to_list(bounds.sizes_tmin),
        "sizes_tmax": array_to_list(bounds.sizes_tmax),
        "area_tmin_um": _finite(bounds.area_tmin_um),
        "area_tmax_um": _finite(bounds.area_tmax_um),
        "history": [
            [int(p.iteration), _finite(p.total_cin_over_cref), _finite(p.delay_ps)]
            for p in bounds.history
        ],
        "iterations": int(bounds.iterations),
    }


def bounds_from_dict(data: Mapping[str, Any]) -> DelayBounds:
    """Rebuild a :class:`DelayBounds`."""
    return DelayBounds(
        tmin_ps=data["tmin_ps"],
        tmax_ps=data["tmax_ps"],
        sizes_tmin=np.asarray(data["sizes_tmin"], dtype=float),
        sizes_tmax=np.asarray(data["sizes_tmax"], dtype=float),
        area_tmin_um=data["area_tmin_um"],
        area_tmax_um=data["area_tmax_um"],
        history=tuple(
            BoundsHistoryPoint(iteration=it, total_cin_over_cref=cin, delay_ps=d)
            for it, cin, d in data["history"]
        ),
        iterations=data["iterations"],
    )


# -- power -------------------------------------------------------------


def power_to_dict(report: PowerReport) -> Dict[str, Any]:
    """Serialize a power breakdown."""
    return {
        "dynamic_uw": _finite(report.dynamic_uw),
        "short_circuit_uw": _finite(report.short_circuit_uw),
        "frequency_mhz": _finite(report.frequency_mhz),
        "switched_cap_ff": _finite(report.switched_cap_ff),
    }


def power_from_dict(data: Mapping[str, Any]) -> PowerReport:
    """Rebuild a :class:`PowerReport`."""
    return PowerReport(
        dynamic_uw=data["dynamic_uw"],
        short_circuit_uw=data["short_circuit_uw"],
        frequency_mhz=data["frequency_mhz"],
        switched_cap_ff=data["switched_cap_ff"],
    )


# -- Flimit tables -----------------------------------------------------


def flimit_table_to_list(
    limits: Mapping[Tuple[GateKind, GateKind], float],
) -> List[Dict[str, Any]]:
    """An enum-keyed ``(driver, gate) -> Flimit`` table as explicit rows.

    ``inf`` entries (the buffer never wins) are stored as the string
    ``"inf"`` so the rows stay strict-JSON compatible.
    """
    rows = []
    for (driver, gate), value in sorted(
        limits.items(), key=lambda item: (item[0][0].value, item[0][1].value)
    ):
        rows.append(
            {
                "driver": driver.value,
                "gate": gate.value,
                "flimit": "inf" if math.isinf(value) else float(value),
            }
        )
    return rows


def flimit_table_from_list(
    rows: Sequence[Mapping[str, Any]],
) -> Dict[Tuple[GateKind, GateKind], float]:
    """Rebuild the enum-keyed lookup from :func:`flimit_table_to_list` rows."""
    return {
        (GateKind(row["driver"]), GateKind(row["gate"])): (
            math.inf if row["flimit"] == "inf" else float(row["flimit"])
        )
        for row in rows
    }


def flimit_entries_to_list(entries: Sequence[FlimitEntry]) -> List[Dict[str, Any]]:
    """Serialize characterisation entries (Table 2 rows)."""

    def encode(value: Optional[float]) -> Any:
        if value is None:
            return None
        return "inf" if math.isinf(value) else float(value)

    return [
        {
            "driver": entry.driver.value,
            "gate": entry.gate.value,
            "computed": encode(entry.computed),
            "simulated": encode(entry.simulated),
        }
        for entry in entries
    ]


def flimit_entries_from_list(rows: Sequence[Mapping[str, Any]]) -> List[FlimitEntry]:
    """Rebuild :class:`FlimitEntry` rows."""

    def decode(value: Any) -> Optional[float]:
        if value is None:
            return None
        return math.inf if value == "inf" else float(value)

    return [
        FlimitEntry(
            driver=GateKind(row["driver"]),
            gate=GateKind(row["gate"]),
            computed=decode(row["computed"]),
            simulated=decode(row["simulated"]),
        )
        for row in rows
    ]
