"""The :class:`Job` specification: one optimization request, fully declared.

A job names *what* to optimize (a registered benchmark or an inline
:class:`~repro.netlist.circuit.Circuit`), *how hard* (an absolute ``tc_ps``
constraint or a ``tc_ratio`` multiple of the path's ``Tmin``) and *which
protocol knobs* to use.  Jobs are frozen and validated on construction, so a
malformed campaign fails before any characterisation work starts, and a job
can be serialized, hashed into cache keys, shipped to a worker process and
echoed verbatim inside the :class:`~repro.api.records.RunRecord` it produced.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Optional

from repro.netlist.circuit import Circuit

#: Protocol scopes a job may request.
SCOPES = ("path", "circuit")

#: Sizing weight modes understood by the constraint distributor.
WEIGHT_MODES = ("uniform", "area")


class JobError(ValueError):
    """An invalid :class:`Job` specification."""


@dataclass(frozen=True)
class Job:
    """A declarative optimization request.

    Attributes
    ----------
    benchmark / circuit:
        Exactly one must be given: a registered benchmark name (see
        ``repro.iscas.benchmark_names``) or an inline netlist.
    bench_dir:
        Optional directory of real ``.bench`` files overriding the
        synthetic stand-ins (benchmark jobs only).
    tc_ps / tc_ratio:
        The delay constraint, absolute (ps) or as a multiple of the
        critical path's ``Tmin``.  At most one; optimization requires one
        (``bounds`` / ``power`` jobs need neither).
    scope:
        ``"path"`` runs the Fig. 7 protocol on the critical path;
        ``"circuit"`` runs the circuit-level driver over the ``k_paths``
        most critical paths with netlist write-back.
    k_paths / max_passes:
        Circuit-scope driver parameters.
    weight_mode:
        ``"uniform"`` (the paper's eq. 6) or ``"area"`` (KKT-exact
        minimum-``sum W`` weights).
    allow_restructuring:
        Whether the protocol may fall back to De Morgan rewriting for
        infeasible constraints (path scope).
    frequency_mhz / activity_vectors:
        Power-job parameters (clock and Monte-Carlo vector count).
    label:
        Free-form tag echoed into the run record (campaign bookkeeping).
    """

    #: Inline circuits compare (and hash) by object identity -- two jobs
    #: wrapping different Circuit instances are distinct even when the
    #: netlists are structurally equal.
    benchmark: Optional[str] = None
    circuit: Optional[Circuit] = None
    bench_dir: Optional[str] = None
    tc_ps: Optional[float] = None
    tc_ratio: Optional[float] = None
    scope: str = "path"
    k_paths: int = 4
    max_passes: int = 6
    weight_mode: str = "uniform"
    allow_restructuring: bool = True
    frequency_mhz: float = 100.0
    activity_vectors: int = 128
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if (self.benchmark is None) == (self.circuit is None):
            raise JobError("exactly one of 'benchmark' or 'circuit' is required")
        if self.benchmark is not None and not isinstance(self.benchmark, str):
            raise JobError(f"benchmark must be a string, got {self.benchmark!r}")
        if self.circuit is not None and not isinstance(self.circuit, Circuit):
            raise JobError(f"circuit must be a Circuit, got {type(self.circuit)}")
        if self.circuit is not None and self.bench_dir is not None:
            raise JobError("bench_dir applies only to benchmark jobs")
        if self.tc_ps is not None and self.tc_ratio is not None:
            raise JobError("give at most one of 'tc_ps' and 'tc_ratio'")
        if self.tc_ps is not None and self.tc_ps <= 0:
            raise JobError(f"tc_ps must be positive, got {self.tc_ps}")
        if self.tc_ratio is not None and self.tc_ratio <= 0:
            raise JobError(f"tc_ratio must be positive, got {self.tc_ratio}")
        if self.scope not in SCOPES:
            raise JobError(f"scope must be one of {SCOPES}, got {self.scope!r}")
        if self.k_paths < 1:
            raise JobError(f"k_paths must be >= 1, got {self.k_paths}")
        if self.max_passes < 1:
            raise JobError(f"max_passes must be >= 1, got {self.max_passes}")
        if self.weight_mode not in WEIGHT_MODES:
            raise JobError(
                f"weight_mode must be one of {WEIGHT_MODES}, got {self.weight_mode!r}"
            )
        if self.frequency_mhz <= 0:
            raise JobError(f"frequency_mhz must be positive, got {self.frequency_mhz}")
        if self.activity_vectors < 2:
            raise JobError(
                f"activity_vectors must be >= 2, got {self.activity_vectors}"
            )

    # -- derived -------------------------------------------------------

    @property
    def name(self) -> str:
        """Human-readable identity (label, benchmark name or circuit name)."""
        if self.label:
            return self.label
        if self.benchmark is not None:
            return self.benchmark
        return self.circuit.name  # type: ignore[union-attr]

    @property
    def has_constraint(self) -> bool:
        """Whether the job pins a delay constraint."""
        return self.tc_ps is not None or self.tc_ratio is not None

    def with_constraint(
        self, tc_ps: Optional[float] = None, tc_ratio: Optional[float] = None
    ) -> "Job":
        """A copy with the delay constraint replaced (sweep ergonomics)."""
        if (tc_ps is None) == (tc_ratio is None):
            raise JobError("give exactly one of 'tc_ps' and 'tc_ratio'")
        return replace(self, tc_ps=tc_ps, tc_ratio=tc_ratio)

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation (inline circuits are expanded)."""
        from repro.api.serialization import circuit_to_dict

        data = {f.name: getattr(self, f.name) for f in fields(self)}
        if self.circuit is not None:
            data["circuit"] = circuit_to_dict(self.circuit)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Job":
        """Rebuild a job from :meth:`to_dict` output."""
        from repro.api.serialization import circuit_from_dict

        payload = dict(data)
        unknown = set(payload) - {f.name for f in fields(cls)}
        if unknown:
            raise JobError(f"unknown job fields: {sorted(unknown)}")
        if payload.get("circuit") is not None:
            payload["circuit"] = circuit_from_dict(payload["circuit"])
        return cls(**payload)
