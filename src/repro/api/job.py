"""The :class:`Job` specification: one optimization request, fully declared.

A job names *what* to optimize (a registered benchmark or an inline
:class:`~repro.netlist.circuit.Circuit`), *how hard* (an absolute ``tc_ps``
constraint or a ``tc_ratio`` multiple of the path's ``Tmin``) and *which
protocol knobs* to use.  Jobs are frozen and validated on construction, so a
malformed campaign fails before any characterisation work starts, and a job
can be serialized, hashed into cache keys, shipped to a worker process and
echoed verbatim inside the :class:`~repro.api.records.RunRecord` it produced.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.netlist.circuit import Circuit

#: Protocol scopes a job may request.
SCOPES = ("path", "circuit")

#: Sizing weight modes understood by the constraint distributor.
WEIGHT_MODES = ("uniform", "area")

#: Delay-model backends a job may pin (see :mod:`repro.timing.backend`).
BACKENDS = ("analytic", "nldm")


class JobError(ValueError):
    """An invalid :class:`Job` specification."""


@dataclass(frozen=True)
class Job:
    """A declarative optimization request.

    Attributes
    ----------
    benchmark / circuit:
        Exactly one must be given: a registered benchmark name (see
        ``repro.iscas.benchmark_names``) or an inline netlist.
    bench_dir:
        Optional directory of real ``.bench`` files overriding the
        synthetic stand-ins (benchmark jobs only).
    tc_ps / tc_ratio:
        The delay constraint, absolute (ps) or as a multiple of the
        critical path's ``Tmin``.  At most one; optimization requires one
        (``bounds`` / ``power`` jobs need neither).
    scope:
        ``"path"`` runs the Fig. 7 protocol on the critical path;
        ``"circuit"`` runs the circuit-level driver over the ``k_paths``
        most critical paths with netlist write-back.
    k_paths / max_passes:
        Circuit-scope driver parameters.
    weight_mode:
        ``"uniform"`` (the paper's eq. 6) or ``"area"`` (KKT-exact
        minimum-``sum W`` weights).
    allow_restructuring:
        Whether the protocol may fall back to De Morgan rewriting for
        infeasible constraints (path scope).
    frequency_mhz / activity_vectors:
        Power-job parameters (clock and Monte-Carlo vector count).
    mc_samples / mc_seed:
        Monte-Carlo corner-analysis parameters (``Session.mc``): number
        of sampled process corners and the rng seed.  The optional
        ``tc_ps`` / ``tc_ratio`` constraint doubles as the yield target.
    backend / liberty:
        Delay-model identity: which backend the run must use
        (:data:`BACKENDS`; ``None`` means "whatever the session runs")
        and, for ``"nldm"``, the ``.lib`` file the tables came from.
        The session validates these against its own backend and stamps
        them into the job echo of every non-analytic record, so a
        serialized :class:`~repro.api.records.RunRecord` names the model
        that produced it.  Serialization is backward compatible: unset
        fields are omitted from :meth:`to_dict`, so analytic-default
        jobs keep their historical byte form.
    timeout_s:
        Optional per-job deadline in seconds, enforced by the serve
        executor (a submit-level ``timeout_s`` overrides it).  ``None``
        (the default) means no deadline; unset it is omitted from
        :meth:`to_dict`, keeping historical byte forms and store keys.
    label:
        Free-form tag echoed into the run record (campaign bookkeeping).
    """

    #: Inline circuits compare (and hash) by object identity -- two jobs
    #: wrapping different Circuit instances are distinct even when the
    #: netlists are structurally equal.
    benchmark: Optional[str] = None
    circuit: Optional[Circuit] = None
    bench_dir: Optional[str] = None
    tc_ps: Optional[float] = None
    tc_ratio: Optional[float] = None
    scope: str = "path"
    k_paths: int = 4
    max_passes: int = 6
    weight_mode: str = "uniform"
    allow_restructuring: bool = True
    frequency_mhz: float = 100.0
    activity_vectors: int = 128
    mc_samples: int = 1000
    mc_seed: int = 42
    backend: Optional[str] = None
    liberty: Optional[str] = None
    timeout_s: Optional[float] = None
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if (self.benchmark is None) == (self.circuit is None):
            raise JobError("exactly one of 'benchmark' or 'circuit' is required")
        if self.benchmark is not None and not isinstance(self.benchmark, str):
            raise JobError(f"benchmark must be a string, got {self.benchmark!r}")
        if self.circuit is not None and not isinstance(self.circuit, Circuit):
            raise JobError(f"circuit must be a Circuit, got {type(self.circuit)}")
        if self.circuit is not None and self.bench_dir is not None:
            raise JobError("bench_dir applies only to benchmark jobs")
        if self.tc_ps is not None and self.tc_ratio is not None:
            raise JobError("give at most one of 'tc_ps' and 'tc_ratio'")
        if self.tc_ps is not None and self.tc_ps <= 0:
            raise JobError(f"tc_ps must be positive, got {self.tc_ps}")
        if self.tc_ratio is not None and self.tc_ratio <= 0:
            raise JobError(f"tc_ratio must be positive, got {self.tc_ratio}")
        if self.scope not in SCOPES:
            raise JobError(f"scope must be one of {SCOPES}, got {self.scope!r}")
        if self.k_paths < 1:
            raise JobError(f"k_paths must be >= 1, got {self.k_paths}")
        if self.max_passes < 1:
            raise JobError(f"max_passes must be >= 1, got {self.max_passes}")
        if self.weight_mode not in WEIGHT_MODES:
            raise JobError(
                f"weight_mode must be one of {WEIGHT_MODES}, got {self.weight_mode!r}"
            )
        if self.frequency_mhz <= 0:
            raise JobError(f"frequency_mhz must be positive, got {self.frequency_mhz}")
        if self.activity_vectors < 2:
            raise JobError(
                f"activity_vectors must be >= 2, got {self.activity_vectors}"
            )
        if self.mc_samples < 2:
            raise JobError(f"mc_samples must be >= 2, got {self.mc_samples}")
        if not isinstance(self.mc_seed, int) or isinstance(self.mc_seed, bool):
            raise JobError(f"mc_seed must be an integer, got {self.mc_seed!r}")
        if self.backend is not None and self.backend not in BACKENDS:
            raise JobError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.liberty is not None and not isinstance(self.liberty, str):
            raise JobError(f"liberty must be a path string, got {self.liberty!r}")
        if self.liberty is not None and self.backend != "nldm":
            raise JobError("liberty applies only to backend='nldm' jobs")
        if self.timeout_s is not None:
            if (
                isinstance(self.timeout_s, bool)
                or not isinstance(self.timeout_s, (int, float))
                or self.timeout_s <= 0
            ):
                raise JobError(
                    f"timeout_s must be a positive number, got {self.timeout_s!r}"
                )

    # -- derived -------------------------------------------------------

    @property
    def name(self) -> str:
        """Human-readable identity (label, benchmark name or circuit name)."""
        if self.label:
            return self.label
        if self.benchmark is not None:
            return self.benchmark
        return self.circuit.name  # type: ignore[union-attr]

    @property
    def has_constraint(self) -> bool:
        """Whether the job pins a delay constraint."""
        return self.tc_ps is not None or self.tc_ratio is not None

    def with_constraint(
        self, tc_ps: Optional[float] = None, tc_ratio: Optional[float] = None
    ) -> "Job":
        """A copy with the delay constraint replaced (sweep ergonomics)."""
        if (tc_ps is None) == (tc_ratio is None):
            raise JobError("give exactly one of 'tc_ps' and 'tc_ratio'")
        return replace(self, tc_ps=tc_ps, tc_ratio=tc_ratio)

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation (inline circuits are expanded)."""
        from repro.api.serialization import circuit_to_dict

        data = {f.name: getattr(self, f.name) for f in fields(self)}
        if self.circuit is not None:
            data["circuit"] = circuit_to_dict(self.circuit)
        # Backend identity and deadline are emitted only when pinned:
        # default jobs keep the historical byte form (store keys,
        # goldens).
        for name in ("backend", "liberty", "timeout_s"):
            if data[name] is None:
                del data[name]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Job":
        """Rebuild a job from :meth:`to_dict` output."""
        from repro.api.serialization import circuit_from_dict

        payload = dict(data)
        unknown = set(payload) - {f.name for f in fields(cls)}
        if unknown:
            raise JobError(f"unknown job fields: {sorted(unknown)}")
        if payload.get("circuit") is not None:
            payload["circuit"] = circuit_from_dict(payload["circuit"])
        return cls(**payload)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative scenario grid: the campaign-level job kind.

    A sweep names a set of benchmarks, a set of constraint points
    (absolute picoseconds or multiples of each benchmark's critical-path
    ``Tmin``) and the protocol-knob axes to cross them with.  Expanding
    the spec yields one :class:`Job` per grid point with a deterministic,
    unique ``label`` -- the identity the campaign store keys resumption
    on and run records echo back.

    Attributes
    ----------
    benchmarks:
        Registered benchmark names, swept in the given order.
    tc_ps_points / tc_ratio_points:
        Exactly one must be non-empty: the constraint axis, absolute or
        ``Tmin``-relative.  Points are run sorted ascending within each
        benchmark so every point's nearest already-solved neighbour is
        its predecessor (the warm-start seed).
    scope / k_paths / max_passes / weight_modes / restructuring:
        Protocol knobs; ``weight_modes`` and ``restructuring`` are axes
        (every combination is a grid point), the rest are shared.
    bench_dir:
        Optional directory of real ``.bench`` netlists.
    label:
        Optional campaign tag, prefixed onto every point label.
    """

    benchmarks: Tuple[str, ...] = ()
    tc_ps_points: Tuple[float, ...] = ()
    tc_ratio_points: Tuple[float, ...] = ()
    scope: str = "circuit"
    k_paths: int = 4
    max_passes: int = 6
    weight_modes: Tuple[str, ...] = ("uniform",)
    restructuring: Tuple[bool, ...] = (True,)
    bench_dir: Optional[str] = None
    label: Optional[str] = None

    def __post_init__(self) -> None:
        # Tolerate lists from JSON / CLI call sites.
        for name in (
            "benchmarks",
            "tc_ps_points",
            "tc_ratio_points",
            "weight_modes",
            "restructuring",
        ):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
        if not self.benchmarks:
            raise JobError("sweep needs at least one benchmark")
        if not all(isinstance(b, str) and b for b in self.benchmarks):
            raise JobError(f"benchmarks must be names, got {self.benchmarks!r}")
        if len(set(self.benchmarks)) != len(self.benchmarks):
            raise JobError("duplicate benchmark in sweep")
        if bool(self.tc_ps_points) == bool(self.tc_ratio_points):
            raise JobError(
                "give exactly one of 'tc_ps_points' and 'tc_ratio_points'"
            )
        points = self.tc_ps_points or self.tc_ratio_points
        if any(p <= 0 for p in points):
            raise JobError(f"constraint points must be positive, got {points}")
        if len(set(points)) != len(points):
            raise JobError("duplicate constraint point in sweep")
        # Point labels render the constraint with %g; two points that
        # collapse to the same rendering would share a label -- and the
        # label is the resume/record identity, so a collision would
        # silently serve one point's result for both.
        rendered = {f"{p:g}" for p in points}
        if len(rendered) != len(points):
            raise JobError(
                "constraint points collide at label precision (%g formats "
                f"{sorted(points)} to {sorted(rendered)}); space them further apart"
            )
        if self.scope not in SCOPES:
            raise JobError(f"scope must be one of {SCOPES}, got {self.scope!r}")
        if self.k_paths < 1:
            raise JobError(f"k_paths must be >= 1, got {self.k_paths}")
        if self.max_passes < 1:
            raise JobError(f"max_passes must be >= 1, got {self.max_passes}")
        if not self.weight_modes:
            raise JobError("sweep needs at least one weight mode")
        for mode in self.weight_modes:
            if mode not in WEIGHT_MODES:
                raise JobError(
                    f"weight_mode must be one of {WEIGHT_MODES}, got {mode!r}"
                )
        if len(set(self.weight_modes)) != len(self.weight_modes):
            raise JobError("duplicate weight mode in sweep")
        if not self.restructuring:
            raise JobError("sweep needs at least one restructuring setting")
        if len(set(self.restructuring)) != len(self.restructuring):
            raise JobError("duplicate restructuring setting in sweep")

    # -- derived -------------------------------------------------------

    @property
    def relative(self) -> bool:
        """Whether the constraint axis is ``Tmin``-relative."""
        return bool(self.tc_ratio_points)

    @property
    def points(self) -> Tuple[float, ...]:
        """The constraint axis, sorted ascending (warm-start order)."""
        return tuple(sorted(self.tc_ps_points or self.tc_ratio_points))

    @property
    def point_count(self) -> int:
        """Number of grid points the sweep expands to."""
        return (
            len(self.benchmarks)
            * len(self.points)
            * len(self.weight_modes)
            * len(self.restructuring)
        )

    def point_label(
        self, benchmark: str, tc: float, weight_mode: str, restructure: bool
    ) -> str:
        """The deterministic identity of one grid point."""
        axis = "r" if self.relative else "ps"
        parts = [
            benchmark,
            f"{axis}{tc:g}",
            weight_mode,
            "dm" if restructure else "nodm",
        ]
        prefix = f"{self.label}:" if self.label else ""
        return prefix + "/".join(parts)

    def jobs(self) -> List[Job]:
        """Expand the grid to concrete jobs, warm-start order.

        Points of one benchmark are contiguous and sorted by constraint
        within each (weight mode, restructuring) combination, so a
        runner that walks the list in order always has the nearest
        already-solved neighbour immediately behind it.
        """
        out: List[Job] = []
        for benchmark in self.benchmarks:
            for weight_mode in self.weight_modes:
                for restructure in self.restructuring:
                    for tc in self.points:
                        out.append(
                            Job(
                                benchmark=benchmark,
                                bench_dir=self.bench_dir,
                                tc_ps=tc if not self.relative else None,
                                tc_ratio=tc if self.relative else None,
                                scope=self.scope,
                                k_paths=self.k_paths,
                                max_passes=self.max_passes,
                                weight_mode=weight_mode,
                                allow_restructuring=restructure,
                                label=self.point_label(
                                    benchmark, tc, weight_mode, restructure
                                ),
                            )
                        )
        return out

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation (tuples become lists)."""
        return {
            "benchmarks": list(self.benchmarks),
            "tc_ps_points": list(self.tc_ps_points),
            "tc_ratio_points": list(self.tc_ratio_points),
            "scope": self.scope,
            "k_paths": self.k_paths,
            "max_passes": self.max_passes,
            "weight_modes": list(self.weight_modes),
            "restructuring": list(self.restructuring),
            "bench_dir": self.bench_dir,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        payload = dict(data)
        unknown = set(payload) - {f.name for f in fields(cls)}
        if unknown:
            raise JobError(f"unknown sweep fields: {sorted(unknown)}")
        return cls(**payload)
