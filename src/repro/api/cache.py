"""Bounded LRU mapping with hit/miss/eviction counters.

:class:`BoundedCache` is the storage primitive behind every
:class:`~repro.api.session.Session` memo.  It behaves like a plain dict
(the unbounded default is drop-in compatible with the dicts it replaced)
but can be capped: inserting beyond ``maxsize`` evicts the least
recently *used* entry, and every access updates recency.  The counters
make cache behaviour observable -- the serving layer
(:mod:`repro.serve`) sizes a long-lived daemon's session with a bound
and watches ``evictions`` instead of watching memory grow.

Eviction is always safe for the session's memos: every cached artefact
is a pure function of its key, so an evicted entry is recomputed on the
next miss, never served stale.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional


class BoundedCache(OrderedDict):
    """An ``OrderedDict`` with LRU eviction and access counters.

    Parameters
    ----------
    maxsize:
        Entry cap; ``None`` (the default) means unbounded -- exactly a
        dict, plus counters.
    name:
        Label echoed in :meth:`stats` (observability only).

    Counters
    --------
    ``hits`` / ``misses`` count :meth:`get` outcomes, ``evictions``
    counts entries dropped by the LRU bound.  ``clear()`` empties the
    mapping but keeps the counters (a long-lived server's totals survive
    a cache flush).
    """

    def __init__(self, maxsize: Optional[int] = None, name: str = "") -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"maxsize must be >= 1 or None, got {maxsize}")
        super().__init__()
        self.maxsize = maxsize
        self.name = name
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cap = "inf" if self.maxsize is None else str(self.maxsize)
        return (
            f"BoundedCache({self.name or 'anon'}: {len(self)}/{cap}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )

    def get(self, key: Any, default: Any = None) -> Any:
        """Dict ``get`` that counts the outcome and refreshes recency."""
        try:
            value = OrderedDict.__getitem__(self, key)
        except KeyError:
            self.misses += 1
            return default
        self.hits += 1
        try:
            self.move_to_end(key)
        except KeyError:  # pragma: no cover - concurrent eviction
            pass
        return value

    def peek(self, key: Any, default: Any = None) -> Any:
        """Raw lookup: no counters, no recency update.

        The double-checked populate paths use this for their re-check so
        one logical miss is counted once, not twice.
        """
        try:
            return OrderedDict.__getitem__(self, key)
        except KeyError:
            return default

    def __getitem__(self, key: Any) -> Any:
        value = OrderedDict.__getitem__(self, key)
        try:
            self.move_to_end(key)
        except KeyError:  # pragma: no cover - concurrent eviction
            pass
        return value

    def __setitem__(self, key: Any, value: Any) -> None:
        existed = OrderedDict.__contains__(self, key)
        OrderedDict.__setitem__(self, key, value)
        if existed:
            self.move_to_end(key)
        elif self.maxsize is not None:
            while len(self) > self.maxsize:
                OrderedDict.popitem(self, last=False)
                self.evictions += 1

    @property
    def hit_rate(self) -> Optional[float]:
        """Hit fraction in ``[0, 1]``, or ``None`` before any lookups."""
        total = self.hits + self.misses
        if total == 0:
            return None
        return self.hits / total

    def stats(self) -> Dict[str, Any]:
        """Size, bound, counters and hit rate as one JSON-native dict."""
        return {
            "size": len(self),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }
