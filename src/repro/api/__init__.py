"""The canonical programmatic entry point to the POPS reproduction.

Quickstart::

    from repro.api import Job, Session

    session = Session()                      # default 0.25 um library
    job = Job(benchmark="c432", tc_ratio=1.5)
    record = session.optimize(job)           # Fig. 7 protocol, cached
    print(record.payload.method, record.payload.area_um)
    archived = record.to_json()              # lossless JSON envelope

``Session`` memoizes library characterisation, benchmark loading, STA,
critical-path extraction and delay bounds; ``Session.optimize_many``
fans a campaign out over worker processes with a serial fallback.
"""

from repro.api.cache import BoundedCache
from repro.api.job import SCOPES, WEIGHT_MODES, Job, JobError, SweepSpec
from repro.api.records import (
    KIND_BOUNDS,
    KIND_CHARACTERIZE,
    KIND_MC,
    KIND_OPTIMIZE_CIRCUIT,
    KIND_OPTIMIZE_PATH,
    KIND_POWER,
    KIND_SWEEP,
    KINDS,
    RecordError,
    RunRecord,
)
from repro.api.session import (
    Session,
    SessionStats,
    circuit_state_key,
    circuit_structure_key,
)

__all__ = [
    "BoundedCache",
    "Job",
    "JobError",
    "SweepSpec",
    "SCOPES",
    "WEIGHT_MODES",
    "RunRecord",
    "RecordError",
    "KINDS",
    "KIND_OPTIMIZE_PATH",
    "KIND_OPTIMIZE_CIRCUIT",
    "KIND_BOUNDS",
    "KIND_POWER",
    "KIND_CHARACTERIZE",
    "KIND_SWEEP",
    "KIND_MC",
    "Session",
    "SessionStats",
    "circuit_state_key",
    "circuit_structure_key",
]
