"""The :class:`RunRecord` envelope every Session operation returns.

A record bundles the job echo, the typed result payload and timing
metadata into one object with a lossless JSON representation.  Payload
serialization is deterministic -- two identical runs (same job, same
library) produce byte-identical ``to_dict(with_timing=False)`` output --
which is what lets the parallel batch runner hand results across process
boundaries and still match the serial path exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.api.job import Job
from repro.api.serialization import (
    bounds_from_dict,
    bounds_to_dict,
    circuit_result_from_dict,
    circuit_result_to_dict,
    flimit_entries_from_list,
    flimit_entries_to_list,
    path_from_dict,
    path_to_dict,
    power_from_dict,
    power_to_dict,
    protocol_result_from_dict,
    protocol_result_to_dict,
)
from repro.cells.library import Library, default_library

#: Record kinds and their payload schema.
KIND_OPTIMIZE_PATH = "optimize-path"
KIND_OPTIMIZE_CIRCUIT = "optimize-circuit"
KIND_BOUNDS = "bounds"
KIND_POWER = "power"
KIND_CHARACTERIZE = "characterize"
#: Campaign summary: spec echo + per-point metrics + Pareto frontier.
#: The payload is already JSON-native (built by ``repro.explore``), so it
#: round-trips verbatim; the per-point full records live in the campaign
#: store, not in this envelope.
KIND_SWEEP = "sweep"
#: Monte-Carlo corner analysis: an ``repro.mc.McResult`` payload (delay
#: distribution, per-endpoint statistics, yield / guard bands).
KIND_MC = "mc"

KINDS = (
    KIND_OPTIMIZE_PATH,
    KIND_OPTIMIZE_CIRCUIT,
    KIND_BOUNDS,
    KIND_POWER,
    KIND_CHARACTERIZE,
    KIND_SWEEP,
    KIND_MC,
)


class RecordError(ValueError):
    """A malformed serialized run record."""


@dataclass
class RunRecord:
    """One completed Session operation.

    Attributes
    ----------
    kind:
        Payload discriminator, one of :data:`KINDS`.
    job:
        The job specification that produced this record (``None`` for
        job-less operations such as library characterisation).
    payload:
        The typed result object (``ProtocolResult``,
        ``CircuitOptimizationResult``, ``DelayBounds`` wrapper, ...).
    extra:
        Small derived scalars worth keeping next to the payload (resolved
        ``tc_ps``, extraction delay, area...), JSON-native values only.
    elapsed_s:
        Wall-clock duration of the operation.
    created_unix:
        POSIX timestamp of record creation.
    telemetry:
        Optional JSON-native per-run telemetry (the optimizer's
        pass-by-pass story, see :mod:`repro.obs.telemetry`).  Like the
        timing block it is envelope metadata, not payload: it is emitted
        only by ``to_dict(with_timing=True)``, so the byte-stable
        ``with_timing=False`` form -- the batch/serve parity contract --
        is unchanged, and old readers simply ignore the extra key.
    """

    kind: str
    job: Optional[Job]
    payload: Any
    extra: Dict[str, Any] = field(default_factory=dict)
    elapsed_s: float = 0.0
    created_unix: float = 0.0
    telemetry: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise RecordError(f"unknown record kind {self.kind!r}")

    # -- serialization -------------------------------------------------

    def _payload_to_dict(self) -> Any:
        if self.kind == KIND_OPTIMIZE_PATH:
            return protocol_result_to_dict(self.payload)
        if self.kind == KIND_OPTIMIZE_CIRCUIT:
            return circuit_result_to_dict(self.payload)
        if self.kind == KIND_BOUNDS:
            return {
                "gate_names": list(self.payload["gate_names"]),
                "path": path_to_dict(self.payload["path"]),
                "bounds": bounds_to_dict(self.payload["bounds"]),
            }
        if self.kind == KIND_POWER:
            return power_to_dict(self.payload)
        if self.kind == KIND_SWEEP:
            return dict(self.payload)
        if self.kind == KIND_MC:
            from repro.mc.result import mc_result_to_dict

            return mc_result_to_dict(self.payload)
        return flimit_entries_to_list(self.payload)

    def to_dict(self, with_timing: bool = True) -> Dict[str, Any]:
        """JSON-compatible representation.

        ``with_timing=False`` drops the (non-deterministic) wall-clock
        metadata, leaving only content that is byte-stable across
        re-runs -- the form batch-parity checks compare.
        """
        data: Dict[str, Any] = {
            "kind": self.kind,
            "job": None if self.job is None else self.job.to_dict(),
            "payload": self._payload_to_dict(),
            "extra": dict(self.extra),
        }
        if with_timing:
            data["timing"] = {
                "elapsed_s": float(self.elapsed_s),
                "created_unix": float(self.created_unix),
            }
            if self.telemetry is not None:
                data["telemetry"] = dict(self.telemetry)
        return data

    def to_json(self, with_timing: bool = True, indent: Optional[int] = None) -> str:
        """The record as a JSON string."""
        return json.dumps(
            self.to_dict(with_timing=with_timing), indent=indent, sort_keys=True
        )

    @classmethod
    def from_dict(
        cls, data: Dict[str, Any], library: Optional[Library] = None
    ) -> "RunRecord":
        """Rebuild a record; paths/results re-bind to ``library``.

        The library must characterise the same cells the run used.  When
        omitted, the job echo's backend spec decides: an ``"nldm"`` job
        whose ``liberty`` file is still readable rebuilds the NLDM
        library from it, everything else gets the deterministic default
        analytic library.
        """
        if library is None:
            job_data = data.get("job") or {}
            liberty = job_data.get("liberty")
            if job_data.get("backend") == "nldm" and liberty is not None:
                try:
                    from repro.liberty import library_from_lib

                    library = library_from_lib(liberty)
                except (OSError, ValueError):
                    library = None  # fall through to the analytic default
        if library is None:
            library = default_library()
        kind = data.get("kind")
        if kind not in KINDS:
            raise RecordError(f"unknown record kind {kind!r}")
        raw_payload = data["payload"]
        payload: Any
        if kind == KIND_OPTIMIZE_PATH:
            payload = protocol_result_from_dict(raw_payload, library)
        elif kind == KIND_OPTIMIZE_CIRCUIT:
            payload = circuit_result_from_dict(raw_payload, library)
        elif kind == KIND_BOUNDS:
            payload = {
                "gate_names": tuple(raw_payload["gate_names"]),
                "path": path_from_dict(raw_payload["path"], library),
                "bounds": bounds_from_dict(raw_payload["bounds"]),
            }
        elif kind == KIND_POWER:
            payload = power_from_dict(raw_payload)
        elif kind == KIND_SWEEP:
            payload = dict(raw_payload)
        elif kind == KIND_MC:
            from repro.mc.result import mc_result_from_dict

            payload = mc_result_from_dict(raw_payload)
        else:
            payload = flimit_entries_from_list(raw_payload)
        timing = data.get("timing") or {}
        telemetry = data.get("telemetry")
        return cls(
            kind=kind,
            job=None if data.get("job") is None else Job.from_dict(data["job"]),
            payload=payload,
            extra=dict(data.get("extra") or {}),
            elapsed_s=timing.get("elapsed_s", 0.0),
            created_unix=timing.get("created_unix", 0.0),
            telemetry=None if telemetry is None else dict(telemetry),
        )

    @classmethod
    def from_json(
        cls, text: str, library: Optional[Library] = None
    ) -> "RunRecord":
        """Rebuild a record from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text), library=library)
