"""The :class:`Session` facade: one object, the whole protocol, cached.

A session owns a characterised :class:`~repro.cells.library.Library` and
memoizes every expensive derived artefact around it:

* the **Flimit table** (library characterisation, Fig. 7 step 1) is
  computed at most once per session and shared by every optimization;
* **benchmarks** are parsed/generated once and handed out as copies;
* **STA results, critical-path extractions and delay bounds** are keyed
  by a circuit *state hash* (structure + sizing), so a Tc-sweep over one
  benchmark pays extraction and the eq. 4 fixed point once, not per job;
* an **incremental STA engine** is kept per circuit *structure hash*:
  when only sizes changed since the last analysis, the miss re-times
  just the affected fan-out cones instead of the whole circuit (the
  result stays bit-identical to a from-scratch run, and stale state is
  impossible -- any timing-relevant mutation changes the state hash).

Operations take a declarative :class:`~repro.api.job.Job` and return a
:class:`~repro.api.records.RunRecord` -- a serializable envelope that the
CLI renders, campaigns archive, and the batch runner ships across process
boundaries.  :meth:`Session.optimize_many` is the scale-out surface: a
``concurrent.futures`` process pool with a transparent serial fallback,
guaranteed to produce payloads byte-identical to the serial loop.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.activity import estimate_activity
from repro.analysis.area import circuit_area_um
from repro.analysis.power import estimate_power
from repro.analysis.variation import VariationSpec
from repro.api.cache import BoundedCache
from repro.api.job import Job, JobError
from repro.api.records import (
    KIND_BOUNDS,
    KIND_CHARACTERIZE,
    KIND_MC,
    KIND_OPTIMIZE_CIRCUIT,
    KIND_OPTIMIZE_PATH,
    KIND_POWER,
    RunRecord,
)
from repro.buffering.flimit import TABLE2_GATES, characterize_library
from repro.buffering.insertion import default_flimits
from repro.cells.library import Library, default_library
from repro.iscas.loader import load_benchmark
from repro.mc.compile import CompiledCircuit
from repro.mc.result import McResult, mc_analyze
from repro.netlist.circuit import Circuit
from repro.obs.trace import NULL_TRACER, Stopwatch, Tracer
from repro.process.technology import Technology
from repro.protocol.optimizer import WarmStart, optimize_circuit, optimize_path
from repro.sizing.bounds import DelayBounds, delay_bounds
from repro.timing.batch_probe import BatchProbeEngine
from repro.timing.critical_paths import ExtractedPath, critical_path
from repro.timing.incremental import IncrementalSta
from repro.timing.sta import StaResult

#: Circuit state key: structure plus sizing, hashable.
StateKey = Tuple

log = logging.getLogger("repro.session")


@dataclass
class SessionStats:
    """Cache behaviour counters (observability for the scale-out story)."""

    characterizations: int = 0
    benchmark_hits: int = 0
    benchmark_misses: int = 0
    sta_hits: int = 0
    sta_misses: int = 0
    sta_incremental: int = 0
    path_hits: int = 0
    path_misses: int = 0
    bounds_hits: int = 0
    bounds_misses: int = 0
    compile_hits: int = 0
    compile_misses: int = 0
    probe_hits: int = 0
    probe_misses: int = 0
    jobs_run: int = 0
    # Process-pool supervision (see optimize_many): broken-pool events,
    # fresh-pool retries, and batches that fell back to the serial loop.
    pool_broken: int = 0
    pool_retries: int = 0
    pool_fallbacks: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for logging."""
        return dict(self.__dict__)


def circuit_state_key(circuit: Circuit) -> StateKey:
    """A hashable fingerprint of a circuit's structure *and* sizing.

    Any mutation that can change timing -- topology, gate kinds, fan-in
    order, per-gate sizes -- changes the key, so memoized STA/extraction
    results can never go stale: a circuit mutated *after* an analysis was
    cached simply presents a new key and gets a fresh analysis (see the
    session-invalidation tests).
    """
    return circuit.state_key()


def circuit_structure_key(circuit: Circuit) -> StateKey:
    """The sizing-free prefix of :func:`circuit_state_key`.

    Two circuits with the same structure key differ at most in per-gate
    ``cin_ff`` values -- exactly the precondition for re-timing one from
    the other with an incremental cone update instead of a full STA.
    """
    return circuit.structure_key()


class Session:
    """Cached programmatic entry point to the whole POPS protocol.

    Parameters
    ----------
    library:
        A pre-built characterised library; mutually exclusive with
        ``tech``.
    tech:
        Technology to build the default library for (0.25 um if omitted).
    backend:
        Delay-model backend name (``"analytic"`` or ``"nldm"``); mutually
        exclusive with ``library``.  ``"nldm"`` requires ``liberty`` and
        builds the session library from the ``.lib`` tables
        (:func:`repro.liberty.library_from_lib`).  Omitted, the session
        runs whatever backend its library carries (analytic by default).
    liberty:
        Path to the ``.lib`` file for ``backend="nldm"``.
    bench_dir:
        Default directory of real ``.bench`` netlists for benchmark jobs
        that do not set their own.
    cache_limit:
        Per-cache LRU bound (entries).  ``None`` (the default) keeps the
        historical unbounded behaviour; a long-lived server sets a bound
        so a session over millions of distinct circuits cannot grow
        without limit.  Eviction is safe -- every cached artefact is a
        pure function of its key and is recomputed on the next miss.
    tracer:
        An optional :class:`repro.obs.Tracer`.  When given (and enabled)
        every job method runs inside a ``session.<op>`` span, the
        circuit optimizer records pass/path spans and the incremental
        engines emit ``sta.update`` events.  The default is the shared
        :data:`~repro.obs.NULL_TRACER`, whose overhead is a single
        attribute check -- results are byte-identical either way.

    Sessions are safe for concurrent readers: every cache-miss populate
    path is guarded by a per-key lock (double-checked against the cache),
    so N threads asking for the same artefact compute it once and the
    shared incremental engines / compiled circuits are never mutated
    concurrently.  Distinct keys populate in parallel.
    """

    def __init__(
        self,
        library: Optional[Library] = None,
        tech: Optional[Technology] = None,
        bench_dir: Optional[str] = None,
        cache_limit: Optional[int] = None,
        backend: Optional[str] = None,
        liberty: Optional[str] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if library is not None and tech is not None:
            raise ValueError("give at most one of 'library' and 'tech'")
        if backend is not None and library is not None:
            raise ValueError("give at most one of 'library' and 'backend'")
        if backend not in (None, "analytic", "nldm"):
            raise JobError(f"unknown backend {backend!r}")
        if backend == "nldm":
            if liberty is None:
                raise JobError("backend='nldm' requires a liberty .lib path")
            from repro.liberty import library_from_lib

            library = library_from_lib(liberty, tech=tech)
        elif liberty is not None:
            raise JobError("liberty applies only to backend='nldm' sessions")
        self._library = library if library is not None else default_library(tech)
        #: Backend identity stamped into job echoes and cache keys.
        self.backend_name: str = self._library.delay_backend.capabilities.name
        self.liberty_path: Optional[str] = liberty
        self.bench_dir = bench_dir
        self.cache_limit = cache_limit
        self.tracer: Tracer = tracer if tracer is not None else NULL_TRACER
        self.stats = SessionStats()
        # Library/backend identity prefixed onto every circuit-keyed
        # cache key: two sessions over different libraries (or backends)
        # can never alias each other's derived artefacts, even through a
        # shared or serialized cache store.  The benchmarks cache stays
        # unprefixed on purpose -- parsed netlists carry no timing and
        # are backend-independent.
        self._fp = self._library.fingerprint()
        self._flimits: Optional[Dict] = None
        self._benchmarks: BoundedCache = BoundedCache(cache_limit, "benchmarks")
        self._sta_cache: BoundedCache = BoundedCache(cache_limit, "sta")
        self._engines: BoundedCache = BoundedCache(cache_limit, "engines")
        self._path_cache: BoundedCache = BoundedCache(cache_limit, "paths")
        self._bounds_cache: BoundedCache = BoundedCache(cache_limit, "bounds")
        self._compiled: BoundedCache = BoundedCache(cache_limit, "compiled")
        self._probes: BoundedCache = BoundedCache(cache_limit, "probes")
        # Concurrency plumbing: `_lock` guards the cache maps and the
        # key-lock table; `_key_locks` holds one refcounted RLock per
        # in-flight populate key, dropped as soon as no thread needs it
        # (the table stays bounded by in-flight work, not by history).
        self._lock = threading.RLock()
        self._key_locks: Dict[Tuple[str, Any], List[Any]] = {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Session(tech={self._library.tech.name!r}, "
            f"jobs_run={self.stats.jobs_run})"
        )

    # -- concurrency plumbing ------------------------------------------

    @contextmanager
    def _populate_lock(self, name: str, key: Any) -> Iterator[None]:
        """A refcounted per-key RLock for one cache-miss populate.

        Two threads missing on the same key serialize here (the second
        one re-checks the cache and finds the first one's result); misses
        on distinct keys proceed in parallel.  The lock is reentrant so
        an operation may nest inside its own key (``mc`` holds the
        compiled-circuit key around the whole batch analysis).  Entries
        are dropped when the last holder leaves, so the table is bounded
        by in-flight work.
        """
        token = (name, key)
        with self._lock:
            entry = self._key_locks.get(token)
            if entry is None:
                entry = [threading.RLock(), 0]
                self._key_locks[token] = entry
            entry[1] += 1
        entry[0].acquire()
        try:
            yield
        finally:
            entry[0].release()
            with self._lock:
                entry[1] -= 1
                if entry[1] == 0:
                    self._key_locks.pop(token, None)

    # -- cached primitives ---------------------------------------------

    @property
    def library(self) -> Library:
        """The session's characterised library."""
        return self._library

    def flimits(self) -> Dict:
        """The ``(driver, gate) -> Flimit`` table, characterised once.

        ``stats.characterizations`` counts *actual* characterisations:
        it stays at zero when the insertion-layer cache already holds the
        table for this library instance (e.g. a sibling session built it).
        """
        if self._flimits is None:
            with self._populate_lock("flimits", None):
                if self._flimits is None:
                    from repro.buffering.insertion import flimit_cache_contains

                    if not flimit_cache_contains(self._library):
                        self.stats.characterizations += 1
                    self._flimits = default_flimits(self._library)
        return self._flimits

    def benchmark(self, name: str, bench_dir: Optional[str] = None) -> Circuit:
        """A fresh copy of a registered benchmark, parsed/generated once."""
        directory = bench_dir if bench_dir is not None else self.bench_dir
        key = (name, directory)
        with self._lock:
            master = self._benchmarks.get(key)
        if master is None:
            with self._populate_lock("benchmark", key):
                with self._lock:
                    master = self._benchmarks.peek(key)
                if master is None:
                    self.stats.benchmark_misses += 1
                    master = load_benchmark(name, bench_dir=directory)
                    with self._lock:
                        self._benchmarks[key] = master
                else:
                    self.stats.benchmark_hits += 1
        else:
            self.stats.benchmark_hits += 1
        return master.copy()

    def sta(self, circuit: Circuit) -> StaResult:
        """Static timing analysis, memoized on the circuit state hash.

        Mutating a circuit after a result was cached can never serve
        stale arrivals: the state hash covers structure *and* sizing, so
        the mutated circuit misses the result cache.  The miss is then
        served by an :class:`~repro.timing.incremental.IncrementalSta`
        engine cached per *structure* hash -- a pure re-sizing re-times
        only the changed fan-out cones (``stats.sta_incremental``), a
        structural edit builds a fresh engine; either way the payload is
        bit-identical to a from-scratch analysis.
        """
        key = (self._fp, circuit_state_key(circuit))
        with self._lock:
            cached = self._sta_cache.get(key)
        if cached is not None:
            self.stats.sta_hits += 1
            return cached
        skey = (self._fp, circuit_structure_key(circuit))
        # The populate lock is per *structure*: the incremental engine is
        # shared mutable state, so two different sizings of one netlist
        # must not drive it concurrently.
        with self._populate_lock("sta", skey):
            with self._lock:
                cached = self._sta_cache.peek(key)
            if cached is not None:
                self.stats.sta_hits += 1
                return cached
            self.stats.sta_misses += 1
            with self._lock:
                engine = self._engines.get(skey)
            if engine is None:
                # The engine owns a private copy: later caller-side
                # mutations cannot desynchronise its cached annotation.
                engine = IncrementalSta(circuit.copy(), self._library)
                with self._lock:
                    self._engines[skey] = engine
                result = engine.result()
            else:
                # Refresh the tracer attachment on every reuse: the
                # session's tracer decides whether this update emits
                # ``sta.update`` events, and a stale attachment from an
                # earlier traced run must not outlive it.
                engine.tracer = self.tracer if self.tracer.enabled else None
                changed = []
                for name, gate in circuit.gates.items():
                    own = engine.circuit.gates[name]
                    if own.cin_ff != gate.cin_ff:
                        own.cin_ff = gate.cin_ff
                        changed.append(name)
                result = engine.update(changed)
                self.stats.sta_incremental += 1
            with self._lock:
                self._sta_cache[key] = result
        return result

    def critical_path(self, circuit: Circuit) -> ExtractedPath:
        """Critical-path extraction, memoized on the circuit state hash."""
        key = (self._fp, circuit_state_key(circuit))
        with self._lock:
            cached = self._path_cache.get(key)
        if cached is not None:
            self.stats.path_hits += 1
            return cached
        with self._populate_lock("path", key):
            with self._lock:
                cached = self._path_cache.peek(key)
            if cached is not None:
                self.stats.path_hits += 1
                return cached
            self.stats.path_misses += 1
            extracted = critical_path(
                circuit, self._library, sta=self.sta(circuit)
            )
            with self._lock:
                self._path_cache[key] = extracted
        return extracted

    def path_bounds(self, circuit: Circuit) -> DelayBounds:
        """Critical-path ``(Tmin, Tmax)`` window, memoized per state."""
        key = (self._fp, circuit_state_key(circuit))
        with self._lock:
            cached = self._bounds_cache.get(key)
        if cached is not None:
            self.stats.bounds_hits += 1
            return cached
        with self._populate_lock("bounds", key):
            with self._lock:
                cached = self._bounds_cache.peek(key)
            if cached is not None:
                self.stats.bounds_hits += 1
                return cached
            self.stats.bounds_misses += 1
            extracted = self.critical_path(circuit)
            bounds = delay_bounds(extracted.path, self._library)
            with self._lock:
                self._bounds_cache[key] = bounds
        return bounds

    def compiled(self, circuit: Circuit) -> CompiledCircuit:
        """Batch-engine compilation, memoized on the circuit *structure*.

        The struct-of-arrays form (levelized topology, fan-in indices,
        cell constants) is a pure function of the structure, so a
        Tc-sweep's many sizings of one netlist share one compilation;
        only the cheap sizing-dependent arrays are re-bound per call
        (:meth:`~repro.mc.compile.CompiledCircuit.bind`), which also
        means the returned object always reflects ``circuit``'s
        *current* sizes -- stale bindings are impossible.
        """
        key = (self._fp, circuit_structure_key(circuit))
        # Per-structure lock: ``bind`` rewrites the sizing arrays of a
        # shared object, so concurrent binds of different sizings must
        # serialize (``mc`` holds this same key around its whole batch
        # analysis, reentrantly, so the arrays stay pinned while in use).
        with self._populate_lock("compiled", key):
            with self._lock:
                comp = self._compiled.get(key)
            if comp is None:
                self.stats.compile_misses += 1
                comp = CompiledCircuit(circuit, self._library)
                with self._lock:
                    self._compiled[key] = comp
            else:
                self.stats.compile_hits += 1
                comp.bind(circuit)
        return comp

    def probe_engine(self, circuit: Circuit) -> BatchProbeEngine:
        """Cone-sparse batch probe engine, memoized on the *structure*.

        The :class:`~repro.timing.batch_probe.BatchProbeEngine` owns a
        private compiled form plus the memoized fan-out-cone closures of
        every probed gate -- both pure functions of the structure, so a
        Tc-sweep's many sizings of one netlist share one engine and pay
        only the cheap sizing re-bind per call
        (:meth:`~repro.timing.batch_probe.BatchProbeEngine.bind`).  The
        engine is separate from :meth:`compiled`'s object on purpose:
        probe batches and ``mc`` batches may run concurrently, and each
        holds its own per-structure populate lock around its own arrays.
        """
        key = (self._fp, circuit_structure_key(circuit))
        # Per-structure lock: ``bind`` rewrites the shared base
        # annotation, so concurrent binds of different sizings must
        # serialize, and callers run their batch under this same key.
        with self._populate_lock("probes", key):
            with self._lock:
                engine = self._probes.get(key)
            if engine is None:
                self.stats.probe_misses += 1
                engine = BatchProbeEngine(circuit, self._library)
                with self._lock:
                    self._probes[key] = engine
            else:
                self.stats.probe_hits += 1
                engine.bind(circuit)
        return engine

    def clear_caches(self) -> None:
        """Drop every memoized artefact (the Flimit table included)."""
        with self._lock:
            self._flimits = None
            self._benchmarks.clear()
            self._sta_cache.clear()
            self._engines.clear()
            self._path_cache.clear()
            self._bounds_cache.clear()
            self._compiled.clear()
            self._probes.clear()

    def cache_stats(self) -> Dict[str, Any]:
        """Size, bound, counters and rates of every cache, one schema.

        The shape is JSON-native: ``{"limit": ..., "caches": {name:
        {size, maxsize, hits, misses, evictions, hit_rate}}, "hit_rates":
        {name: rate}, "evictions": total, "counters": {...}}``.  Per
        cache, ``hit_rate`` is the hit fraction in ``[0, 1]`` (``None``
        before any lookups); ``hit_rates`` and ``evictions`` repeat the
        rates and the eviction total at the top level so dashboards need
        not walk the nested dicts.  This is the surface the serving
        layer's ``status`` endpoint and ``pops status`` expose;
        ``counters`` echoes :attr:`stats`.
        """
        with self._lock:
            caches = {
                cache.name: cache.stats()
                for cache in (
                    self._benchmarks,
                    self._sta_cache,
                    self._engines,
                    self._path_cache,
                    self._bounds_cache,
                    self._compiled,
                    self._probes,
                )
            }
            return {
                "limit": self.cache_limit,
                "caches": caches,
                "hit_rates": {
                    name: stats["hit_rate"] for name, stats in caches.items()
                },
                "evictions": sum(
                    stats["evictions"] for stats in caches.values()
                ),
                "counters": self.stats.as_dict(),
            }

    # -- job plumbing --------------------------------------------------

    def _prepare_job(self, job: Job) -> Job:
        """Validate a job's backend pin and stamp the session's identity.

        A job that names a backend (or a ``.lib``) other than the one
        this session runs is a spec error -- silently serving it with a
        different delay model would corrupt campaign bookkeeping.  Jobs
        that leave the backend unset inherit it: non-analytic sessions
        stamp ``backend``/``liberty`` into the echo so the produced
        :class:`~repro.api.records.RunRecord` names the model that made
        it (analytic stays unstamped to keep the historical byte form).
        """
        if job.backend is not None and job.backend != self.backend_name:
            raise JobError(
                f"job {job.name!r} pins backend {job.backend!r} but this "
                f"session runs {self.backend_name!r}"
            )
        if (
            job.liberty is not None
            and self.liberty_path is not None
            and os.path.abspath(job.liberty) != os.path.abspath(self.liberty_path)
        ):
            raise JobError(
                f"job {job.name!r} pins liberty {job.liberty!r} but this "
                f"session loaded {self.liberty_path!r}"
            )
        if self.backend_name != "analytic" and job.backend is None:
            job = replace(
                job, backend=self.backend_name, liberty=self.liberty_path
            )
        return job

    def resolve_circuit(self, job: Job) -> Circuit:
        """The working netlist a job refers to."""
        if job.circuit is not None:
            return job.circuit
        return self.benchmark(job.benchmark, bench_dir=job.bench_dir)

    def resolve_tc(self, job: Job, tmin_ps: float) -> float:
        """The absolute delay constraint (ps) a job requests."""
        if job.tc_ps is not None:
            return job.tc_ps
        if job.tc_ratio is not None:
            return job.tc_ratio * tmin_ps
        raise JobError(
            f"job {job.name!r} needs a constraint: set tc_ps or tc_ratio"
        )

    # -- operations ----------------------------------------------------

    def characterize(self, with_simulation: bool = False) -> RunRecord:
        """Full Table 2 characterisation as a run record."""
        sw = Stopwatch()
        with self.tracer.span("session.characterize"):
            self.stats.characterizations += 1
            entries = characterize_library(
                self._library, gates=TABLE2_GATES, with_simulation=with_simulation
            )
            return RunRecord(
                kind=KIND_CHARACTERIZE,
                job=None,
                payload=entries,
                extra={"with_simulation": bool(with_simulation)},
                elapsed_s=sw.elapsed_s,
                created_unix=time.time(),
            )

    def bounds(self, job: Job) -> RunRecord:
        """Critical-path delay window of the job's circuit."""
        sw = Stopwatch()
        with self.tracer.span("session.bounds", job=job.name):
            self.stats.jobs_run += 1
            job = self._prepare_job(job)
            circuit = self.resolve_circuit(job)
            extracted = self.critical_path(circuit)
            bounds = self.path_bounds(circuit)
            return RunRecord(
                kind=KIND_BOUNDS,
                job=job,
                payload={
                    "gate_names": extracted.gate_names,
                    "path": extracted.path,
                    "bounds": bounds,
                },
                extra={
                    "extraction_delay_ps": float(extracted.delay_ps),
                    "path_gates": len(extracted.gate_names),
                },
                elapsed_s=sw.elapsed_s,
                created_unix=time.time(),
            )

    def optimize(self, job: Job, warm: Optional[WarmStart] = None) -> RunRecord:
        """Run the Fig. 7 protocol for one job (path or circuit scope).

        ``warm`` threads a sweep's carry-over state (neighbour-seeded
        incremental engine plus pure-function memos) into the circuit
        driver; payloads are byte-identical with or without it (see
        :class:`~repro.protocol.optimizer.WarmStart`).
        """
        sw = Stopwatch()
        with self.tracer.span(
            "session.optimize", job=job.name, scope=job.scope
        ):
            self.stats.jobs_run += 1
            job = self._prepare_job(job)
            circuit = self.resolve_circuit(job)
            bounds = self.path_bounds(circuit)
            tc_ps = self.resolve_tc(job, bounds.tmin_ps)
            limits = self.flimits()

            telemetry = None
            if job.scope == "path":
                extracted = self.critical_path(circuit)
                outcome = optimize_path(
                    extracted.path,
                    self._library,
                    tc_ps,
                    limits=limits,
                    allow_restructuring=job.allow_restructuring,
                    weight_mode=job.weight_mode,
                    tmin_ps=bounds.tmin_ps,
                )
                kind = KIND_OPTIMIZE_PATH
                extra = {
                    "tc_ps": float(tc_ps),
                    "tmin_ps": float(bounds.tmin_ps),
                    "tmax_ps": float(bounds.tmax_ps),
                    "path_gates": len(extracted.gate_names),
                }
            else:
                outcome = optimize_circuit(
                    circuit,
                    self._library,
                    tc_ps,
                    k_paths=job.k_paths,
                    max_passes=job.max_passes,
                    limits=limits,
                    weight_mode=job.weight_mode,
                    allow_restructuring=job.allow_restructuring,
                    warm=warm,
                    tracer=self.tracer if self.tracer.enabled else None,
                )
                kind = KIND_OPTIMIZE_CIRCUIT
                extra = {
                    "tc_ps": float(tc_ps),
                    "tmin_ps": float(bounds.tmin_ps),
                    "area_um": float(
                        circuit_area_um(outcome.circuit, self._library)
                    ),
                }
                if outcome.telemetry is not None:
                    telemetry = outcome.telemetry.as_dict()
            return RunRecord(
                kind=kind,
                job=job,
                payload=outcome,
                extra=extra,
                elapsed_s=sw.elapsed_s,
                created_unix=time.time(),
                telemetry=telemetry,
            )

    def power(self, job: Job) -> RunRecord:
        """Area / activity / power report for the job's circuit."""
        sw = Stopwatch()
        with self.tracer.span("session.power", job=job.name):
            self.stats.jobs_run += 1
            job = self._prepare_job(job)
            circuit = self.resolve_circuit(job)
            activity = estimate_activity(circuit, n_vectors=job.activity_vectors)
            report = estimate_power(
                circuit,
                self._library,
                frequency_mhz=job.frequency_mhz,
                activity=activity,
            )
            return RunRecord(
                kind=KIND_POWER,
                job=job,
                payload=report,
                extra={
                    "area_um": float(circuit_area_um(circuit, self._library)),
                    "mean_activity": float(activity.mean_rate),
                },
                elapsed_s=sw.elapsed_s,
                created_unix=time.time(),
            )

    def mc(
        self,
        job: Job,
        spec: Optional[VariationSpec] = None,
        target_yield: float = 0.99,
    ) -> RunRecord:
        """Monte-Carlo corner analysis of the job's circuit (``KIND_MC``).

        The sizing stays fixed while ``job.mc_samples`` process corners
        (seeded by ``job.mc_seed``) are evaluated in one vectorized batch
        over the structure-cached compilation.  A constraint on the job
        (``tc_ps``, or ``tc_ratio`` as a multiple of the critical path's
        ``Tmin``) becomes the yield target; without one the record still
        carries the distribution and guard bands.
        """
        sw = Stopwatch()
        with self.tracer.span("session.mc", job=job.name):
            self.stats.jobs_run += 1
            job = self._prepare_job(job)
            circuit = self.resolve_circuit(job)
            # Only a Tmin-relative constraint needs the (eq. 4) bounds
            # solve; an absolute tc_ps must not pay extraction + fixed
            # point for a value it would discard.
            tc_ps: Optional[float] = job.tc_ps
            if tc_ps is None and job.tc_ratio is not None:
                tc_ps = self.resolve_tc(job, self.path_bounds(circuit).tmin_ps)
            # Hold the compiled-circuit key for the whole batch analysis:
            # the compilation is shared per structure and ``bind``
            # rewrites its sizing arrays, so a concurrent mc over another
            # sizing of the same netlist must wait (the inner
            # ``compiled`` call re-enters the same RLock).
            with self._populate_lock(
                "compiled", (self._fp, circuit_structure_key(circuit))
            ):
                result: McResult = mc_analyze(
                    circuit,
                    self._library,
                    spec=spec,
                    n_samples=job.mc_samples,
                    seed=job.mc_seed,
                    tc_ps=tc_ps,
                    target_yield=target_yield,
                    compiled=self.compiled(circuit),
                )
            extra: Dict[str, object] = {
                "nominal_ps": float(result.nominal_ps),
                "p99_ps": float(result.p99_ps),
                "guard_band": float(result.guard_band),
                "required_guard_band": float(result.required_guard_band),
            }
            if tc_ps is not None:
                extra["tc_ps"] = float(tc_ps)
                extra["yield"] = float(result.yield_fraction or 0.0)
            return RunRecord(
                kind=KIND_MC,
                job=job,
                payload=result,
                extra=extra,
                elapsed_s=sw.elapsed_s,
                created_unix=time.time(),
            )

    # -- batch / scale-out ---------------------------------------------

    def optimize_many(
        self,
        jobs: Iterable[Job],
        workers: Optional[int] = None,
    ) -> List[RunRecord]:
        """Optimize a batch of jobs, optionally across worker processes.

        ``workers`` at ``None``/``0``/``1`` runs the plain serial loop
        (sharing every session cache).  Higher values fan the jobs out to
        a ``concurrent.futures`` process pool seeded with this session's
        library and (already characterised) Flimit table; environments
        where subprocesses are unavailable fall back to the serial loop
        transparently.  Record payloads are byte-identical between the
        two paths; only the timing metadata differs.
        """
        job_list = list(jobs)
        for job in job_list:
            if not isinstance(job, Job):
                raise JobError(f"optimize_many expects Job instances, got {job!r}")
        # Stamp the backend identity up front so the serial loop and the
        # pool path ship (and echo) byte-identical job dicts.
        job_list = [self._prepare_job(job) for job in job_list]
        if workers and workers > 1 and len(job_list) > 1:
            # Two distinct failure classes (never conflated -- the old
            # bare `except POOL_ERRORS: pass` hid crashed workers behind
            # the no-subprocess fallback):
            #
            # * transport/import errors mean this environment cannot run
            #   subprocesses at all -- fall back to serial immediately;
            # * BrokenProcessPool means a *worker died mid-batch* (OOM
            #   kill, segfault, injected crash).  The batch is safe to
            #   re-run -- jobs are pure functions of their specs -- so
            #   retry once on a fresh pool before surrendering to serial.
            #
            # Job failures never land here: workers marshal them back
            # and _optimize_parallel re-raises the original exception.
            for attempt in (0, 1):
                try:
                    return self._optimize_parallel(job_list, workers)
                except BrokenProcessPool as exc:
                    self.stats.pool_broken += 1
                    if attempt == 0:
                        self.stats.pool_retries += 1
                        log.warning(
                            "optimize_many: worker crashed mid-batch (%s); "
                            "retrying once on a fresh pool",
                            exc,
                        )
                        continue
                    log.error(
                        "optimize_many: pool broke again on retry (%s); "
                        "falling back to the serial loop",
                        exc,
                    )
                    break
                except (OSError, ImportError) as exc:
                    # Process pools need working semaphores / fork
                    # support; restricted environments (sandboxes, some
                    # CI runners) deny them -- the serial path is always
                    # available.
                    log.warning(
                        "optimize_many: process pool unavailable (%s); "
                        "running the batch serially",
                        exc,
                    )
                    break
            self.stats.pool_fallbacks += 1
        return [self.optimize(job) for job in job_list]

    def _optimize_parallel(self, jobs: Sequence[Job], workers: int) -> List[RunRecord]:
        from concurrent.futures import ProcessPoolExecutor

        limits = self.flimits()
        tasks = [
            (self._library, limits, self.bench_dir, job.to_dict()) for job in jobs
        ]
        with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
            outcomes = list(pool.map(_optimize_job_worker, tasks))
        for outcome in outcomes:
            if JOB_ERROR_KEY in outcome:
                raise outcome[JOB_ERROR_KEY]
        self.stats.jobs_run += len(jobs)
        return [RunRecord.from_dict(d, library=self._library) for d in outcomes]


#: Sentinel key a worker uses to marshal a job failure back to the parent
#: (so pool-infrastructure errors stay distinguishable from job errors).
#: Shared by every process-pool runner over sessions (the batch runner
#: here and the sweep runner in :mod:`repro.explore`).
JOB_ERROR_KEY = "__pops_job_error__"

#: Pool-infrastructure failures that trigger the serial fallback.
POOL_ERRORS: Tuple[type, ...] = (OSError, ImportError, BrokenProcessPool)

# Backwards-compatible private aliases (pre-explore spelling).
_JOB_ERROR_KEY = JOB_ERROR_KEY
_POOL_ERRORS = POOL_ERRORS


def worker_session(
    library: Library, limits: Dict, bench_dir: Optional[str]
) -> Session:
    """A fresh worker-side session seeded with the parent's Flimit table.

    The one supported way for pool workers to avoid re-characterising:
    the parent ships its (already computed) limits along with the
    library, and the worker session starts with them installed.
    """
    session = Session(library=library, bench_dir=bench_dir)
    session._flimits = limits
    return session


def _optimize_job_worker(task: Tuple[Library, Dict, Optional[str], Dict]) -> Dict:
    """Process-pool entry: run one job in a fresh session, return a dict.

    The parent's Flimit table is injected so workers never re-characterise;
    the record crosses the process boundary in serialized form, which is
    also what pins the byte-identical-payload guarantee.  Exceptions from
    the job itself are marshalled rather than raised so the parent can
    tell them apart from pool breakage.
    """
    library, limits, bench_dir, job_dict = task
    from repro.resilience import faults

    faults.maybe_crash(faults.SITE_WORKER_CRASH)
    session = worker_session(library, limits, bench_dir)
    try:
        return session.optimize(Job.from_dict(job_dict)).to_dict()
    except Exception as exc:
        return {JOB_ERROR_KEY: exc}
