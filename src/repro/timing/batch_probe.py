"""Cone-sparse batch evaluation of single-gate candidate edits.

The optimizer's hot loops ask one question many times: *"what would the
circuit's critical delay be if I changed exactly one gate?"* -- a
central-difference sensitivity probe perturbs one ``C_IN``, a trial
buffer insertion hangs an inverter pair behind one gate.  The scalar
path answers each probe with an
:class:`~repro.timing.incremental.IncrementalSta` cone update; this
module answers *hundreds at once*: every candidate edit becomes one
**column** of a single compiled-circuit propagation
(:class:`~repro.mc.compile.CompiledCircuit` supplies the levelized
struct-of-arrays form), and only the ``(gate, column)`` pairs inside
each edit's affected fan-out cone are recomputed -- the untouched
remainder of every column is served from the shared base annotation.
On the larger ISCAS circuits the affected cones fill only a few percent
of the full ``gates x columns`` matrix, which is where the speedup over
both the scalar loop and a dense batch comes from.

Bit-exactness contract
----------------------
Results are **bit-identical** to the scalar ``IncrementalSta`` probe
loop (and therefore to :func:`repro.timing.sta.analyze` of each edited
circuit), not merely close.  The contract rests on the same three pins
as :mod:`repro.mc.kernel`:

* **op-order preservation** -- every derived quantity (total load,
  Miller coupling, eq. 2/3 transitions, the eq. 1 sum) is computed with
  exactly the scalar kernels' operation order, association included;
  base values are taken from a nominal-corner
  :func:`~repro.mc.kernel.batch_analyze` run, which is already pinned
  bit-exact against ``analyze``;
* **fan-in-independent eq. 2 transition** -- a gate's output transition
  depends only on the output edge and the gate's own size/load, never on
  which fan-in arc wins, so the per-edge reduction needs only ``max``
  over candidate arrival times, which is exact in floating point;
* **shared load summation** -- the few per-column load overrides are
  computed by :func:`repro.timing.sta.gate_external_load` itself, in
  fan-out-map order, so every float matches the scalar engine's.

Recomputing a cone gate whose inputs happen to be unchanged reproduces
its stored value exactly (same inputs, same ops), so cone
*over*-approximation never costs accuracy, only work.

Fallback threshold
------------------
Batching pays a fixed cost (compilation, base annotation, chunked array
allocation) that the cone-sparse evaluation amortises only past roughly
a hundred columns; below :data:`BATCH_PROBE_MIN_COLUMNS` (128) the
dispatchers in :mod:`repro.sizing.sensitivity` and
:mod:`repro.buffering.netlist_insertion` keep the warm-started scalar
loop.  Callers tune the boundary per call site via their
``min_batch_columns`` parameter (``0`` forces batching, a huge value
forces the scalar loop); the eq. 6 bracket sweeps stay scalar by design
-- their iterations are sequentially dependent, so there is nothing to
batch.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cells.gate_types import GateKind
from repro.cells.library import Library
from repro.mc.compile import CompiledCircuit
from repro.mc.corners import nominal_corners
from repro.netlist.circuit import Circuit
from repro.netlist.wireload import WireLoadModel
from repro.timing.backend import ProbeDelayModel
from repro.timing.delay_model import coupling_factor
from repro.timing.sta import gate_external_load

#: Column count under which the scalar ``IncrementalSta`` loop wins:
#: the batch path's fixed costs (compile + base annotation + chunk
#: allocation) are only amortised past ~128 simultaneous probes.
BATCH_PROBE_MIN_COLUMNS = 128

#: Columns evaluated per dense backing allocation; bounds peak memory at
#: ``4 * n_nets * chunk`` floats regardless of the probe count.
DEFAULT_CHUNK_COLUMNS = 256


class DispatchStats:
    """Process-wide tally of :func:`should_batch` decisions.

    Every call site that picks batch-vs-scalar goes through
    :func:`should_batch`, so this one object answers "how often does the
    batch path actually fire, over how many columns, against which
    threshold" -- the numbers needed to tune
    :data:`BATCH_PROBE_MIN_COLUMNS`.  Read through
    ``repro.obs.session_metrics`` (the ``"probe"`` block); reset only in
    tests.
    """

    __slots__ = ("batched", "scalar", "columns_batched", "columns_scalar")

    def __init__(self) -> None:
        self.batched = 0
        self.scalar = 0
        self.columns_batched = 0
        self.columns_scalar = 0

    def record(self, n_columns: int, batched: bool) -> None:
        """Tally one dispatch decision over ``n_columns`` probes."""
        if batched:
            self.batched += 1
            self.columns_batched += n_columns
        else:
            self.scalar += 1
            self.columns_scalar += n_columns

    def reset(self) -> None:
        """Zero all tallies (test isolation)."""
        self.batched = 0
        self.scalar = 0
        self.columns_batched = 0
        self.columns_scalar = 0

    def as_dict(self) -> Dict[str, object]:
        """JSON-native view, including the configured default threshold."""
        decisions = self.batched + self.scalar
        return {
            "batched": self.batched,
            "scalar": self.scalar,
            "columns_batched": self.columns_batched,
            "columns_scalar": self.columns_scalar,
            "threshold": BATCH_PROBE_MIN_COLUMNS,
            "batch_ratio": (self.batched / decisions) if decisions else None,
        }


#: The shared dispatch tally (see :class:`DispatchStats`).
DISPATCH_STATS = DispatchStats()


def should_batch(n_columns: int, min_columns: Optional[int] = None) -> bool:
    """Decide scalar-vs-batch for ``n_columns`` simultaneous probes.

    ``min_columns`` overrides :data:`BATCH_PROBE_MIN_COLUMNS`; both
    paths return bit-identical results, so the choice is purely a
    performance trade (see the module docstring).  Each decision is
    tallied on :data:`DISPATCH_STATS` for the observability layer.
    """
    limit = BATCH_PROBE_MIN_COLUMNS if min_columns is None else min_columns
    batched = n_columns >= limit
    DISPATCH_STATS.record(n_columns, batched)
    return batched


class _Column:
    """Schedule of one probe column: its cone and parameter overrides."""

    __slots__ = ("cone", "n_over", "over_cin", "over_load", "pair_load_b")

    def __init__(
        self,
        cone: np.ndarray,
        n_over: int,
        over_cin: np.ndarray,
        over_load: np.ndarray,
        pair_load_b: Optional[float],
    ) -> None:
        self.cone = cone  # gate ids; the first ``n_over`` carry overrides
        self.n_over = n_over
        self.over_cin = over_cin
        self.over_load = over_load
        self.pair_load_b = pair_load_b  # buffer probes: bufb external load


class BatchProbeEngine:
    """Evaluate many single-gate candidate edits as one batch propagation.

    One engine owns a private :class:`~repro.mc.compile.CompiledCircuit`
    of ``circuit``'s structure plus the nominal base annotation of its
    current sizing; :meth:`sizing_delays` and :meth:`buffer_pair_delays`
    then answer whole probe batches without ever touching ``circuit`` or
    any scalar engine.  Re-use across sizings of the same structure is
    cheap: :meth:`bind` refreshes only the sizing-dependent state (the
    :class:`~repro.api.session.Session` caches one engine per structure
    key for exactly this reason).

    Parameters mirror :func:`repro.timing.sta.analyze`; probes are
    evaluated under these boundary conditions, so callers comparing
    against an :class:`~repro.timing.incremental.IncrementalSta` must
    construct both with the same ones.

    ``mode`` selects the evaluation strategy: ``"sparse"`` (default)
    recomputes only each probe's affected cone; ``"dense"`` recomputes
    every gate in every column through the same pair machinery -- same
    results, no cone savings (kept as the benchmark comparison point).
    """

    def __init__(
        self,
        circuit: Circuit,
        library: Library,
        input_transition_ps: float = 0.0,
        output_load_ff: Optional[float] = None,
        wire_model: Optional[WireLoadModel] = None,
        mode: str = "sparse",
        chunk_columns: int = DEFAULT_CHUNK_COLUMNS,
    ) -> None:
        if mode not in ("sparse", "dense"):
            raise ValueError(f"mode must be 'sparse' or 'dense', got {mode!r}")
        if chunk_columns < 1:
            raise ValueError("chunk_columns must be >= 1")
        self.library = library
        self.mode = mode
        self.chunk_columns = int(chunk_columns)
        self.compiled = CompiledCircuit(
            circuit,
            library,
            input_transition_ps=input_transition_ps,
            output_load_ff=output_load_ff,
            wire_model=wire_model,
        )
        comp = self.compiled
        self._gate_id: Dict[str, int] = {
            name: comp.row_of[name] - comp.n_inputs for name in comp.names
        }
        level_of = np.empty(comp.n_gates, dtype=np.intp)
        for lvl, (start, end) in enumerate(comp.levels):
            level_of[start:end] = lvl
        self._level_of = level_of
        # Gate-level fan-out adjacency (reader gate ids per gate id),
        # deduplicated: closure walks need each edge once.
        succ: List[List[int]] = [[] for _ in range(comp.n_gates)]
        n_in = comp.n_inputs
        for gid in range(comp.n_gates):
            for slot in range(comp.fanin_rows.shape[1]):
                if not comp.fanin_mask[gid, slot]:
                    continue
                row = int(comp.fanin_rows[gid, slot])
                if row >= n_in and (not succ[row - n_in] or succ[row - n_in][-1] != gid):
                    succ[row - n_in].append(gid)
        self._succ = succ
        # Reader names per gate in fan-out-map order (duplicates kept):
        # the exact sink lists the scalar load summation iterates.
        self._fanout_names: Dict[str, List[str]] = circuit.fanout_map()
        self._output_set = set(circuit.outputs)
        self._cones: Dict[Tuple[str, int], np.ndarray] = {}
        self._all_gates = np.arange(comp.n_gates, dtype=np.intp)
        self._bound_state_key: Optional[Tuple] = None
        # Every delay-model float -- per-pair parameters, the group
        # evaluation, trial-pair chaining -- lives in the backend's
        # probe model; the engine owns only the generic machinery.
        self.model = library.delay_backend.probe_model(self)
        self.bind(circuit)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchProbeEngine({self.compiled.name!r}, "
            f"gates={self.compiled.n_gates}, mode={self.mode!r})"
        )

    # -- sizing binding ------------------------------------------------

    def bind(self, circuit: Circuit) -> "BatchProbeEngine":
        """(Re-)bind ``circuit``'s current sizing and refresh the base.

        ``circuit`` must share the compiled structure key.  The base
        annotation is produced by a one-column nominal-corner
        :func:`~repro.mc.kernel.batch_analyze` run -- the already
        bit-exact twin of the scalar engines -- so every untouched
        ``(net, column)`` cell a probe column serves from the base
        equals the scalar engine's stored value bit for bit.
        """
        state_key = circuit.state_key()
        if state_key == self._bound_state_key:
            return self
        from repro.mc.kernel import batch_analyze

        comp = self.compiled.bind(circuit)
        base = batch_analyze(comp, nominal_corners(self.library.tech, 1))
        self._base_time_rise = base.time_rise[:, 0].copy()
        self._base_time_fall = base.time_fall[:, 0].copy()
        self._base_tran_rise = base.tran_rise[:, 0].copy()
        self._base_tran_fall = base.tran_fall[:, 0].copy()
        self.critical_delay_base_ps = float(base.critical_delay_ps[0])
        self._sizes = comp.sizes_dict()
        self.model.bind(self)
        self._bound_state_key = state_key
        return self

    # -- cone machinery ------------------------------------------------

    def _closure(self, seeds: Iterable[int]) -> np.ndarray:
        """Transitive fan-out closure of ``seeds`` (seeds included)."""
        seen = set(seeds)
        stack = list(seen)
        succ = self._succ
        while stack:
            gid = stack.pop()
            for reader in succ[gid]:
                if reader not in seen:
                    seen.add(reader)
                    stack.append(reader)
        return np.fromiter(seen, dtype=np.intp, count=len(seen))

    def _cone(self, kind: str, gid: int, seeds: Iterable[int]) -> np.ndarray:
        """Memoized closure per (probe kind, probed gate)."""
        key = (kind, gid)
        cone = self._cones.get(key)
        if cone is None:
            cone = self._closure(seeds)
            self._cones[key] = cone
        return cone

    def _drivers(self, gid: int) -> List[int]:
        """Gate-side fan-in drivers of ``gid`` (deduplicated)."""
        comp = self.compiled
        n_in = comp.n_inputs
        out: List[int] = []
        for slot in range(comp.fanin_rows.shape[1]):
            if not comp.fanin_mask[gid, slot]:
                continue
            row = int(comp.fanin_rows[gid, slot])
            if row >= n_in and (row - n_in) not in out:
                out.append(row - n_in)
        return out

    # -- probe surfaces ------------------------------------------------

    def sizing_delays(self, probes: Sequence[Tuple[str, float]]) -> np.ndarray:
        """Critical delay with one gate's ``C_IN`` overridden, per probe.

        ``probes`` is a sequence of ``(gate_name, cin_ff)`` edits; each
        becomes one column whose value equals -- bit for bit -- the
        ``critical_delay_ps`` an ``IncrementalSta`` reports after
        setting that single ``cin_ff`` on the bound circuit.  The bound
        circuit itself is never touched.
        """
        comp = self.compiled
        names = comp.names
        columns: List[_Column] = []
        sizes = self._sizes
        for name, cin in probes:
            gid = self._gate_id[name]
            if cin <= 0:
                raise ValueError(f"cin_ff must be positive, got {cin}")
            drivers = self._drivers(gid)
            over_ids = drivers + [gid]
            over_cin = np.array(
                [sizes[names[d]] for d in drivers] + [float(cin)]
            )
            # Driver loads re-summed with the probed size in place, by
            # the scalar engine's own kernel and sink order.
            original = sizes[name]
            sizes[name] = float(cin)
            try:
                over_load = np.array(
                    [self._external_load(names[d]) for d in drivers]
                    + [float(comp.load[gid])]
                )
            finally:
                sizes[name] = original
            columns.append(
                self._make_column(("s", gid), over_ids, over_cin, over_load, None)
            )
        return self._run(columns, pair_cin=None)

    def buffer_pair_delays(
        self, candidates: Sequence[str], cin_ff: Optional[float] = None
    ) -> np.ndarray:
        """Critical delay with a trial inverter pair behind each candidate.

        The batch twin of
        :func:`repro.buffering.netlist_insertion.trial_buffer_pairs`:
        column ``i`` equals -- bit for bit -- the critical delay after
        :func:`~repro.buffering.netlist_insertion.insert_buffer_pair`
        on ``candidates[i]`` (both inverters sized ``cin_ff``, default
        four reference inverters).  The pair is evaluated inline: the
        candidate keeps its size but sees only the first inverter as
        load, and its net row carries the *second* inverter's arrivals,
        so every original reader -- and the output list, when the
        candidate was a primary output -- reads the pair's output
        exactly as in the rewired netlist.
        """
        comp = self.compiled
        pair_cin = 4.0 * self.library.cref if cin_ff is None else float(cin_ff)
        if pair_cin <= 0:
            raise ValueError(f"cin_ff must be positive, got {pair_cin}")
        columns: List[_Column] = []
        for name in candidates:
            gid = self._gate_id[name]
            if (
                f"{name}_bufa" in self._gate_id
                or f"{name}_bufb" in self._gate_id
            ):
                raise ValueError(f"{name!r} already carries an inserted pair")
            # The candidate's new external load: it drives only the
            # first inverter (one sink of ``pair_cin``), and its
            # primary-output role, if any, moved behind the pair.
            load_g = gate_external_load(
                ("__bufa__",),
                {"__bufa__": pair_cin},
                False,
                self.compiled.output_load_ff,
                self.compiled.wire_model,
            )
            # The second inverter inherits the candidate's original
            # sinks, sizes and output role: its external load is the
            # candidate's bound base load, float for float.
            load_b = float(comp.load[gid])
            over_cin = np.array([self._sizes[name]])
            over_load = np.array([load_g])
            columns.append(
                self._make_column(("b", gid), [gid], over_cin, over_load, load_b)
            )
        return self._run(columns, pair_cin=pair_cin)

    # -- internals -----------------------------------------------------

    def _external_load(self, name: str) -> float:
        """Scalar external load of ``name`` under ``self._sizes``."""
        return gate_external_load(
            self._fanout_names.get(name, ()),
            self._sizes,
            name in self._output_set,
            self.compiled.output_load_ff,
            self.compiled.wire_model,
        )

    def _make_column(
        self,
        cone_key: Tuple[str, int],
        over_ids: List[int],
        over_cin: np.ndarray,
        over_load: np.ndarray,
        pair_load_b: Optional[float],
    ) -> _Column:
        """Assemble one column: overrides first, then the cone remainder."""
        if self.mode == "dense":
            base_cone: np.ndarray = self._all_gates
        else:
            base_cone = self._cone(cone_key[0], cone_key[1], over_ids)
        over_arr = np.asarray(over_ids, dtype=np.intp)
        rest = np.setdiff1d(base_cone, over_arr, assume_unique=False)
        cone = np.concatenate([over_arr, rest])
        return _Column(cone, len(over_ids), over_cin, over_load, pair_load_b)

    def _run(
        self, columns: List[_Column], pair_cin: Optional[float]
    ) -> np.ndarray:
        """Evaluate the columns chunk by chunk; per-column critical delay."""
        out = np.empty(len(columns))
        chunk = self.chunk_columns
        for start in range(0, len(columns), chunk):
            part = columns[start : start + chunk]
            out[start : start + len(part)] = self._run_chunk(part, pair_cin)
        return out

    def _run_chunk(
        self, columns: List[_Column], pair_cin: Optional[float]
    ) -> np.ndarray:
        """One dense backing allocation; active-pair level propagation."""
        comp = self.compiled
        n_cols = len(columns)
        n_in = comp.n_inputs

        # Flat (gate, column) pair schedule with per-pair parameters,
        # base-initialised then overridden for the edited gates.
        pair_g = np.concatenate([c.cone for c in columns])
        pair_c = np.concatenate(
            [np.full(len(c.cone), j, dtype=np.intp) for j, c in enumerate(columns)]
        )
        is_root = np.zeros(len(pair_g), dtype=bool)
        load_b_pair = np.zeros(len(pair_g))

        offsets = np.cumsum([0] + [len(c.cone) for c in columns[:-1]])
        over_pos = np.concatenate(
            [off + np.arange(c.n_over) for off, c in zip(offsets, columns)]
        )
        over_cin = np.concatenate([c.over_cin for c in columns])
        over_load = np.concatenate([c.over_load for c in columns])
        params = self.model.chunk_params(pair_g, over_pos, over_cin, over_load)
        for off, c in zip(offsets, columns):
            if c.pair_load_b is not None:
                is_root[off] = True
                load_b_pair[off] = c.pair_load_b

        order = np.argsort(self._level_of[pair_g], kind="stable")
        pair_g = pair_g[order]
        pair_c = pair_c[order]
        params = tuple(p[order] for p in params)
        is_root = is_root[order]
        load_b_pair = load_b_pair[order]
        lv_sorted = self._level_of[pair_g]
        _, group_starts = np.unique(lv_sorted, return_index=True)
        group_ends = np.append(group_starts[1:], len(pair_g))

        # Dense per-chunk backing: every untouched cell serves the base.
        time_rise = np.repeat(self._base_time_rise[:, None], n_cols, axis=1)
        time_fall = np.repeat(self._base_time_fall[:, None], n_cols, axis=1)
        tran_rise = np.repeat(self._base_tran_rise[:, None], n_cols, axis=1)
        tran_fall = np.repeat(self._base_tran_fall[:, None], n_cols, axis=1)

        if pair_cin is not None:
            pair_consts = self.model.pair_constants(pair_cin)

        for gs, ge in zip(group_starts, group_ends):
            g = pair_g[gs:ge]
            c = pair_c[gs:ge]
            rows = comp.fanin_rows[g]
            mask = comp.fanin_mask[g]
            cc = c[:, None]

            t_rise, t_fall, tr_rise, tr_fall = self.model.eval_group(
                params,
                gs,
                ge,
                g,
                rows,
                mask,
                cc,
                time_rise,
                time_fall,
                tran_rise,
                tran_fall,
            )

            roots = is_root[gs:ge]
            if roots.any():
                bi = np.nonzero(roots)[0]
                t_rise[bi], t_fall[bi], tr_rise[bi], tr_fall[bi] = (
                    self.model.through_pair(
                        pair_consts,
                        t_rise[bi],
                        t_fall[bi],
                        tr_rise[bi],
                        tr_fall[bi],
                        load_b_pair[gs:ge][bi],
                    )
                )

            out_rows = n_in + g
            time_rise[out_rows, c] = t_rise
            time_fall[out_rows, c] = t_fall
            tran_rise[out_rows, c] = tr_rise
            tran_fall[out_rows, c] = tr_fall

        rows = comp.output_rows
        return np.max(
            np.maximum(time_rise[rows], time_fall[rows]), axis=0
        )


class AnalyticProbeModel(ProbeDelayModel):
    """Probe surface of the analytic backend: the eq. 1-3 pair math.

    Everything here moved verbatim from the pre-seam engine -- the
    per-pair transition/coupling parameters, the per-level group
    evaluation and the trial-pair chaining -- so the analytic engine
    through the seam reproduces the scalar ``IncrementalSta`` probe loop
    bit for bit, exactly as before.
    """

    def __init__(self, engine: BatchProbeEngine) -> None:
        self._engine = engine
        comp = engine.compiled
        tech = engine.library.tech
        self._tau = tech.tau_ps
        self._hv_rise = 0.5 * tech.vtn_reduced
        self._hv_fall = 0.5 * tech.vtp_reduced
        # Nominal rising-edge symmetry factor per gate (eq. 3), the
        # scalar Cell.s_lh operation order with the nominal R.
        self._s_lh = (
            comp.dw_lh * (tech.r_ratio / comp.k_ratio) * (1.0 + comp.k_ratio) / 2.0
        )

    def bind(self, engine: BatchProbeEngine) -> None:
        """Capture the per-gate eq. 1-3 base terms of the bound sizing."""
        comp = engine.compiled
        n_in = comp.n_inputs
        # Per-gate eq. 2 transitions at the bound sizing are exactly the
        # gate rows of the base transition annotation.
        self._tout_rise = engine._base_tran_rise[n_in:]
        self._tout_fall = engine._base_tran_fall[n_in:]
        inv = comp.inverting
        # Load/coupling term of eq. 1 per switching-input polarity (a
        # rising input drives the falling output of an inverting cell),
        # the mc kernel's ``b`` arrays at the nominal corner.
        self._b_rise = comp.half_coupling_rise * np.where(
            inv, self._tout_fall, self._tout_rise
        )
        self._b_fall = comp.half_coupling_fall * np.where(
            inv, self._tout_rise, self._tout_fall
        )

    def chunk_params(
        self,
        pair_g: np.ndarray,
        over_pos: np.ndarray,
        over_cin: np.ndarray,
        over_load: np.ndarray,
    ) -> Tuple[np.ndarray, ...]:
        """Gather base pair terms, then scatter the overridden gates'."""
        to_r = self._tout_rise[pair_g].copy()
        to_f = self._tout_fall[pair_g].copy()
        b_r = self._b_rise[pair_g].copy()
        b_f = self._b_fall[pair_g].copy()
        o_tr, o_tf, o_br, o_bf = self._override_params(
            pair_g[over_pos], over_cin, over_load
        )
        to_r[over_pos] = o_tr
        to_f[over_pos] = o_tf
        b_r[over_pos] = o_br
        b_f[over_pos] = o_bf
        return (to_r, to_f, b_r, b_f)

    def _override_params(
        self, gids: np.ndarray, cin: np.ndarray, load: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Eq. 1-3 per-gate terms for overridden (size, load) pairs.

        Operation order matches :meth:`CompiledCircuit.bind` plus the
        mc kernel's per-level arithmetic exactly, which is what keeps an
        overridden gate's recomputed cell bit-identical to the scalar
        engine's ``propagate_gate`` on the edited circuit.
        """
        comp = self._engine.compiled
        k = comp.k_ratio[gids]
        inv = comp.inverting[gids]
        cl = comp.p_intrinsic[gids] * cin + load
        tout_rise = self._s_lh[gids] * self._tau * cl / cin
        tout_fall = comp.s_hl[gids] * self._tau * cl / cin
        cm_rise = 0.5 * cin * k / (1.0 + k)
        cm_fall = 0.5 * cin / (1.0 + k)
        half_rise = 0.5 * (1.0 + 2.0 * cm_rise / (cm_rise + cl))
        half_fall = 0.5 * (1.0 + 2.0 * cm_fall / (cm_fall + cl))
        b_rise = half_rise * np.where(inv, tout_fall, tout_rise)
        b_fall = half_fall * np.where(inv, tout_rise, tout_fall)
        return tout_rise, tout_fall, b_rise, b_fall

    def eval_group(
        self,
        params: Tuple[np.ndarray, ...],
        gs: int,
        ge: int,
        g: np.ndarray,
        rows: np.ndarray,
        mask: np.ndarray,
        cc: np.ndarray,
        time_rise: np.ndarray,
        time_fall: np.ndarray,
        tran_rise: np.ndarray,
        tran_fall: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Eq. 1 arrivals of one level group (mc kernel op order)."""
        to_r, to_f, b_r, b_f = params
        hv_rise = self._hv_rise
        hv_fall = self._hv_fall
        neg_inf = -np.inf

        delay = hv_rise * tran_rise[rows, cc] + b_r[gs:ge, None]
        cand = time_rise[rows, cc] + delay
        m_rise = np.max(np.where(mask, cand, neg_inf), axis=1)

        delay = hv_fall * tran_fall[rows, cc] + b_f[gs:ge, None]
        cand = time_fall[rows, cc] + delay
        m_fall = np.max(np.where(mask, cand, neg_inf), axis=1)

        inv = self._engine.compiled.inverting[g]
        t_rise = np.where(inv, m_fall, m_rise)
        t_fall = np.where(inv, m_rise, m_fall)
        tr_rise = to_r[gs:ge].copy()
        tr_fall = to_f[gs:ge].copy()
        return t_rise, t_fall, tr_rise, tr_fall

    def pair_constants(self, pair_cin: float) -> Tuple[float, ...]:
        """Scalar eq. 1-3 terms of the trial pair's first inverter.

        The first inverter's load (the second inverter plus wire) is the
        same in every column, so its transitions and eq. 1 ``b`` terms
        are plain scalars, computed by the scalar model's own helpers.
        """
        engine = self._engine
        cell = engine.library.cell(GateKind.INV)
        tech = engine.library.tech
        load_a = gate_external_load(
            ("__bufb__",),
            {"__bufb__": pair_cin},
            False,
            engine.compiled.output_load_ff,
            engine.compiled.wire_model,
        )
        cl_a = cell.parasitic_cap(pair_cin) + load_a
        tout_a_rise = cell.s_lh(tech) * tech.tau_ps * cl_a / pair_cin
        tout_a_fall = cell.s_hl(tech) * tech.tau_ps * cl_a / pair_cin
        cm_rise = cell.coupling_cap(pair_cin, input_rising=True)
        cm_fall = cell.coupling_cap(pair_cin, input_rising=False)
        # (0.5 * coupling_factor) * tout, the scalar gate_delay grouping.
        b_a_rise = 0.5 * coupling_factor(cm_rise, cl_a) * tout_a_fall
        b_a_fall = 0.5 * coupling_factor(cm_fall, cl_a) * tout_a_rise
        return (
            pair_cin,
            cell.p_intrinsic,
            cell.s_lh(tech),
            cell.s_hl(tech),
            cm_rise,
            cm_fall,
            tout_a_rise,
            tout_a_fall,
            b_a_rise,
            b_a_fall,
        )

    def through_pair(
        self,
        consts: Tuple[float, ...],
        t_rise_g: np.ndarray,
        t_fall_g: np.ndarray,
        tr_rise_g: np.ndarray,
        tr_fall_g: np.ndarray,
        load_b: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Chain a candidate's updated output through both trial inverters.

        Each inverter has a single fan-in, so the scalar engine's
        per-edge reduction degenerates to the lone candidate -- two
        eq. 1 evaluations per polarity, in the scalar operation order.
        Returns the second inverter's (rise, fall) arrivals and
        transitions, which the caller scatters onto the candidate's net
        row: every downstream reader then sees exactly the rewired
        netlist's values.
        """
        (
            pair_cin,
            p_intrinsic,
            s_lh,
            s_hl,
            cm_rise,
            cm_fall,
            tout_a_rise,
            tout_a_fall,
            b_a_rise,
            b_a_fall,
        ) = consts
        tau = self._tau
        hv_rise = self._hv_rise
        hv_fall = self._hv_fall
        # First inverter: rising input -> falling output and vice versa.
        t_fall_a = t_rise_g + (hv_rise * tr_rise_g + b_a_rise)
        t_rise_a = t_fall_g + (hv_fall * tr_fall_g + b_a_fall)
        # Second inverter: per-column load (the candidate's old sinks).
        cl_b = p_intrinsic * pair_cin + load_b
        tout_b_rise = s_lh * tau * cl_b / pair_cin
        tout_b_fall = s_hl * tau * cl_b / pair_cin
        half_b_rise = 0.5 * (1.0 + 2.0 * cm_rise / (cm_rise + cl_b))
        half_b_fall = 0.5 * (1.0 + 2.0 * cm_fall / (cm_fall + cl_b))
        t_fall_b = t_rise_a + (hv_rise * tout_a_rise + half_b_rise * tout_b_fall)
        t_rise_b = t_fall_a + (hv_fall * tout_a_fall + half_b_fall * tout_b_rise)
        return t_rise_b, t_fall_b, tout_b_rise, tout_b_fall
