"""K most-critical path extraction and path <-> circuit conversion.

POPS ("Performance Optimization by Path Selection") works on a small,
user-specified number of critical paths (refs. [11-12] of the paper).  We
extract them with a best-first search guided by a reverse potential
computed under the STA slews -- an A*-style enumeration that yields paths
in (near) decreasing delay order -- then re-evaluate each candidate path
exactly and sort.

Extracted paths are converted to :class:`~repro.timing.path.BoundedPath`
objects: off-path fan-out becomes the fixed ``cside`` loads, the driving
size of the first gate becomes the fixed input capacitance, and the total
external load of the last gate becomes the terminal load -- the bounded
boundary conditions of section 2.2.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.cells.library import Library
from repro.netlist.circuit import Circuit
from repro.timing.delay_model import Edge
from repro.timing.evaluation import evaluate_path
from repro.timing.path import BoundedPath, PathStage
from repro.timing.sta import StaResult, analyze, external_loads, gate_sizes


@dataclass(frozen=True)
class ExtractedPath:
    """A gate-name path plus its bounded-path realisation.

    Attributes
    ----------
    gate_names:
        Gates along the path, input side first.
    input_edge:
        Polarity entering the first gate.
    path:
        The bounded-path view used by every optimizer.
    delay_ps:
        Exact eq. 1 delay of the path at the extraction sizing.
    """

    gate_names: Tuple[str, ...]
    input_edge: Edge
    path: BoundedPath
    delay_ps: float


def to_bounded_path(
    circuit: Circuit,
    library: Library,
    gate_names: Sequence[str],
    input_edge: Edge,
    sizes: Optional[Mapping[str, float]] = None,
    output_load_ff: Optional[float] = None,
    input_transition_ps: float = 0.0,
) -> BoundedPath:
    """Freeze a gate-name chain into a bounded path.

    ``sizes`` provides the off-path loading context (defaults to the
    current circuit sizing); the first gate's current size becomes the
    fixed drive.
    """
    if not gate_names:
        raise ValueError("gate_names must be non-empty")
    if sizes is None:
        sizes = gate_sizes(circuit, library)
    loads = external_loads(circuit, library, output_load_ff, sizes)

    stages: List[PathStage] = []
    for position, name in enumerate(gate_names):
        gate = circuit.gate(name)
        if position + 1 < len(gate_names):
            next_name = gate_names[position + 1]
            next_gate = circuit.gate(next_name)
            if name not in next_gate.fanin:
                raise ValueError(
                    f"{next_name!r} is not a fan-out of {name!r}: not a path"
                )
            cside = loads[name] - sizes[next_name]
        else:
            cside = 0.0
        cell = library.cell(gate.kind)
        stages.append(PathStage(cell=cell, cside_ff=max(cside, 0.0), name=name))

    cterm = loads[gate_names[-1]]
    return BoundedPath(
        stages=tuple(stages),
        cin_first_ff=sizes[gate_names[0]],
        cterm_ff=cterm,
        input_edge=input_edge,
        tin_first_ps=input_transition_ps,
    )


def apply_path_sizes(
    circuit: Circuit, gate_names: Sequence[str], sizes: Sequence[float]
) -> None:
    """Write a path sizing vector back onto the circuit instances."""
    arr = np.asarray(sizes, dtype=float)
    if arr.shape != (len(gate_names),):
        raise ValueError("sizes must match gate_names")
    for name, cin in zip(gate_names, arr):
        circuit.gate(name).cin_ff = float(cin)


def _reverse_potentials(
    circuit: Circuit,
    library: Library,
    sizes: Mapping[str, float],
    loads: Mapping[str, float],
    slews: Mapping[str, Dict[Edge, float]],
) -> Dict[Tuple[str, Edge], float]:
    """Max remaining delay from (net, edge) to any primary output.

    Uses the STA slews as the per-pin input transition estimate, which
    makes the potential a tight (if not strictly admissible) heuristic.
    """
    fanout = circuit.fanout_map()
    output_set = set(circuit.outputs)
    backend = library.delay_backend
    potential: Dict[Tuple[str, Edge], float] = {}
    order = circuit.topological_order()
    all_nets = list(circuit.inputs) + order
    for net in reversed(all_nets):
        for edge in (Edge.RISE, Edge.FALL):
            best = 0.0 if net in output_set else float("-inf")
            slew = slews.get(net, {}).get(edge, 0.0)
            for succ in fanout.get(net, ()):
                gate = circuit.gates[succ]
                cell = library.cell(gate.kind)
                timing = backend.gate_timing(
                    cell, library.tech, sizes[succ], loads[succ], slew, edge
                )
                downstream = potential.get((succ, timing.output_edge))
                if downstream is None:
                    continue
                best = max(best, timing.delay_ps + downstream)
            if best > float("-inf"):
                potential[(net, edge)] = best
    return potential


def k_critical_paths(
    circuit: Circuit,
    library: Library,
    k: int = 1,
    input_transition_ps: float = 0.0,
    output_load_ff: Optional[float] = None,
    max_expansions: int = 200_000,
    sta: Optional[StaResult] = None,
) -> List[ExtractedPath]:
    """Extract the ``k`` most critical paths of a sized circuit.

    Returns them sorted by exact path delay, longest first.  ``k = 1``
    degenerates to the classic critical path.  ``sta`` skips the
    internal full analysis when the caller already holds the circuit's
    current annotation (e.g. from an
    :class:`~repro.timing.incremental.IncrementalSta` engine); it must
    have been computed under the same transition/load parameters.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    circuit.validate()
    sizes = gate_sizes(circuit, library)
    if sta is None:
        sta = analyze(
            circuit,
            library,
            input_transition_ps=input_transition_ps,
            output_load_ff=output_load_ff,
            sizes=sizes,
        )
    loads = sta.loads_ff
    slews = {
        net: {edge: ev.transition_ps for edge, ev in per_net.items()}
        for net, per_net in sta.arrivals.items()
    }
    potential = _reverse_potentials(circuit, library, sizes, loads, slews)

    counter = itertools.count()
    heap: List[Tuple[float, int, str, Edge, float, float, Tuple[str, ...]]] = []
    for net in circuit.inputs:
        for edge in (Edge.RISE, Edge.FALL):
            pot = potential.get((net, edge))
            if pot is None:
                continue
            heapq.heappush(
                heap,
                (-pot, next(counter), net, edge, 0.0, input_transition_ps, ()),
            )

    fanout = circuit.fanout_map()
    output_set = set(circuit.outputs)
    backend = library.delay_backend
    results: List[ExtractedPath] = []
    seen_paths: set = set()
    expansions = 0
    # Collect extra candidates: the heuristic is approximate, so over-pull
    # then exact-sort.
    want = max(k * 3, k + 2)
    while heap and len(results) < want and expansions < max_expansions:
        neg_priority, _, net, edge, arrival, slew, prefix = heapq.heappop(heap)
        expansions += 1
        is_gate = net in circuit.gates
        if is_gate and net in output_set:
            if prefix not in seen_paths:
                seen_paths.add(prefix)
                first_edge = _path_input_edge(circuit, library, prefix, edge)
                bounded = to_bounded_path(
                    circuit,
                    library,
                    prefix,
                    first_edge,
                    sizes=sizes,
                    output_load_ff=output_load_ff,
                    input_transition_ps=input_transition_ps,
                )
                exact = evaluate_path(
                    bounded, [sizes[g] for g in prefix], library
                ).total_delay_ps
                results.append(
                    ExtractedPath(
                        gate_names=prefix,
                        input_edge=first_edge,
                        path=bounded,
                        delay_ps=exact,
                    )
                )
        for succ in fanout.get(net, ()):
            gate = circuit.gates[succ]
            cell = library.cell(gate.kind)
            timing = backend.gate_timing(
                cell, library.tech, sizes[succ], loads[succ], slew, edge
            )
            pot = potential.get((succ, timing.output_edge))
            if pot is None and succ not in output_set:
                continue
            new_arrival = arrival + timing.delay_ps
            priority = new_arrival + (pot or 0.0)
            heapq.heappush(
                heap,
                (
                    -priority,
                    next(counter),
                    succ,
                    timing.output_edge,
                    new_arrival,
                    timing.tout_ps,
                    prefix + (succ,),
                ),
            )

    results.sort(key=lambda p: p.delay_ps, reverse=True)
    return results[:k]


def _path_input_edge(
    circuit: Circuit, library: Library, gate_names: Sequence[str], last_edge: Edge
) -> Edge:
    """Recover the path-entry polarity from the polarity at the last output."""
    edge = last_edge
    for name in reversed(gate_names):
        cell = library.cell(circuit.gate(name).kind)
        if cell.inverting:
            edge = edge.flipped
    return edge


def critical_path(
    circuit: Circuit,
    library: Library,
    input_transition_ps: float = 0.0,
    output_load_ff: Optional[float] = None,
    sta: Optional[StaResult] = None,
) -> ExtractedPath:
    """The single most critical path (convenience wrapper)."""
    paths = k_critical_paths(
        circuit,
        library,
        k=1,
        input_transition_ps=input_transition_ps,
        output_load_ff=output_load_ff,
        sta=sta,
    )
    if not paths:
        raise ValueError(f"no paths found in circuit {circuit.name!r}")
    return paths[0]
