"""Static timing analysis on sized circuit DAGs.

Polarity-aware block-based STA using the eq. 1 delay model: every net
carries separate rising/falling arrival times and transition times; gate
arcs map input polarity to output polarity through the cell's inversion
property.  Loads are assembled from the fan-out input capacitances plus a
configurable primary-output (register) load, exactly the bounded-path
boundary conditions of the paper lifted to whole circuits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cells.library import Library
from repro.netlist.circuit import Circuit, GateInstance
from repro.netlist.wireload import WireLoadModel
from repro.timing.delay_model import Edge


@dataclass(frozen=True)
class ArrivalEvent:
    """Latest arrival of one polarity at a net."""

    time_ps: float
    transition_ps: float
    #: (driving net, input edge at that driver) or None at primary inputs.
    cause: Optional[Tuple[str, Edge]] = None


@dataclass
class StaResult:
    """Full-circuit timing annotation.

    Attributes
    ----------
    arrivals:
        ``net -> {Edge -> ArrivalEvent}``.
    loads_ff:
        External load seen by each gate output.
    critical_delay_ps:
        Worst arrival over all primary outputs and polarities.
    critical_output:
        The (net, edge) achieving it.
    """

    arrivals: Dict[str, Dict[Edge, ArrivalEvent]]
    loads_ff: Dict[str, float]
    critical_delay_ps: float
    critical_output: Tuple[str, Edge]

    def arrival(self, net: str, edge: Edge) -> float:
        """Arrival time of ``edge`` at ``net`` (ps)."""
        return self.arrivals[net][edge].time_ps


def gate_sizes(circuit: Circuit, library: Library) -> Dict[str, float]:
    """Current per-gate input capacitance, defaulting to the cell minimum."""
    sizes: Dict[str, float] = {}
    for gate in circuit.gates.values():
        cell = library.cell(gate.kind)
        sizes[gate.name] = (
            gate.cin_ff if gate.cin_ff is not None else cell.cin_min(library.tech)
        )
    return sizes


def gate_external_load(
    sinks: Sequence[str],
    sizes: Mapping[str, float],
    is_output: bool,
    output_load_ff: float,
    wire_model: Optional["WireLoadModel"] = None,
) -> float:
    """External load (fF) of one gate output.

    The single-gate kernel shared by :func:`external_loads` and the
    incremental engine; both must sum the fan-out capacitances in the
    same (fan-out map) order so their results stay bit-identical.
    """
    load = sum(sizes[succ] for succ in sinks)
    n_sinks = len(sinks)
    if is_output:
        load += output_load_ff
        n_sinks += 1
    if wire_model is not None:
        load += wire_model.wire_cap_ff(n_sinks)
    return load


def external_loads(
    circuit: Circuit,
    library: Library,
    output_load_ff: Optional[float] = None,
    sizes: Optional[Mapping[str, float]] = None,
    wire_model: Optional["WireLoadModel"] = None,
) -> Dict[str, float]:
    """External load (fF) at every gate output.

    Fan-out gate input capacitances, plus ``output_load_ff`` on every
    primary output net (default: four reference inverters -- a register
    input), plus -- when a :class:`~repro.netlist.wireload.WireLoadModel`
    is supplied -- the fan-out based routing estimate.
    """
    if output_load_ff is None:
        output_load_ff = 4.0 * library.cref
    if sizes is None:
        sizes = gate_sizes(circuit, library)
    fanout = circuit.fanout_map()
    output_set = set(circuit.outputs)
    return {
        name: gate_external_load(
            fanout.get(name, ()), sizes, name in output_set, output_load_ff, wire_model
        )
        for name in circuit.gates
    }


def propagate_gate(
    gate: GateInstance,
    library: Library,
    size_ff: float,
    load_ff: float,
    arrivals: Mapping[str, Dict[Edge, ArrivalEvent]],
) -> Dict[Edge, ArrivalEvent]:
    """Latest arrival events at one gate output from its fan-in arrivals.

    The per-gate propagation kernel of block-based STA, shared verbatim
    by :func:`analyze` and :class:`~repro.timing.incremental.IncrementalSta`
    so a cone re-propagation reproduces the full run bit for bit
    (including the strict ``>`` tie-breaking and dict insertion order).
    Each arc is timed through the library's delay backend; the analytic
    backend delegates straight to
    :func:`~repro.timing.delay_model.gate_delay`, keeping the default
    stack bit-identical to the pre-backend code.
    """
    cell = library.cell(gate.kind)
    backend = library.delay_backend
    tech = library.tech
    best: Dict[Edge, ArrivalEvent] = {}
    for source in gate.fanin:
        for in_edge, event in arrivals[source].items():
            timing = backend.gate_timing(
                cell,
                tech,
                size_ff,
                load_ff,
                event.transition_ps,
                in_edge,
            )
            candidate = ArrivalEvent(
                time_ps=event.time_ps + timing.delay_ps,
                transition_ps=timing.tout_ps,
                cause=(source, in_edge),
            )
            current = best.get(timing.output_edge)
            if current is None or candidate.time_ps > current.time_ps:
                best[timing.output_edge] = candidate
    return best


def critical_endpoint(
    arrivals: Mapping[str, Dict[Edge, ArrivalEvent]],
    outputs: Sequence[str],
) -> Tuple[float, Tuple[str, Edge]]:
    """Worst arrival over the primary outputs (shared selection kernel)."""
    critical_time = -1.0
    critical: Tuple[str, Edge] = ("", Edge.RISE)
    for net in outputs:
        for edge, event in arrivals[net].items():
            if event.time_ps > critical_time:
                critical_time = event.time_ps
                critical = (net, edge)
    if critical_time < 0:
        raise ValueError("circuit has no timed outputs")
    return critical_time, critical


def analyze(
    circuit: Circuit,
    library: Library,
    input_transition_ps: float = 0.0,
    output_load_ff: Optional[float] = None,
    sizes: Optional[Mapping[str, float]] = None,
    wire_model: Optional["WireLoadModel"] = None,
) -> StaResult:
    """Run polarity-aware STA; returns arrivals and the critical delay."""
    circuit.validate()
    if sizes is None:
        sizes = gate_sizes(circuit, library)
    loads = external_loads(circuit, library, output_load_ff, sizes, wire_model)

    arrivals: Dict[str, Dict[Edge, ArrivalEvent]] = {}
    for net in circuit.inputs:
        arrivals[net] = {
            Edge.RISE: ArrivalEvent(0.0, input_transition_ps),
            Edge.FALL: ArrivalEvent(0.0, input_transition_ps),
        }

    for name in circuit.topological_order():
        gate = circuit.gates[name]
        arrivals[name] = propagate_gate(gate, library, sizes[name], loads[name], arrivals)

    critical_time, critical = critical_endpoint(arrivals, circuit.outputs)
    return StaResult(
        arrivals=arrivals,
        loads_ff=loads,
        critical_delay_ps=critical_time,
        critical_output=critical,
    )


def trace_critical_gates(result: StaResult, circuit: Circuit) -> List[str]:
    """Backtrack the critical path; returns gate names input-side first."""
    net, edge = result.critical_output
    chain: List[str] = []
    while net in circuit.gates:
        chain.append(net)
        event = result.arrivals[net][edge]
        if event.cause is None:
            break
        source, in_edge = event.cause
        net, edge = source, in_edge
    chain.reverse()
    return chain
