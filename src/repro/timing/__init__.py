"""Timing engine: closed-form delay model, bounded paths, evaluation, STA."""

from repro.timing.delay_model import (
    Edge,
    GateTiming,
    coupling_factor,
    fanout_four_delay,
    gate_delay,
    output_edge_for,
    output_transition_time,
    total_load,
)
from repro.timing.evaluation import (
    PathTiming,
    delay_gradient,
    delay_gradient_numeric,
    effective_a_coeffs,
    evaluate_path,
    path_area_um,
    path_delay_ps,
    stage_external_loads,
    stage_fanout_ratios,
)
from repro.timing.path import BoundedPath, PathStage, make_path
from repro.timing.sta import (
    ArrivalEvent,
    StaResult,
    analyze,
    external_loads,
    gate_sizes,
    trace_critical_gates,
)
from repro.timing.report import EndpointSlack, TimingReport, timing_report
from repro.timing.critical_paths import (
    ExtractedPath,
    apply_path_sizes,
    critical_path,
    k_critical_paths,
    to_bounded_path,
)

__all__ = [
    "Edge",
    "GateTiming",
    "gate_delay",
    "output_transition_time",
    "output_edge_for",
    "coupling_factor",
    "total_load",
    "fanout_four_delay",
    "BoundedPath",
    "PathStage",
    "make_path",
    "PathTiming",
    "evaluate_path",
    "path_delay_ps",
    "path_area_um",
    "delay_gradient",
    "delay_gradient_numeric",
    "effective_a_coeffs",
    "stage_external_loads",
    "stage_fanout_ratios",
    "ArrivalEvent",
    "StaResult",
    "analyze",
    "external_loads",
    "gate_sizes",
    "trace_critical_gates",
    "ExtractedPath",
    "critical_path",
    "k_critical_paths",
    "to_bounded_path",
    "apply_path_sizes",
    "TimingReport",
    "EndpointSlack",
    "timing_report",
]
