"""Path delay evaluation, analytic coefficients and gradients.

This module turns a :class:`~repro.timing.path.BoundedPath` plus a sizing
vector into the quantities every optimizer consumes:

* the total path delay and per-stage breakdown (:func:`evaluate_path`);
* the *effective* eq. 4 coefficients ``A_i`` (:func:`effective_a_coeffs`),
  i.e. the weight of the ``load / C_IN`` term of each stage once the
  slope contribution to the *next* stage and the coupling factor are
  folded in;
* the exact gradient ``dT/dC_IN`` (:func:`delay_gradient`) -- closed-form,
  O(n), including the Miller-factor derivatives the eq. 4 surrogate
  drops; a central-difference fallback
  (:func:`delay_gradient_numeric`) cross-checks it in the tests;
* the area metric ``sum W`` (:func:`path_area_um`).

Because the optimizers evaluate paths tens of thousands of times, the
per-stage model constants (symmetry factors, thresholds, coupling and
parasitic coefficients -- all functions of the *structure*, not the
sizing) are computed once per (path, technology) pair and cached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.cells.library import Library
from repro.process.technology import Technology
from repro.timing.backend import AnalyticBackend, DelayBackend
from repro.timing.delay_model import Edge, output_edge_for
from repro.timing.path import BoundedPath


@dataclass(frozen=True)
class PathTiming:
    """Detailed timing of a sized path.

    Attributes
    ----------
    total_delay_ps:
        Sum of stage delays -- the path delay the paper constrains.
    stage_delays_ps / stage_tout_ps:
        Per-stage eq. 1 delays and eq. 2 output transitions.
    stage_loads_ff:
        Total load (parasitic + side + next C_IN or terminal) per stage.
    edges:
        Switching-input polarity per stage.
    """

    total_delay_ps: float
    stage_delays_ps: Tuple[float, ...]
    stage_tout_ps: Tuple[float, ...]
    stage_loads_ff: Tuple[float, ...]
    edges: Tuple[Edge, ...]


@dataclass(frozen=True)
class _PathConstants:
    """Structure-only model constants of one (path, technology) pair.

    ``s`` -- per-stage eq. 2 symmetry factor times tau;
    ``vt`` -- per-stage reduced threshold of the switching input edge;
    ``m`` -- coupling capacitance per unit of input capacitance;
    ``p`` -- parasitic (junction) capacitance per unit of input cap;
    ``cside`` -- fixed off-path load per stage;
    ``edges`` -- input edge per stage.
    """

    s_tau: Tuple[float, ...]
    vt: Tuple[float, ...]
    m: Tuple[float, ...]
    p: Tuple[float, ...]
    cside: Tuple[float, ...]
    edges: Tuple[Edge, ...]


def _constants(path: BoundedPath, tech: Technology) -> _PathConstants:
    """Model constants of ``(path, tech)``, cached on the path instance.

    The previous ``lru_cache`` keyed on the full ``BoundedPath`` value,
    deep-hashing every stage's cell dataclass on *every* delay
    evaluation -- measurably the hottest non-numeric cost of the eq. 4/6
    inner loops.  A single per-instance slot (paths are immutable, and
    the sizing machinery evaluates one path object millions of times
    against one technology) replaces the hash with an identity check;
    the stored technology reference keeps the key object alive, so the
    identity can never be recycled while the entry exists.
    """
    entry = path.__dict__.get("_constants_entry")
    if entry is not None and entry[0] is tech:
        return entry[1]
    constants = _build_constants(path, tech)
    object.__setattr__(path, "_constants_entry", (tech, constants))
    return constants


def _build_constants(path: BoundedPath, tech: Technology) -> _PathConstants:
    s_tau = []
    vt = []
    m = []
    p = []
    cside = []
    edges = []
    edge = path.input_edge
    for stage in path.stages:
        cell = stage.cell
        out_edge = output_edge_for(cell, edge)
        s = cell.s_hl(tech) if out_edge is Edge.FALL else cell.s_lh(tech)
        s_tau.append(s * tech.tau_ps)
        vt.append(tech.vtn_reduced if edge is Edge.RISE else tech.vtp_reduced)
        m.append(cell.coupling_cap(1.0, input_rising=edge is Edge.RISE))
        p.append(cell.p_intrinsic)
        cside.append(stage.cside_ff)
        edges.append(edge)
        edge = out_edge
    return _PathConstants(
        s_tau=tuple(s_tau),
        vt=tuple(vt),
        m=tuple(m),
        p=tuple(p),
        cside=tuple(cside),
        edges=tuple(edges),
    )


def _check_sizes(path: BoundedPath, sizes: Sequence[float]) -> np.ndarray:
    arr = np.asarray(sizes, dtype=float).copy()
    if arr.shape != (len(path),):
        raise ValueError(f"expected {len(path)} sizes, got shape {arr.shape}")
    if np.any(arr <= 0):
        raise ValueError("all sizes must be positive")
    arr[0] = path.cin_first_ff
    return arr


def stage_external_loads(path: BoundedPath, sizes: np.ndarray) -> np.ndarray:
    """External (non-parasitic) load of each stage for a sizing vector."""
    n = len(path)
    loads = np.empty(n)
    for i in range(n):
        downstream = sizes[i + 1] if i + 1 < n else path.cterm_ff
        loads[i] = path.stages[i].cside_ff + downstream
    return loads


def evaluate_path(path: BoundedPath, sizes: Sequence[float], library: Library) -> PathTiming:
    """Evaluate the eq. 1 delay of ``path`` under ``sizes``.

    ``sizes[0]`` is forced to the path's fixed first drive; interior sizes
    are used as given (callers clamp to CREF beforehand when needed).

    Non-analytic backends take the generic chain (one scalar
    :meth:`~repro.timing.backend.DelayBackend.gate_timing` call per
    stage); the analytic fast path below is byte-for-byte the
    pre-backend code, so default-library results are bit-identical.
    """
    arr = _check_sizes(path, sizes)
    backend = library.delay_backend
    if not isinstance(backend, AnalyticBackend):
        return _backend_evaluate_path(path, arr, library, backend)
    k = _constants(path, library.tech)
    n = len(path)

    delays = []
    touts = []
    loads_total = []
    tin = path.tin_first_ps
    for i in range(n):
        c = arr[i]
        downstream = arr[i + 1] if i + 1 < n else path.cterm_ff
        cl = k.p[i] * c + k.cside[i] + downstream
        tout = k.s_tau[i] * cl / c
        cm = k.m[i] * c
        coupling = 1.0 + 2.0 * cm / (cm + cl)
        delays.append(0.5 * k.vt[i] * tin + 0.5 * coupling * tout)
        touts.append(tout)
        loads_total.append(cl)
        tin = tout
    return PathTiming(
        total_delay_ps=float(sum(delays)),
        stage_delays_ps=tuple(delays),
        stage_tout_ps=tuple(touts),
        stage_loads_ff=tuple(loads_total),
        edges=k.edges,
    )


def path_delay_ps(path: BoundedPath, sizes: Sequence[float], library: Library) -> float:
    """Total path delay (ps) -- the optimizers' hot loop."""
    arr = _check_sizes(path, sizes)
    backend = library.delay_backend
    if not isinstance(backend, AnalyticBackend):
        return _backend_path_delay(path, arr, library, backend)
    k = _constants(path, library.tech)
    n = len(path)
    total = 0.0
    tin = path.tin_first_ps
    for i in range(n):
        c = arr[i]
        downstream = arr[i + 1] if i + 1 < n else path.cterm_ff
        cl = k.p[i] * c + k.cside[i] + downstream
        tout = k.s_tau[i] * cl / c
        cm = k.m[i] * c
        total += 0.5 * k.vt[i] * tin + 0.5 * (1.0 + 2.0 * cm / (cm + cl)) * tout
        tin = tout
    return total


def _backend_evaluate_path(
    path: BoundedPath, arr: np.ndarray, library: Library, backend: DelayBackend
) -> PathTiming:
    """Generic backend chain behind :func:`evaluate_path`.

    Walks the path stage by stage through the backend's scalar kernel,
    threading the output transition and polarity of each stage into the
    next -- exactly the arc chaining :func:`~repro.timing.sta.analyze`
    performs on a linear circuit, so path and circuit views of the same
    chain agree for every backend.
    """
    tech = library.tech
    n = len(path)
    delays: List[float] = []
    touts: List[float] = []
    loads_total: List[float] = []
    edges: List[Edge] = []
    tin = path.tin_first_ps
    edge = path.input_edge
    for i in range(n):
        stage = path.stages[i]
        downstream = arr[i + 1] if i + 1 < n else path.cterm_ff
        ext = stage.cside_ff + downstream
        timing = backend.gate_timing(
            stage.cell, tech, float(arr[i]), float(ext), tin, edge
        )
        delays.append(timing.delay_ps)
        touts.append(timing.tout_ps)
        loads_total.append(stage.cell.parasitic_cap(float(arr[i])) + float(ext))
        edges.append(edge)
        tin = timing.tout_ps
        edge = timing.output_edge
    return PathTiming(
        total_delay_ps=float(sum(delays)),
        stage_delays_ps=tuple(delays),
        stage_tout_ps=tuple(touts),
        stage_loads_ff=tuple(loads_total),
        edges=tuple(edges),
    )


def _backend_path_delay(
    path: BoundedPath, arr: np.ndarray, library: Library, backend: DelayBackend
) -> float:
    """Total-delay-only variant of :func:`_backend_evaluate_path`."""
    tech = library.tech
    n = len(path)
    total = 0.0
    tin = path.tin_first_ps
    edge = path.input_edge
    for i in range(n):
        stage = path.stages[i]
        downstream = arr[i + 1] if i + 1 < n else path.cterm_ff
        timing = backend.gate_timing(
            stage.cell,
            tech,
            float(arr[i]),
            float(stage.cside_ff + downstream),
            tin,
            edge,
        )
        total += timing.delay_ps
        tin = timing.tout_ps
        edge = timing.output_edge
    return total


def path_area_um(path: BoundedPath, sizes: Sequence[float], library: Library) -> float:
    """Area metric ``sum W`` (um) of the sized path (paper's Figs. 4/8)."""
    arr = np.asarray(sizes, dtype=float)
    if arr.shape != (len(path),):
        raise ValueError(f"expected {len(path)} sizes, got shape {arr.shape}")
    return float(
        sum(
            stage.cell.total_width_um(c, library.tech)
            for stage, c in zip(path.stages, arr)
        )
    )


def effective_a_coeffs(
    path: BoundedPath, sizes: np.ndarray, library: Library
) -> np.ndarray:
    """Effective eq. 4 coefficients ``A_i`` at the current sizing point.

    Writing the path delay as ``T = sum_i A_i * C_L_total(i) / C_IN(i)``
    (plus the fixed input-slope term), the coefficient of stage ``i``
    collects its own coupling factor and the slope contribution of its
    output transition to stage ``i+1``::

        A_i = (K_i / 2 + v_T(i+1) / 2) * S_i * tau

    The ``A_i`` depend (weakly) on the sizing through ``K_i``; the eq. 4 /
    eq. 6 solvers therefore recompute them every sweep (Gauss-Seidel).

    Analytic-model-only: the coefficients *are* eq. 1-3 quantities, so
    there is nothing to evaluate for a table backend.  Callers gate on
    ``library.delay_backend.capabilities.closed_form_bounds`` and fall
    back to the numeric link sweep of :mod:`repro.sizing.bounds`.
    """
    arr = np.asarray(sizes, dtype=float)
    k = _constants(path, library.tech)
    n = len(path)
    coeffs = np.empty(n)
    for i in range(n):
        c = arr[i]
        downstream = arr[i + 1] if i + 1 < n else path.cterm_ff
        cl = k.p[i] * c + k.cside[i] + downstream
        cm = k.m[i] * c
        weight = 0.5 * (1.0 + 2.0 * cm / (cm + cl))
        if i + 1 < n:
            weight += 0.5 * k.vt[i + 1]
        coeffs[i] = weight * k.s_tau[i]
    return coeffs


def delay_gradient(
    path: BoundedPath,
    sizes: Sequence[float],
    library: Library,
) -> np.ndarray:
    """Exact closed-form gradient ``dT/dC_IN(i)`` in ps/fF, O(n).

    Includes every dependency of eq. 1 on the sizes: the load and drive
    terms of the transition times, the downstream slope contribution and
    the Miller coupling factor's own derivatives.  Component 0 is 0: the
    first drive is a fixed boundary condition, not a free variable.

    The closed form differentiates eq. 1-3, so non-analytic backends
    dispatch to the central-difference fallback (which itself routes
    every evaluation through the backend's scalar kernel).
    """
    arr = _check_sizes(path, sizes)
    if not isinstance(library.delay_backend, AnalyticBackend):
        return delay_gradient_numeric(path, arr, library)
    k = _constants(path, library.tech)
    n = len(path)

    # Forward quantities.
    cl = np.empty(n)
    tout = np.empty(n)
    cm = np.empty(n)
    kf = np.empty(n)  # coupling factor K_i
    for i in range(n):
        c = arr[i]
        downstream = arr[i + 1] if i + 1 < n else path.cterm_ff
        cl[i] = k.p[i] * c + k.cside[i] + downstream
        tout[i] = k.s_tau[i] * cl[i] / c
        cm[i] = k.m[i] * c
        kf[i] = 1.0 + 2.0 * cm[i] / (cm[i] + cl[i])

    # Weight of tout_i in T: its own K_i/2 plus the next stage's slope.
    w = 0.5 * kf.copy()
    w[: n - 1] += 0.5 * np.asarray(k.vt[1:])

    grad = np.zeros(n)
    for j in range(1, n):
        c = arr[j]
        denominator = (cm[j] + cl[j]) ** 2
        # d tout_j / d c_j: only the external part of the load divides c.
        ext_j = cl[j] - k.p[j] * c
        dtout_j = -k.s_tau[j] * ext_j / c**2
        # d K_j / d c_j through cm (m_j) and cl (p_j).
        dk_j = (2.0 * cl[j] * k.m[j] - 2.0 * cm[j] * k.p[j]) / denominator
        value = w[j] * dtout_j + 0.5 * tout[j] * dk_j

        # Upstream stage j-1 sees c_j in its load.
        i = j - 1
        dtout_i = k.s_tau[i] / arr[i]
        dk_i = -2.0 * cm[i] / (cm[i] + cl[i]) ** 2
        value += w[i] * dtout_i + 0.5 * tout[i] * dk_i
        grad[j] = value
    return grad


def delay_gradient_numeric(
    path: BoundedPath,
    sizes: Sequence[float],
    library: Library,
    rel_step: float = 1e-5,
) -> np.ndarray:
    """Central-difference gradient; the analytic form's cross-check."""
    arr = _check_sizes(path, sizes)
    grad = np.zeros(len(arr))
    for i in range(1, len(arr)):
        h = max(arr[i] * rel_step, 1e-9)
        up = arr.copy()
        up[i] += h
        down = arr.copy()
        down[i] -= h
        t_up = path_delay_ps(path, up, library)
        t_down = path_delay_ps(path, down, library)
        grad[i] = (t_up - t_down) / (2.0 * h)
    return grad


def stage_fanout_ratios(path: BoundedPath, sizes: Sequence[float]) -> np.ndarray:
    """Fan-out ratio ``F = C_L / C_IN`` per stage (buffering metric input)."""
    arr = np.asarray(sizes, dtype=float)
    ext = stage_external_loads(path, arr)
    return ext / arr
