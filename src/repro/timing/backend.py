"""Pluggable delay-model backends: the seam under every evaluator.

The repo's four bit-exact evaluators -- the scalar
:func:`~repro.timing.sta.analyze`, the warm
:class:`~repro.timing.incremental.IncrementalSta`, the Monte-Carlo batch
kernel (:func:`repro.mc.kernel.batch_analyze`) and the cone-sparse
:class:`~repro.timing.batch_probe.BatchProbeEngine` -- historically
hard-wired the paper's analytic eq. 1-3 model.  A
:class:`DelayBackend` lifts that model behind an interface with three
surfaces:

* **scalar** -- :meth:`DelayBackend.gate_timing`, the single-arc kernel
  every dict-walking engine calls (STA propagation, path extraction,
  generic path evaluation);
* **batch** -- :meth:`DelayBackend.compile_model`, a per-compilation
  :class:`BatchDelayModel` that folds per-gate constants into
  :class:`~repro.mc.compile.CompiledCircuit` arrays and propagates whole
  levels over ``(gates, corners)`` arrays;
* **probe** -- :meth:`DelayBackend.probe_model`, a
  :class:`ProbeDelayModel` evaluating ``(gate, column)`` pair groups for
  the cone-sparse candidate engine.

Capabilities (:class:`BackendCapabilities`) tell the optimizer stack
what a backend can promise: ``closed_form_bounds`` gates the eq. 4/6
closed forms in :mod:`repro.sizing.bounds` (table backends fall back to
a numeric warm-started bisection), ``exact_corners`` records whether
Monte-Carlo corners are evaluated exactly (analytic) or by a global
speed-scale approximation (tables).

Bit-exactness contract
----------------------
Within one backend, all four evaluators agree bit for bit: every
implementation must evaluate the same arithmetic in the same operation
order on its scalar, batch and probe surfaces.  *Across* backends no
bit-level relationship is promised -- an NLDM table characterised from
the analytic model agrees only to interpolation accuracy.  The
:class:`AnalyticBackend` delegates straight to
:func:`~repro.timing.delay_model.gate_delay` and to the pre-existing
batch kernels, so refactoring the consumers through this seam changed
no float anywhere (pinned by the equivalence ladder in
``tests/test_mc.py`` / ``tests/test_batch_probe.py`` /
``tests/test_backend_parity.py``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

import numpy as np

from repro.cells.cell import Cell
from repro.process.technology import Technology
from repro.timing.delay_model import Edge, GateTiming, gate_delay

if TYPE_CHECKING:  # pragma: no cover - import-cycle-free type names
    from repro.mc.compile import CompiledCircuit
    from repro.mc.corners import CornerSamples
    from repro.timing.batch_probe import BatchProbeEngine


@dataclass(frozen=True)
class BackendCapabilities:
    """What one delay backend can promise to the optimizer stack.

    Attributes
    ----------
    name:
        Stable identifier (``"analytic"``, ``"nldm"``); the CLI/Job
        backend spec and the cache-key token lead with it.
    closed_form_bounds:
        Whether the eq. 4/6 closed-form link equations are exact for
        this backend.  When ``False``, :mod:`repro.sizing.bounds`
        replaces each Gauss-Seidel link update with a numeric
        bisection on the windowed delay derivative.
    exact_corners:
        Whether Monte-Carlo corner batches are evaluated under the
        exact per-corner model.  Table backends approximate a corner
        as a global ``tau``-ratio time scale instead.
    """

    name: str
    closed_form_bounds: bool
    exact_corners: bool


class BatchDelayModel(ABC):
    """Per-compilation batch surface of one backend.

    Created once per :class:`~repro.mc.compile.CompiledCircuit` by
    :meth:`DelayBackend.compile_model`; the constructor folds the
    structure-only per-gate constants (from ``compiled.cells``) into
    arrays, :meth:`bind` refreshes the sizing-dependent ones, and
    :meth:`propagate` runs the level loop of
    :func:`~repro.mc.kernel.batch_analyze` in place.
    """

    @abstractmethod
    def bind(self, compiled: "CompiledCircuit") -> None:
        """Refresh sizing-dependent per-gate arrays after a re-bind."""

    @abstractmethod
    def propagate(
        self,
        compiled: "CompiledCircuit",
        corners: "CornerSamples",
        time_rise: np.ndarray,
        time_fall: np.ndarray,
        tran_rise: np.ndarray,
        tran_fall: np.ndarray,
    ) -> None:
        """Fill the gate rows of the ``(n_nets, n_samples)`` arrays.

        Input rows are pre-seeded by the caller; the model must leave
        them untouched (or rescale them consistently with its corner
        model) and write every gate row.
        """


class ProbeDelayModel(ABC):
    """Per-engine probe surface of one backend.

    Created by :meth:`DelayBackend.probe_model` for one
    :class:`~repro.timing.batch_probe.BatchProbeEngine`.  The engine
    keeps the backend-independent machinery (cones, column schedule,
    chunking, the dense base backing); the model owns every eq. 1-3
    (or table-lookup) float: per-pair parameters, the per-level group
    evaluation, and the trial buffer-pair chaining.
    """

    @abstractmethod
    def bind(self, engine: "BatchProbeEngine") -> None:
        """Capture the per-gate base parameters of the bound sizing."""

    @abstractmethod
    def chunk_params(
        self,
        pair_g: np.ndarray,
        over_pos: np.ndarray,
        over_cin: np.ndarray,
        over_load: np.ndarray,
    ) -> Tuple[np.ndarray, ...]:
        """Per-pair parameter arrays for one chunk's flat schedule.

        Base values are gathered at ``pair_g`` and the overridden
        ``(cin, load)`` pairs are scattered at ``over_pos``.  Every
        returned array is 1-D over pairs, so the engine can re-order
        all of them with the level argsort generically.
        """

    @abstractmethod
    def eval_group(
        self,
        params: Tuple[np.ndarray, ...],
        gs: int,
        ge: int,
        g: np.ndarray,
        rows: np.ndarray,
        mask: np.ndarray,
        cc: np.ndarray,
        time_rise: np.ndarray,
        time_fall: np.ndarray,
        tran_rise: np.ndarray,
        tran_fall: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Arrivals/transitions of one level group of ``(gate, column)`` pairs.

        Returns ``(t_rise, t_fall, tr_rise, tr_fall)`` for pairs
        ``gs:ge`` (already polarity-swapped for inverting cells); the
        engine scatters them onto the chunk backing.
        """

    @abstractmethod
    def pair_constants(self, pair_cin: float) -> Tuple:
        """Column-independent terms of a trial pair's first inverter."""

    @abstractmethod
    def through_pair(
        self,
        consts: Tuple,
        t_rise_g: np.ndarray,
        t_fall_g: np.ndarray,
        tr_rise_g: np.ndarray,
        tr_fall_g: np.ndarray,
        load_b: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Chain a candidate's output through both trial inverters."""


class DelayBackend(ABC):
    """A pluggable gate-delay model.

    Implementations must keep their scalar, batch and probe surfaces
    bit-identical to each other (see the module docstring); the
    analytic reference lives here, the NLDM table backend in
    :mod:`repro.liberty.nldm`.
    """

    capabilities: BackendCapabilities

    @abstractmethod
    def cache_token(self) -> Tuple:
        """Hashable identity folded into every timing cache key.

        Two backends whose tokens differ must never alias a cached
        timing artefact; table backends fold a content digest in.
        """

    @abstractmethod
    def gate_timing(
        self,
        cell: Cell,
        tech: Technology,
        cin_ff: float,
        cload_ext_ff: float,
        tin_ps: float,
        input_edge: Edge,
    ) -> GateTiming:
        """Delay/transition of one gate arc (the scalar kernel)."""

    @abstractmethod
    def compile_model(self, compiled: "CompiledCircuit") -> BatchDelayModel:
        """Build the batch surface for one compiled structure."""

    @abstractmethod
    def probe_model(self, engine: "BatchProbeEngine") -> ProbeDelayModel:
        """Build the probe surface for one batch-probe engine."""


class AnalyticBackend(DelayBackend):
    """The paper's closed-form eq. 1-3 model behind the backend seam.

    Every surface delegates to the pre-existing kernels --
    :func:`~repro.timing.delay_model.gate_delay`, the mc level loop,
    the batch-probe pair math -- so the analytic stack through the seam
    is bit-identical to the pre-seam code, float for float.
    """

    capabilities = BackendCapabilities(
        name="analytic", closed_form_bounds=True, exact_corners=True
    )

    def cache_token(self) -> Tuple:
        """The analytic model is fully determined by (tech, cells)."""
        return ("analytic",)

    def gate_timing(
        self,
        cell: Cell,
        tech: Technology,
        cin_ff: float,
        cload_ext_ff: float,
        tin_ps: float,
        input_edge: Edge,
    ) -> GateTiming:
        """Eq. 1 timing via :func:`~repro.timing.delay_model.gate_delay`."""
        return gate_delay(cell, tech, cin_ff, cload_ext_ff, tin_ps, input_edge)

    def compile_model(self, compiled: "CompiledCircuit") -> BatchDelayModel:
        """The mc kernel's analytic level loop (lazy import: no cycle)."""
        from repro.mc.kernel import AnalyticBatchModel

        return AnalyticBatchModel(compiled)

    def probe_model(self, engine: "BatchProbeEngine") -> ProbeDelayModel:
        """The batch-probe analytic pair math (lazy import: no cycle)."""
        from repro.timing.batch_probe import AnalyticProbeModel

        return AnalyticProbeModel(engine)


#: The shared analytic backend instance: libraries built without an
#: explicit backend resolve to this singleton, so identity checks and
#: cache tokens stay stable across all default libraries.
ANALYTIC_BACKEND = AnalyticBackend()


def backend_fo4(
    cell: Cell, tech: Technology, cin_ff: float, backend: DelayBackend
) -> float:
    """FO4-style figure of merit through an arbitrary backend.

    The backend-generic twin of
    :func:`~repro.timing.delay_model.fanout_four_delay` (same two-call
    self-consistent structure, so the analytic backend reproduces it
    exactly); the ``pops lib`` report uses it to put analytic and NLDM
    figures side by side.
    """
    first = backend.gate_timing(cell, tech, cin_ff, 4.0 * cin_ff, 0.0, Edge.RISE)
    second = backend.gate_timing(
        cell, tech, cin_ff, 4.0 * cin_ff, first.tout_ps, Edge.RISE
    )
    return second.delay_ps
