"""Closed-form CMOS delay model (eqs. 1-3 of the paper).

The model separates two quantities per gate and per output edge:

* the **output transition time** (eq. 2/3), linear in the fan-out ratio::

      tau_out = S_edge * tau * (C_L_total / C_IN)

  where ``S_edge`` is the cell symmetry factor (logical weight, P/N ratio
  and ``R`` folded together, eq. 3) and ``C_L_total`` includes the gate's
  own junction parasitic;

* the **switching delay** (eq. 1), which adds the input-slope contribution
  and the input-to-output coupling through ``C_M``::

      t = (v_T / 2) * tau_in + (1 + 2 C_M / (C_M + C_L)) * tau_out / 2

All capacitances are in fF and all times in ps.  The model is valid in the
*fast input control range* (input transition comparable to or faster than
the output transition); the optimizers keep sizings inside that regime by
construction (tapering factors stay moderate).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.cells.cell import Cell
from repro.process.technology import Technology


class Edge(Enum):
    """Signal edge polarity."""

    RISE = "rise"
    FALL = "fall"

    @property
    def flipped(self) -> "Edge":
        """The complementary edge."""
        return Edge.FALL if self is Edge.RISE else Edge.RISE

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def output_edge_for(cell: Cell, input_edge: Edge) -> Edge:
    """Edge polarity at the cell output for a given switching-input edge."""
    return input_edge.flipped if cell.inverting else input_edge


def output_transition_time(
    cell: Cell,
    tech: Technology,
    cin_ff: float,
    cload_total_ff: float,
    output_edge: Edge,
) -> float:
    """Output transition time (ps), eq. 2.

    ``cload_total_ff`` must already include the cell parasitic
    (:meth:`repro.cells.Cell.parasitic_cap`); the helper
    :func:`total_load` assembles it.
    """
    if cin_ff <= 0:
        raise ValueError(f"cin_ff must be positive, got {cin_ff}")
    if cload_total_ff < 0:
        raise ValueError("cload_total_ff must be non-negative")
    s = cell.s_hl(tech) if output_edge is Edge.FALL else cell.s_lh(tech)
    return s * tech.tau_ps * cload_total_ff / cin_ff


def total_load(cell: Cell, cin_ff: float, cload_ext_ff: float) -> float:
    """External load plus the cell's own junction parasitic (fF)."""
    return cell.parasitic_cap(cin_ff) + cload_ext_ff


def coupling_factor(cm_ff: float, cload_total_ff: float) -> float:
    """The Miller overshoot factor ``1 + 2 C_M / (C_M + C_L)`` of eq. 1."""
    if cm_ff < 0 or cload_total_ff < 0:
        raise ValueError("capacitances must be non-negative")
    denominator = cm_ff + cload_total_ff
    if denominator == 0:
        return 1.0
    return 1.0 + 2.0 * cm_ff / denominator


@dataclass(frozen=True)
class GateTiming:
    """Timing of one gate switching event.

    Attributes
    ----------
    delay_ps:
        50%-to-50% switching delay (eq. 1).
    tout_ps:
        Output transition time (eq. 2).
    output_edge:
        Polarity of the output event.
    """

    delay_ps: float
    tout_ps: float
    output_edge: Edge


def gate_delay(
    cell: Cell,
    tech: Technology,
    cin_ff: float,
    cload_ext_ff: float,
    tin_ps: float,
    input_edge: Edge,
) -> GateTiming:
    """Full eq. 1 delay of one gate.

    Parameters
    ----------
    cin_ff:
        Per-input capacitance of the switching input (the sizing variable).
    cload_ext_ff:
        External load at the output: fan-in capacitance of downstream
        gates plus any routing estimate.  The cell's own parasitic is
        added internally.
    tin_ps:
        Transition time of the switching input (output transition of the
        upstream gate).
    input_edge:
        Polarity of the switching input.
    """
    if tin_ps < 0:
        raise ValueError(f"tin_ps must be non-negative, got {tin_ps}")
    out_edge = output_edge_for(cell, input_edge)
    cl_total = total_load(cell, cin_ff, cload_ext_ff)
    tout = output_transition_time(cell, tech, cin_ff, cl_total, out_edge)
    cm = cell.coupling_cap(cin_ff, input_rising=input_edge is Edge.RISE)
    vt = tech.vtn_reduced if input_edge is Edge.RISE else tech.vtp_reduced
    delay = 0.5 * vt * tin_ps + 0.5 * coupling_factor(cm, cl_total) * tout
    return GateTiming(delay_ps=delay, tout_ps=tout, output_edge=out_edge)


def fanout_four_delay(cell: Cell, tech: Technology, cin_ff: float) -> float:
    """FO4-style figure of merit: delay driving four copies of itself.

    Convenience for library sanity checks and reporting; uses a step-like
    input (``tin = tout`` self-consistent single iteration).
    """
    first = gate_delay(cell, tech, cin_ff, 4.0 * cin_ff, 0.0, Edge.RISE)
    second = gate_delay(cell, tech, cin_ff, 4.0 * cin_ff, first.tout_ps, Edge.RISE)
    return second.delay_ps
