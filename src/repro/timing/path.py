"""Bounded combinational path: the unit of optimization in the paper.

A *bounded* path (section 2.2) is a chain of gates where

* the **first gate's input capacitance is fixed** -- it is the load budget
  granted by the latch or primary input that drives the path, and
* the **terminal load is fixed** -- the input capacitance of the latches /
  gates the path drives.

Only the interior gate input capacitances are free.  Under the eq. 1-3
model the path delay is then a convex function of those sizes, which is
what makes the eq. 4 link equations a *global* optimum condition.

Side (off-path) fan-out at each stage output is carried as a fixed
capacitance ``cside_ff`` -- the standard single-path abstraction; the
circuit-level driver re-extracts paths after each change.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cells.cell import Cell
from repro.cells.gate_types import GateKind
from repro.cells.library import Library
from repro.timing.delay_model import Edge


@dataclass(frozen=True)
class PathStage:
    """One gate position on a bounded path.

    Attributes
    ----------
    cell:
        The characterised cell occupying this position.
    cside_ff:
        Fixed off-path capacitance hanging at this stage's output (side
        fan-in of other paths, routing estimate).
    name:
        Optional instance name, kept when the path was extracted from a
        circuit so results can be written back.
    """

    cell: Cell
    cside_ff: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.cside_ff < 0:
            raise ValueError(f"cside_ff must be non-negative, got {self.cside_ff}")


@dataclass(frozen=True)
class BoundedPath:
    """An ordered chain of stages with fixed boundary conditions.

    Attributes
    ----------
    stages:
        Gate chain, input side first.
    cin_first_ff:
        Fixed input capacitance of the first gate (latch load budget).
    cterm_ff:
        Fixed terminal load (fF) at the last stage output.
    input_edge:
        Polarity of the switching event entering the path.
    tin_first_ps:
        Transition time of the path input signal.
    """

    stages: Tuple[PathStage, ...]
    cin_first_ff: float
    cterm_ff: float
    input_edge: Edge = Edge.RISE
    tin_first_ps: float = 0.0

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("a path needs at least one stage")
        if self.cin_first_ff <= 0:
            raise ValueError("cin_first_ff must be positive")
        if self.cterm_ff < 0:
            raise ValueError("cterm_ff must be non-negative")
        if self.tin_first_ps < 0:
            raise ValueError("tin_first_ps must be non-negative")

    def __len__(self) -> int:
        return len(self.stages)

    @property
    def cells(self) -> Tuple[Cell, ...]:
        """The cells along the path, input side first."""
        return tuple(stage.cell for stage in self.stages)

    @property
    def kinds(self) -> Tuple[GateKind, ...]:
        """The gate kinds along the path."""
        return tuple(stage.cell.kind for stage in self.stages)

    def fingerprint(self) -> Tuple:
        """Hashable identity of everything the sizing machinery reads.

        Two paths with equal fingerprints are interchangeable inputs to
        every pure path function (delay evaluation, the eq. 4 bounds,
        constraint distribution): same cell kinds, side loads, boundary
        conditions and polarity.  Stage names ride along so memo keys
        stay scoped to the netlist gates they came from.
        """
        return (
            tuple(
                (stage.cell.kind, stage.cside_ff, stage.name)
                for stage in self.stages
            ),
            self.cin_first_ff,
            self.cterm_ff,
            self.input_edge,
            self.tin_first_ps,
        )

    def edge_at(self, index: int) -> Edge:
        """Polarity of the switching input of stage ``index``."""
        edge = self.input_edge
        for stage in self.stages[:index]:
            if stage.cell.inverting:
                edge = edge.flipped
        return edge

    def min_sizes(self, library: Library) -> np.ndarray:
        """Minimum-drive sizing vector (stage 0 pinned to ``cin_first_ff``)."""
        sizes = np.array([stage.cell.cin_min(library.tech) for stage in self.stages])
        sizes[0] = self.cin_first_ff
        return sizes

    def clamp_sizes(self, sizes: Sequence[float], library: Library) -> np.ndarray:
        """Project a sizing vector onto the feasible box.

        Pins the first stage, and clamps every interior stage to its
        minimum available drive.
        """
        arr = np.asarray(sizes, dtype=float).copy()
        if arr.shape != (len(self.stages),):
            raise ValueError(
                f"expected {len(self.stages)} sizes, got shape {arr.shape}"
            )
        arr[0] = self.cin_first_ff
        for i, stage in enumerate(self.stages[1:], start=1):
            arr[i] = max(arr[i], stage.cell.cin_min(library.tech))
        return arr

    def with_stage_inserted(self, index: int, stage: PathStage) -> "BoundedPath":
        """A new path with ``stage`` inserted before position ``index``."""
        if not 0 <= index <= len(self.stages):
            raise ValueError(f"index {index} out of range")
        stages = self.stages[:index] + (stage,) + self.stages[index:]
        return replace(self, stages=stages)

    def with_stage_replaced(self, index: int, stage: PathStage) -> "BoundedPath":
        """A new path with position ``index`` substituted by ``stage``."""
        if not 0 <= index < len(self.stages):
            raise ValueError(f"index {index} out of range")
        stages = self.stages[:index] + (stage,) + self.stages[index + 1 :]
        return replace(self, stages=stages)

    def with_terminal_load(self, cterm_ff: float) -> "BoundedPath":
        """A new path with a different terminal load."""
        return replace(self, cterm_ff=cterm_ff)


def make_path(
    kinds: Iterable[GateKind],
    library: Library,
    cin_first_ff: Optional[float] = None,
    cterm_ff: Optional[float] = None,
    cside_ff: Optional[Sequence[float]] = None,
    input_edge: Edge = Edge.RISE,
    tin_first_ps: float = 0.0,
) -> BoundedPath:
    """Build a bounded path from a sequence of gate kinds.

    Defaults chosen for experiment ergonomics: the first drive defaults to
    twice ``CREF`` (a small latch budget) and the terminal load to
    ``8 * CREF`` (a register bank input) -- both overridable.
    """
    kind_list: List[GateKind] = list(kinds)
    if not kind_list:
        raise ValueError("kinds must be non-empty")
    cref = library.cref
    if cin_first_ff is None:
        cin_first_ff = 2.0 * cref
    if cterm_ff is None:
        cterm_ff = 8.0 * cref
    if cside_ff is None:
        side = [0.0] * len(kind_list)
    else:
        side = list(cside_ff)
        if len(side) != len(kind_list):
            raise ValueError("cside_ff must match the number of stages")
    stages = tuple(
        PathStage(cell=library.cell(kind), cside_ff=s, name=f"g{i}")
        for i, (kind, s) in enumerate(zip(kind_list, side))
    )
    return BoundedPath(
        stages=stages,
        cin_first_ff=cin_first_ff,
        cterm_ff=cterm_ff,
        input_edge=input_edge,
        tin_first_ps=tin_first_ps,
    )
