"""Human-readable timing reports on circuits: slacks, worst paths, slews.

The classic post-STA artifacts a designer reads before and after running
the optimization protocol.  Pure formatting/aggregation on top of
:mod:`repro.timing.sta` and :mod:`repro.timing.critical_paths`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cells.library import Library
from repro.netlist.circuit import Circuit
from repro.timing.critical_paths import k_critical_paths
from repro.timing.delay_model import Edge
from repro.timing.sta import StaResult, analyze


@dataclass(frozen=True)
class EndpointSlack:
    """Arrival and slack at one primary output."""

    net: str
    edge: Edge
    arrival_ps: float
    slack_ps: float


@dataclass(frozen=True)
class TimingReport:
    """Full timing annotation summary of a sized circuit.

    Attributes
    ----------
    tc_ps:
        The constraint the slacks are measured against.
    endpoints:
        Per primary output worst arrival and slack, worst first.
    worst_paths:
        Gate-name chains of the K worst paths with their delays.
    violated:
        Number of endpoints missing the constraint.
    """

    circuit_name: str
    tc_ps: float
    critical_delay_ps: float
    endpoints: Tuple[EndpointSlack, ...]
    worst_paths: Tuple[Tuple[Tuple[str, ...], float], ...]
    max_transition_ps: float

    @property
    def violated(self) -> int:
        """Number of endpoints missing the constraint."""
        return sum(1 for e in self.endpoints if e.slack_ps < 0)

    @property
    def worst_slack_ps(self) -> float:
        """Minimum endpoint slack (negative when timing is violated)."""
        return min(e.slack_ps for e in self.endpoints)

    def render(self) -> str:
        """Multi-line textual report (the classic ``report_timing`` look)."""
        lines = [
            f"Timing report -- {self.circuit_name}",
            f"  constraint      : {self.tc_ps:.1f} ps",
            f"  critical delay  : {self.critical_delay_ps:.1f} ps",
            f"  worst slack     : {self.worst_slack_ps:+.1f} ps"
            f"  ({self.violated} violated endpoint(s))",
            f"  max transition  : {self.max_transition_ps:.1f} ps",
            "  endpoints (worst first):",
        ]
        for endpoint in self.endpoints[:10]:
            lines.append(
                f"    {endpoint.net:<16} {endpoint.edge.value:<5}"
                f" arrival {endpoint.arrival_ps:8.1f}"
                f"  slack {endpoint.slack_ps:+8.1f}"
            )
        for index, (gates, delay) in enumerate(self.worst_paths, start=1):
            shown = " -> ".join(gates[:6]) + (" ..." if len(gates) > 6 else "")
            lines.append(f"  path #{index} ({delay:.1f} ps): {shown}")
        return "\n".join(lines)


def timing_report(
    circuit: Circuit,
    library: Library,
    tc_ps: float,
    k_paths: int = 3,
    sta: Optional[StaResult] = None,
) -> TimingReport:
    """Build a :class:`TimingReport` for a (possibly sized) circuit."""
    if tc_ps <= 0:
        raise ValueError("tc_ps must be positive")
    if sta is None:
        sta = analyze(circuit, library)

    endpoints: List[EndpointSlack] = []
    for net in circuit.outputs:
        per_net = sta.arrivals.get(net, {})
        if not per_net:
            continue
        edge, event = max(per_net.items(), key=lambda item: item[1].time_ps)
        endpoints.append(
            EndpointSlack(
                net=net,
                edge=edge,
                arrival_ps=event.time_ps,
                slack_ps=tc_ps - event.time_ps,
            )
        )
    endpoints.sort(key=lambda e: e.slack_ps)

    paths = k_critical_paths(circuit, library, k=k_paths)
    worst = tuple((p.gate_names, p.delay_ps) for p in paths)

    max_transition = max(
        (
            event.transition_ps
            for per_net in sta.arrivals.values()
            for event in per_net.values()
        ),
        default=0.0,
    )
    return TimingReport(
        circuit_name=circuit.name,
        tc_ps=tc_ps,
        critical_delay_ps=sta.critical_delay_ps,
        endpoints=tuple(endpoints),
        worst_paths=worst,
        max_transition_ps=max_transition,
    )
