"""Incremental STA: re-propagate only the affected fan-out cone.

Every sweep of the eq. 4 fixed point, every sensitivity probe and every
trial buffer insertion perturbs a handful of gates, yet the block-based
engine in :mod:`repro.timing.sta` rebuilds every arrival dict from
scratch.  :class:`IncrementalSta` keeps the full timing annotation of a
live :class:`~repro.netlist.circuit.Circuit` -- topological order,
fan-out map, per-gate sizes/loads, per-net arrival events -- and updates
it with a levelized worklist seeded at the changed gates: a gate is
re-evaluated once (its topological level orders the heap), and
propagation stops early wherever the recomputed arrivals are identical
to the stored ones (the change-propagation discipline of incremental
timers; only the affected cone pays).

Bit-identical contract
----------------------
``IncrementalSta`` shares the per-gate kernels of the full engine
(:func:`~repro.timing.sta.propagate_gate`,
:func:`~repro.timing.sta.gate_external_load`,
:func:`~repro.timing.sta.critical_endpoint`), recomputes loads in the
same fan-out-map order, and compares events exactly -- so after any
sequence of :meth:`update` / :meth:`refresh_structure` calls its state
equals a from-scratch :func:`~repro.timing.sta.analyze` of the current
circuit *bit for bit* (asserted by the randomized-edit equivalence
tests).  The full engine stays the oracle; this engine is the hot path.

Two kinds of change are supported:

* **sizing changes** -- mutate ``gate.cin_ff`` on the circuit, then call
  :meth:`update` with the gate names; loads of the fan-in drivers and
  the downstream cone re-propagate;
* **structural changes** -- insert/remove gates, rewire fan-in, move
  primary outputs (e.g.
  :func:`~repro.buffering.netlist_insertion.insert_buffer_pair` and its
  undo), then call :meth:`refresh_structure`; the structure tables are
  rebuilt (cheap dictionary work) and only gates whose size, load or
  fan-in actually differ seed the worklist.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.cells.library import Library
from repro.netlist.circuit import Circuit
from repro.netlist.wireload import WireLoadModel
from repro.timing.delay_model import Edge
from repro.timing.sta import (
    ArrivalEvent,
    StaResult,
    critical_endpoint,
    gate_external_load,
    propagate_gate,
)


@dataclass
class IncrementalStats:
    """Work counters: how much of the circuit each update actually paid.

    Attributes
    ----------
    full_builds:
        From-scratch propagations (construction and
        :meth:`IncrementalSta.rebuild`).
    updates:
        :meth:`IncrementalSta.update` calls.
    structure_refreshes:
        :meth:`IncrementalSta.refresh_structure` calls.
    gates_reevaluated:
        Gates popped off the worklist across all updates (full builds
        excluded) -- the incremental cost metric.
    cone_truncations:
        Re-evaluated gates whose arrivals came out identical, so their
        fan-out was *not* enqueued (the early-termination win).
    """

    full_builds: int = 0
    updates: int = 0
    structure_refreshes: int = 0
    gates_reevaluated: int = 0
    cone_truncations: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for logging."""
        return dict(self.__dict__)


class IncrementalSta:
    """Block-based STA over a live circuit with cone-limited updates.

    Parameters mirror :func:`~repro.timing.sta.analyze`; the engine owns
    a *reference* to ``circuit`` (not a copy): callers mutate the
    circuit, then tell the engine what changed.

    Notes
    -----
    :meth:`result` returns a view whose top-level dicts are snapshots
    but whose per-net event dicts are shared; the engine never mutates a
    per-net dict in place (it only replaces them), so returned results
    stay internally consistent after further updates.
    """

    def __init__(
        self,
        circuit: Circuit,
        library: Library,
        input_transition_ps: float = 0.0,
        output_load_ff: Optional[float] = None,
        wire_model: Optional[WireLoadModel] = None,
    ) -> None:
        self.circuit = circuit
        self.library = library
        self.input_transition_ps = input_transition_ps
        self.output_load_ff = (
            4.0 * library.cref if output_load_ff is None else output_load_ff
        )
        self.wire_model = wire_model
        self.stats = IncrementalStats()
        # Optional repro.obs tracer.  None (the default) keeps update()
        # on its fastest path: one None check per call, no span
        # bookkeeping -- the contract the benchmarks/test_perf_obs.py
        # overhead gate enforces.
        self.tracer: Optional[Any] = None
        self._arrivals: Dict[str, Dict[Edge, ArrivalEvent]] = {}
        self.rebuild()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IncrementalSta({self.circuit.name!r}, gates={len(self.circuit.gates)}, "
            f"updates={self.stats.updates})"
        )

    # -- structure tables ---------------------------------------------

    def _gate_size(self, name: str) -> float:
        gate = self.circuit.gates[name]
        if gate.cin_ff is not None:
            return gate.cin_ff
        return self.library.cell(gate.kind).cin_min(self.library.tech)

    def _gate_load(self, name: str) -> float:
        return gate_external_load(
            self._fanout.get(name, ()),
            self._sizes,
            name in self._output_set,
            self.output_load_ff,
            self.wire_model,
        )

    def _build_structure(self) -> None:
        """Topological order, levels, fan-out map and fan-in snapshot."""
        self._order: List[str] = self.circuit.topological_order()
        self._level: Dict[str, int] = {name: i for i, name in enumerate(self._order)}
        self._fanout: Dict[str, List[str]] = self.circuit.fanout_map()
        self._output_set: Set[str] = set(self.circuit.outputs)
        # Fan-in tuple and kind per gate: the rewiring/retyping part of
        # the structure diff (sizes and loads are diffed separately).
        self._fanin: Dict[str, Tuple[object, Tuple[str, ...]]] = {
            name: (gate.kind, gate.fanin) for name, gate in self.circuit.gates.items()
        }

    def _seed_inputs(self) -> None:
        event = ArrivalEvent(0.0, self.input_transition_ps)
        for net in self.circuit.inputs:
            if net not in self._arrivals:
                self._arrivals[net] = {Edge.RISE: event, Edge.FALL: event}

    # -- full build ----------------------------------------------------

    def rebuild(self) -> StaResult:
        """From-scratch propagation (the constructor's path)."""
        self.circuit.validate()
        self.stats.full_builds += 1
        self._build_structure()
        self._sizes: Dict[str, float] = {
            name: self._gate_size(name) for name in self.circuit.gates
        }
        self._loads: Dict[str, float] = {
            name: self._gate_load(name) for name in self.circuit.gates
        }
        self._arrivals = {}
        self._seed_inputs()
        for name in self._order:
            self._arrivals[name] = propagate_gate(
                self.circuit.gates[name],
                self.library,
                self._sizes[name],
                self._loads[name],
                self._arrivals,
            )
        self._refresh_critical()
        return self.result()

    def _refresh_critical(self) -> None:
        self.critical_delay_ps, self.critical_output = critical_endpoint(
            self._arrivals, self.circuit.outputs
        )

    # -- incremental updates -------------------------------------------

    def update(self, changed_gates: Iterable[str]) -> StaResult:
        """Re-propagate after sizing changes to ``changed_gates``.

        Gates whose size is in fact unchanged are skipped, so passing a
        superset (even every gate name) is correct and only costs the
        diff.  Raises ``KeyError`` on names that are not gates -- a
        structural edit requires :meth:`refresh_structure` instead.

        When a :attr:`tracer` is attached (and enabled) each update
        emits an ``sta.update`` event carrying the cone size actually
        re-evaluated; with no tracer the cost over :meth:`_update_core`
        is a single attribute check.
        """
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return self._update_core(changed_gates)
        before = self.stats.gates_reevaluated
        truncated_before = self.stats.cone_truncations
        result = self._update_core(changed_gates)
        tracer.event(
            "sta.update",
            circuit=self.circuit.name,
            cone_gates=self.stats.gates_reevaluated - before,
            cone_truncations=self.stats.cone_truncations - truncated_before,
        )
        return result

    def _update_core(self, changed_gates: Iterable[str]) -> StaResult:
        """The uninstrumented body of :meth:`update` (perf-gate baseline)."""
        self.stats.updates += 1
        dirty: Set[str] = set()
        load_dirty: Set[str] = set()
        for name in changed_gates:
            gate = self.circuit.gates[name]
            new_size = self._gate_size(name)
            if new_size != self._sizes[name]:
                self._sizes[name] = new_size
                dirty.add(name)
                for source in gate.fanin:
                    if source in self.circuit.gates:
                        load_dirty.add(source)
        for name in load_dirty:
            new_load = self._gate_load(name)
            if new_load != self._loads[name]:
                self._loads[name] = new_load
                dirty.add(name)
        if dirty:
            self._propagate(dirty)
        return self.result()

    def refresh_structure(self) -> StaResult:
        """Re-sync after structural edits (gates added/removed/rewired).

        Rebuilds the cheap structure tables, diffs sizes, loads and
        fan-in against the previous state, and re-propagates only from
        the gates that actually differ -- a trial buffer insertion pays
        dictionary work plus its fan-out cone, not a full STA.
        """
        self.circuit.validate()
        self.stats.structure_refreshes += 1
        old_sizes = self._sizes
        old_loads = self._loads
        old_fanin = self._fanin
        self._build_structure()
        self._sizes = {name: self._gate_size(name) for name in self.circuit.gates}
        self._loads = {name: self._gate_load(name) for name in self.circuit.gates}

        live = set(self.circuit.inputs) | set(self.circuit.gates)
        for net in list(self._arrivals):
            if net not in live:
                del self._arrivals[net]

        dirty: Set[str] = set()
        event = ArrivalEvent(0.0, self.input_transition_ps)
        seed = {Edge.RISE: event, Edge.FALL: event}
        for net in self.circuit.inputs:
            if self._arrivals.get(net) != seed:
                self._arrivals[net] = dict(seed)
                dirty.update(self._fanout.get(net, ()))
        for name in self.circuit.gates:
            if (
                name not in self._arrivals
                or old_sizes.get(name) != self._sizes[name]
                or old_loads.get(name) != self._loads[name]
                or old_fanin.get(name) != self._fanin[name]
            ):
                dirty.add(name)
        if dirty:
            self._propagate(dirty)
        else:
            self._refresh_critical()
        return self.result()

    def retarget(self, circuit: Circuit) -> StaResult:
        """Re-point the engine at a different :class:`Circuit` object.

        The warm-start primitive of the Tc-sweep layer: instead of paying
        a from-scratch build for every sweep point, the engine keeps the
        annotation of the previous point's circuit and re-propagates only
        what differs -- size diffs, load diffs, gates added or removed.
        The circuits need not share structure (``refresh_structure``
        diffs both ways), but the closer they are, the less is re-timed;
        the resulting annotation is bit-identical to a fresh build of the
        new circuit either way.
        """
        self.circuit = circuit
        return self.refresh_structure()

    def _propagate(self, seeds: Set[str]) -> None:
        """Levelized worklist from ``seeds``; stops where arrivals settle."""
        heap = [(self._level[name], name) for name in seeds]
        heapq.heapify(heap)
        queued = set(seeds)
        while heap:
            _, name = heapq.heappop(heap)
            queued.discard(name)
            self.stats.gates_reevaluated += 1
            best = propagate_gate(
                self.circuit.gates[name],
                self.library,
                self._sizes[name],
                self._loads[name],
                self._arrivals,
            )
            if best == self._arrivals.get(name):
                # Replace anyway: keeps dict insertion order canonical.
                self._arrivals[name] = best
                self.stats.cone_truncations += 1
                continue
            self._arrivals[name] = best
            for succ in self._fanout.get(name, ()):
                if succ not in queued:
                    queued.add(succ)
                    heapq.heappush(heap, (self._level[succ], succ))
        self._refresh_critical()

    # -- views ---------------------------------------------------------

    def result(self) -> StaResult:
        """Current annotation as a :class:`~repro.timing.sta.StaResult`.

        Top-level dicts are copied (stable against later updates); the
        per-net event dicts are shared but never mutated in place.
        """
        return StaResult(
            arrivals=dict(self._arrivals),
            loads_ff=dict(self._loads),
            critical_delay_ps=self.critical_delay_ps,
            critical_output=self.critical_output,
        )

    def arrival(self, net: str, edge: Edge) -> float:
        """Arrival time of ``edge`` at ``net`` (ps) in the current state."""
        return self._arrivals[net][edge].time_ps

    def sizes(self) -> Dict[str, float]:
        """Current per-gate input capacitances (a copy)."""
        return dict(self._sizes)
