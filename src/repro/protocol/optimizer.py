"""The POPS optimization protocol (Fig. 7) -- path and circuit drivers.

The protocol, verbatim from the paper:

1. **Library characterisation**: tabulate ``Flimit`` for every gate pair.
2. **Optimization-space characterisation**: classify paths, compute the
   delay bounds ``Tmax`` / ``Tmin``.
3. **Constraint distribution**:

   * ``Tc < Tmin``          -> structure modification (buffers, then De
     Morgan rewriting) until the constraint becomes feasible;
   * weak constraint        -> gate sizing (constant sensitivity);
   * medium constraint      -> buffer insertion for area reduction
     (kept only if it actually reduces the implementation area);
   * hard constraint        -> buffer insertion & global sizing.

The circuit driver applies the path protocol to the K most critical
paths, re-extracting after each pass (path interaction through the side
loads), until the circuit's critical delay meets the constraint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.buffering.insertion import (
    default_flimits,
    distribute_with_buffers,
    min_delay_with_buffers,
)
from repro.cells.library import Library
from repro.netlist.circuit import Circuit
from repro.protocol.domains import (
    ConstraintDomain,
    DomainClassification,
    classify_constraint,
)
from repro.restructuring.demorgan import (
    distribute_with_restructuring,
    restructurable_stages,
)
from repro.sizing.bounds import min_delay_bound
from repro.sizing.sensitivity import distribute_constraint
from repro.timing.critical_paths import apply_path_sizes, k_critical_paths
from repro.timing.incremental import IncrementalSta
from repro.timing.path import BoundedPath


@dataclass(frozen=True)
class ProtocolResult:
    """Outcome of the Fig. 7 protocol on one path.

    Attributes
    ----------
    method:
        The technique the protocol selected: ``"sizing"``,
        ``"buffering"``, ``"buffering+sizing"`` or ``"restructuring"``.
    path / sizes:
        The final (possibly structurally modified) implementation.
    area_um:
        Full implementation cost, including any off-path inverters
        introduced by restructuring.
    domain:
        The constraint classification that drove the selection.
    feasible:
        Whether the returned implementation meets ``Tc``.
    """

    method: str
    domain: DomainClassification
    path: BoundedPath
    sizes: np.ndarray
    delay_ps: float
    area_um: float
    tc_ps: float
    feasible: bool
    tmin_ps: float

    @property
    def slack_ps(self) -> float:
        """Constraint slack of the returned implementation (ps)."""
        return self.tc_ps - self.delay_ps


def optimize_path(
    path: BoundedPath,
    library: Library,
    tc_ps: float,
    limits: Optional[Dict] = None,
    allow_restructuring: bool = True,
    weight_mode: str = "uniform",
    conserve_structure: bool = False,
    tmin_ps: Optional[float] = None,
) -> ProtocolResult:
    """Run the full Fig. 7 protocol on one bounded path.

    ``conserve_structure`` keeps the path's gate list intact whenever the
    constraint is reachable by sizing alone (the circuit driver uses it so
    results can be written back onto the netlist; structural help is then
    applied at the netlist level).  ``tmin_ps`` lets callers that already
    ran the eq. 4 fixed point on this exact path (the Session facade, a
    Tc-sweep) skip recomputing it for the domain classification.
    """
    if tc_ps <= 0:
        raise ValueError("tc_ps must be positive")
    if limits is None:
        limits = default_flimits(library)

    if tmin_ps is not None:
        tmin = tmin_ps
    else:
        tmin, _, _, _ = min_delay_bound(path, library)
    classification = classify_constraint(tc_ps, tmin)
    domain = classification.domain

    if conserve_structure and domain in (
        ConstraintDomain.MEDIUM,
        ConstraintDomain.HARD,
    ):
        result = distribute_constraint(path, library, tc_ps, weight_mode=weight_mode)
        if result.feasible:
            return ProtocolResult(
                method="sizing",
                domain=classification,
                path=path,
                sizes=result.sizes,
                delay_ps=result.achieved_delay_ps,
                area_um=result.area_um,
                tc_ps=tc_ps,
                feasible=True,
                tmin_ps=tmin,
            )

    if domain is ConstraintDomain.WEAK:
        result = distribute_constraint(path, library, tc_ps, weight_mode=weight_mode)
        return ProtocolResult(
            method="sizing",
            domain=classification,
            path=path,
            sizes=result.sizes,
            delay_ps=result.achieved_delay_ps,
            area_um=result.area_um,
            tc_ps=tc_ps,
            feasible=result.feasible,
            tmin_ps=tmin,
        )

    if domain is ConstraintDomain.MEDIUM:
        plain = distribute_constraint(path, library, tc_ps, weight_mode=weight_mode)
        buffered, buffered_path, inserted = distribute_with_buffers(
            path, library, tc_ps, limits=limits, mode="global",
            weight_mode=weight_mode,
        )
        # Buffers are kept only when they reduce the implementation area.
        if inserted and buffered.feasible and buffered.area_um < plain.area_um:
            return ProtocolResult(
                method="buffering",
                domain=classification,
                path=buffered_path,
                sizes=buffered.sizes,
                delay_ps=buffered.achieved_delay_ps,
                area_um=buffered.area_um,
                tc_ps=tc_ps,
                feasible=buffered.feasible,
                tmin_ps=tmin,
            )
        return ProtocolResult(
            method="sizing",
            domain=classification,
            path=path,
            sizes=plain.sizes,
            delay_ps=plain.achieved_delay_ps,
            area_um=plain.area_um,
            tc_ps=tc_ps,
            feasible=plain.feasible,
            tmin_ps=tmin,
        )

    if domain is ConstraintDomain.HARD:
        buffered, buffered_path, inserted = distribute_with_buffers(
            path, library, tc_ps, limits=limits, mode="global",
            weight_mode=weight_mode,
        )
        if buffered.feasible:
            return ProtocolResult(
                method="buffering+sizing" if inserted else "sizing",
                domain=classification,
                path=buffered_path,
                sizes=buffered.sizes,
                delay_ps=buffered.achieved_delay_ps,
                area_um=buffered.area_um,
                tc_ps=tc_ps,
                feasible=True,
                tmin_ps=tmin,
            )
        # Fall through to structure modification.

    # Infeasible by sizing alone: structure modification.
    buffered_min = min_delay_with_buffers(path, library, limits=limits, mode="global")
    if buffered_min.delay_ps <= tc_ps:
        result = distribute_constraint(
            buffered_min.path, library, tc_ps, weight_mode=weight_mode
        )
        return ProtocolResult(
            method="buffering+sizing",
            domain=classification,
            path=buffered_min.path,
            sizes=result.sizes,
            delay_ps=result.achieved_delay_ps,
            area_um=result.area_um,
            tc_ps=tc_ps,
            feasible=result.feasible,
            tmin_ps=tmin,
        )

    if allow_restructuring and restructurable_stages(path):
        result, rewritten = distribute_with_restructuring(
            path, library, tc_ps, limits=limits, weight_mode=weight_mode
        )
        return ProtocolResult(
            method="restructuring",
            domain=classification,
            path=rewritten.path,
            sizes=result.sizes,
            delay_ps=result.achieved_delay_ps,
            area_um=result.area_um + rewritten.side_inverter_area_um,
            tc_ps=tc_ps,
            feasible=result.feasible,
            tmin_ps=tmin,
        )

    # Nothing met Tc: return the best (buffered minimum-delay) attempt.
    return ProtocolResult(
        method="buffering+sizing",
        domain=classification,
        path=buffered_min.path,
        sizes=buffered_min.sizes,
        delay_ps=buffered_min.delay_ps,
        area_um=buffered_min.area_um,
        tc_ps=tc_ps,
        feasible=buffered_min.delay_ps <= tc_ps,
        tmin_ps=tmin,
    )


def _apply_structural_outcome(
    working: Circuit,
    library: Library,
    candidate,
    outcome: ProtocolResult,
) -> bool:
    """Write a structure-modifying path outcome back onto the netlist.

    Buffered stages (``<gate>_buf<i>`` names) become polarity-preserving
    inverter pairs after the flagged gate; De Morgan rewrites
    (``<gate>_dm*`` names) apply the netlist-level NOR -> NAND transform.
    The surviving original gates then receive their optimized sizes.
    """
    from repro.buffering.netlist_insertion import insert_buffer_pair
    from repro.restructuring.demorgan import demorgan_nor_to_nand

    original = set(candidate.gate_names)
    touched = False
    buffered_gates = set()
    rewritten_gates = set()
    for stage in outcome.path.stages:
        if stage.name in original:
            continue
        base = stage.name
        if "_buf" in base:
            buffered_gates.add(base.split("_buf")[0])
        elif "_dm" in base:
            rewritten_gates.add(base.split("_dm")[0])
    for name in sorted(buffered_gates):
        if name in working.gates and f"{name}_bufa" not in working.gates:
            insert_buffer_pair(working, name, library)
            touched = True
    for name in sorted(rewritten_gates):
        gate = working.gates.get(name)
        if gate is not None and gate.kind.value.startswith("nor"):
            rewritten = demorgan_nor_to_nand(working, name)
            working.gates = rewritten.gates
            working.outputs = rewritten.outputs
            touched = True
    # Keep the original gates' optimized sizes where they survived.
    for stage, cin in zip(outcome.path.stages, outcome.sizes):
        if stage.name in original and stage.name in working.gates:
            working.gates[stage.name].cin_ff = float(cin)
            touched = True
    return touched


@dataclass
class CircuitOptimizationResult:
    """Outcome of the circuit-level driver.

    Attributes
    ----------
    critical_delay_ps:
        Post-optimization STA critical delay.
    path_results:
        Per-pass path protocol outcomes, in application order.
    passes:
        Number of extract-optimize-reapply rounds executed.
    """

    circuit: Circuit
    tc_ps: float
    critical_delay_ps: float
    feasible: bool
    path_results: List[ProtocolResult] = field(default_factory=list)
    passes: int = 0


def optimize_circuit(
    circuit: Circuit,
    library: Library,
    tc_ps: float,
    k_paths: int = 4,
    max_passes: int = 6,
    limits: Optional[Dict] = None,
    weight_mode: str = "uniform",
    allow_restructuring: bool = True,
) -> CircuitOptimizationResult:
    """Apply the path protocol over a circuit's critical paths.

    Pure sizing decisions are written back onto the netlist; passes where
    the protocol had to modify the structure keep the sizing of the
    original gates (structural write-back is the caller's choice, since
    it changes net names).  Iterates until the STA critical delay meets
    ``Tc`` or the improvement stalls.
    """
    if limits is None:
        limits = default_flimits(library)
    working = circuit.copy()
    results: List[ProtocolResult] = []
    passes = 0

    def snapshot() -> Dict[str, Optional[float]]:
        return {name: gate.cin_ff for name, gate in working.gates.items()}

    def restore(state: Dict[str, Optional[float]]) -> None:
        for name, cin in state.items():
            working.gates[name].cin_ff = cin

    # One incremental engine tracks ``working`` for the whole run: each
    # pass re-times only the fan-out cones of the gates it touched
    # instead of re-running full STA (bit-identical by construction).
    engine = IncrementalSta(working, library)
    best_state = snapshot()
    best_delay = engine.critical_delay_ps
    stalled_passes = 0
    for _ in range(max_passes):
        if best_delay <= tc_ps:
            break
        passes += 1
        extracted = k_critical_paths(working, library, k=k_paths, sta=engine.result())
        progressed = False
        for candidate in extracted:
            if candidate.delay_ps <= tc_ps:
                continue
            outcome = optimize_path(
                candidate.path,
                library,
                tc_ps,
                limits=limits,
                allow_restructuring=allow_restructuring,
                weight_mode=weight_mode,
                conserve_structure=True,
            )
            results.append(outcome)
            if len(outcome.path) == len(candidate.path):
                apply_path_sizes(working, candidate.gate_names, outcome.sizes)
                engine.update(candidate.gate_names)
                progressed = True
            else:
                if _apply_structural_outcome(working, library, candidate, outcome):
                    engine.refresh_structure()
                    progressed = True
        if not progressed:
            break
        # Sizing one path reloads adjacent paths (the interaction the
        # paper warns about).  A pass may regress transiently -- the next
        # extraction then targets the newly critical side path -- so keep
        # the best state seen and only stop after two stalled passes.
        delay_now = engine.critical_delay_ps
        if delay_now < best_delay - 1e-6:
            best_delay = delay_now
            best_state = snapshot()
            stalled_passes = 0
        else:
            stalled_passes += 1
            if stalled_passes >= 2:
                break

    restore(best_state)
    final = engine.update(best_state)
    return CircuitOptimizationResult(
        circuit=working,
        tc_ps=tc_ps,
        critical_delay_ps=final.critical_delay_ps,
        feasible=final.critical_delay_ps <= tc_ps,
        path_results=results,
        passes=passes,
    )
