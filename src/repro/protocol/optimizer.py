"""The POPS optimization protocol (Fig. 7) -- path and circuit drivers.

The protocol, verbatim from the paper:

1. **Library characterisation**: tabulate ``Flimit`` for every gate pair.
2. **Optimization-space characterisation**: classify paths, compute the
   delay bounds ``Tmax`` / ``Tmin``.
3. **Constraint distribution**:

   * ``Tc < Tmin``          -> structure modification (buffers, then De
     Morgan rewriting) until the constraint becomes feasible;
   * weak constraint        -> gate sizing (constant sensitivity);
   * medium constraint      -> buffer insertion for area reduction
     (kept only if it actually reduces the implementation area);
   * hard constraint        -> buffer insertion & global sizing.

The circuit driver applies the path protocol to the K most critical
paths, re-extracting after each pass (path interaction through the side
loads), until the circuit's critical delay meets the constraint.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.buffering.insertion import (
    default_flimits,
    distribute_with_buffers,
    min_delay_with_buffers,
)
from repro.cells.library import Library
from repro.netlist.circuit import Circuit, GateInstance
from repro.obs.telemetry import OptimizerTelemetry, PassTelemetry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.protocol.domains import (
    ConstraintDomain,
    DomainClassification,
    classify_constraint,
)
from repro.restructuring.demorgan import (
    distribute_with_restructuring,
    restructurable_stages,
)
from repro.sizing.bounds import min_delay_bound, tmin_memo
from repro.sizing.sensitivity import distribute_constraint
from repro.timing.critical_paths import apply_path_sizes, k_critical_paths
from repro.timing.incremental import IncrementalSta
from repro.timing.path import BoundedPath


@dataclass(frozen=True)
class ProtocolResult:
    """Outcome of the Fig. 7 protocol on one path.

    Attributes
    ----------
    method:
        The technique the protocol selected: ``"sizing"``,
        ``"buffering"``, ``"buffering+sizing"`` or ``"restructuring"``.
    path / sizes:
        The final (possibly structurally modified) implementation.
    area_um:
        Full implementation cost, including any off-path inverters
        introduced by restructuring.
    domain:
        The constraint classification that drove the selection.
    feasible:
        Whether the returned implementation meets ``Tc``.
    """

    method: str
    domain: DomainClassification
    path: BoundedPath
    sizes: np.ndarray
    delay_ps: float
    area_um: float
    tc_ps: float
    feasible: bool
    tmin_ps: float

    @property
    def slack_ps(self) -> float:
        """Constraint slack of the returned implementation (ps)."""
        return self.tc_ps - self.delay_ps


def optimize_path(
    path: BoundedPath,
    library: Library,
    tc_ps: float,
    limits: Optional[Dict] = None,
    allow_restructuring: bool = True,
    weight_mode: str = "uniform",
    conserve_structure: bool = False,
    tmin_ps: Optional[float] = None,
) -> ProtocolResult:
    """Run the full Fig. 7 protocol on one bounded path.

    ``conserve_structure`` keeps the path's gate list intact whenever the
    constraint is reachable by sizing alone (the circuit driver uses it so
    results can be written back onto the netlist; structural help is then
    applied at the netlist level).  ``tmin_ps`` lets callers that already
    ran the eq. 4 fixed point on this exact path (the Session facade, a
    Tc-sweep) skip recomputing it for the domain classification.
    """
    if tc_ps <= 0:
        raise ValueError("tc_ps must be positive")
    if limits is None:
        limits = default_flimits(library)

    if tmin_ps is not None:
        tmin = tmin_ps
    else:
        tmin, _, _, _ = min_delay_bound(path, library)
    classification = classify_constraint(tc_ps, tmin)
    domain = classification.domain

    if conserve_structure and domain in (
        ConstraintDomain.MEDIUM,
        ConstraintDomain.HARD,
    ):
        result = distribute_constraint(path, library, tc_ps, weight_mode=weight_mode)
        if result.feasible:
            return ProtocolResult(
                method="sizing",
                domain=classification,
                path=path,
                sizes=result.sizes,
                delay_ps=result.achieved_delay_ps,
                area_um=result.area_um,
                tc_ps=tc_ps,
                feasible=True,
                tmin_ps=tmin,
            )

    if domain is ConstraintDomain.WEAK:
        result = distribute_constraint(path, library, tc_ps, weight_mode=weight_mode)
        return ProtocolResult(
            method="sizing",
            domain=classification,
            path=path,
            sizes=result.sizes,
            delay_ps=result.achieved_delay_ps,
            area_um=result.area_um,
            tc_ps=tc_ps,
            feasible=result.feasible,
            tmin_ps=tmin,
        )

    if domain is ConstraintDomain.MEDIUM:
        plain = distribute_constraint(path, library, tc_ps, weight_mode=weight_mode)
        buffered, buffered_path, inserted = distribute_with_buffers(
            path, library, tc_ps, limits=limits, mode="global",
            weight_mode=weight_mode,
        )
        # Buffers are kept only when they reduce the implementation area.
        if inserted and buffered.feasible and buffered.area_um < plain.area_um:
            return ProtocolResult(
                method="buffering",
                domain=classification,
                path=buffered_path,
                sizes=buffered.sizes,
                delay_ps=buffered.achieved_delay_ps,
                area_um=buffered.area_um,
                tc_ps=tc_ps,
                feasible=buffered.feasible,
                tmin_ps=tmin,
            )
        return ProtocolResult(
            method="sizing",
            domain=classification,
            path=path,
            sizes=plain.sizes,
            delay_ps=plain.achieved_delay_ps,
            area_um=plain.area_um,
            tc_ps=tc_ps,
            feasible=plain.feasible,
            tmin_ps=tmin,
        )

    if domain is ConstraintDomain.HARD:
        buffered, buffered_path, inserted = distribute_with_buffers(
            path, library, tc_ps, limits=limits, mode="global",
            weight_mode=weight_mode,
        )
        if buffered.feasible:
            return ProtocolResult(
                method="buffering+sizing" if inserted else "sizing",
                domain=classification,
                path=buffered_path,
                sizes=buffered.sizes,
                delay_ps=buffered.achieved_delay_ps,
                area_um=buffered.area_um,
                tc_ps=tc_ps,
                feasible=True,
                tmin_ps=tmin,
            )
        # Fall through to structure modification.

    # Infeasible by sizing alone: structure modification.
    buffered_min = min_delay_with_buffers(path, library, limits=limits, mode="global")
    if buffered_min.delay_ps <= tc_ps:
        result = distribute_constraint(
            buffered_min.path, library, tc_ps, weight_mode=weight_mode
        )
        return ProtocolResult(
            method="buffering+sizing",
            domain=classification,
            path=buffered_min.path,
            sizes=result.sizes,
            delay_ps=result.achieved_delay_ps,
            area_um=result.area_um,
            tc_ps=tc_ps,
            feasible=result.feasible,
            tmin_ps=tmin,
        )

    if allow_restructuring and restructurable_stages(path):
        result, rewritten = distribute_with_restructuring(
            path, library, tc_ps, limits=limits, weight_mode=weight_mode
        )
        return ProtocolResult(
            method="restructuring",
            domain=classification,
            path=rewritten.path,
            sizes=result.sizes,
            delay_ps=result.achieved_delay_ps,
            area_um=result.area_um + rewritten.side_inverter_area_um,
            tc_ps=tc_ps,
            feasible=result.feasible,
            tmin_ps=tmin,
        )

    # Nothing met Tc: return the best (buffered minimum-delay) attempt.
    return ProtocolResult(
        method="buffering+sizing",
        domain=classification,
        path=buffered_min.path,
        sizes=buffered_min.sizes,
        delay_ps=buffered_min.delay_ps,
        area_um=buffered_min.area_um,
        tc_ps=tc_ps,
        feasible=buffered_min.delay_ps <= tc_ps,
        tmin_ps=tmin,
    )


def _apply_structural_outcome(
    working: Circuit,
    library: Library,
    candidate,
    outcome: ProtocolResult,
) -> bool:
    """Write a structure-modifying path outcome back onto the netlist.

    Buffered stages (``<gate>_buf<i>`` names) become polarity-preserving
    inverter pairs after the flagged gate; De Morgan rewrites
    (``<gate>_dm*`` names) apply the netlist-level NOR -> NAND transform.
    The surviving original gates then receive their optimized sizes.
    """
    from repro.buffering.netlist_insertion import insert_buffer_pair
    from repro.restructuring.demorgan import demorgan_nor_to_nand

    original = set(candidate.gate_names)
    touched = False
    buffered_gates = set()
    rewritten_gates = set()
    for stage in outcome.path.stages:
        if stage.name in original:
            continue
        base = stage.name
        if "_buf" in base:
            buffered_gates.add(base.split("_buf")[0])
        elif "_dm" in base:
            rewritten_gates.add(base.split("_dm")[0])
    for name in sorted(buffered_gates):
        if name in working.gates and f"{name}_bufa" not in working.gates:
            insert_buffer_pair(working, name, library)
            touched = True
    for name in sorted(rewritten_gates):
        gate = working.gates.get(name)
        if gate is not None and gate.kind.value.startswith("nor"):
            rewritten = demorgan_nor_to_nand(working, name)
            working.gates = rewritten.gates
            working.outputs = rewritten.outputs
            touched = True
    # Keep the original gates' optimized sizes where they survived.
    for stage, cin in zip(outcome.path.stages, outcome.sizes):
        if stage.name in original and stage.name in working.gates:
            working.gates[stage.name].cin_ff = float(cin)
            touched = True
    return touched


@dataclass
class WarmStart:
    """Carry-over state for warm-starting a sweep over one benchmark.

    Passing the same instance to consecutive :func:`optimize_circuit`
    calls on copies of one netlist makes each call *seed from the nearest
    already-solved neighbour* instead of starting cold:

    * ``engine`` -- the incremental STA engine of the previous call, left
      annotated with that call's best state.  The next call retargets it
      at its own working copy and re-times only the diff (sizes the
      neighbour moved, structure it added), not the whole circuit.
    * ``bounds_memo`` -- eq. 4 fixed-point solves
      (:func:`~repro.sizing.bounds.min_delay_bound`) keyed by path
      fingerprint; constraint points work on largely identical candidate
      paths, and a path's ``Tmin`` does not depend on ``Tc``.  Activated
      around the whole run via :func:`~repro.sizing.bounds.tmin_memo`,
      so the sizing/buffering/restructuring layers all share it.
    * ``extraction_memo`` -- K-critical-path extractions keyed by exact
      circuit state; every sweep point starts from the same netlist
      state, so the first pass's extraction is shared verbatim.

    Every memo serves values that are pure functions of their key, and
    the engine's annotation is bit-identical to a cold build by the
    incremental-STA contract -- warm-started results are therefore
    *identical* to cold ones, not merely close (the sweep determinism
    tests assert byte equality of the record payloads).

    A warm start is **bound to one library**: the first
    :func:`optimize_circuit` call pins ``library``, and later calls with
    a different one are rejected -- the memos' values embed that
    library's characterisation, and holding the reference also pins the
    ``id(library)`` component of the eq. 4 memo keys against id reuse.
    """

    engine: Optional[IncrementalSta] = None
    bounds_memo: Dict[Tuple, Tuple] = field(default_factory=dict)
    extraction_memo: Dict[Tuple, List] = field(default_factory=dict)
    library: Optional[Library] = None


@dataclass
class CircuitOptimizationResult:
    """Outcome of the circuit-level driver.

    Attributes
    ----------
    critical_delay_ps:
        Post-optimization STA critical delay.
    path_results:
        Per-pass path protocol outcomes, in application order.
    passes:
        Number of extract-optimize-reapply rounds executed.
    rescued_gates:
        Gates that received a netlist-level buffer pair in the opt-in
        ``rescue_buffers`` endgame (empty unless it ran and helped).
    telemetry:
        The pass-by-pass :class:`~repro.obs.telemetry.OptimizerTelemetry`
        of the run (delay trajectory, move accounting, rollback and
        rescue outcomes).  Always collected by :func:`optimize_circuit`;
        carried outside the serialized payload (the envelope's optional
        ``telemetry`` block), so payload bytes are unchanged.
    """

    circuit: Circuit
    tc_ps: float
    critical_delay_ps: float
    feasible: bool
    path_results: List[ProtocolResult] = field(default_factory=list)
    passes: int = 0
    rescued_gates: Tuple[str, ...] = ()
    telemetry: Optional[OptimizerTelemetry] = None


def optimize_circuit(
    circuit: Circuit,
    library: Library,
    tc_ps: float,
    k_paths: int = 4,
    max_passes: int = 6,
    limits: Optional[Dict] = None,
    weight_mode: str = "uniform",
    allow_restructuring: bool = True,
    warm: Optional[WarmStart] = None,
    rescue_buffers: bool = False,
    tracer: Optional[Tracer] = None,
) -> CircuitOptimizationResult:
    """Apply the path protocol over a circuit's critical paths.

    Pure sizing decisions are written back onto the netlist; passes where
    the protocol had to modify the structure keep the sizing of the
    original gates (structural write-back is the caller's choice, since
    it changes net names).  Iterates until the STA critical delay meets
    ``Tc`` or the improvement stalls.

    ``warm`` carries engine state and pure-function memos between calls
    of a Tc-sweep (see :class:`WarmStart`); it changes only how much work
    is re-done, never the result.

    ``rescue_buffers`` (opt-in) adds a netlist-level endgame when the
    path protocol alone leaves ``Tc`` unmet: greedy
    :func:`~repro.buffering.netlist_insertion.reduce_delay_with_buffers`
    rounds on the rolled-back best state, scored through the cone-sparse
    batch kernel when enough gates are flagged.  Insertions are kept
    only when they lower the critical delay, so the default
    (``False``) and any non-improving run leave the result unchanged.

    ``tracer`` (optional) records ``optimize.pass`` / ``optimize.path``
    spans on an enabled :class:`repro.obs.Tracer`; pass-level
    :class:`~repro.obs.telemetry.OptimizerTelemetry` is collected
    unconditionally (its cost is a few integers per pass) and attached
    to the returned result.  Neither changes the optimization outcome.
    """
    if limits is None:
        limits = default_flimits(library)
    if warm is not None:
        # The memos embed one library's characterisation; reusing them
        # under another would serve wrong extractions/bounds silently.
        if warm.library is None:
            warm.library = library
        elif warm.library is not library:
            raise ValueError(
                "WarmStart is bound to a different library; "
                "use one WarmStart per library"
            )
    working = circuit.copy()
    results: List[ProtocolResult] = []
    passes = 0

    # One incremental engine tracks ``working`` for the whole run: each
    # pass re-times only the fan-out cones of the gates it touched
    # instead of re-running full STA (bit-identical by construction).
    # A warm engine from a neighbouring sweep point is retargeted -- its
    # re-sync pays the neighbour-to-start diff instead of a full build.
    if warm is not None and warm.engine is not None:
        engine = warm.engine
        engine.retarget(working)
    else:
        engine = IncrementalSta(working, library)
    if warm is not None:
        warm.engine = engine
    # The run owns the engine's tracer attachment: enabled tracers see
    # ``sta.update`` events, anything else resets a possibly stale
    # attachment left by an earlier traced run on a warm engine.
    trc = tracer if tracer is not None and tracer.enabled else None
    engine.tracer = trc
    span_tracer = trc if trc is not None else NULL_TRACER

    def extract(first_pass: bool) -> List:
        # Only the *first* pass starts from a state shared across sweep
        # points (the pristine benchmark); later passes carry Tc-specific
        # sizing, so memoizing them would grow the warm state with
        # full-circuit keys that can essentially never hit again.
        if warm is None or not first_pass:
            return k_critical_paths(working, library, k=k_paths, sta=engine.result())
        key = (working.state_key(), k_paths)
        cached = warm.extraction_memo.get(key)
        if cached is None:
            cached = k_critical_paths(
                working, library, k=k_paths, sta=engine.result()
            )
            warm.extraction_memo[key] = cached
        return cached

    # The best state seen so far covers *structure and sizes*: a pass
    # after the snapshot may insert buffers or apply a De Morgan rewrite,
    # and rolling back only the sizes would corrupt the returned circuit
    # (orphaned buffers kept, rewritten gates missing -- the restore bug
    # this driver used to have).
    best_state = working.copy()
    best_delay = engine.critical_delay_ps
    stalled_passes = 0
    telemetry = OptimizerTelemetry(
        tc_ps=tc_ps, initial_delay_ps=engine.critical_delay_ps
    )
    best_pass = 0  # pass index whose end state is the best seen (0 = initial)
    # A warm run shares the eq. 4 fixed-point memo with every pure path
    # solver below this frame (sizing, buffering, restructuring); cold
    # runs (memo None) compute everything in place, identically.
    with tmin_memo(warm.bounds_memo if warm is not None else None):
        for _ in range(max_passes):
            if best_delay <= tc_ps:
                break
            passes += 1
            pass_started = time.perf_counter()
            pass_t = PassTelemetry(
                index=passes - 1, critical_delay_ps=float(best_delay)
            )
            with span_tracer.span("optimize.pass", index=passes - 1):
                extracted = extract(first_pass=passes == 1)
                pass_t.paths_extracted = len(extracted)
                progressed = False
                # Path outcomes within a pass never read the engine (they
                # work on the extraction-time path snapshots), so sizing
                # write-backs are batched into one cone update per pass
                # instead of one per candidate -- bit-identical by the
                # incremental-STA contract, since ``working`` carries every
                # size the moment it is applied.
                pending_updates: List[str] = []
                for candidate in extracted:
                    if candidate.delay_ps <= tc_ps:
                        pass_t.skipped += 1
                        continue
                    pass_t.proposed += 1
                    with span_tracer.span(
                        "optimize.path", delay_ps=float(candidate.delay_ps)
                    ) as path_span:
                        outcome = optimize_path(
                            candidate.path,
                            library,
                            tc_ps,
                            limits=limits,
                            allow_restructuring=allow_restructuring,
                            weight_mode=weight_mode,
                            conserve_structure=True,
                        )
                        path_span.set(
                            method=outcome.method,
                            feasible=bool(outcome.feasible),
                        )
                    results.append(outcome)
                    if len(outcome.path) == len(candidate.path):
                        apply_path_sizes(
                            working, candidate.gate_names, outcome.sizes
                        )
                        pending_updates.extend(candidate.gate_names)
                        pass_t.applied_sizing += 1
                        progressed = True
                    else:
                        if _apply_structural_outcome(
                            working, library, candidate, outcome
                        ):
                            # A structure refresh re-times from ``working``
                            # wholesale, subsuming any pending size updates.
                            engine.refresh_structure()
                            pending_updates.clear()
                            pass_t.applied_structural += 1
                            progressed = True
                if pending_updates:
                    engine.update(tuple(pending_updates))
                pass_t.critical_delay_ps = float(engine.critical_delay_ps)
                pass_t.elapsed_s = time.perf_counter() - pass_started
                telemetry.passes.append(pass_t)
            if not progressed:
                break
            # Sizing one path reloads adjacent paths (the interaction the
            # paper warns about).  A pass may regress transiently -- the
            # next extraction then targets the newly critical side path --
            # so keep the best state seen and only stop after two stalled
            # passes.
            delay_now = engine.critical_delay_ps
            if delay_now < best_delay - 1e-6:
                best_delay = delay_now
                best_state = working.copy()
                best_pass = passes
                stalled_passes = 0
            else:
                stalled_passes += 1
                if stalled_passes >= 2:
                    break

    # "Same structure" is exactly the structure-key invariant: equal gate
    # insertion order (load sums follow fan-out-map order), kinds, fan-in
    # and outputs -- only per-gate sizing may differ.
    if working.structure_key() == best_state.structure_key():
        # Pure-sizing rollback: feed the engine exactly the gates whose
        # size moved since the best snapshot, so the final re-time pays
        # only their fan-out cones (passing every gate name would make
        # the engine diff the whole circuit -- an O(circuit) update that
        # defeats the cone-limited design).
        changed = []
        for name, gate in best_state.gates.items():
            if working.gates[name].cin_ff != gate.cin_ff:
                working.gates[name].cin_ff = gate.cin_ff
                changed.append(name)
        final = engine.update(changed)
        telemetry.rollback = "sizing" if changed else "none"
    else:
        # Structural rollback: rebuild the gate table from the snapshot
        # (insertion order included) and let the engine diff both ways.
        working.gates = {
            gate.name: GateInstance(
                name=gate.name,
                kind=gate.kind,
                fanin=gate.fanin,
                cin_ff=gate.cin_ff,
            )
            for gate in best_state.gates.values()
        }
        working.outputs = list(best_state.outputs)
        final = engine.refresh_structure()
        telemetry.rollback = "structural"
    if telemetry.rollback != "none":
        telemetry.rolled_back_passes = passes - best_pass

    # Opt-in endgame: when the path protocol alone cannot meet Tc, try
    # netlist-level load dilution on the best state.  The greedy rounds
    # keep an insertion only when it strictly lowers the critical delay,
    # so a fruitless rescue changes nothing.
    rescued: Tuple[str, ...] = ()
    if rescue_buffers and final.critical_delay_ps > tc_ps:
        from repro.buffering.netlist_insertion import reduce_delay_with_buffers

        delay_before_rescue = float(final.critical_delay_ps)
        with span_tracer.span("optimize.rescue") as rescue_span:
            _, rescued, _ = reduce_delay_with_buffers(
                working, library, limits=limits, engine=engine
            )
            if rescued:
                final = engine.result()
            rescue_span.set(gates=len(rescued))
        telemetry.rescue = {
            "attempted": True,
            "gates": [str(name) for name in rescued],
            "delay_before_ps": delay_before_rescue,
            "delay_after_ps": float(final.critical_delay_ps),
        }

    telemetry.final_delay_ps = float(final.critical_delay_ps)
    return CircuitOptimizationResult(
        circuit=working,
        tc_ps=tc_ps,
        critical_delay_ps=final.critical_delay_ps,
        feasible=final.critical_delay_ps <= tc_ps,
        path_results=results,
        passes=passes,
        rescued_gates=rescued,
        telemetry=telemetry,
    )
