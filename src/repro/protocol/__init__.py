"""The POPS optimization protocol (Fig. 7): classification and drivers."""

from repro.protocol.domains import (
    HARD_THRESHOLD,
    WEAK_THRESHOLD,
    ConstraintDomain,
    DomainClassification,
    classify_constraint,
)
from repro.protocol.optimizer import (
    CircuitOptimizationResult,
    ProtocolResult,
    optimize_circuit,
    optimize_path,
)
from repro.protocol.report import format_gain, format_table

__all__ = [
    "ConstraintDomain",
    "DomainClassification",
    "classify_constraint",
    "WEAK_THRESHOLD",
    "HARD_THRESHOLD",
    "ProtocolResult",
    "optimize_path",
    "CircuitOptimizationResult",
    "optimize_circuit",
    "format_table",
    "format_gain",
]
