"""Plain-text reporting of protocol and experiment results.

The bench harness prints the same rows/series the paper's tables and
figures report; these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width ASCII table (no external deps)."""
    materialised: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in materialised:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == float("inf"):
            return "inf"
        magnitude = abs(cell)
        if magnitude >= 1000:
            return f"{cell:.0f}"
        if magnitude >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def format_gain(before: float, after: float) -> str:
    """Percentage improvement string (paper's "gain" rows)."""
    if before <= 0:
        return "n/a"
    return f"{100.0 * (1.0 - after / before):.0f}%"
