"""Constraint domain classification (Fig. 6 / Fig. 7).

The protocol routes a path to the cheapest adequate technique by locating
its delay constraint relative to the path's ``Tmin``:

* **weak**       ``Tc > 2.5 Tmin``   -- sizing alone; buffers buy nothing;
* **medium**     ``1.2 Tmin < Tc < 2.5 Tmin`` -- buffers are not *needed*
  but allow a smaller-area implementation;
* **hard**       ``Tmin <= Tc < 1.2 Tmin`` -- buffer insertion plus global
  sizing is the efficient alternative;
* **infeasible** ``Tc < Tmin``       -- only structure modification
  (buffering / De Morgan rewriting) can meet the constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

#: Domain boundaries from Fig. 6 of the paper, as multiples of Tmin.
WEAK_THRESHOLD = 2.5
HARD_THRESHOLD = 1.2


class ConstraintDomain(Enum):
    """Where a delay constraint sits relative to the path's capability."""

    WEAK = "weak"
    MEDIUM = "medium"
    HARD = "hard"
    INFEASIBLE = "infeasible"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class DomainClassification:
    """A classified constraint.

    Attributes
    ----------
    domain:
        The Fig. 6 region.
    severity:
        ``Tc / Tmin`` -- the dimensionless constraint hardness.
    """

    domain: ConstraintDomain
    tc_ps: float
    tmin_ps: float

    @property
    def severity(self) -> float:
        """``Tc / Tmin`` -- dimensionless constraint hardness."""
        return self.tc_ps / self.tmin_ps


def classify_constraint(
    tc_ps: float,
    tmin_ps: float,
    weak_threshold: float = WEAK_THRESHOLD,
    hard_threshold: float = HARD_THRESHOLD,
) -> DomainClassification:
    """Locate ``Tc`` in the weak/medium/hard/infeasible taxonomy."""
    if tc_ps <= 0:
        raise ValueError("tc_ps must be positive")
    if tmin_ps <= 0:
        raise ValueError("tmin_ps must be positive")
    if not 1.0 <= hard_threshold < weak_threshold:
        raise ValueError("need 1 <= hard_threshold < weak_threshold")
    ratio = tc_ps / tmin_ps
    if ratio < 1.0:
        domain = ConstraintDomain.INFEASIBLE
    elif ratio < hard_threshold:
        domain = ConstraintDomain.HARD
    elif ratio < weak_threshold:
        domain = ConstraintDomain.MEDIUM
    else:
        domain = ConstraintDomain.WEAK
    return DomainClassification(domain=domain, tc_ps=tc_ps, tmin_ps=tmin_ps)
