"""The campaign runner: warm-started, chunked, resumable sweeps.

``run_sweep`` walks a :class:`~repro.api.job.SweepSpec` grid through a
:class:`~repro.api.session.Session` and returns every per-point record
plus the Pareto summary.  Three mechanisms make a 20-point sweep cost
far less than 20 independent jobs, none of which may change a single
payload byte (the determinism tests compare warm against cold runs):

* the session's own memoization -- characterisation, benchmark parsing,
  bounds and extraction of the shared starting state are paid once;
* a :class:`~repro.protocol.optimizer.WarmStart` per benchmark group --
  each constraint point seeds its incremental STA engine from the
  nearest already-solved neighbour (its predecessor in the sorted
  grid) and shares the pure-function ``Tmin``/extraction memos;
* a chunked scheduler -- benchmark groups are independent, so they can
  fan out over the same process-pool machinery as
  :meth:`~repro.api.session.Session.optimize_many`, one warm chunk per
  worker, with the identical serial fallback and byte-identical
  payload guarantee.

With a :class:`~repro.explore.store.CampaignStore`, every completed
point is journaled immediately and ``resume=True`` serves journaled
points from disk instead of recomputing them.
"""

from __future__ import annotations

import logging
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.activity import ActivityReport, estimate_activity
from repro.analysis.power import estimate_power
from repro.api.job import Job, SweepSpec
from repro.api.records import KIND_OPTIMIZE_CIRCUIT, KIND_SWEEP, RunRecord
from repro.api.session import (
    JOB_ERROR_KEY,
    Session,
    worker_session,
)
from repro.resilience import faults
from repro.cells.library import Library
from repro.explore.store import CampaignError, CampaignStore
from repro.explore.summary import SweepSummary, summarize
from repro.obs.trace import Stopwatch
from repro.protocol.optimizer import WarmStart

#: Vector count for the summary's power estimates (matches Job default).
POWER_VECTORS = 128

#: Corner count / seed for the summary's Monte-Carlo yield column.
#: Small on purpose: a yield estimate per point, not a sign-off run
#: (``pops mc`` / ``Session.mc`` own the deep-sample workload).
YIELD_SAMPLES = 200
YIELD_SEED = 42

#: Per-point progress callback: ``(done, total, label)``.
ProgressFn = Callable[[int, int, str], None]

log = logging.getLogger("repro.explore")


class _ChunkJobError(Exception):
    """Internal wrapper: a *job* failed inside a pool chunk.

    Job errors can be arbitrary exceptions -- including ``OSError``
    subclasses such as a missing ``.bench`` file -- so re-raising them
    bare from the pool path would let them masquerade as
    pool-infrastructure failures and trigger a pointless full serial
    recompute before failing identically.  The wrapper keeps them out of
    the pool-supervision fallbacks; the runner unwraps it at the boundary.
    """

    def __init__(self, original: BaseException) -> None:
        super().__init__(str(original))
        self.original = original


@dataclass
class SweepResult:
    """Everything a finished campaign produced.

    Attributes
    ----------
    spec / records:
        The grid and its per-point run records, in grid order
        (resumed points carry their original journaled records).
    summary:
        Scalar metrics + Pareto frontier over all points.
    computed / resumed:
        How many points were run now vs served from the store.
    elapsed_s:
        Wall-clock time of this ``run_sweep`` call.
    """

    spec: SweepSpec
    records: List[RunRecord]
    summary: SweepSummary
    computed: int = 0
    resumed: int = 0
    elapsed_s: float = 0.0

    def record(self) -> RunRecord:
        """The campaign as one ``sweep`` run-record envelope.

        The payload carries the spec echo and the summary (JSON-native);
        the full per-point records live in the campaign store / in
        :attr:`records`, not in this envelope.
        """
        return RunRecord(
            kind=KIND_SWEEP,
            job=None,
            payload={
                "spec": self.spec.to_dict(),
                "summary": self.summary.to_dict(),
                "computed": int(self.computed),
                "resumed": int(self.resumed),
            },
            extra={"points": len(self.records)},
            elapsed_s=self.elapsed_s,
            created_unix=time.time(),
        )


def _chunks(jobs: Sequence[Job], chunk_size: Optional[int]) -> List[List[Job]]:
    """Split grid jobs into warm-startable chunks.

    One chunk per benchmark group (contiguous in grid order); large
    groups are further split to ``chunk_size`` so a many-point single
    benchmark can still use several workers.  Every chunk warm-starts
    internally from its own first point.
    """
    groups: List[List[Job]] = []
    for job in jobs:
        if groups and groups[-1][0].benchmark == job.benchmark:
            groups[-1].append(job)
        else:
            groups.append([job])
    if not chunk_size or chunk_size < 1:
        return groups
    out: List[List[Job]] = []
    for group in groups:
        for start in range(0, len(group), chunk_size):
            out.append(group[start : start + chunk_size])
    return out


def _run_chunk(
    session: Session,
    jobs: Sequence[Job],
    after_point: Optional[Callable[[Job, RunRecord], None]] = None,
) -> List[RunRecord]:
    """Run one chunk serially with a fresh warm-start carry."""
    warm = WarmStart()
    records = []
    for job in jobs:
        with session.tracer.span(
            "sweep.point", label=job.label or job.name
        ) as point_span:
            record = session.optimize(job, warm=warm)
            point_span.set(elapsed_s=float(record.elapsed_s))
        if after_point is not None:
            after_point(job, record)
        records.append(record)
    return records


def _sweep_chunk_worker(
    task: Tuple[Library, Dict, Optional[str], List[Dict]],
) -> List[Dict]:
    """Process-pool entry: run one warm chunk in a fresh session.

    Mirrors the batch runner's worker: the parent's Flimit table rides
    along so workers never re-characterise, records cross the process
    boundary serialized (which pins byte identity with the serial path),
    and job failures are marshalled -- distinguishable from pool
    breakage, which surfaces as the pool exception itself.
    """
    library, limits, bench_dir, job_dicts = task
    faults.maybe_crash(faults.SITE_WORKER_CRASH)
    session = worker_session(library, limits, bench_dir)
    warm = WarmStart()
    out: List[Dict] = []
    for job_dict in job_dicts:
        try:
            record = session.optimize(Job.from_dict(job_dict), warm=warm)
        except Exception as exc:  # marshalled, re-raised by the parent
            out.append({JOB_ERROR_KEY: exc})
            break
        out.append(record.to_dict())
    return out


def _parallel_chunks(
    session: Session,
    chunks: List[List[Job]],
    workers: int,
    on_chunk: Callable[[int, List[RunRecord]], None],
) -> None:
    """Fan warm chunks out to a process pool, streaming completions.

    ``on_chunk(chunk_index, records)`` fires as each chunk finishes --
    that call is the journaling commit point, so completed points hit
    the campaign store without waiting for slower chunks.  A chunk that
    failed partway still delivers its completed prefix; the marshalled
    job error is re-raised only after every chunk has been drained (and
    journaled).  Pool-infrastructure errors propagate to the caller,
    which falls back to the serial loop for whatever is not yet done.
    """
    from concurrent.futures import ProcessPoolExecutor, as_completed

    limits = session.flimits()
    first_error: Optional[BaseException] = None
    with ProcessPoolExecutor(max_workers=min(workers, len(chunks))) as pool:
        futures = {
            pool.submit(
                _sweep_chunk_worker,
                (
                    session.library,
                    limits,
                    session.bench_dir,
                    [job.to_dict() for job in chunk],
                ),
            ): index
            for index, chunk in enumerate(chunks)
        }
        for future in as_completed(futures):
            outcome = future.result()  # pool breakage raises here
            records: List[RunRecord] = []
            error: Optional[BaseException] = None
            for entry in outcome:
                if JOB_ERROR_KEY in entry:
                    error = entry[JOB_ERROR_KEY]
                    break
                records.append(
                    RunRecord.from_dict(entry, library=session.library)
                )
            on_chunk(futures[future], records)
            session.stats.jobs_run += len(records)
            if error is not None and first_error is None:
                first_error = error
    if first_error is not None:
        raise _ChunkJobError(first_error)


def _yield_for(
    session: Session,
    record: RunRecord,
    corners,
) -> Optional[float]:
    """Monte-Carlo yield of a circuit-scope point at its own ``tc_ps``.

    Evaluated by the batch corner engine over the session's
    structure-cached compilation: one corner draw (``corners``) is
    shared by every point, so a 20-point sweep pays one sampling and 20
    cheap batch propagations.  Path-scope points return ``None`` (no
    netlist to compile).
    """
    from repro.mc.kernel import batch_analyze

    if record.kind != KIND_OPTIMIZE_CIRCUIT:
        return None
    tc_ps = float(record.extra["tc_ps"])
    compiled = session.compiled(record.payload.circuit)
    return batch_analyze(compiled, corners).yield_at(tc_ps)


def _power_for(
    session: Session,
    record: RunRecord,
    activity_memo: Dict[Tuple, ActivityReport],
) -> Optional[float]:
    """Deterministic total power of a circuit-scope point (else None).

    Activity is a pure function of the logic structure (seeded
    Monte-Carlo over logic values), so it is memoized per structure key
    and shared by every sizing of the same netlist.
    """
    if record.kind != KIND_OPTIMIZE_CIRCUIT:
        return None
    circuit = record.payload.circuit
    key = circuit.structure_key()
    activity = activity_memo.get(key)
    if activity is None:
        activity = estimate_activity(circuit, n_vectors=POWER_VECTORS)
        activity_memo[key] = activity
    report = estimate_power(circuit, session.library, activity=activity)
    return float(report.total_uw)


def run_sweep(
    session: Session,
    spec: SweepSpec,
    store: Optional[Union[CampaignStore, str]] = None,
    resume: bool = False,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    with_power: bool = True,
    with_yield: bool = False,
    progress: Optional[ProgressFn] = None,
) -> SweepResult:
    """Run (or resume) a sweep campaign.

    Parameters
    ----------
    store:
        Campaign directory (or an opened store).  Every completed point
        is journaled immediately; without ``resume`` the journal must be
        empty (mixing two runs un-resumed would double-journal points).
    resume:
        Serve already-journaled points from the store instead of
        recomputing them.
    workers / chunk_size:
        Scale-out knobs: chunks (benchmark groups, optionally split to
        ``chunk_size`` points) fan out over a process pool; pool-less
        environments fall back to the serial loop transparently, with
        byte-identical payloads either way.
    with_power:
        Attach deterministic power estimates to circuit-scope summary
        points (the third Pareto objective).
    with_yield:
        Attach Monte-Carlo yields (fraction of :data:`YIELD_SAMPLES`
        process corners meeting each point's own ``tc_ps``) to
        circuit-scope summary points -- the fourth Pareto objective.
        One corner draw is shared across the whole campaign.
    progress:
        Optional ``(done, total, label)`` callback per completed point.
    """
    sw = Stopwatch()
    jobs = spec.jobs()
    if isinstance(store, (str, bytes)):
        store = CampaignStore(str(store))
    done_records: Dict[str, RunRecord] = {}
    if store is not None:
        store.initialize(spec)
        completed = store.completed_labels()
        if completed and not resume:
            raise CampaignError(
                f"{store.root}: campaign already holds {len(completed)} "
                "completed point(s); pass resume=True (or --resume) to "
                "continue it, or use a fresh directory"
            )
        if resume:
            journaled = store.load_records(library=session.library)
            wanted = {job.label for job in jobs}
            done_records = {
                label: rec for label, rec in journaled.items() if label in wanted
            }

    pending = [job for job in jobs if job.label not in done_records]
    total = len(jobs)
    reported = {"n": len(done_records)}

    def after_point(job: Job, record: RunRecord) -> None:
        if store is not None:
            store.append(job.label or job.name, record)
        reported["n"] += 1
        if progress is not None:
            progress(reported["n"], total, job.label or job.name)

    fresh: Dict[str, RunRecord] = {}
    chunks = _chunks(pending, chunk_size)
    if workers and workers > 1 and len(chunks) > 1:
        # Pool supervision, same contract as Session.optimize_many: a
        # transport/import error means "no subprocesses here" -- serial
        # fallback, once, with a log line; a BrokenProcessPool means a
        # worker *died mid-sweep* -- retry the not-yet-delivered chunks
        # once on a fresh pool (delivered chunks are already journaled,
        # so only the remainder re-runs) before surrendering to serial.
        for attempt in (0, 1):
            todo = _chunks(
                [j for j in pending if (j.label or j.name) not in fresh],
                chunk_size,
            )
            if not todo:
                break

            def on_chunk(
                index: int,
                records: List[RunRecord],
                _todo: List[List[Job]] = todo,
            ) -> None:
                for job, record in zip(_todo[index], records):
                    after_point(job, record)
                    fresh[job.label or job.name] = record

            try:
                _parallel_chunks(session, todo, workers, on_chunk)
                break
            except _ChunkJobError as exc:
                # A job itself failed: completed points are journaled,
                # the original exception surfaces (resume picks up from
                # there).
                raise exc.original
            except BrokenProcessPool as exc:
                session.stats.pool_broken += 1
                if attempt == 0:
                    session.stats.pool_retries += 1
                    log.warning(
                        "run_sweep: worker crashed mid-sweep (%s); "
                        "retrying the remaining chunks on a fresh pool",
                        exc,
                    )
                    continue
                session.stats.pool_fallbacks += 1
                log.error(
                    "run_sweep: pool broke again on retry (%s); finishing "
                    "the sweep serially",
                    exc,
                )
                break
            except (OSError, ImportError) as exc:
                # Pool infrastructure failure: "no subprocesses here",
                # not "job failed".  Chunks that did complete are
                # already journaled; the serial loop below transparently
                # picks up only the remainder.
                session.stats.pool_fallbacks += 1
                log.warning(
                    "run_sweep: process pool unavailable (%s); finishing "
                    "the sweep serially",
                    exc,
                )
                break
    remaining = [job for job in pending if (job.label or job.name) not in fresh]
    for chunk in _chunks(remaining, chunk_size):
        for record in _run_chunk(session, chunk, after_point=after_point):
            fresh[record.job.label or record.job.name] = record

    ordered: List[RunRecord] = []
    for job in jobs:
        record = fresh.get(job.label) or done_records.get(job.label)
        assert record is not None  # every job was run or resumed
        ordered.append(record)

    power_by_label: Dict[str, Optional[float]] = {}
    if with_power:
        activity_memo: Dict[Tuple, ActivityReport] = {}
        for record in ordered:
            label = record.job.name if record.job else ""
            power_by_label[label] = _power_for(session, record, activity_memo)

    yield_by_label: Dict[str, Optional[float]] = {}
    if with_yield:
        from repro.mc.corners import sample_corners

        corners = sample_corners(
            session.library.tech, n_samples=YIELD_SAMPLES, seed=YIELD_SEED
        )
        for record in ordered:
            label = record.job.name if record.job else ""
            yield_by_label[label] = _yield_for(session, record, corners)

    return SweepResult(
        spec=spec,
        records=ordered,
        summary=summarize(
            ordered,
            power_by_label=power_by_label,
            yield_by_label=yield_by_label,
        ),
        computed=len(fresh),
        resumed=len(done_records),
        elapsed_s=sw.elapsed_s,
    )
