"""Per-point metrics and Pareto frontiers of a finished sweep.

Every grid point of a campaign collapses to one :class:`SweepPoint` --
the scalar coordinates the paper's curves are drawn from (delay, area,
power against the constraint axis).  :class:`SweepSummary` holds them in
grid order and answers the two questions a sweep exists for: "what does
the trade-off table look like" (:meth:`SweepSummary.format`) and "which
implementations are worth keeping" (:meth:`SweepSummary.frontier`,
delay/area/power Pareto dominance per benchmark).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.pareto import pareto_indices
from repro.api.records import (
    KIND_OPTIMIZE_CIRCUIT,
    KIND_OPTIMIZE_PATH,
    RunRecord,
)
from repro.protocol.report import format_table

#: The objectives frontier extraction minimizes, in report order.
#: ``yield_frac`` is maximized, so it enters the dominance filter
#: negated (see :meth:`SweepPoint.objectives`).
OBJECTIVES = ("delay_ps", "area_um", "power_uw", "yield_frac")


@dataclass(frozen=True)
class SweepPoint:
    """One grid point's scalar outcome.

    ``power_uw`` is ``None`` for path-scope points (no netlist to run
    the power model on) and ``yield_frac`` is ``None`` unless the sweep
    attached Monte-Carlo yields; the dominance filter treats missing
    metrics as incomparable, so mixed campaigns still order cleanly.
    """

    label: str
    benchmark: str
    scope: str
    weight_mode: str
    restructuring: bool
    tc_ps: float
    tc_ratio: Optional[float]
    delay_ps: float
    area_um: float
    power_uw: Optional[float]
    feasible: bool
    method: str
    elapsed_s: float
    #: Fraction of sampled process corners meeting the point's own
    #: ``tc_ps`` (``repro.mc`` batch analysis); the fourth Pareto axis.
    yield_frac: Optional[float] = None

    def objectives(self) -> Tuple[Optional[float], ...]:
        """The minimized coordinate vector (delay, area, power, -yield)."""
        return (
            self.delay_ps,
            self.area_um,
            self.power_uw,
            None if self.yield_frac is None else -self.yield_frac,
        )


def point_from_record(
    record: RunRecord,
    power_uw: Optional[float] = None,
    yield_frac: Optional[float] = None,
) -> SweepPoint:
    """Collapse one optimize record to its sweep coordinates."""
    job = record.job
    if job is None:
        raise ValueError("sweep points need the job echo on the record")
    tc_ps = float(record.extra["tc_ps"])
    tmin_ps = record.extra.get("tmin_ps")
    tc_ratio = None if not tmin_ps else tc_ps / float(tmin_ps)
    if record.kind == KIND_OPTIMIZE_CIRCUIT:
        outcome = record.payload
        delay = float(outcome.critical_delay_ps)
        area = float(record.extra["area_um"])
        feasible = bool(outcome.feasible)
        method = f"{outcome.passes} passes"
    elif record.kind == KIND_OPTIMIZE_PATH:
        outcome = record.payload
        delay = float(outcome.delay_ps)
        area = float(outcome.area_um)
        feasible = bool(outcome.feasible)
        method = outcome.method
    else:
        raise ValueError(f"not an optimize record: {record.kind!r}")
    return SweepPoint(
        label=job.name,
        benchmark=job.benchmark or "<inline>",
        scope=job.scope,
        weight_mode=job.weight_mode,
        restructuring=job.allow_restructuring,
        tc_ps=tc_ps,
        tc_ratio=tc_ratio,
        delay_ps=delay,
        area_um=area,
        power_uw=power_uw,
        feasible=feasible,
        method=method,
        elapsed_s=float(record.elapsed_s),
        yield_frac=yield_frac,
    )


@dataclass(frozen=True)
class SweepSummary:
    """All points of a campaign, in grid order."""

    points: Tuple[SweepPoint, ...]

    def __len__(self) -> int:
        return len(self.points)

    def benchmarks(self) -> Tuple[str, ...]:
        """Benchmark names in first-appearance order."""
        seen: List[str] = []
        for point in self.points:
            if point.benchmark not in seen:
                seen.append(point.benchmark)
        return tuple(seen)

    def frontier(self, benchmark: Optional[str] = None) -> Tuple[SweepPoint, ...]:
        """The delay/area/power non-dominated points.

        Dominance is evaluated *within* each benchmark -- a small
        circuit's area must not erase a big circuit's whole curve --
        and the union is returned (or one benchmark's slice).
        """
        names = (benchmark,) if benchmark is not None else self.benchmarks()
        out: List[SweepPoint] = []
        for name in names:
            group = [p for p in self.points if p.benchmark == name]
            for index in pareto_indices([p.objectives() for p in group]):
                out.append(group[index])
        return tuple(out)

    def frontier_labels(self) -> Tuple[str, ...]:
        """Labels of the frontier points (store/record cross-reference)."""
        return tuple(point.label for point in self.frontier())

    def format(self) -> str:
        """Fixed-width trade-off table; ``*`` marks frontier points."""
        on_frontier = set(self.frontier_labels())
        rows = []
        for p in self.points:
            rows.append(
                (
                    "*" if p.label in on_frontier else "",
                    p.benchmark,
                    f"{p.tc_ps:.1f}",
                    "-" if p.tc_ratio is None else f"{p.tc_ratio:.2f}",
                    p.weight_mode,
                    "yes" if p.restructuring else "no",
                    f"{p.delay_ps:.1f}",
                    f"{p.area_um:.1f}",
                    "-" if p.power_uw is None else f"{p.power_uw:.2f}",
                    "-" if p.yield_frac is None else f"{p.yield_frac:.3f}",
                    "yes" if p.feasible else "no",
                    p.method,
                )
            )
        return format_table(
            (
                "pareto",
                "circuit",
                "Tc (ps)",
                "Tc/Tmin",
                "weights",
                "restruct",
                "delay (ps)",
                "area (um)",
                "power (uW)",
                "yield",
                "feasible",
                "method",
            ),
            rows,
        )

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native representation (the sweep record payload core)."""
        return {
            "points": [asdict(point) for point in self.points],
            "frontier": list(self.frontier_labels()),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepSummary":
        """Rebuild a summary from :meth:`to_dict` output."""
        return cls(
            points=tuple(SweepPoint(**point) for point in data["points"])
        )


def summarize(
    records: Sequence[RunRecord],
    power_by_label: Optional[Dict[str, Optional[float]]] = None,
    yield_by_label: Optional[Dict[str, Optional[float]]] = None,
) -> SweepSummary:
    """Build the summary for a list of optimize records in grid order."""
    power_by_label = power_by_label or {}
    yield_by_label = yield_by_label or {}
    return SweepSummary(
        points=tuple(
            point_from_record(
                record,
                power_uw=power_by_label.get(record.job.name if record.job else ""),
                yield_frac=yield_by_label.get(
                    record.job.name if record.job else ""
                ),
            )
            for record in records
        )
    )
