"""Resumable on-disk campaign store: a manifest plus a record journal.

Layout (one directory per campaign)::

    <root>/
      manifest.json    # {"format": 1, "spec": SweepSpec.to_dict()}
      records.jsonl    # one line per completed grid point

Each ``records.jsonl`` line is a self-contained JSON object::

    {"label": "<point label>", "record": RunRecord.to_dict()}

with the full lossless run-record envelope (timing metadata included).
Appending a line is the commit point of a grid point; the journal is
append-only and never rewritten.  A killed *serial* campaign therefore
loses at most the point it was computing; a *parallel* campaign
journals as each worker chunk is delivered to the parent, so a kill
additionally loses the not-yet-delivered points of in-flight chunks
(bound by ``chunk_size``).  On resume, well-formed lines name the completed
points (their labels are the :meth:`repro.api.job.SweepSpec.point_label`
identities) and are served back from disk; a torn final line from a
crash mid-write simply does not parse and its point is re-run.  The
manifest pins the spec: re-opening a store with a different grid is an
error, not a silent mix of two campaigns.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, Optional, Tuple

from repro.api.job import SweepSpec
from repro.api.records import RunRecord
from repro.cells.library import Library

#: On-disk format version written to (and checked in) the manifest.
FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"
RECORDS_NAME = "records.jsonl"


class CampaignError(RuntimeError):
    """A campaign directory that cannot be (re)used as requested."""


class CampaignStore:
    """Append-only journal of one sweep campaign's run records."""

    def __init__(self, root: str) -> None:
        self.root = str(root)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CampaignStore({self.root!r})"

    @property
    def manifest_path(self) -> str:
        """Path of the spec-pinning manifest."""
        return os.path.join(self.root, MANIFEST_NAME)

    @property
    def records_path(self) -> str:
        """Path of the append-only record journal."""
        return os.path.join(self.root, RECORDS_NAME)

    # -- lifecycle -----------------------------------------------------

    def initialize(self, spec: SweepSpec) -> None:
        """Create the campaign directory or verify it matches ``spec``.

        A fresh directory gets a manifest; an existing one must carry a
        manifest whose spec is identical (label included) -- resuming a
        *different* grid into the same journal would silently interleave
        two campaigns.
        """
        os.makedirs(self.root, exist_ok=True)
        if os.path.exists(self.manifest_path):
            with open(self.manifest_path, encoding="utf-8") as handle:
                manifest = json.load(handle)
            if manifest.get("format") != FORMAT_VERSION:
                raise CampaignError(
                    f"{self.manifest_path}: unsupported campaign format "
                    f"{manifest.get('format')!r}"
                )
            if manifest.get("spec") != spec.to_dict():
                raise CampaignError(
                    f"{self.root}: campaign was created for a different sweep "
                    "spec; use a fresh directory (or the original spec)"
                )
            return
        with open(self.manifest_path, "w", encoding="utf-8") as handle:
            json.dump(
                {"format": FORMAT_VERSION, "spec": spec.to_dict()},
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")

    def spec(self) -> SweepSpec:
        """The spec this campaign was created for."""
        with open(self.manifest_path, encoding="utf-8") as handle:
            return SweepSpec.from_dict(json.load(handle)["spec"])

    # -- journal -------------------------------------------------------

    def _lines(self) -> Iterator[Tuple[str, dict]]:
        """Well-formed ``(label, record dict)`` journal entries.

        Malformed lines (a torn write from a crash) are skipped: their
        points read as not-yet-completed and are simply re-run.
        """
        if not os.path.exists(self.records_path):
            return
        with open(self.records_path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(entry, dict) or "label" not in entry:
                    continue
                yield str(entry["label"]), entry.get("record") or {}

    def completed_labels(self) -> Dict[str, int]:
        """``label -> journal position`` of every completed point."""
        return {label: i for i, (label, _) in enumerate(self._lines())}

    def append(self, label: str, record: RunRecord) -> None:
        """Journal one completed grid point (the point's commit)."""
        line = json.dumps(
            {"label": label, "record": record.to_dict()}, sort_keys=True
        )
        with open(self.records_path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")

    def load_records(
        self, library: Optional[Library] = None
    ) -> Dict[str, RunRecord]:
        """Rebuild every journaled record, keyed by point label.

        Duplicate labels keep the *first* journaled record, matching the
        resume semantics (a completed point is never re-run, so a later
        duplicate can only come from tampering).
        """
        out: Dict[str, RunRecord] = {}
        for label, data in self._lines():
            if label not in out:
                out[label] = RunRecord.from_dict(data, library=library)
        return out
