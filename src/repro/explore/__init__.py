"""Tc-sweep campaigns and Pareto exploration over the POPS protocol.

The paper's whole story is curves over the constraint axis; this package
turns one :class:`~repro.api.session.Session` into those curves::

    from repro.api import Session, SweepSpec
    from repro.explore import run_sweep

    spec = SweepSpec(benchmarks=("c432",), tc_ratio_points=(1.1, 1.3, 1.6))
    result = run_sweep(Session(), spec, store="campaigns/c432", resume=True)
    print(result.summary.format())          # trade-off table, * = Pareto
    best = result.summary.frontier()        # delay/area/power frontier

Sweep points over one benchmark are warm-started (neighbour-seeded
incremental STA engines, shared bounds/extraction memos) yet produce
payloads byte-identical to cold runs; campaigns journal every completed
point to disk and resume by skipping them.
"""

from repro.explore.runner import SweepResult, run_sweep
from repro.explore.store import CampaignError, CampaignStore
from repro.explore.summary import (
    OBJECTIVES,
    SweepPoint,
    SweepSummary,
    point_from_record,
    summarize,
)

__all__ = [
    "run_sweep",
    "SweepResult",
    "CampaignStore",
    "CampaignError",
    "SweepPoint",
    "SweepSummary",
    "OBJECTIVES",
    "point_from_record",
    "summarize",
]
