"""Seeded synthetic ISCAS-like circuit generator.

The protocol under study operates on *extracted bounded paths*; what
matters about a benchmark is (a) the length and gate-type mix of its
critical path, (b) the off-path fan-out loading along it, and (c) the
amount of surrounding logic.  The generator builds circuits with exactly
those knobs:

* a **spine** -- a chain of ``path_gates`` gates drawn from a seeded kind
  mix, guaranteed (by construction) to be the deepest path;
* **side logic** -- shallow input trees feeding the spine's side pins;
* **filler fan-out** -- small gate clusters hanging off spine nodes, which
  both load the spine (creating the overloaded nodes buffer insertion
  targets) and bring the total gate count up to the real circuit's size.

Everything is driven by :class:`~repro.iscas.profiles.BenchmarkProfile`
and a deterministic ``numpy`` generator, so each named benchmark is fully
reproducible.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.cells.gate_types import GateKind, num_inputs
from repro.iscas.profiles import BenchmarkProfile
from repro.netlist.circuit import Circuit

#: Spine kind mix (weights are renormalised after the NOR share is set).
_SPINE_KINDS = (
    GateKind.INV,
    GateKind.NAND2,
    GateKind.NAND3,
    GateKind.AND2,
    GateKind.OR2,
    GateKind.XOR2,
)
_SPINE_WEIGHTS = (0.34, 0.27, 0.10, 0.12, 0.09, 0.08)

_FILLER_KINDS = (
    GateKind.INV,
    GateKind.NAND2,
    GateKind.NOR2,
    GateKind.AND2,
    GateKind.OR2,
)
_FILLER_WEIGHTS = (0.30, 0.28, 0.16, 0.14, 0.12)


def _choose_spine_kinds(
    rng: np.random.Generator, length: int, nor_fraction: float
) -> List[GateKind]:
    """Draw the spine gate kinds; NORs are injected at the requested rate."""
    base = rng.choice(len(_SPINE_KINDS), size=length, p=np.array(_SPINE_WEIGHTS))
    kinds: List[GateKind] = [_SPINE_KINDS[i] for i in base]
    n_nor = int(round(nor_fraction * length))
    if n_nor:
        positions = rng.choice(length, size=min(n_nor, length), replace=False)
        for pos in positions:
            kinds[pos] = GateKind.NOR2 if rng.random() < 0.75 else GateKind.NOR3
    # The last spine gate drives the primary output; keep it simple.
    kinds[-1] = GateKind.INV if kinds[-1] is GateKind.XOR2 else kinds[-1]
    return kinds


def generate_circuit(prof: BenchmarkProfile) -> Circuit:
    """Build the synthetic benchmark described by ``prof``."""
    rng = np.random.default_rng(prof.seed)
    circuit = Circuit(prof.name)

    n_inputs = max(8, prof.total_gates // 12)
    inputs = [circuit.add_input(f"i{j}") for j in range(n_inputs)]

    spine_kinds = _choose_spine_kinds(rng, prof.path_gates, prof.nor_fraction)

    # Shallow side nets: single gates on primary inputs, depth 1, so the
    # spine is always the unique deepest chain.
    side_pool: List[str] = list(inputs)
    n_side = max(4, prof.path_gates // 2)
    for j in range(n_side):
        kind = _FILLER_KINDS[rng.integers(len(_FILLER_KINDS))]
        fanin = [inputs[rng.integers(n_inputs)] for _ in range(num_inputs(kind))]
        net = circuit.add_gate(f"sd{j}", kind, fanin).name
        side_pool.append(net)

    # The spine itself.
    previous = inputs[0]
    spine: List[str] = []
    for position, kind in enumerate(spine_kinds):
        fanin = [previous]
        for _ in range(num_inputs(kind) - 1):
            fanin.append(side_pool[rng.integers(len(side_pool))])
        net = circuit.add_gate(f"sp{position}", kind, fanin).name
        spine.append(net)
        previous = net
    circuit.add_output(previous)

    # Filler fan-out clusters: load the spine according to the profile.
    remaining = max(prof.total_gates - len(circuit), 0)
    filler_id = 0
    spine_loads = rng.poisson(lam=prof.heavy_fanout, size=len(spine))
    # A few deliberately overloaded nodes (the Table 2/3 targets).
    n_hot = max(1, len(spine) // 8)
    hot_positions = rng.choice(len(spine) - 1, size=n_hot, replace=False)
    for pos in hot_positions:
        spine_loads[pos] += int(2 + 3 * prof.heavy_fanout)

    for position, load in enumerate(spine_loads):
        for _ in range(int(load)):
            if remaining <= 0:
                break
            kind = _FILLER_KINDS[rng.integers(len(_FILLER_KINDS))]
            fanin = [spine[position]]
            for _ in range(num_inputs(kind) - 1):
                fanin.append(side_pool[rng.integers(len(side_pool))])
            net = circuit.add_gate(f"fl{filler_id}", kind, fanin).name
            filler_id += 1
            remaining -= 1
            if rng.random() < 0.3:
                circuit.add_output(net)

    # Bulk filler off primary inputs / side nets, to reach the target size
    # without deepening anything.
    bulk_pool = list(side_pool)
    while remaining > 0:
        kind = _FILLER_KINDS[rng.integers(len(_FILLER_KINDS))]
        fanin = [bulk_pool[rng.integers(len(bulk_pool))] for _ in range(num_inputs(kind))]
        net = circuit.add_gate(f"bk{filler_id}", kind, fanin).name
        filler_id += 1
        remaining -= 1
        if rng.random() < 0.15:
            circuit.add_output(net)

    if not circuit.outputs:
        circuit.add_output(spine[-1])
    circuit.validate()
    return circuit
