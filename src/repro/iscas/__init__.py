"""Benchmark suite: the paper's ISCAS'85 circuits and stand-ins."""

from repro.iscas.generator import generate_circuit
from repro.iscas.loader import benchmark_names, load_benchmark
from repro.iscas.profiles import PAPER_ORDER, PROFILES, BenchmarkProfile, profile

__all__ = [
    "BenchmarkProfile",
    "PROFILES",
    "PAPER_ORDER",
    "profile",
    "generate_circuit",
    "load_benchmark",
    "benchmark_names",
]
