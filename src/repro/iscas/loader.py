"""Benchmark loading: exact builders, synthetic generator, ``.bench`` files.

``load_benchmark("c432")`` returns the synthetic stand-in; pointing
``bench_dir`` at a directory of real ISCAS'85 ``.bench`` files transparently
upgrades every experiment to the original netlists.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import List, Optional

from repro.iscas.generator import generate_circuit
from repro.iscas.profiles import PAPER_ORDER, PROFILES, profile
from repro.netlist.bench_parser import load_bench
from repro.netlist.builders import ripple_carry_adder
from repro.netlist.circuit import Circuit


def benchmark_names() -> List[str]:
    """All registered benchmark names in the paper's figure order."""
    ordered = [name for name in PAPER_ORDER]
    extras = sorted(set(PROFILES) - set(PAPER_ORDER))
    return ordered + extras


@lru_cache(maxsize=None)
def _cached_benchmark(name: str) -> Circuit:
    prof = profile(name)
    if not prof.synthetic:
        if name != "adder16":
            raise ValueError(f"no exact builder registered for {name!r}")
        return ripple_carry_adder(16, name="adder16")
    return generate_circuit(prof)


def load_benchmark(name: str, bench_dir: Optional[str] = None) -> Circuit:
    """Load a benchmark circuit by paper name.

    Parameters
    ----------
    bench_dir:
        Optional directory containing real ``<name>.bench`` netlists;
        when present the real netlist is parsed instead of the synthetic
        stand-in.

    Returns a fresh copy -- callers may freely mutate sizing state.
    """
    if bench_dir is not None:
        candidate = os.path.join(bench_dir, f"{name}.bench")
        if os.path.exists(candidate):
            return load_bench(candidate)
    return _cached_benchmark(name).copy()
