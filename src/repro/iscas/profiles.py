"""Benchmark registry: the paper's circuits and their published figures.

The paper reports, per benchmark, the number of gates on the selected
critical path (Table 1 "Gate nb") plus qualitative behaviour (buffer
insertion gains in Table 3).  Real ISCAS'85 netlists are not distributable
inside this repository, so each entry carries the parameters of a seeded
synthetic stand-in (see :mod:`repro.iscas.generator`) whose *critical path
length matches the paper exactly* and whose fan-out profile is tuned to the
circuit's published buffering sensitivity.  ``adder16`` is built exactly
(NAND-level ripple-carry adder); any real ``.bench`` file can be swapped in
through :func:`repro.iscas.loader.load_benchmark`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class BenchmarkProfile:
    """Generation and bookkeeping parameters of one benchmark.

    Attributes
    ----------
    name:
        Paper name (``c432`` ... ``c7552``, ``adder16``, ``fpd``).
    path_gates:
        Critical-path gate count from the paper's Table 1.
    total_gates:
        Approximate full-circuit gate count (public ISCAS'85 figures),
        used to scale the synthetic filler logic.
    heavy_fanout:
        Mean off-path fan-out multiplier on the spine.  Larger values
        create the overloaded nodes that make buffer insertion profitable
        (Table 3 gains).
    nor_fraction:
        Share of NOR gates on the spine -- the restructuring candidates
        of Table 4.
    seed:
        Deterministic generator seed.
    synthetic:
        False for circuits built exactly (adder16).
    """

    name: str
    path_gates: int
    total_gates: int
    heavy_fanout: float
    nor_fraction: float
    seed: int
    synthetic: bool = True


#: Paper Table 1 "Gate nb" column, with generation profiles tuned to the
#: Table 3 buffering gains (gain % recorded in the comment).
PROFILES: Dict[str, BenchmarkProfile] = {
    profile.name: profile
    for profile in (
        # adder16 is exact; its path length is a property of the NAND
        # decomposition, not a generator input (gain 3%).
        BenchmarkProfile("adder16", 36, 144, 1.0, 0.00, 1601, synthetic=False),
        BenchmarkProfile("fpd", 14, 60, 2.0, 0.15, 1402),
        BenchmarkProfile("c432", 29, 160, 3.5, 0.18, 4321),     # gain 13%
        BenchmarkProfile("c499", 29, 202, 2.8, 0.12, 4991),     # gain  9%
        BenchmarkProfile("c880", 28, 383, 5.0, 0.16, 8801),     # gain 22%
        BenchmarkProfile("c1355", 30, 546, 4.2, 0.22, 13551),   # gain 14%
        BenchmarkProfile("c1908", 44, 880, 4.0, 0.20, 19081),   # gain 15%
        BenchmarkProfile("c3540", 58, 1669, 1.6, 0.10, 35401),  # gain  2%
        BenchmarkProfile("c5315", 60, 2307, 3.2, 0.18, 53151),  # gain 12%
        BenchmarkProfile("c6288", 116, 2416, 1.4, 0.05, 62881), # gain  3%
        BenchmarkProfile("c7552", 47, 3512, 4.5, 0.20, 75521),  # gain 18%
    )
}

#: The ordering used by the paper's figures.
PAPER_ORDER: Tuple[str, ...] = (
    "adder16",
    "c432",
    "c499",
    "c880",
    "c1355",
    "c1908",
    "c3540",
    "c5315",
    "c6288",
    "c7552",
)


def profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by paper name."""
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None
