"""Logic structure modification via De Morgan's theorem (section 4.2).

The alternative to buffering an inefficient gate is to *replace* it with an
efficient one.  NOR gates have the lowest ``Flimit`` (weak P stacks, made
worse by ``R``); De Morgan rewrites them around NANDs::

    NOR(a, b, ...) = INV( NAND( INV(a), INV(b), ... ) )

On a bounded path only one input is the switching one, so the on-path
replacement is ``INV -> NAND -> INV``: the same number of inserted
inverters as a polarity-preserving buffer pair, but the slow NOR is gone
and the output inverter provides the load dilution for free -- the paper's
Table 4 area advantage.  The complementary ``NAND -> INV . NOR . INV``
rewrite exists for completeness (it is never profitable on this library,
which property tests assert).

Both a path-level transform (for the optimization flow) and a netlist-level
transform (with logic-equivalence certification) are provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cells.gate_types import GateKind
from repro.cells.library import Library
from repro.buffering.insertion import default_flimits, overloaded_stages
from repro.netlist.circuit import Circuit
from repro.sizing.bounds import min_delay_bound
from repro.sizing.sensitivity import ConstraintResult, distribute_constraint
from repro.timing.path import BoundedPath, PathStage

_NOR_TO_NAND = {
    GateKind.NOR2: GateKind.NAND2,
    GateKind.NOR3: GateKind.NAND3,
    GateKind.NOR4: GateKind.NAND4,
}
_NAND_TO_NOR = {
    GateKind.NAND2: GateKind.NOR2,
    GateKind.NAND3: GateKind.NOR3,
    GateKind.NAND4: GateKind.NOR4,
}


@dataclass(frozen=True)
class RestructureResult:
    """A path after De Morgan rewriting.

    Attributes
    ----------
    path:
        The rewritten path (3 stages per replaced gate).
    replaced:
        Original stage indices that were rewritten.
    side_inverter_area_um:
        Fixed area of the off-path input inverters (one per non-switching
        input of each replaced gate, at minimum drive) -- included in the
        implementation cost reported by the benches.
    """

    path: BoundedPath
    replaced: Tuple[int, ...]
    side_inverter_area_um: float


def restructurable_stages(path: BoundedPath) -> List[int]:
    """Indices of stages a NOR->NAND rewrite can target."""
    return [
        i for i, stage in enumerate(path.stages) if stage.cell.kind in _NOR_TO_NAND
    ]


def restructure_path(
    path: BoundedPath,
    library: Library,
    indices: Optional[Sequence[int]] = None,
    limits: Optional[Dict] = None,
) -> RestructureResult:
    """Rewrite NOR stages as ``INV -> NAND -> INV`` on the path.

    ``indices`` selects the stages; by default every NOR stage that is a
    critical node (fan-out above its ``Flimit`` at the minimum-delay
    sizing) is rewritten -- the deterministic pre-processing selection the
    paper argues for.
    """
    if indices is None:
        if limits is None:
            limits = default_flimits(library)
        _, sizes, _, _ = min_delay_bound(path, library, polish=False)
        flagged = set(overloaded_stages(path, sizes, limits))
        candidates = restructurable_stages(path)
        indices = [i for i in candidates if i in flagged]
        if not indices and candidates:
            # No NOR above its Flimit: rewrite only the most loaded one
            # (rewriting every NOR lengthens the path for nothing).
            from repro.timing.evaluation import stage_fanout_ratios

            ratios = stage_fanout_ratios(path, sizes)
            indices = [max(candidates, key=lambda i: ratios[i])]
    else:
        for i in indices:
            if path.stages[i].cell.kind not in _NOR_TO_NAND:
                raise ValueError(
                    f"stage {i} is {path.stages[i].cell.kind}, not a NOR"
                )

    inv = library.cell(GateKind.INV)
    tech = library.tech
    new_path = path
    side_area = 0.0
    offset = 0
    for index in sorted(indices):
        at = index + offset
        original = new_path.stages[at]
        nand = library.cell(_NOR_TO_NAND[original.cell.kind])
        # INV (on-path input complement) -> NAND -> INV (output complement).
        new_path = new_path.with_stage_replaced(
            at, PathStage(cell=inv, cside_ff=0.0, name=f"{original.name}_dmin")
        )
        new_path = new_path.with_stage_inserted(
            at + 1, PathStage(cell=nand, cside_ff=0.0, name=f"{original.name}_dmnand")
        )
        new_path = new_path.with_stage_inserted(
            at + 2,
            PathStage(
                cell=inv, cside_ff=original.cside_ff, name=f"{original.name}_dmout"
            ),
        )
        # Off-path inputs each need a minimum-drive inverter.
        n_side = original.cell.n_inputs - 1
        side_area += n_side * inv.total_width_um(inv.cin_min(tech), tech)
        offset += 2
    return RestructureResult(
        path=new_path,
        replaced=tuple(sorted(indices)),
        side_inverter_area_um=side_area,
    )


def distribute_with_restructuring(
    path: BoundedPath,
    library: Library,
    tc_ps: float,
    indices: Optional[Sequence[int]] = None,
    limits: Optional[Dict] = None,
    weight_mode: str = "uniform",
) -> Tuple[ConstraintResult, RestructureResult]:
    """Meet ``Tc`` after De Morgan rewriting (Table 4 flow).

    The returned constraint result's ``area_um`` covers the on-path
    stages; add ``RestructureResult.side_inverter_area_um`` for the full
    implementation cost (the benches do).
    """
    rewritten = restructure_path(path, library, indices=indices, limits=limits)
    result = distribute_constraint(
        rewritten.path, library, tc_ps, weight_mode=weight_mode
    )
    return result, rewritten


# -- netlist-level transform -------------------------------------------


def demorgan_nor_to_nand(circuit: Circuit, gate_name: str) -> Circuit:
    """Rewrite one NOR gate of a circuit through De Morgan (new circuit).

    ``NOR(a, b, ...)`` becomes ``INV(NAND(INV(a), INV(b), ...))``; input
    inverters are shared per source net if the rewrite is applied to
    several gates reading the same net.
    """
    gate = circuit.gate(gate_name)
    if gate.kind not in _NOR_TO_NAND:
        raise ValueError(f"{gate_name!r} is {gate.kind}, not a NOR")
    rewritten = circuit.copy()
    del rewritten.gates[gate_name]
    inv_nets: List[str] = []
    for position, source in enumerate(gate.fanin):
        inv_name = f"{gate_name}_dm_in{position}"
        rewritten.add_gate(inv_name, GateKind.INV, [source])
        inv_nets.append(inv_name)
    nand_name = f"{gate_name}_dm_nand"
    rewritten.add_gate(nand_name, _NOR_TO_NAND[gate.kind], inv_nets)
    # The original output net name must survive for downstream readers.
    rewritten.add_gate(gate_name, GateKind.INV, [nand_name])
    rewritten.validate()
    return rewritten


def demorgan_nand_to_nor(circuit: Circuit, gate_name: str) -> Circuit:
    """The dual rewrite: ``NAND(a, b) -> INV(NOR(INV(a), INV(b)))``."""
    gate = circuit.gate(gate_name)
    if gate.kind not in _NAND_TO_NOR:
        raise ValueError(f"{gate_name!r} is {gate.kind}, not a NAND")
    rewritten = circuit.copy()
    del rewritten.gates[gate_name]
    inv_nets: List[str] = []
    for position, source in enumerate(gate.fanin):
        inv_name = f"{gate_name}_dm_in{position}"
        rewritten.add_gate(inv_name, GateKind.INV, [source])
        inv_nets.append(inv_name)
    nor_name = f"{gate_name}_dm_nor"
    rewritten.add_gate(nor_name, _NAND_TO_NOR[gate.kind], inv_nets)
    rewritten.add_gate(gate_name, GateKind.INV, [nor_name])
    rewritten.validate()
    return rewritten


def rewrite_all_nors(circuit: Circuit) -> Tuple[Circuit, List[str]]:
    """Apply the NOR->NAND rewrite to every NOR gate of a circuit."""
    rewritten = circuit
    renamed: List[str] = []
    for name in [g.name for g in circuit.gates.values() if g.kind in _NOR_TO_NAND]:
        rewritten = demorgan_nor_to_nand(rewritten, name)
        renamed.append(name)
    return rewritten, renamed
