"""Logic structure modification: De Morgan NOR <-> NAND rewrites."""

from repro.restructuring.demorgan import (
    RestructureResult,
    demorgan_nand_to_nor,
    demorgan_nor_to_nand,
    distribute_with_restructuring,
    restructurable_stages,
    restructure_path,
    rewrite_all_nors,
)

__all__ = [
    "RestructureResult",
    "restructure_path",
    "restructurable_stages",
    "distribute_with_restructuring",
    "demorgan_nor_to_nand",
    "demorgan_nand_to_nor",
    "rewrite_all_nors",
]
