"""POPS reproduction: low-power oriented CMOS circuit optimization protocol.

Reproduction of A. Verle, X. Michel, N. Azemard, P. Maurine, D. Auvergne,
"Low Power Oriented CMOS Circuit Optimization Protocol", DATE 2005.

Public entry points (see README for a tour):

* :mod:`repro.process`        -- technology descriptors, device models
* :mod:`repro.cells`          -- characterised standard-cell library
* :mod:`repro.netlist`        -- circuit DAGs, ISCAS ``.bench`` I/O
* :mod:`repro.iscas`          -- benchmark circuits / path registry
* :mod:`repro.timing`         -- eq. 1-3 delay model, bounded paths, STA
* :mod:`repro.sizing`         -- Tmin/Tmax bounds, constant sensitivity
* :mod:`repro.buffering`      -- Flimit metric, buffer insertion
* :mod:`repro.restructuring`  -- De Morgan logic transformation
* :mod:`repro.protocol`       -- the Fig. 7 optimization protocol
* :mod:`repro.baselines`      -- AMPS-like industrial-tool surrogate
* :mod:`repro.spice`          -- transistor-level reference simulator
* :mod:`repro.analysis`       -- area / power / activity analysis
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
