"""POPS reproduction: low-power oriented CMOS circuit optimization protocol.

Reproduction of A. Verle, X. Michel, N. Azemard, P. Maurine, D. Auvergne,
"Low Power Oriented CMOS Circuit Optimization Protocol", DATE 2005.

The canonical programmatic surface is the :mod:`repro.api` facade,
re-exported here::

    from repro import Job, Session

    session = Session()
    record = session.optimize(Job(benchmark="c432", tc_ratio=1.5))

Domain layers (see README for a tour):

* :mod:`repro.api`            -- Session / Job / RunRecord facade
* :mod:`repro.process`        -- technology descriptors, device models
* :mod:`repro.cells`          -- characterised standard-cell library
* :mod:`repro.netlist`        -- circuit DAGs, ISCAS ``.bench`` I/O
* :mod:`repro.iscas`          -- benchmark circuits / path registry
* :mod:`repro.timing`         -- eq. 1-3 delay model, bounded paths, STA
* :mod:`repro.sizing`         -- Tmin/Tmax bounds, constant sensitivity
* :mod:`repro.buffering`      -- Flimit metric, buffer insertion
* :mod:`repro.restructuring`  -- De Morgan logic transformation
* :mod:`repro.protocol`       -- the Fig. 7 optimization protocol
* :mod:`repro.explore`        -- Tc-sweep campaigns, Pareto frontiers
* :mod:`repro.mc`             -- vectorized Monte-Carlo corner engine
* :mod:`repro.baselines`      -- AMPS-like industrial-tool surrogate
* :mod:`repro.spice`          -- transistor-level reference simulator
* :mod:`repro.analysis`       -- area / power / activity analysis
* :mod:`repro.obs`            -- tracing, metrics, run telemetry
* :mod:`repro.serve`          -- multi-tenant optimization daemon
"""

import logging as _logging

from repro.api import Job, JobError, RunRecord, Session, SessionStats, SweepSpec
from repro.cells.library import Library, default_library
from repro.iscas.loader import benchmark_names, load_benchmark
from repro.netlist.circuit import Circuit

__version__ = "1.1.0"

# Library convention: never emit log records unless the application
# configures logging.  Opt in with e.g. ``pops serve --log-level info``.
_logging.getLogger("repro").addHandler(_logging.NullHandler())

__all__ = [
    "__version__",
    "Job",
    "JobError",
    "SweepSpec",
    "RunRecord",
    "Session",
    "SessionStats",
    "Library",
    "default_library",
    "Circuit",
    "benchmark_names",
    "load_benchmark",
]
