"""Export an analytic library to a minimal NLDM ``.lib``.

:func:`export_library` characterises every cell of a
:class:`~repro.cells.library.Library` through the analytic eq. 1-3
model and writes the four NLDM tables per cell (``cell_rise``,
``cell_fall``, ``rise_transition``, ``fall_transition``) over a shared
``(input slew, external load)`` grid, at the cell's minimum input
capacitance ``cin_ref``.

Numbers are emitted with ``repr`` so the parse -> export -> parse loop
is lossless, which the round-trip fixture tests pin.  The companion
``scripts/make_sample_lib.py`` writes ``examples/sample_nldm.lib``, the
sample library the NLDM backend tests and the CLI examples run on.

Fidelity of the exported tables: the analytic delay is linear in the
input slew (eq. 1) and the analytic transition is linear in the load
and slew-free (eq. 2), so those dimensions interpolate *exactly*; the
delay's load dependence goes through the Miller factor
``1 + 2 C_M / (C_M + C_L)`` (eq. 1), which is nonlinear, so delays
between load grid points carry bilinear interpolation error.  At the
grid nodes every value matches the analytic model to the last bit --
the anchor the analytic-vs-NLDM parity tests use.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cells.gate_types import GateKind, num_inputs
from repro.cells.library import Library
from repro.timing.delay_model import Edge, gate_delay

#: Default input-slew axis (ps): dense near the fast-input regime.
DEFAULT_SLEW_AXIS_PS = (0.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0, 640.0)

#: Default external-load axis, in multiples of the library ``CREF``.
DEFAULT_LOAD_MULTIPLES = (0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)

_TEMPLATE_NAME = "delay_8x8"

_FUNCTIONS = {
    GateKind.INV: "!A",
    GateKind.BUF: "A",
    GateKind.NAND2: "!(A&B)",
    GateKind.NAND3: "!(A&B&C)",
    GateKind.NAND4: "!(A&B&C&D)",
    GateKind.NOR2: "!(A|B)",
    GateKind.NOR3: "!(A|B|C)",
    GateKind.NOR4: "!(A|B|C|D)",
    GateKind.AND2: "(A&B)",
    GateKind.AND3: "(A&B&C)",
    GateKind.AND4: "(A&B&C&D)",
    GateKind.OR2: "(A|B)",
    GateKind.OR3: "(A|B|C)",
    GateKind.OR4: "(A|B|C|D)",
    GateKind.XOR2: "(A^B)",
    GateKind.XNOR2: "!(A^B)",
    GateKind.AOI21: "!((A&B)|C)",
    GateKind.AOI22: "!((A&B)|(C&D))",
    GateKind.OAI21: "!((A|B)&C)",
    GateKind.OAI22: "!((A|B)&(C|D))",
}


def _fmt(value: float) -> str:
    """Lossless decimal form of one float (``repr`` round-trips)."""
    return repr(float(value))


def _fmt_axis(values: Sequence[float]) -> str:
    return '"' + ", ".join(_fmt(v) for v in values) + '"'


def _table_lines(
    kind: str,
    slew_axis: Sequence[float],
    load_axis: Sequence[float],
    grid: List[List[float]],
    indent: str,
) -> List[str]:
    """Emit one ``cell_rise (template) { ... }`` group."""
    lines = [f"{indent}{kind} ({_TEMPLATE_NAME}) {{"]
    lines.append(f"{indent}  index_1 ({_fmt_axis(slew_axis)});")
    lines.append(f"{indent}  index_2 ({_fmt_axis(load_axis)});")
    lines.append(f"{indent}  values ( \\")
    for i, row in enumerate(grid):
        tail = ", \\" if i + 1 < len(grid) else " \\"
        lines.append(f"{indent}    {_fmt_axis(row)}{tail}")
    lines.append(f"{indent}  );")
    lines.append(f"{indent}}}")
    return lines


def export_library(
    library: Library,
    name: str = "repro_sample",
    slew_axis_ps: Optional[Sequence[float]] = None,
    load_axis_ff: Optional[Sequence[float]] = None,
) -> str:
    """Characterise ``library`` through eq. 1-3 into NLDM ``.lib`` text.

    Parameters
    ----------
    library:
        The analytic library to characterise (its backend is ignored;
        table values always come from the closed-form model).
    name:
        Liberty library name.
    slew_axis_ps / load_axis_ff:
        Table axes; default to :data:`DEFAULT_SLEW_AXIS_PS` and
        :data:`DEFAULT_LOAD_MULTIPLES` times the library ``CREF``.
    """
    tech = library.tech
    slew_axis = list(
        DEFAULT_SLEW_AXIS_PS if slew_axis_ps is None else slew_axis_ps
    )
    if load_axis_ff is None:
        load_axis = [m * library.cref for m in DEFAULT_LOAD_MULTIPLES]
    else:
        load_axis = list(load_axis_ff)

    lines: List[str] = []
    lines.append(f"library ({name}) {{")
    lines.append('  comment : "characterised from the analytic eq. 1-3 model";')
    lines.append('  time_unit : "1ps";')
    lines.append('  voltage_unit : "1V";')
    lines.append("  capacitive_load_unit (1, ff);")
    lines.append(f"  nom_voltage : {_fmt(tech.vdd)};")
    lines.append(f"  lu_table_template ({_TEMPLATE_NAME}) {{")
    lines.append("    variable_1 : input_net_transition;")
    lines.append("    variable_2 : total_output_net_capacitance;")
    lines.append(f"    index_1 ({_fmt_axis(slew_axis)});")
    lines.append(f"    index_2 ({_fmt_axis(load_axis)});")
    lines.append("  }")

    for kind, cell in sorted(library.cells.items(), key=lambda kv: kv[0].value):
        cin_ref = cell.cin_min(tech)
        rise_in = Edge.FALL if cell.inverting else Edge.RISE
        fall_in = rise_in.flipped
        tables = {}
        for table_kind, in_edge in (("rise", rise_in), ("fall", fall_in)):
            delay_grid: List[List[float]] = []
            tran_grid: List[List[float]] = []
            for slew in slew_axis:
                delay_row: List[float] = []
                tran_row: List[float] = []
                for load in load_axis:
                    timing = gate_delay(cell, tech, cin_ref, load, slew, in_edge)
                    delay_row.append(timing.delay_ps)
                    tran_row.append(timing.tout_ps)
                delay_grid.append(delay_row)
                tran_grid.append(tran_row)
            tables[f"cell_{table_kind}"] = delay_grid
            tables[f"{table_kind}_transition"] = tran_grid

        pins = "ABCD"[: num_inputs(kind)]
        lines.append(f"  cell ({kind.value}) {{")
        lines.append(f"    area : {_fmt(cell.area_factor)};")
        for pin in pins:
            lines.append(f"    pin ({pin}) {{")
            lines.append("      direction : input;")
            lines.append(f"      capacitance : {_fmt(cin_ref)};")
            lines.append("    }")
        sense = "negative_unate" if cell.inverting else "positive_unate"
        lines.append("    pin (Y) {")
        lines.append("      direction : output;")
        function = _FUNCTIONS.get(kind)
        if function is not None:
            lines.append(f'      function : "{function}";')
        for pin in pins:
            lines.append("      timing () {")
            lines.append(f'        related_pin : "{pin}";')
            lines.append(f"        timing_sense : {sense};")
            for table_kind in (
                "cell_rise",
                "cell_fall",
                "rise_transition",
                "fall_transition",
            ):
                lines.extend(
                    _table_lines(
                        table_kind, slew_axis, load_axis, tables[table_kind], "        "
                    )
                )
            lines.append("      }")
        lines.append("    }")
        lines.append("  }")

    lines.append("}")
    return "\n".join(lines) + "\n"


def write_library(library: Library, path: str, name: str = "repro_sample") -> None:
    """Write :func:`export_library` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(export_library(library, name=name))
