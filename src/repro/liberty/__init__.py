"""Liberty/NLDM support: parse ``.lib`` files into delay backends.

The package provides the table side of the pluggable delay-backend
seam (:mod:`repro.timing.backend`):

* :mod:`repro.liberty.parser` -- a minimal Liberty group parser;
* :mod:`repro.liberty.tables` -- stacked NLDM tables + the shared
  bilinear interpolation kernels;
* :mod:`repro.liberty.nldm` -- the :class:`NldmBackend` implementing
  scalar, batch and probe surfaces from the tables;
* :mod:`repro.liberty.export` -- characterise an analytic library into
  ``.lib`` text (the sample-library generator).

:func:`library_from_lib` is the one-call entry point the CLI and the
:class:`~repro.api.session.Session` use: parse a ``.lib``, build the
backend, and assemble a :class:`~repro.cells.library.Library` whose
sizing floors come from the characterised pin capacitances.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.cells.gate_types import GateKind
from repro.cells.library import Library, default_library
from repro.liberty.export import export_library, write_library
from repro.liberty.nldm import NldmBackend
from repro.liberty.parser import (
    LibertyError,
    LibertyGroup,
    parse_liberty,
    parse_liberty_file,
)
from repro.liberty.tables import NldmTables
from repro.process.technology import Technology

__all__ = [
    "LibertyError",
    "LibertyGroup",
    "NldmBackend",
    "NldmTables",
    "export_library",
    "library_from_lib",
    "parse_liberty",
    "parse_liberty_file",
    "write_library",
]


def library_from_lib(path: str, tech: Optional[Technology] = None) -> Library:
    """Load a ``.lib`` file into a :class:`~repro.cells.library.Library`.

    Cells named after a :class:`~repro.cells.gate_types.GateKind`
    (``inv``, ``nand2``, ...) become the library's cell set; other
    cells are skipped.  Each cell keeps the default analytic geometry
    parameters (the area/width metrics stay closed-form) but takes its
    **sizing floor** from the characterised input pin capacitance
    (``cin_min_ff = cin_ref``) and its **timing** from the NLDM tables
    via an :class:`~repro.liberty.nldm.NldmBackend`.

    Parameters
    ----------
    path:
        Path to the ``.lib`` file.
    tech:
        Technology the area/power conversions run under; defaults to
        the 0.25 um process.  Timing does not depend on it except for
        the Monte-Carlo tau-ratio corner scale.
    """
    group = parse_liberty_file(path)
    tables = NldmTables.from_library_group(group)
    backend = NldmBackend(tables)
    defaults = default_library(tech)
    cells = {}
    for kind, idx in tables.kind_index.items():
        base = defaults.cells.get(kind)
        if base is None:  # pragma: no cover - defaults cover every kind
            continue
        cells[kind] = replace(base, cin_min_ff=float(tables.cin_ref[idx]))
    if GateKind.INV not in cells:
        raise LibertyError(f"{path}: the library must characterise an 'inv' cell")
    return Library(tech=defaults.tech, cells=cells, backend=backend)
