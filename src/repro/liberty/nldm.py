"""NLDM table-lookup delay backend over parsed Liberty libraries.

:class:`NldmBackend` implements the full
:class:`~repro.timing.backend.DelayBackend` surface from the stacked
tables of :class:`~repro.liberty.tables.NldmTables`:

* the **scalar** kernel bilinearly interpolates the cell's
  ``cell_rise``/``cell_fall`` (delay) and ``rise_transition``/
  ``fall_transition`` (output slew) tables at ``(input slew, effective
  load)``.  The load axis is electrical effort: a gate sized to ``cin``
  enters the table at ``load * cin_ref / cin``, where ``cin_ref`` is the
  input capacitance the cell was characterised at -- that is what lets
  one table serve a continuously sized gate;
* the **batch** surface (:class:`NldmBatchModel`) propagates one
  nominal column with per-level vectorized lookups, then scales every
  corner column by the global speed ratio ``tau_corner / tau_nominal``
  (``capabilities.exact_corners`` is ``False``: tables are
  characterised at one process point);
* the **probe** surface (:class:`NldmProbeModel`) evaluates
  ``(gate, column)`` pair groups for the cone-sparse engine, including
  the trial inverter-pair chaining through the library's INV tables.

Bit-exactness: all three surfaces share the interpolation kernels of
:mod:`repro.liberty.tables`, evaluated in one operation order, so the
four evaluators agree bit for bit *within* this backend.  Unlike the
analytic model, an NLDM output transition depends on the winning fan-in
arc's slew, so the group evaluation tracks the argmax winner; ``max``
ties resolve to the first slot, matching the scalar engine's
strict-``>`` first-wins selection over the same fan-in order.

No bit-level relationship with the analytic backend is promised, even
for a ``.lib`` exported *from* the analytic model: lookups between grid
nodes see bilinear interpolation error (exactly zero only where the
analytic quantity is itself linear in the table variables).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

import numpy as np

from repro.cells.cell import Cell
from repro.cells.gate_types import GateKind
from repro.cells.library import UnknownCellError
from repro.liberty.tables import NldmTables, interp_table, interp_table_stack
from repro.process.technology import Technology
from repro.timing.backend import (
    BackendCapabilities,
    BatchDelayModel,
    DelayBackend,
    ProbeDelayModel,
)
from repro.timing.delay_model import Edge, GateTiming, output_edge_for
from repro.timing.sta import gate_external_load

if TYPE_CHECKING:  # pragma: no cover - type names only
    from repro.mc.compile import CompiledCircuit
    from repro.mc.corners import CornerSamples
    from repro.timing.batch_probe import BatchProbeEngine


class NldmBackend(DelayBackend):
    """Table-lookup delay model over one :class:`NldmTables` set."""

    capabilities = BackendCapabilities(
        name="nldm", closed_form_bounds=False, exact_corners=False
    )

    def __init__(self, tables: NldmTables) -> None:
        self.tables = tables

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NldmBackend(cells={self.tables.n_cells}, digest={self.tables.digest[:8]})"

    def cache_token(self) -> Tuple:
        """Identity = the table content digest (axes, cin_ref, values)."""
        return ("nldm", self.tables.digest)

    def _cell_index(self, kind: GateKind) -> int:
        idx = self.tables.kind_index.get(kind)
        if idx is None:
            raise UnknownCellError(
                f"no NLDM tables for gate kind {kind!r} in this library"
            )
        return idx

    def gate_timing(
        self,
        cell: Cell,
        tech: Technology,
        cin_ff: float,
        cload_ext_ff: float,
        tin_ps: float,
        input_edge: Edge,
    ) -> GateTiming:
        """Bilinear table lookup of one gate arc.

        Validation mirrors the analytic scalar kernel so both backends
        reject the same ill-posed inputs with the same exception types.
        """
        if cin_ff <= 0:
            raise ValueError(f"cin_ff must be positive, got {cin_ff}")
        if cload_ext_ff < 0:
            raise ValueError("cload_ext_ff must be non-negative")
        if tin_ps < 0:
            raise ValueError(f"tin_ps must be non-negative, got {tin_ps}")
        t = self.tables
        idx = self._cell_index(cell.kind)
        out_edge = output_edge_for(cell, input_edge)
        l_eff = cload_ext_ff * (t.cin_ref[idx] / cin_ff)
        if out_edge is Edge.RISE:
            delay = interp_table(
                t.cell_rise[idx], t.slew_axis, t.load_axis, tin_ps, l_eff
            )
            tout = interp_table(
                t.rise_transition[idx], t.slew_axis, t.load_axis, tin_ps, l_eff
            )
        else:
            delay = interp_table(
                t.cell_fall[idx], t.slew_axis, t.load_axis, tin_ps, l_eff
            )
            tout = interp_table(
                t.fall_transition[idx], t.slew_axis, t.load_axis, tin_ps, l_eff
            )
        return GateTiming(
            delay_ps=float(delay), tout_ps=float(tout), output_edge=out_edge
        )

    def compile_model(self, compiled: "CompiledCircuit") -> BatchDelayModel:
        """Fold per-gate table selectors into a batch model."""
        return NldmBatchModel(self, compiled)

    def probe_model(self, engine: "BatchProbeEngine") -> ProbeDelayModel:
        """Pair-group evaluation sharing the compiled batch model's stacks."""
        return NldmProbeModel(self, engine)


class NldmBatchModel(BatchDelayModel):
    """Batch surface: vectorized table lookups over one nominal column.

    The constructor concatenates the rise/fall stacks into one
    ``(2 * n_cells, S, L)`` array per quantity and folds a per-gate
    *input-polarity* table selector: ``_ir_sel[g]`` picks the table of
    the output edge a rising input produces at gate ``g`` (``cell_fall``
    for inverting cells), ``_if_sel`` the falling-input twin.  That
    turns the level loop into two gather-interpolate-max sweeps, one per
    input polarity, mirroring the analytic kernel's ``b_rise``/
    ``b_fall`` split.

    Corners: one nominal column is propagated exactly, then every
    corner column is the nominal value scaled by
    ``tau_corner / tau_nominal`` -- exact at the nominal corner (scale
    is exactly ``1.0``), a first-order global-speed approximation
    elsewhere (``exact_corners=False``).
    """

    def __init__(self, backend: NldmBackend, compiled: "CompiledCircuit") -> None:
        self._backend = backend
        t = backend.tables
        idx = np.empty(len(compiled.cells), dtype=np.intp)
        for gate_id, cell in enumerate(compiled.cells):
            idx[gate_id] = backend._cell_index(cell.kind)
        self._idx = idx
        n = t.n_cells
        # Output-edge table stacks: rows [0, n) are the rise tables,
        # rows [n, 2n) the fall tables of the same cell.
        self._delay_stack = np.concatenate([t.cell_rise, t.cell_fall])
        self._tran_stack = np.concatenate([t.rise_transition, t.fall_transition])
        inv = compiled.inverting
        self._ir_sel = np.where(inv, idx + n, idx)
        self._if_sel = np.where(inv, idx, idx + n)
        self._cin_ref = t.cin_ref[idx]

    def bind(self, compiled: "CompiledCircuit") -> None:
        """Refresh the effective table loads of the bound sizing.

        Same operation order as the scalar kernel's
        ``cload_ext_ff * (cin_ref / cin_ff)``, elementwise.
        """
        self._l_eff = compiled.load * (self._cin_ref / compiled.cin)

    def propagate(
        self,
        compiled: "CompiledCircuit",
        corners: "CornerSamples",
        time_rise: np.ndarray,
        time_fall: np.ndarray,
        tran_rise: np.ndarray,
        tran_fall: np.ndarray,
    ) -> None:
        """One exact nominal propagation, then the tau-ratio corner scale."""
        t = self._backend.tables
        sax = t.slew_axis
        lax = t.load_axis
        n_in = compiled.n_inputs
        n_nets = compiled.n_nets
        neg_inf = -np.inf

        t_r = np.empty(n_nets)
        t_f = np.empty(n_nets)
        x_r = np.empty(n_nets)
        x_f = np.empty(n_nets)
        t_r[:n_in] = 0.0
        t_f[:n_in] = 0.0
        x_r[:n_in] = compiled.input_transition_ps
        x_f[:n_in] = compiled.input_transition_ps

        for start, end in compiled.levels:
            rows = compiled.fanin_rows[start:end]
            mask = compiled.fanin_mask[start:end]
            le = self._l_eff[start:end]
            ir_sel = self._ir_sel[start:end]
            if_sel = self._if_sel[start:end]
            pi = np.arange(end - start)

            # Rising-input arcs: delay lookup per (gate, fan-in slot),
            # candidate arrival, first-max winner, winner's output slew.
            slew = x_r[rows]
            d = interp_table_stack(
                self._delay_stack, ir_sel[:, None], sax, lax, slew, le[:, None]
            )
            cand = np.where(mask, t_r[rows] + d, neg_inf)
            m_ir = np.max(cand, axis=1)
            win = np.argmax(cand, axis=1)
            tr_ir = interp_table_stack(
                self._tran_stack, ir_sel, sax, lax, slew[pi, win], le
            )

            # Falling-input arcs.
            slew = x_f[rows]
            d = interp_table_stack(
                self._delay_stack, if_sel[:, None], sax, lax, slew, le[:, None]
            )
            cand = np.where(mask, t_f[rows] + d, neg_inf)
            m_if = np.max(cand, axis=1)
            win = np.argmax(cand, axis=1)
            tr_if = interp_table_stack(
                self._tran_stack, if_sel, sax, lax, slew[pi, win], le
            )

            inv = compiled.inverting[start:end]
            out = slice(n_in + start, n_in + end)
            t_r[out] = np.where(inv, m_if, m_ir)
            t_f[out] = np.where(inv, m_ir, m_if)
            x_r[out] = np.where(inv, tr_if, tr_ir)
            x_f[out] = np.where(inv, tr_ir, tr_if)

        scale = corners.tau_ps / compiled.library.tech.tau_ps
        time_rise[:] = t_r[:, None] * scale[None, :]
        time_fall[:] = t_f[:, None] * scale[None, :]
        tran_rise[:] = x_r[:, None] * scale[None, :]
        tran_fall[:] = x_f[:, None] * scale[None, :]


class NldmProbeModel(ProbeDelayModel):
    """Probe surface: per-pair table lookups for the cone-sparse engine.

    Shares the table stacks and selectors of the engine's compiled
    :class:`NldmBatchModel` (the engine's base annotation is that
    model's nominal column, so served base cells and recomputed cells
    agree bit for bit).  The only per-pair parameter is the effective
    table load; delays are looked up per ``(pair, fan-in slot)`` and the
    winning arc's slew drives the output-transition lookup.
    """

    def __init__(self, backend: NldmBackend, engine: "BatchProbeEngine") -> None:
        self._backend = backend
        self._engine = engine
        model = engine.compiled.model
        if not isinstance(model, NldmBatchModel):  # pragma: no cover - guard
            raise TypeError("engine compiled under a different backend")
        self._batch = model

    def bind(self, engine: "BatchProbeEngine") -> None:
        """Nothing beyond the batch model's ``bind`` (shared ``l_eff``)."""

    def chunk_params(
        self,
        pair_g: np.ndarray,
        over_pos: np.ndarray,
        over_cin: np.ndarray,
        over_load: np.ndarray,
    ) -> Tuple[np.ndarray, ...]:
        """Effective table load per pair, overrides scattered in."""
        batch = self._batch
        l_eff = batch._l_eff[pair_g].copy()
        l_eff[over_pos] = over_load * (batch._cin_ref[pair_g[over_pos]] / over_cin)
        return (l_eff,)

    def eval_group(
        self,
        params: Tuple[np.ndarray, ...],
        gs: int,
        ge: int,
        g: np.ndarray,
        rows: np.ndarray,
        mask: np.ndarray,
        cc: np.ndarray,
        time_rise: np.ndarray,
        time_fall: np.ndarray,
        tran_rise: np.ndarray,
        tran_fall: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Table-lookup arrivals of one level group of pairs."""
        batch = self._batch
        t = self._backend.tables
        sax = t.slew_axis
        lax = t.load_axis
        (l_eff,) = params
        le = l_eff[gs:ge]
        ir_sel = batch._ir_sel[g]
        if_sel = batch._if_sel[g]
        neg_inf = -np.inf
        pi = np.arange(ge - gs)

        slew = tran_rise[rows, cc]
        d = interp_table_stack(
            batch._delay_stack, ir_sel[:, None], sax, lax, slew, le[:, None]
        )
        cand = np.where(mask, time_rise[rows, cc] + d, neg_inf)
        m_ir = np.max(cand, axis=1)
        win = np.argmax(cand, axis=1)
        tr_ir = interp_table_stack(
            batch._tran_stack, ir_sel, sax, lax, slew[pi, win], le
        )

        slew = tran_fall[rows, cc]
        d = interp_table_stack(
            batch._delay_stack, if_sel[:, None], sax, lax, slew, le[:, None]
        )
        cand = np.where(mask, time_fall[rows, cc] + d, neg_inf)
        m_if = np.max(cand, axis=1)
        win = np.argmax(cand, axis=1)
        tr_if = interp_table_stack(
            batch._tran_stack, if_sel, sax, lax, slew[pi, win], le
        )

        inv = self._engine.compiled.inverting[g]
        t_rise = np.where(inv, m_if, m_ir)
        t_fall = np.where(inv, m_ir, m_if)
        tr_rise = np.where(inv, tr_if, tr_ir)
        tr_fall = np.where(inv, tr_ir, tr_if)
        return t_rise, t_fall, tr_rise, tr_fall

    def pair_constants(self, pair_cin: float) -> Tuple:
        """Column-independent terms of the trial pair's first inverter."""
        engine = self._engine
        t = self._backend.tables
        inv_idx = self._backend._cell_index(GateKind.INV)
        load_a = gate_external_load(
            ("__bufb__",),
            {"__bufb__": pair_cin},
            False,
            engine.compiled.output_load_ff,
            engine.compiled.wire_model,
        )
        cin_ref_inv = t.cin_ref[inv_idx]
        l_eff_a = load_a * (cin_ref_inv / pair_cin)
        return (pair_cin, inv_idx, l_eff_a, cin_ref_inv)

    def through_pair(
        self,
        consts: Tuple,
        t_rise_g: np.ndarray,
        t_fall_g: np.ndarray,
        tr_rise_g: np.ndarray,
        tr_fall_g: np.ndarray,
        load_b: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Chain a candidate's output through both trial INV tables.

        Each inverter has a single fan-in, so the per-edge reduction
        degenerates to the lone candidate: four lookups per inverter
        (delay and transition, per polarity), in the scalar engine's
        operation order on the rewired netlist.
        """
        pair_cin, inv_idx, l_eff_a, cin_ref_inv = consts
        t = self._backend.tables
        sax = t.slew_axis
        lax = t.load_axis
        d_rise = t.cell_rise[inv_idx]
        d_fall = t.cell_fall[inv_idx]
        x_rise = t.rise_transition[inv_idx]
        x_fall = t.fall_transition[inv_idx]

        # First inverter: rising input -> falling output and vice versa.
        t_fall_a = t_rise_g + interp_table(d_fall, sax, lax, tr_rise_g, l_eff_a)
        t_rise_a = t_fall_g + interp_table(d_rise, sax, lax, tr_fall_g, l_eff_a)
        x_fall_a = interp_table(x_fall, sax, lax, tr_rise_g, l_eff_a)
        x_rise_a = interp_table(x_rise, sax, lax, tr_fall_g, l_eff_a)

        # Second inverter: per-column load (the candidate's old sinks).
        l_eff_b = load_b * (cin_ref_inv / pair_cin)
        t_fall_b = t_rise_a + interp_table(d_fall, sax, lax, x_rise_a, l_eff_b)
        t_rise_b = t_fall_a + interp_table(d_rise, sax, lax, x_fall_a, l_eff_b)
        x_fall_b = interp_table(x_fall, sax, lax, x_rise_a, l_eff_b)
        x_rise_b = interp_table(x_rise, sax, lax, x_fall_a, l_eff_b)
        return t_rise_b, t_fall_b, x_rise_b, x_fall_b
