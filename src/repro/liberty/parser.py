"""Minimal Liberty (.lib) parser: tokenize + recursive descent.

Liberty is a simple nested-group format::

    library (name) {
      simple_attr : value;
      complex_attr ("arg1", "arg2");
      group_name (arg) {
        ...
      }
    }

This parser covers exactly that shape -- groups, simple attributes and
complex attributes, with ``//`` / ``/* */`` comments, quoted strings and
backslash line continuations -- which is enough for NLDM timing tables
(``lu_table_template``, ``cell``, ``pin``, ``timing``, ``cell_rise`` ...).
It deliberately does not model the full Liberty grammar (no expressions,
no ``define``); unknown constructs that fit the group/attribute shape are
preserved generically so callers can ignore them.

The output is a tree of :class:`LibertyGroup` nodes.  All attribute
values are kept as raw strings; numeric interpretation is the caller's
job (:mod:`repro.liberty.tables` does it for NLDM tables).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class LibertyError(ValueError):
    """Raised on malformed Liberty input (syntax or NLDM semantics)."""


@dataclass
class LibertyGroup:
    """One ``name (args) { ... }`` group of a Liberty file.

    Attributes
    ----------
    kind:
        Group keyword, e.g. ``"library"``, ``"cell"``, ``"pin"``.
    args:
        Parenthesised arguments, unquoted (``cell (inv)`` -> ``("inv",)``).
    attributes:
        Simple attributes ``name : value;`` (last occurrence wins).
    complex_attributes:
        Complex attributes ``name (args...);`` in file order; repeated
        names are kept (``index_1`` vs ``index_2`` differ by name anyway).
    groups:
        Nested groups in file order.
    """

    kind: str
    args: Tuple[str, ...] = ()
    attributes: Dict[str, str] = field(default_factory=dict)
    complex_attributes: List[Tuple[str, Tuple[str, ...]]] = field(
        default_factory=list
    )
    groups: List["LibertyGroup"] = field(default_factory=list)

    @property
    def name(self) -> str:
        """First group argument (the conventional group name) or ``""``."""
        return self.args[0] if self.args else ""

    def find(self, kind: str, name: Optional[str] = None) -> Optional["LibertyGroup"]:
        """First nested group of ``kind`` (and ``name``, if given)."""
        for group in self.groups:
            if group.kind == kind and (name is None or group.name == name):
                return group
        return None

    def find_all(self, kind: str) -> List["LibertyGroup"]:
        """All nested groups of ``kind`` in file order."""
        return [group for group in self.groups if group.kind == kind]

    def complex_values(self, name: str) -> Optional[Tuple[str, ...]]:
        """Arguments of the first complex attribute called ``name``."""
        for attr_name, args in self.complex_attributes:
            if attr_name == name:
                return args
        return None


_COMMENT_RE = re.compile(r"/\*.*?\*/|//[^\n]*", re.DOTALL)

_TOKEN_RE = re.compile(
    r"""
    \s+                                   # whitespace (skipped)
  | "(?:[^"\\]|\\.)*"                    # quoted string
  | [A-Za-z0-9_.+\-!*/]+                  # bareword / number / function char
  | [(){};:,]                             # punctuation
    """,
    re.VERBOSE,
)


def _strip_comments(text: str) -> str:
    """Remove ``/* */`` and ``//`` comments, preserving newlines for errors."""

    def blank(match: "re.Match[str]") -> str:
        return "\n" * match.group(0).count("\n")

    return _COMMENT_RE.sub(blank, text)


def _tokenize(text: str) -> List[str]:
    """Split Liberty text into tokens (strings keep their quotes)."""
    text = _strip_comments(text).replace("\\\n", " ")
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            line = text.count("\n", 0, pos) + 1
            raise LibertyError(
                f"unexpected character {text[pos]!r} at line {line}"
            )
        token = match.group(0)
        pos = match.end()
        if not token.strip():
            continue
        tokens.append(token)
    return tokens


def _unquote(token: str) -> str:
    """Strip surrounding quotes (and unescape) from a string token."""
    if len(token) >= 2 and token[0] == '"' and token[-1] == '"':
        return token[1:-1].replace('\\"', '"').replace("\\\\", "\\")
    return token


class _Parser:
    """Token-stream recursive-descent parser for the group grammar."""

    def __init__(self, tokens: List[str]) -> None:
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> Optional[str]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise LibertyError("unexpected end of file")
        self._pos += 1
        return token

    def _expect(self, token: str) -> None:
        got = self._next()
        if got != token:
            raise LibertyError(f"expected {token!r}, got {got!r}")

    def parse_group(self) -> LibertyGroup:
        """Parse one ``kind (args) { body }`` group."""
        kind = self._next()
        args = self._parse_args()
        self._expect("{")
        group = LibertyGroup(kind=kind, args=args)
        while True:
            token = self._peek()
            if token is None:
                raise LibertyError(f"unterminated group {kind!r}")
            if token == "}":
                self._next()
                break
            self._parse_statement(group)
        return group

    def _parse_args(self) -> Tuple[str, ...]:
        """Parse a parenthesised, comma-separated argument list."""
        self._expect("(")
        args: List[str] = []
        while True:
            token = self._next()
            if token == ")":
                break
            if token == ",":
                continue
            args.append(_unquote(token))
        return tuple(args)

    def _parse_statement(self, group: LibertyGroup) -> None:
        """Parse one body statement: simple attr, complex attr or group."""
        name = self._next()
        token = self._peek()
        if token == ":":
            self._next()
            value_parts: List[str] = []
            while True:
                part = self._next()
                if part == ";":
                    break
                if part in ("{", "}"):
                    raise LibertyError(
                        f"unterminated attribute {name!r} (missing ';')"
                    )
                value_parts.append(_unquote(part))
            group.attributes[name] = " ".join(value_parts)
            return
        if token == "(":
            args = self._parse_args()
            token = self._peek()
            if token == "{":
                self._next()
                nested = LibertyGroup(kind=name, args=args)
                while True:
                    inner = self._peek()
                    if inner is None:
                        raise LibertyError(f"unterminated group {name!r}")
                    if inner == "}":
                        self._next()
                        break
                    self._parse_statement(nested)
                group.groups.append(nested)
                return
            if token == ";":
                self._next()
            group.complex_attributes.append((name, args))
            return
        raise LibertyError(f"expected ':' or '(' after {name!r}, got {token!r}")


def parse_liberty(text: str) -> LibertyGroup:
    """Parse Liberty source text; return the top-level ``library`` group."""
    tokens = _tokenize(text)
    if not tokens:
        raise LibertyError("empty liberty input")
    parser = _Parser(tokens)
    top = parser.parse_group()
    if parser._peek() is not None:
        raise LibertyError(f"trailing tokens after group {top.kind!r}")
    if top.kind != "library":
        raise LibertyError(f"expected a 'library' group, got {top.kind!r}")
    return top


def parse_liberty_file(path: str) -> LibertyGroup:
    """Read and parse a ``.lib`` file; return the ``library`` group."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_liberty(handle.read())


def parse_number_list(args: Tuple[str, ...]) -> List[float]:
    """Flatten ``index``/``values`` arguments into floats.

    Liberty packs numbers into quoted, comma-separated strings, one
    string per table row: ``values ("1, 2", "3, 4")``.  The quotes are
    already stripped by the tokenizer; each argument may still contain
    several comma- or whitespace-separated numbers.
    """
    numbers: List[float] = []
    for arg in args:
        for piece in arg.replace(",", " ").split():
            try:
                numbers.append(float(piece))
            except ValueError:
                raise LibertyError(f"expected a number, got {piece!r}") from None
    return numbers
