"""NLDM table stacks and the shared bilinear interpolation kernel.

:class:`NldmTables` flattens the per-cell lookup tables of a parsed
Liberty library into four stacked ``(n_cells, S, L)`` arrays (cell_rise,
cell_fall, rise_transition, fall_transition) over **shared** slew/load
axes, plus the per-cell reference input capacitance the table columns
were characterised at.  Shared axes are a hard requirement (mixed
``lu_table_template`` grids raise :class:`~repro.liberty.parser.
LibertyError`): they let the batch evaluators do one ``searchsorted``
per level instead of one per cell kind.

The two interpolation helpers -- :func:`interp_table` (scalar) and
:func:`interp_table_stack` (vectorized with a per-element table index)
-- evaluate the *same* IEEE-754 operation sequence, which is what makes
the scalar STA and the batch kernels bit-identical under the NLDM
backend (see ``docs/ARCHITECTURE.md``).  Index weights are deliberately
left unclamped so lookups beyond the grid extrapolate linearly: the
sizing optimizers need live gradients outside the characterised box.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Tuple

import numpy as np

from repro.cells.gate_types import GateKind
from repro.liberty.parser import LibertyError, LibertyGroup, parse_number_list

#: Table kinds, in stacking order: (delay, transition) x (rise, fall).
TABLE_KINDS = ("cell_rise", "cell_fall", "rise_transition", "fall_transition")


def _axis_index(axis: np.ndarray, x):
    """Left grid index of ``x``: the segment ``[axis[i], axis[i+1]]``.

    Clipped to the axis so out-of-range points reuse the nearest edge
    segment (linear extrapolation together with unclamped weights).
    Works elementwise for arrays and returns a python ``int`` for
    scalars so the scalar path stays allocation-free.
    """
    if np.ndim(x) == 0:
        i = int(np.searchsorted(axis, x, side="right")) - 1
        return min(max(i, 0), axis.size - 2)
    i = np.searchsorted(axis, x, side="right") - 1
    return np.clip(i, 0, axis.size - 2)


def interp_table(
    table: np.ndarray,
    slew_axis: np.ndarray,
    load_axis: np.ndarray,
    slew,
    load,
):
    """Bilinear lookup of one ``(S, L)`` table at scalar ``(slew, load)``.

    The operation sequence is kept in lockstep with
    :func:`interp_table_stack`; both paths must produce bit-identical
    IEEE-754 results for the backend parity ladder to hold.
    """
    si = _axis_index(slew_axis, slew)
    li = _axis_index(load_axis, load)
    ws = (slew - slew_axis[si]) / (slew_axis[si + 1] - slew_axis[si])
    wl = (load - load_axis[li]) / (load_axis[li + 1] - load_axis[li])
    v00 = table[si, li]
    v01 = table[si, li + 1]
    v10 = table[si + 1, li]
    v11 = table[si + 1, li + 1]
    v0 = v00 + (v01 - v00) * wl
    v1 = v10 + (v11 - v10) * wl
    return v0 + (v1 - v0) * ws


def interp_table_stack(
    tables: np.ndarray,
    table_idx: np.ndarray,
    slew_axis: np.ndarray,
    load_axis: np.ndarray,
    slew: np.ndarray,
    load: np.ndarray,
) -> np.ndarray:
    """Vectorized bilinear lookup with a per-element table selector.

    Element ``e`` evaluates ``tables[table_idx[e]]`` at
    ``(slew[e], load[e])``; ``table_idx``, ``slew`` and ``load`` must
    already be broadcast to one common shape.  Same operation sequence
    as :func:`interp_table` (bit-identical results).
    """
    si = _axis_index(slew_axis, slew)
    li = _axis_index(load_axis, load)
    ws = (slew - slew_axis[si]) / (slew_axis[si + 1] - slew_axis[si])
    wl = (load - load_axis[li]) / (load_axis[li + 1] - load_axis[li])
    v00 = tables[table_idx, si, li]
    v01 = tables[table_idx, si, li + 1]
    v10 = tables[table_idx, si + 1, li]
    v11 = tables[table_idx, si + 1, li + 1]
    v0 = v00 + (v01 - v00) * wl
    v1 = v10 + (v11 - v10) * wl
    return v0 + (v1 - v0) * ws


class NldmTables:
    """Stacked NLDM lookup tables of one Liberty library.

    Attributes
    ----------
    slew_axis / load_axis:
        Shared table axes: input transition (ps) and effective output
        load (fF), strictly increasing.
    cell_rise / cell_fall / rise_transition / fall_transition:
        ``(n_cells, S, L)`` stacks, indexed by :attr:`kind_index`.
    cin_ref:
        ``(n_cells,)`` reference input capacitance (fF) each cell's
        table loads were characterised against (the input pin
        ``capacitance`` attribute).  Lookups for a gate sized to
        ``cin`` rescale the external load to ``load * cin_ref / cin``
        before entering the table -- the table abscissa is *electrical
        effort*, which is what makes one table serve every size.
    kind_index:
        ``GateKind -> row`` into the stacks.
    digest:
        Content hash (sha1 over axes, ``cin_ref`` and all tables); the
        NLDM backend's cache token, so sessions never alias timing
        caches across different ``.lib`` contents.
    """

    def __init__(
        self,
        slew_axis: np.ndarray,
        load_axis: np.ndarray,
        tables: Dict[str, np.ndarray],
        cin_ref: np.ndarray,
        kind_index: Dict[GateKind, int],
    ) -> None:
        self.slew_axis = np.asarray(slew_axis, dtype=float)
        self.load_axis = np.asarray(load_axis, dtype=float)
        for axis, label in ((self.slew_axis, "slew"), (self.load_axis, "load")):
            if axis.size < 2:
                raise LibertyError(f"{label} axis needs at least two points")
            if not np.all(np.diff(axis) > 0):
                raise LibertyError(f"{label} axis must be strictly increasing")
        self.cell_rise = np.asarray(tables["cell_rise"], dtype=float)
        self.cell_fall = np.asarray(tables["cell_fall"], dtype=float)
        self.rise_transition = np.asarray(tables["rise_transition"], dtype=float)
        self.fall_transition = np.asarray(tables["fall_transition"], dtype=float)
        self.cin_ref = np.asarray(cin_ref, dtype=float)
        self.kind_index = dict(kind_index)
        n = len(self.kind_index)
        shape = (n, self.slew_axis.size, self.load_axis.size)
        for kind in TABLE_KINDS:
            stack = getattr(self, kind)
            if stack.shape != shape:
                raise LibertyError(
                    f"{kind} stack has shape {stack.shape}, expected {shape}"
                )
        if self.cin_ref.shape != (n,):
            raise LibertyError("cin_ref must have one entry per cell")
        if np.any(self.cin_ref <= 0):
            raise LibertyError("cin_ref entries must be positive")
        self.digest = self._digest()

    def _digest(self) -> str:
        sha = hashlib.sha1()
        for kind, idx in sorted(self.kind_index.items(), key=lambda kv: kv[1]):
            sha.update(kind.value.encode())
        for array in (
            self.slew_axis,
            self.load_axis,
            self.cin_ref,
            self.cell_rise,
            self.cell_fall,
            self.rise_transition,
            self.fall_transition,
        ):
            sha.update(np.ascontiguousarray(array, dtype=float).tobytes())
        return sha.hexdigest()

    @property
    def n_cells(self) -> int:
        """Number of characterised cells in the stacks."""
        return len(self.kind_index)

    def kinds(self) -> List[GateKind]:
        """Characterised gate kinds in stack order."""
        return [
            kind
            for kind, _ in sorted(self.kind_index.items(), key=lambda kv: kv[1])
        ]

    @classmethod
    def from_library_group(cls, library: LibertyGroup) -> "NldmTables":
        """Build table stacks from a parsed ``library`` group.

        Cells whose names do not map onto a :class:`GateKind` are
        skipped (a real ``.lib`` carries flops, multi-drive variants
        etc. the reproduction has no use for).  Within a cell, every
        timing arc must carry identical tables -- the reproduction's
        cells are input-symmetric -- otherwise a
        :class:`~repro.liberty.parser.LibertyError` is raised, as it is
        for mixed table grids across cells.
        """
        slew_axis = None
        load_axis = None
        templates = _template_axes(library)
        per_cell: List[Tuple[GateKind, float, Dict[str, np.ndarray]]] = []
        for cell_group in library.find_all("cell"):
            try:
                kind = GateKind(cell_group.name.lower())
            except ValueError:
                continue
            cin, tables, axes = _extract_cell(cell_group, templates)
            if slew_axis is None:
                slew_axis, load_axis = axes
            else:
                if not (
                    np.array_equal(slew_axis, axes[0])
                    and np.array_equal(load_axis, axes[1])
                ):
                    raise LibertyError(
                        f"cell {cell_group.name!r} uses a different table "
                        "grid; shared axes are required"
                    )
            per_cell.append((kind, cin, tables))
        if not per_cell:
            raise LibertyError("no recognisable cells with NLDM tables")
        kind_index = {kind: i for i, (kind, _, _) in enumerate(per_cell)}
        if len(kind_index) != len(per_cell):
            raise LibertyError("duplicate cell definitions for one gate kind")
        stacks = {
            table_kind: np.stack([tables[table_kind] for _, _, tables in per_cell])
            for table_kind in TABLE_KINDS
        }
        cin_ref = np.array([cin for _, cin, _ in per_cell], dtype=float)
        assert slew_axis is not None and load_axis is not None
        return cls(slew_axis, load_axis, stacks, cin_ref, kind_index)


def _template_axes(
    library: LibertyGroup,
) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """Axes of every ``lu_table_template`` keyed by template name."""
    axes: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for template in library.find_all("lu_table_template"):
        var1 = template.attributes.get("variable_1", "input_net_transition")
        var2 = template.attributes.get("variable_2", "total_output_net_capacitance")
        if (
            var1 != "input_net_transition"
            or var2 != "total_output_net_capacitance"
        ):
            raise LibertyError(
                f"template {template.name!r}: only (input_net_transition, "
                "total_output_net_capacitance) tables are supported"
            )
        index_1 = template.complex_values("index_1")
        index_2 = template.complex_values("index_2")
        if index_1 is None or index_2 is None:
            raise LibertyError(f"template {template.name!r} lacks index_1/2")
        axes[template.name] = (
            np.array(parse_number_list(index_1), dtype=float),
            np.array(parse_number_list(index_2), dtype=float),
        )
    return axes


def _table_from_group(
    table_group: LibertyGroup,
    templates: Dict[str, Tuple[np.ndarray, np.ndarray]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decode one ``cell_rise (template) { ... }`` group to (slew, load, grid)."""
    axes = templates.get(table_group.name)
    index_1 = table_group.complex_values("index_1")
    index_2 = table_group.complex_values("index_2")
    if index_1 is not None and index_2 is not None:
        slew_axis = np.array(parse_number_list(index_1), dtype=float)
        load_axis = np.array(parse_number_list(index_2), dtype=float)
    elif axes is not None:
        slew_axis, load_axis = axes
    else:
        raise LibertyError(
            f"table {table_group.kind!r} has no index_1/index_2 and no "
            f"known template {table_group.name!r}"
        )
    values = table_group.complex_values("values")
    if values is None:
        raise LibertyError(f"table {table_group.kind!r} lacks values()")
    flat = parse_number_list(values)
    expected = slew_axis.size * load_axis.size
    if len(flat) != expected:
        raise LibertyError(
            f"table {table_group.kind!r}: {len(flat)} values for a "
            f"{slew_axis.size}x{load_axis.size} grid"
        )
    grid = np.array(flat, dtype=float).reshape(slew_axis.size, load_axis.size)
    return slew_axis, load_axis, grid


def _extract_cell(
    cell_group: LibertyGroup,
    templates: Dict[str, Tuple[np.ndarray, np.ndarray]],
) -> Tuple[float, Dict[str, np.ndarray], Tuple[np.ndarray, np.ndarray]]:
    """Pull (cin_ref, four tables, axes) out of one ``cell`` group."""
    cin_ref = None
    for pin in cell_group.find_all("pin"):
        if pin.attributes.get("direction") == "input":
            cap = pin.attributes.get("capacitance")
            if cap is None:
                raise LibertyError(
                    f"cell {cell_group.name!r}: input pin {pin.name!r} "
                    "lacks a capacitance attribute"
                )
            value = float(cap)
            if cin_ref is None:
                cin_ref = value
            elif value != cin_ref:
                raise LibertyError(
                    f"cell {cell_group.name!r}: input pins disagree on "
                    "capacitance; symmetric inputs are required"
                )
    if cin_ref is None:
        raise LibertyError(f"cell {cell_group.name!r} has no input pins")

    merged: Dict[str, np.ndarray] = {}
    axes: Tuple[np.ndarray, np.ndarray] = None  # type: ignore[assignment]
    n_arcs = 0
    for pin in cell_group.find_all("pin"):
        if pin.attributes.get("direction") != "output":
            continue
        for timing in pin.find_all("timing"):
            n_arcs += 1
            for table_kind in TABLE_KINDS:
                table_group = timing.find(table_kind)
                if table_group is None:
                    raise LibertyError(
                        f"cell {cell_group.name!r}: timing arc lacks "
                        f"a {table_kind} table"
                    )
                slew_axis, load_axis, grid = _table_from_group(
                    table_group, templates
                )
                if axes is None:
                    axes = (slew_axis, load_axis)
                elif not (
                    np.array_equal(axes[0], slew_axis)
                    and np.array_equal(axes[1], load_axis)
                ):
                    raise LibertyError(
                        f"cell {cell_group.name!r}: arcs use different "
                        "table grids"
                    )
                if table_kind in merged:
                    if not np.array_equal(merged[table_kind], grid):
                        raise LibertyError(
                            f"cell {cell_group.name!r}: timing arcs carry "
                            f"different {table_kind} tables; the backend "
                            "requires input-symmetric cells"
                        )
                else:
                    merged[table_kind] = grid
    if n_arcs == 0:
        raise LibertyError(f"cell {cell_group.name!r} has no timing arcs")
    return cin_ref, merged, axes
