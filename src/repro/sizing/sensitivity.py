"""Constant sensitivity sizing (section 3.2, eqs. 5-6, Figs. 3-4).

The paper's constraint-distribution method: instead of equalising stage
delays (Sutherland), impose the *same sensitivity* on every free gate::

    dT / dC_IN(i) = a        for all interior i            (eq. 5)

``a = 0`` recovers the unconstrained minimum ``Tmin``; sweeping ``a``
towards large negative values walks the delay/area trade-off curve down to
the minimum-area (all-CREF) corner.  Each ``a`` is solved by the eq. 6
link equations (Gauss-Seidel with recomputed coefficients); the delay
constraint ``Tc`` is then met by bisection on ``a`` -- a handful of cheap
fixed-point solves, which is where the two-orders-of-magnitude CPU-time
advantage over iterative industrial sizers comes from (Table 1).

Two weighting modes are provided:

* ``"uniform"``  -- the paper's method, minimum total input capacitance;
* ``"area"``     -- KKT-exact minimum ``sum W`` (sensitivities scaled by
  each stage's width-per-capacitance), an ablation the benches compare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.cells.library import Library
from repro.netlist.circuit import Circuit
from repro.sizing.bounds import _link_equation_sweep, max_delay_bound, min_delay_bound
from repro.timing import batch_probe
from repro.timing.evaluation import delay_gradient, path_area_um, path_delay_ps
from repro.timing.incremental import IncrementalSta
from repro.timing.path import BoundedPath
from repro.timing.sta import gate_sizes

_WEIGHT_MODES = ("uniform", "area")


@dataclass(frozen=True)
class SensitivitySolution:
    """Sizing solving ``dT/dC_IN(i) = a`` on a path."""

    a: float
    sizes: np.ndarray
    delay_ps: float
    area_um: float
    iterations: int


@dataclass(frozen=True)
class ConstraintResult:
    """Outcome of distributing a delay constraint ``Tc`` on a path.

    Attributes
    ----------
    feasible:
        Whether sizing alone can reach ``tc_ps`` (i.e. ``Tc >= Tmin``).
    achieved_delay_ps:
        Path delay of the returned sizing (<= ``tc_ps`` when feasible).
    a:
        The sensitivity coefficient realising the constraint.
    tmin_ps / tmax_ps:
        The path's delay window, computed on the way.
    solver_evaluations:
        Number of fixed-point solves spent by the bisection (cost metric
        for the Table 1 comparison).
    """

    feasible: bool
    tc_ps: float
    achieved_delay_ps: float
    sizes: np.ndarray
    area_um: float
    a: float
    tmin_ps: float
    tmax_ps: float
    solver_evaluations: int

    @property
    def slack_ps(self) -> float:
        """Constraint slack (positive when met)."""
        return self.tc_ps - self.achieved_delay_ps


def _area_weights(path: BoundedPath, library: Library) -> np.ndarray:
    """``dA/dC_IN(i)`` per stage, normalised to the inverter's weight."""
    tech = library.tech
    weights = np.array(
        [
            stage.cell.area_factor * stage.cell.n_inputs / tech.c_gate_ff_per_um
            for stage in path.stages
        ]
    )
    inv_weight = 1.0 / tech.c_gate_ff_per_um
    return weights / inv_weight


def solve_sensitivity(
    path: BoundedPath,
    library: Library,
    a: float,
    weight_mode: str = "uniform",
    start_sizes: Optional[np.ndarray] = None,
    max_iterations: int = 150,
    tol_ps: float = 1e-6,
    frozen: Optional[np.ndarray] = None,
) -> SensitivitySolution:
    """Solve the eq. 6 link equations for sensitivity ``a`` (ps/fF).

    ``a`` must be non-positive: positive sensitivities are past the delay
    minimum and never optimal.  ``frozen`` stages keep their ``start_sizes``
    value (local buffering mode).
    """
    if a > 0:
        raise ValueError(f"sensitivity a must be <= 0, got {a}")
    if weight_mode not in _WEIGHT_MODES:
        raise ValueError(f"weight_mode must be one of {_WEIGHT_MODES}")
    weights = _area_weights(path, library) if weight_mode == "area" else None

    if start_sizes is None:
        sizes = path.min_sizes(library)
    else:
        sizes = path.clamp_sizes(start_sizes, library)
    delay = path_delay_ps(path, sizes, library)
    iterations = 0
    for iteration in range(1, max_iterations + 1):
        iterations = iteration
        sizes = _link_equation_sweep(
            path, sizes, library, sensitivity=a, area_weights=weights, frozen=frozen
        )
        sizes[0] = path.cin_first_ff
        new_delay = path_delay_ps(path, sizes, library)
        if abs(new_delay - delay) < tol_ps:
            delay = new_delay
            break
        delay = new_delay
    return SensitivitySolution(
        a=a,
        sizes=sizes,
        delay_ps=delay,
        area_um=path_area_um(path, sizes, library),
        iterations=iterations,
    )


def sensitivity_sweep(
    path: BoundedPath,
    library: Library,
    a_values: np.ndarray,
    weight_mode: str = "uniform",
) -> List[SensitivitySolution]:
    """Design-space exploration: one solution per ``a`` (Fig. 3 series).

    Solutions are warm-started from the previous point for speed.
    """
    solutions: List[SensitivitySolution] = []
    start: Optional[np.ndarray] = None
    for a in a_values:
        sol = solve_sensitivity(
            path, library, float(a), weight_mode=weight_mode, start_sizes=start
        )
        solutions.append(sol)
        start = sol.sizes
    return solutions


def _most_negative_useful_a(
    path: BoundedPath, library: Library
) -> float:
    """A lower bracket for the bisection on ``a``.

    At the all-minimum sizing every free gate is as small as it can get;
    the most negative gradient component there bounds any realisable
    uniform sensitivity.
    """
    sizes = path.min_sizes(library)
    grad = delay_gradient(path, sizes, library)
    interior = grad[1:] if len(grad) > 1 else grad
    lower = float(np.min(interior)) if interior.size else -1.0
    return min(lower * 2.0, -1e-6)


def circuit_gate_sensitivities(
    circuit: Circuit,
    library: Library,
    gates: Optional[Iterable[str]] = None,
    rel_step: float = 1e-3,
    engine: Optional[IncrementalSta] = None,
    min_batch_columns: Optional[int] = None,
    probe_engine: Optional["batch_probe.BatchProbeEngine"] = None,
) -> Dict[str, float]:
    """Critical-delay sensitivity ``dT_crit/dC_IN`` per gate (ps/fF).

    The circuit-level analogue of :func:`~repro.timing.evaluation.
    delay_gradient`: each gate is perturbed by a central difference and
    the circuit is re-timed.  Every probe touches exactly one gate, so
    the two probes per gate become two *columns* of one cone-sparse
    batch propagation (:class:`~repro.timing.batch_probe.
    BatchProbeEngine`) when there are enough of them; below
    ``min_batch_columns`` columns (default :data:`~repro.timing.
    batch_probe.BATCH_PROBE_MIN_COLUMNS`) the warm-started
    :class:`~repro.timing.incremental.IncrementalSta` loop wins and is
    kept.  Both paths are bit-identical -- two cone re-timings per gate
    either way (the Table 1 CPU-time story, applied to sensitivity
    analysis).

    A caller-supplied ``engine`` (already tracking ``circuit``) is used
    in place on the scalar path and supplies the batch path's boundary
    conditions; it is left on the unperturbed sizing either way.  A
    caller-supplied ``probe_engine`` (e.g. the
    :meth:`~repro.api.session.Session.probe_engine` cache) must have
    been built with matching boundary conditions; it is re-bound to
    ``circuit``'s current sizing here.  Gates outside the critical cone
    report 0.0.
    """
    if rel_step <= 0:
        raise ValueError(f"rel_step must be positive, got {rel_step}")
    if engine is not None and engine.circuit is not circuit:
        raise ValueError("engine must track the probed circuit")
    names = list(gates) if gates is not None else list(circuit.gates)

    if batch_probe.should_batch(2 * len(names), min_batch_columns):
        base_sizes = (
            engine.sizes() if engine is not None else gate_sizes(circuit, library)
        )
        probes: List[Tuple[str, float]] = []
        steps: List[float] = []
        for name in names:
            original = circuit.gate(name).cin_ff
            base = original if original is not None else base_sizes[name]
            h = max(abs(base) * rel_step, 1e-9)
            probes.append((name, base + h))
            probes.append((name, base - h))
            steps.append(h)
        if probe_engine is None:
            kwargs = {}
            if engine is not None:
                kwargs = dict(
                    input_transition_ps=engine.input_transition_ps,
                    output_load_ff=engine.output_load_ff,
                    wire_model=engine.wire_model,
                )
            probe_engine = batch_probe.BatchProbeEngine(circuit, library, **kwargs)
        else:
            probe_engine.bind(circuit)
        delays = probe_engine.sizing_delays(probes)
        return {
            name: (delays[2 * i] - delays[2 * i + 1]) / (2.0 * h)
            for i, (name, h) in enumerate(zip(names, steps))
        }

    if engine is None:
        engine = IncrementalSta(circuit, library)
    base_sizes = engine.sizes()
    sensitivities: Dict[str, float] = {}
    for name in names:
        gate = circuit.gate(name)
        original = gate.cin_ff
        base = original if original is not None else base_sizes[name]
        h = max(abs(base) * rel_step, 1e-9)
        gate.cin_ff = base + h
        up = engine.update((name,)).critical_delay_ps
        gate.cin_ff = base - h
        down = engine.update((name,)).critical_delay_ps
        gate.cin_ff = original
        engine.update((name,))
        sensitivities[name] = (up - down) / (2.0 * h)
    return sensitivities


def distribute_constraint(
    path: BoundedPath,
    library: Library,
    tc_ps: float,
    weight_mode: str = "uniform",
    max_bisection: int = 60,
    tol_ps: float = 1e-3,
    frozen: Optional[np.ndarray] = None,
    frozen_sizes: Optional[np.ndarray] = None,
) -> ConstraintResult:
    """Meet a delay constraint at minimum area (the paper's core routine).

    Bisects the monotone map ``a -> T(a)`` between ``a = 0`` (``Tmin``)
    and a lower bracket where the path collapses to minimum drives
    (``Tmax``).  Returns an infeasible result carrying ``Tmin`` when
    ``tc_ps < Tmin`` -- the caller (the protocol driver) then switches to
    buffer insertion or structure modification, per Fig. 7.
    """
    if tc_ps <= 0:
        raise ValueError(f"tc_ps must be positive, got {tc_ps}")
    if (frozen is None) != (frozen_sizes is None):
        raise ValueError("frozen and frozen_sizes must be supplied together")
    if frozen is None:
        tmax, sizes_min_area = max_delay_bound(path, library)
        tmin, sizes_tmin, _, _ = min_delay_bound(path, library)
    else:
        sizes_min_area = path.min_sizes(library)
        sizes_min_area = np.where(frozen, frozen_sizes, sizes_min_area)
        sizes_min_area[0] = path.cin_first_ff
        tmax = path_delay_ps(path, sizes_min_area, library)
        tmin, sizes_tmin, _, _ = min_delay_bound(
            path, library, start_sizes=frozen_sizes, frozen=frozen
        )
    evaluations = 2

    if tc_ps < tmin:
        return ConstraintResult(
            feasible=False,
            tc_ps=tc_ps,
            achieved_delay_ps=tmin,
            sizes=sizes_tmin,
            area_um=path_area_um(path, sizes_tmin, library),
            a=0.0,
            tmin_ps=tmin,
            tmax_ps=tmax,
            solver_evaluations=evaluations,
        )
    if tc_ps >= tmax:
        # The minimum-area corner already satisfies the constraint.
        return ConstraintResult(
            feasible=True,
            tc_ps=tc_ps,
            achieved_delay_ps=tmax,
            sizes=sizes_min_area,
            area_um=path_area_um(path, sizes_min_area, library),
            a=_most_negative_useful_a(path, library),
            tmin_ps=tmin,
            tmax_ps=tmax,
            solver_evaluations=evaluations,
        )

    start_base = frozen_sizes if frozen is not None else None
    a_hi = 0.0  # delay = tmin
    a_lo = _most_negative_useful_a(path, library)
    sol_lo = solve_sensitivity(
        path, library, a_lo, weight_mode=weight_mode,
        start_sizes=start_base, frozen=frozen,
    )
    evaluations += 1
    # Widen the bracket until the low end is slower than the constraint.
    widenings = 0
    while sol_lo.delay_ps < tc_ps and widenings < 40:
        a_lo *= 4.0
        sol_lo = solve_sensitivity(
            path, library, a_lo, weight_mode=weight_mode,
            start_sizes=start_base, frozen=frozen,
        )
        evaluations += 1
        widenings += 1

    best: Optional[SensitivitySolution] = None
    start = sol_lo.sizes
    for _ in range(max_bisection):
        a_mid = 0.5 * (a_lo + a_hi)
        sol = solve_sensitivity(
            path, library, a_mid, weight_mode=weight_mode, start_sizes=start,
            frozen=frozen,
        )
        evaluations += 1
        start = sol.sizes
        if sol.delay_ps <= tc_ps:
            # Meets timing: try to relax further (more negative a).
            best = sol
            a_hi = a_mid
        else:
            a_lo = a_mid
        if abs(sol.delay_ps - tc_ps) < tol_ps:
            if sol.delay_ps <= tc_ps:
                best = sol
            break

    if best is None:
        # Fall back to the timing-optimal corner (always feasible here).
        best = solve_sensitivity(
            path, library, 0.0, weight_mode=weight_mode,
            start_sizes=start_base, frozen=frozen,
        )
        evaluations += 1
    return ConstraintResult(
        feasible=True,
        tc_ps=tc_ps,
        achieved_delay_ps=best.delay_ps,
        sizes=best.sizes,
        area_um=best.area_um,
        a=best.a,
        tmin_ps=tmin,
        tmax_ps=tmax,
        solver_evaluations=evaluations,
    )
