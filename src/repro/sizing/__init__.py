"""Sizing engines: delay bounds, constant sensitivity, classic baselines."""

from repro.sizing.bounds import (
    BoundsHistoryPoint,
    DelayBounds,
    delay_bounds,
    max_delay_bound,
    min_delay_bound,
)
from repro.sizing.sensitivity import (
    ConstraintResult,
    SensitivitySolution,
    circuit_gate_sensitivities,
    distribute_constraint,
    sensitivity_sweep,
    solve_sensitivity,
)

__all__ = [
    "DelayBounds",
    "BoundsHistoryPoint",
    "delay_bounds",
    "min_delay_bound",
    "max_delay_bound",
    "SensitivitySolution",
    "ConstraintResult",
    "solve_sensitivity",
    "sensitivity_sweep",
    "distribute_constraint",
    "circuit_gate_sensitivities",
]
