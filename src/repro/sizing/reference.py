"""Reference optimizers built on scipy -- ground truth for the tests.

The eq. 4 / eq. 6 engines are fast *because* they exploit the model's
structure.  To certify them, this module solves the same problems with a
general-purpose numerical optimizer (L-BFGS-B over log-sizes, exact
gradients):

* :func:`reference_minimum_delay` -- the unconstrained Tmin problem;
* :func:`reference_min_area_for_delay` -- minimum ``sum W`` subject to
  ``T <= Tc``, via an exact-penalty formulation.

They are one to two orders of magnitude slower than the closed-form
engines and exist purely as an independent check (and as the honest
answer to "how much does the specialised solver actually buy?").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import optimize

from repro.cells.library import Library
from repro.timing.evaluation import (
    delay_gradient,
    path_area_um,
    path_delay_ps,
)
from repro.timing.path import BoundedPath


@dataclass(frozen=True)
class ReferenceResult:
    """Outcome of a scipy reference solve."""

    delay_ps: float
    area_um: float
    sizes: np.ndarray
    n_evaluations: int
    converged: bool


def _bounds_and_start(
    path: BoundedPath, library: Library, start: Optional[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    mins = path.min_sizes(library)
    if start is None:
        start = mins * 4.0
        start[0] = path.cin_first_ff
    return mins, path.clamp_sizes(start, library)


def reference_minimum_delay(
    path: BoundedPath,
    library: Library,
    start_sizes: Optional[np.ndarray] = None,
    max_size_mult: float = 1e4,
) -> ReferenceResult:
    """Tmin by L-BFGS-B over log-sizes with exact gradients."""
    n = len(path)
    mins, start = _bounds_and_start(path, library, start_sizes)
    evaluations = 0

    if n == 1:
        delay = path_delay_ps(path, mins, library)
        return ReferenceResult(delay, path_area_um(path, mins, library),
                               mins, 1, True)

    # Optimize interior stages in log space (the problem is convex in the
    # sizes and smooth in the logs; bounds keep us in the model's domain).
    def unpack(theta: np.ndarray) -> np.ndarray:
        sizes = np.empty(n)
        sizes[0] = path.cin_first_ff
        sizes[1:] = np.exp(theta)
        return sizes

    def objective(theta: np.ndarray):
        nonlocal evaluations
        evaluations += 1
        sizes = unpack(theta)
        value = path_delay_ps(path, sizes, library)
        grad = delay_gradient(path, sizes, library)[1:] * sizes[1:]
        return value, grad

    theta0 = np.log(start[1:])
    bounds = [
        (np.log(mins[i]), np.log(mins[i] * max_size_mult)) for i in range(1, n)
    ]
    result = optimize.minimize(
        objective, theta0, jac=True, method="L-BFGS-B", bounds=bounds,
        options={"maxiter": 500, "ftol": 1e-14, "gtol": 1e-12},
    )
    sizes = unpack(result.x)
    return ReferenceResult(
        delay_ps=path_delay_ps(path, sizes, library),
        area_um=path_area_um(path, sizes, library),
        sizes=sizes,
        n_evaluations=evaluations,
        converged=bool(result.success),
    )


def reference_min_area_for_delay(
    path: BoundedPath,
    library: Library,
    tc_ps: float,
    penalty_per_ps: float = 1e4,
    start_sizes: Optional[np.ndarray] = None,
    max_size_mult: float = 1e4,
) -> ReferenceResult:
    """Minimum ``sum W`` subject to ``T <= Tc`` (exact penalty + L-BFGS-B).

    The constraint is folded in as ``area + penalty * max(0, T - Tc)^2``;
    with a stiff penalty the optimum sits on the constraint boundary, like
    the constant-sensitivity solution it certifies.
    """
    if tc_ps <= 0:
        raise ValueError("tc_ps must be positive")
    n = len(path)
    mins, start = _bounds_and_start(path, library, start_sizes)
    tech = library.tech
    area_weight = np.array(
        [
            stage.cell.area_factor * stage.cell.n_inputs / tech.c_gate_ff_per_um
            for stage in path.stages
        ]
    )
    evaluations = 0

    def unpack(theta: np.ndarray) -> np.ndarray:
        sizes = np.empty(n)
        sizes[0] = path.cin_first_ff
        sizes[1:] = np.exp(theta)
        return sizes

    def objective(theta: np.ndarray):
        nonlocal evaluations
        evaluations += 1
        sizes = unpack(theta)
        delay = path_delay_ps(path, sizes, library)
        area = float(np.dot(area_weight, sizes))
        violation = max(0.0, delay - tc_ps)
        value = area + penalty_per_ps * violation**2
        grad_area = area_weight[1:]
        grad = grad_area.copy()
        if violation > 0:
            grad_delay = delay_gradient(path, sizes, library)[1:]
            grad = grad + 2.0 * penalty_per_ps * violation * grad_delay
        return value, grad * sizes[1:]

    theta0 = np.log(start[1:]) if n > 1 else np.zeros(0)
    if n == 1:
        delay = path_delay_ps(path, mins, library)
        return ReferenceResult(delay, path_area_um(path, mins, library),
                               mins, 1, delay <= tc_ps)
    bounds = [
        (np.log(mins[i]), np.log(mins[i] * max_size_mult)) for i in range(1, n)
    ]
    result = optimize.minimize(
        objective, theta0, jac=True, method="L-BFGS-B", bounds=bounds,
        options={"maxiter": 800, "ftol": 1e-15, "gtol": 1e-12},
    )
    sizes = unpack(result.x)
    delay = path_delay_ps(path, sizes, library)
    return ReferenceResult(
        delay_ps=delay,
        area_um=path_area_um(path, sizes, library),
        sizes=sizes,
        n_evaluations=evaluations,
        converged=bool(result.success) and delay <= tc_ps * (1 + 1e-4),
    )
