"""Path delay bounds ``Tmax`` / ``Tmin`` (section 3.1, eq. 4, Figs. 1-2).

* ``Tmax`` is the paper's pseudo-upper bound: every gate at the minimum
  available drive.  (Without a size floor no upper bound exists.)
* ``Tmin`` is the global minimum of the convex bounded-path delay.  It is
  found exactly as in the paper: cancel ``dT/dC_IN(i)``, which yields the
  link equations (eq. 4)::

      C_IN(i)^2 = (A_i / A_{i-1}) * C_IN(i-1) * (C_par + C_side + C_IN(i+1))

  seeded by a backward pass with ``C_IN(i-1) = CREF``, then iterated to a
  fixed point with the effective ``A_i`` recomputed every sweep.  A short
  projected-gradient polish (exact numerical gradient) follows, so the
  result is a certified stationary point of the *full* model including the
  coupling-factor derivatives the link equations neglect.

The iteration history (total input capacitance vs delay) is recorded to
regenerate Fig. 1.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.cells.library import Library
from repro.timing.delay_model import Edge, GateTiming
from repro.timing.evaluation import (
    delay_gradient,
    effective_a_coeffs,
    path_area_um,
    path_delay_ps,
)
from repro.timing.path import BoundedPath


@dataclass(frozen=True)
class BoundsHistoryPoint:
    """One iteration snapshot for the Fig. 1 trajectory."""

    iteration: int
    total_cin_over_cref: float
    delay_ps: float


@dataclass(frozen=True)
class DelayBounds:
    """Result of a bounds computation on one path.

    Attributes
    ----------
    tmin_ps / tmax_ps:
        The achievable delay window of the path.
    sizes_tmin / sizes_tmax:
        Sizing vectors realising each bound.
    area_tmin_um / area_tmax_um:
        ``sum W`` of each realisation.
    history:
        (iteration, sum C_IN / CREF, delay) trace of the Tmin iteration.
    iterations:
        Number of eq. 4 sweeps used (excluding the polish).
    """

    tmin_ps: float
    tmax_ps: float
    sizes_tmin: np.ndarray
    sizes_tmax: np.ndarray
    area_tmin_um: float
    area_tmax_um: float
    history: Tuple[BoundsHistoryPoint, ...]
    iterations: int

    def feasible(self, tc_ps: float) -> bool:
        """Whether a delay constraint can be met by sizing alone."""
        return tc_ps >= self.tmin_ps


#: The active sweep-scoped ``Tmin`` memo (``None`` outside a sweep).
#: :func:`min_delay_bound` is a pure function of ``(path, library)`` for
#: default solver arguments, yet a Tc-sweep re-runs it on largely
#: identical candidate paths at every constraint point -- by far the
#: protocol's hottest pure computation.  The memo is *opt-in and scoped*:
#: the circuit driver activates a :class:`~repro.protocol.optimizer`
#: warm-start's dict around one optimization and deactivates it after,
#: so independent (cold) jobs never share state, and values served from
#: the memo are exactly the tuples a fresh solve would produce.
_ACTIVE_TMIN_MEMO: Optional[Dict[Tuple, Tuple]] = None

#: :func:`min_delay_bound` solver defaults -- referenced by both the
#: signature and the memo-eligibility gate, so tuning one cannot
#: silently strand the other (a mismatch would never error, it would
#: just stop every memo hit).
_DEFAULT_MAX_ITERATIONS = 200
_DEFAULT_TOL_PS = 1e-6


@contextmanager
def tmin_memo(memo: Optional[Dict[Tuple, Tuple]]) -> Iterator[None]:
    """Activate a sweep's ``Tmin`` memo for the enclosed computation."""
    global _ACTIVE_TMIN_MEMO
    previous = _ACTIVE_TMIN_MEMO
    _ACTIVE_TMIN_MEMO = memo
    try:
        yield
    finally:
        _ACTIVE_TMIN_MEMO = previous


def max_delay_bound(path: BoundedPath, library: Library) -> Tuple[float, np.ndarray]:
    """``Tmax``: the minimum-area (all gates at CREF-level drive) delay."""
    sizes = path.min_sizes(library)
    return path_delay_ps(path, sizes, library), sizes


def _link_equation_sweep(
    path: BoundedPath,
    sizes: np.ndarray,
    library: Library,
    sensitivity: float = 0.0,
    area_weights: Optional[np.ndarray] = None,
    frozen: Optional[np.ndarray] = None,
) -> np.ndarray:
    """One Gauss-Seidel sweep of the eq. 4 / eq. 6 link equations.

    With ``sensitivity = a = 0`` this is eq. 4 (the Tmin condition); with
    ``a < 0`` it is eq. 6, the constant-sensitivity condition
    ``dT/dC_IN(i) = a * w_i`` (``w_i = 1`` reproduces the paper exactly;
    passing area weights yields the KKT-exact minimum-``sum W`` variant).
    Stages flagged in ``frozen`` keep their current size (used by the
    local buffer-insertion mode, which sizes only the inserted buffers).

    Backends without closed-form bounds (NLDM tables) take the numeric
    twin :func:`_numeric_link_sweep`: the same Gauss-Seidel update, but
    each stage's stationarity condition is solved by a bracketed root
    search on the windowed delay derivative instead of eq. 4.
    """
    if not library.delay_backend.capabilities.closed_form_bounds:
        return _numeric_link_sweep(path, sizes, library, sensitivity, area_weights, frozen)
    n = len(path)
    out = sizes.copy()
    coeffs = effective_a_coeffs(path, out, library)
    for i in range(1, n):
        if frozen is not None and frozen[i]:
            continue
        ext_i = path.stages[i].cside_ff + (out[i + 1] if i + 1 < n else path.cterm_ff)
        w_i = 1.0 if area_weights is None else area_weights[i]
        denominator = coeffs[i - 1] / out[i - 1] - sensitivity * w_i
        if denominator <= 0:
            # Sensitivity more negative than the upstream stage can express:
            # the gate collapses to its minimum drive.
            out[i] = path.stages[i].cell.cin_min(library.tech)
            continue
        target_sq = coeffs[i] * ext_i / denominator
        out[i] = max(
            np.sqrt(target_sq), path.stages[i].cell.cin_min(library.tech)
        )
    return out


def _stage_timing(
    path: BoundedPath,
    sizes: np.ndarray,
    library: Library,
    i: int,
    tin_ps: float,
    edge: Edge,
) -> GateTiming:
    """One stage's backend timing under the current sweep sizing."""
    stage = path.stages[i]
    downstream = sizes[i + 1] if i + 1 < len(path) else path.cterm_ff
    return library.delay_backend.gate_timing(
        stage.cell,
        library.tech,
        float(sizes[i]),
        float(stage.cside_ff + downstream),
        tin_ps,
        edge,
    )


def _numeric_link_root(
    window: Callable[[float], float],
    cin_min: float,
    c_start: float,
    target: float,
) -> float:
    """Smallest drive where the windowed delay derivative reaches ``target``.

    Solves ``d(window)/dc = target`` (``target = a * w_i <= 0``) with a
    central-difference derivative and an Illinois-damped regula falsi on
    the bracketed sign change; the derivative is non-decreasing for any
    sane delay table (the windowed delay is convex-ish in the drive), so
    the bracket expansion upward from the warm start always terminates.
    """

    def g(c: float) -> float:
        h = max(c * 1e-6, 1e-9)
        return (window(c + h) - window(c - h)) / (2.0 * h) - target

    g_lo = g(cin_min)
    if g_lo >= 0.0:
        # Already no faster than the target slope at the floor: collapse
        # to minimum drive, mirroring the closed-form branch.
        return cin_min
    lo, hi = cin_min, max(c_start, 2.0 * cin_min)
    g_hi = g(hi)
    expansions = 0
    while g_hi < 0.0:
        if expansions >= 60:
            return hi
        lo, g_lo = hi, g_hi
        hi *= 2.0
        g_hi = g(hi)
        expansions += 1
    for _ in range(80):
        if hi - lo <= 1e-7 * hi:
            break
        mid = (lo * g_hi - hi * g_lo) / (g_hi - g_lo)
        if not lo < mid < hi:
            mid = 0.5 * (lo + hi)
        g_mid = g(mid)
        if g_mid == 0.0:
            return mid
        if g_mid < 0.0:
            lo, g_lo = mid, g_mid
            g_hi *= 0.5
        else:
            hi, g_hi = mid, g_mid
            g_lo *= 0.5
    return 0.5 * (lo + hi)


def _numeric_link_sweep(
    path: BoundedPath,
    sizes: np.ndarray,
    library: Library,
    sensitivity: float = 0.0,
    area_weights: Optional[np.ndarray] = None,
    frozen: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Numeric Gauss-Seidel sweep for backends without closed-form bounds.

    Each free stage ``i`` is moved to the drive where the derivative of
    the three-stage windowed delay (stages ``i-1 .. i+1`` -- every term
    of the path delay that depends on ``C_IN(i)`` when output
    transitions are slew-independent, and a tight truncation otherwise)
    equals ``a * w_i``.  Entry transitions/polarities into the window
    come from a forward chain refreshed incrementally as the sweep
    rewrites sizes, exactly the Gauss-Seidel discipline of the
    closed-form sweep.  Fixed points therefore satisfy the same
    stationarity conditions eq. 4 / eq. 6 encode, evaluated through the
    backend's own tables.
    """
    n = len(path)
    out = sizes.copy()
    out[0] = path.cin_first_ff
    tech = library.tech

    tins = np.empty(n)
    edges: List[Edge] = []
    tin = path.tin_first_ps
    edge = path.input_edge
    for i in range(n):
        tins[i] = tin
        edges.append(edge)
        timing = _stage_timing(path, out, library, i, tin, edge)
        tin = timing.tout_ps
        edge = timing.output_edge

    for i in range(1, n):
        if frozen is not None and frozen[i]:
            continue
        w_i = 1.0 if area_weights is None else area_weights[i]
        target = sensitivity * w_i
        cin_min = path.stages[i].cell.cin_min(tech)
        i0 = i - 1
        i1 = min(i + 1, n - 1)

        def window(c: float, i: int = i, i0: int = i0, i1: int = i1) -> float:
            saved = out[i]
            out[i] = c
            try:
                total = 0.0
                tin_w = float(tins[i0])
                edge_w = edges[i0]
                for j in range(i0, i1 + 1):
                    timing = _stage_timing(path, out, library, j, tin_w, edge_w)
                    total += timing.delay_ps
                    tin_w = timing.tout_ps
                    edge_w = timing.output_edge
                return total
            finally:
                out[i] = saved

        out[i] = _numeric_link_root(window, cin_min, float(out[i]), target)
        # The new size shifted stage i-1's load and stage i's drive:
        # refresh the entry transitions downstream of the edit.
        for j in (i - 1, i):
            timing = _stage_timing(path, out, library, j, float(tins[j]), edges[j])
            if j + 1 < n:
                tins[j + 1] = timing.tout_ps
    return out


def _projected_gradient_polish(
    path: BoundedPath,
    sizes: np.ndarray,
    library: Library,
    max_steps: int = 60,
    tol_ps: float = 1e-4,
    frozen: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Backtracking projected gradient descent on the exact path delay."""
    current = path.clamp_sizes(sizes, library)
    t_current = path_delay_ps(path, current, library)
    step = 1.0  # fF^2 / ps scale; adapted by backtracking
    for _ in range(max_steps):
        grad = delay_gradient(path, current, library)
        if frozen is not None:
            grad = np.where(frozen, 0.0, grad)
        norm = float(np.linalg.norm(grad))
        if norm < 1e-9:
            break
        improved = False
        while step > 1e-6:
            candidate = path.clamp_sizes(current - step * grad, library)
            t_candidate = path_delay_ps(path, candidate, library)
            if t_candidate < t_current - 1e-12:
                current, t_current = candidate, t_candidate
                improved = True
                step *= 1.3
                break
            step *= 0.5
        if not improved or abs(norm) * step < tol_ps:
            break
    return current


def min_delay_bound(
    path: BoundedPath,
    library: Library,
    cref_ff: Optional[float] = None,
    max_iterations: int = _DEFAULT_MAX_ITERATIONS,
    tol_ps: float = _DEFAULT_TOL_PS,
    polish: bool = True,
    start_sizes: Optional[np.ndarray] = None,
    frozen: Optional[np.ndarray] = None,
) -> Tuple[float, np.ndarray, List[BoundsHistoryPoint], int]:
    """``Tmin`` via the eq. 4 fixed point.

    Parameters
    ----------
    cref_ff:
        Seed drive for the backward initial pass.  The paper notes (and
        our property tests verify) that the converged ``Tmin`` does not
        depend on this choice; it defaults to the library ``CREF``.
    start_sizes:
        Optional explicit starting point (overrides the backward pass);
        required when some stages are frozen.
    frozen:
        Boolean mask of stages whose size must not move (local buffer
        sizing keeps the original gates untouched).

    Returns ``(tmin, sizes, history, iterations)``.
    """
    # Serve default-argument solves from the active sweep memo, if any:
    # the result is a pure function of (path, library, polish), so the
    # cached tuple is exactly what a fresh solve would return (callers
    # get copies -- the memo's arrays are never handed out mutable).
    memo = _ACTIVE_TMIN_MEMO
    cacheable = (
        memo is not None
        and cref_ff is None
        and max_iterations == _DEFAULT_MAX_ITERATIONS
        and tol_ps == _DEFAULT_TOL_PS
        and start_sizes is None
        and frozen is None
    )
    key: Optional[Tuple] = None
    if cacheable and memo is not None:
        key = (id(library), polish, path.fingerprint())
        hit = memo.get(key)
        if hit is not None:
            delay, sizes, history, iterations = hit
            return delay, sizes.copy(), list(history), iterations
    if cref_ff is None:
        cref_ff = library.cref
    if cref_ff <= 0:
        raise ValueError("cref_ff must be positive")
    n = len(path)
    cref_lib = library.cref
    closed_form = library.delay_backend.capabilities.closed_form_bounds
    if not closed_form:
        # Numeric sweeps cost a root search per stage; cap the fixed
        # point accordingly (it converges geometrically and the polish
        # certifies stationarity on the exact backend delay anyway).
        max_iterations = min(max_iterations, 60)
        tol_ps = max(tol_ps, 1e-5)

    if start_sizes is not None:
        sizes = path.clamp_sizes(start_sizes, library)
    elif not closed_form:
        # No eq. 4 coefficients to seed from: start the numeric fixed
        # point at the minimum-drive corner.
        sizes = path.min_sizes(library)
    else:
        # Backward initial pass: local eq. 4 solutions with C_IN(i-1) = cref.
        sizes = path.min_sizes(library)
        coeffs = effective_a_coeffs(path, sizes, library)
        for i in range(n - 1, 0, -1):
            ext_i = path.stages[i].cside_ff + (
                sizes[i + 1] if i + 1 < n else path.cterm_ff
            )
            target_sq = (coeffs[i] / coeffs[i - 1]) * cref_ff * ext_i
            sizes[i] = max(
                np.sqrt(target_sq), path.stages[i].cell.cin_min(library.tech)
            )
        sizes[0] = path.cin_first_ff

    history: List[BoundsHistoryPoint] = []
    delay = path_delay_ps(path, sizes, library)
    history.append(BoundsHistoryPoint(0, float(sizes.sum() / cref_lib), delay))

    iterations = 0
    for iteration in range(1, max_iterations + 1):
        iterations = iteration
        sizes = _link_equation_sweep(path, sizes, library, sensitivity=0.0, frozen=frozen)
        sizes[0] = path.cin_first_ff
        new_delay = path_delay_ps(path, sizes, library)
        history.append(
            BoundsHistoryPoint(iteration, float(sizes.sum() / cref_lib), new_delay)
        )
        if abs(new_delay - delay) < tol_ps:
            delay = new_delay
            break
        delay = new_delay

    if polish and n > 1:
        sizes = _projected_gradient_polish(path, sizes, library, frozen=frozen)
        delay = path_delay_ps(path, sizes, library)
        history.append(
            BoundsHistoryPoint(iterations + 1, float(sizes.sum() / cref_lib), delay)
        )
    if key is not None and memo is not None:
        memo[key] = (delay, sizes.copy(), tuple(history), iterations)
    return delay, sizes, history, iterations


def delay_bounds(
    path: BoundedPath,
    library: Library,
    cref_ff: Optional[float] = None,
    polish: bool = True,
) -> DelayBounds:
    """Compute the full ``(Tmin, Tmax)`` window of a bounded path."""
    tmax, sizes_max = max_delay_bound(path, library)
    tmin, sizes_min_delay, history, iterations = min_delay_bound(
        path, library, cref_ff=cref_ff, polish=polish
    )
    return DelayBounds(
        tmin_ps=tmin,
        tmax_ps=tmax,
        sizes_tmin=sizes_min_delay,
        sizes_tmax=sizes_max,
        area_tmin_um=path_area_um(path, sizes_min_delay, library),
        area_tmax_um=path_area_um(path, sizes_max, library),
        history=tuple(history),
        iterations=iterations,
    )
