"""``pops`` command-line interface.

Subcommands mirror the protocol steps:

* ``pops characterize``             -- library Flimit table (Table 2 style)
* ``pops bounds <benchmark>``       -- Tmin/Tmax of the critical path
* ``pops optimize <benchmark>``     -- run the Fig. 7 protocol at a Tc
* ``pops benchmarks``               -- list the registered circuits
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.buffering.flimit import TABLE2_GATES, characterize_library
from repro.cells.gate_types import GateKind
from repro.cells.library import default_library
from repro.iscas.loader import benchmark_names, load_benchmark
from repro.protocol.optimizer import optimize_path
from repro.protocol.report import format_table
from repro.sizing.bounds import delay_bounds
from repro.timing.critical_paths import critical_path
from repro.timing.report import timing_report


def _cmd_benchmarks(_: argparse.Namespace) -> int:
    library = default_library()
    rows = []
    for name in benchmark_names():
        circuit = load_benchmark(name)
        stats = circuit.stats()
        rows.append((name, stats["total_gates"], stats["inputs"], stats["depth"]))
    print(format_table(("circuit", "gates", "inputs", "depth"), rows))
    del library
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    library = default_library()
    entries = characterize_library(
        library, gates=TABLE2_GATES, with_simulation=args.simulate
    )
    rows = []
    for entry in entries:
        rows.append(
            (
                entry.driver.value,
                entry.gate.value,
                entry.computed,
                entry.simulated if entry.simulated is not None else "-",
            )
        )
    print(
        format_table(
            ("driver", "gate", "Flimit (calc)", "Flimit (sim)"),
            rows,
            title="Library characterization (paper Table 2)",
        )
    )
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    library = default_library()
    circuit = load_benchmark(args.benchmark, bench_dir=args.bench_dir)
    extracted = critical_path(circuit, library)
    bounds = delay_bounds(extracted.path, library)
    print(f"benchmark        : {args.benchmark}")
    print(f"critical path    : {len(extracted.gate_names)} gates")
    print(f"Tmax (min area)  : {bounds.tmax_ps:.1f} ps")
    print(f"Tmin             : {bounds.tmin_ps:.1f} ps")
    print(f"area at Tmax     : {bounds.area_tmax_um:.1f} um")
    print(f"area at Tmin     : {bounds.area_tmin_um:.1f} um")
    print(f"eq.4 iterations  : {bounds.iterations}")
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    library = default_library()
    circuit = load_benchmark(args.benchmark, bench_dir=args.bench_dir)
    extracted = critical_path(circuit, library)
    bounds = delay_bounds(extracted.path, library)
    tc = args.tc_ps if args.tc_ps is not None else args.tc_ratio * bounds.tmin_ps
    outcome = optimize_path(extracted.path, library, tc)
    print(f"benchmark   : {args.benchmark}")
    print(f"Tmin        : {bounds.tmin_ps:.1f} ps")
    print(f"Tc          : {tc:.1f} ps ({tc / bounds.tmin_ps:.2f} x Tmin)")
    print(f"domain      : {outcome.domain.domain}")
    print(f"method      : {outcome.method}")
    print(f"delay       : {outcome.delay_ps:.1f} ps (slack {outcome.slack_ps:.1f})")
    print(f"area (sumW) : {outcome.area_um:.1f} um")
    print(f"feasible    : {outcome.feasible}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    library = default_library()
    circuit = load_benchmark(args.benchmark, bench_dir=args.bench_dir)
    from repro.timing.sta import analyze

    sta = analyze(circuit, library)
    tc = args.tc_ps if args.tc_ps is not None else 1.1 * sta.critical_delay_ps
    report = timing_report(circuit, library, tc, k_paths=args.paths, sta=sta)
    print(report.render())
    return 0


def _cmd_power(args: argparse.Namespace) -> int:
    from repro.analysis.activity import estimate_activity
    from repro.analysis.area import circuit_area_um
    from repro.analysis.power import estimate_power

    library = default_library()
    circuit = load_benchmark(args.benchmark, bench_dir=args.bench_dir)
    activity = estimate_activity(circuit, n_vectors=args.vectors)
    report = estimate_power(circuit, library, frequency_mhz=args.frequency,
                            activity=activity)
    print(f"benchmark        : {args.benchmark}")
    print(f"area (sum W)     : {circuit_area_um(circuit, library):.1f} um")
    print(f"mean activity    : {activity.mean_rate:.3f} toggles/vector")
    print(f"dynamic power    : {report.dynamic_uw:.2f} uW @ {args.frequency} MHz")
    print(f"short-circuit    : {report.short_circuit_uw:.2f} uW")
    print(f"total            : {report.total_uw:.2f} uW")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``pops`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="pops",
        description="POPS low-power CMOS circuit optimization protocol (DATE'05)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("benchmarks", help="list registered benchmark circuits")

    p_char = sub.add_parser("characterize", help="library Flimit table")
    p_char.add_argument(
        "--simulate",
        action="store_true",
        help="also derive Flimit from the transistor-level simulator (slow)",
    )

    p_bounds = sub.add_parser("bounds", help="critical path delay bounds")
    p_bounds.add_argument("benchmark", help="benchmark name (see 'benchmarks')")
    p_bounds.add_argument("--bench-dir", default=None, help="real .bench directory")

    p_opt = sub.add_parser("optimize", help="run the optimization protocol")
    p_opt.add_argument("benchmark")
    p_opt.add_argument("--bench-dir", default=None, help="real .bench directory")
    group = p_opt.add_mutually_exclusive_group()
    group.add_argument("--tc-ps", type=float, default=None, help="constraint in ps")
    group.add_argument(
        "--tc-ratio",
        type=float,
        default=1.5,
        help="constraint as a multiple of Tmin (default 1.5)",
    )

    p_report = sub.add_parser("report", help="STA timing report")
    p_report.add_argument("benchmark")
    p_report.add_argument("--bench-dir", default=None)
    p_report.add_argument("--tc-ps", type=float, default=None)
    p_report.add_argument("--paths", type=int, default=3)

    p_power = sub.add_parser("power", help="area / activity / power report")
    p_power.add_argument("benchmark")
    p_power.add_argument("--bench-dir", default=None)
    p_power.add_argument("--frequency", type=float, default=100.0,
                         help="clock frequency in MHz")
    p_power.add_argument("--vectors", type=int, default=128,
                         help="random vectors for activity estimation")
    return parser


_COMMANDS = {
    "benchmarks": _cmd_benchmarks,
    "characterize": _cmd_characterize,
    "bounds": _cmd_bounds,
    "optimize": _cmd_optimize,
    "report": _cmd_report,
    "power": _cmd_power,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
