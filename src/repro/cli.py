"""``pops`` command-line interface: thin wrappers over the Session facade.

Subcommands mirror the protocol steps:

* ``pops characterize``             -- library Flimit table (Table 2 style)
* ``pops bounds <benchmark>``       -- Tmin/Tmax of the critical path
* ``pops optimize <benchmark>``     -- run the Fig. 7 protocol at a Tc
* ``pops report <benchmark>``       -- STA timing report
* ``pops power <benchmark>``        -- area / activity / power report
* ``pops sweep <benchmark...>``     -- Tc-sweep campaign + Pareto frontier
* ``pops mc <benchmark...>``        -- Monte-Carlo corner analysis / yield
* ``pops trace <file>``             -- render a trace JSONL / run telemetry
* ``pops benchmarks``               -- list the registered circuits
* ``pops lib <file.lib>``           -- inspect/validate an NLDM Liberty file

``optimize``, ``sweep`` and ``mc`` accept ``--trace <file.jsonl>`` to
record hierarchical spans (see :mod:`repro.obs`) for ``pops trace``.

Analysis subcommands accept ``--backend {analytic,nldm}`` plus
``--liberty <file.lib>`` to run the whole stack off characterised NLDM
tables instead of the closed-form eq. 1-3 model (see
:mod:`repro.timing.backend`); ``--liberty`` alone implies
``--backend nldm``.

The serving surface (see :mod:`repro.serve`):

* ``pops serve``                    -- run the multi-tenant daemon
* ``pops submit <kind> <benchmark>``-- run a job through the daemon
* ``pops status``                   -- daemon stats (queue, caches, store)
* ``pops shutdown``                 -- stop the daemon (drained by default)

Every analysis subcommand accepts ``--json`` to emit the run record as a
lossless JSON envelope (see :mod:`repro.api.records`) instead of the
human-readable text -- the machine surface campaigns script against.
Failures are machine-parseable too: with ``--json`` an error prints a
single ``{"error": {"type", "message"}}`` object on stdout, the human
line goes to stderr, and the exit code is nonzero (2 for designed
spec/usage errors, 1 for everything else).  Set ``POPS_DEBUG=1`` to get
the traceback instead.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro import __version__
from repro.api import Job, Session, SweepSpec
from repro.protocol.report import format_table


def _parse_points(text: str) -> List[float]:
    """Parse a constraint axis: ``"1.1,1.3,1.7"`` or ``"1.1:2.0:10"``.

    The colon form is an inclusive linear range ``start:stop:count``.
    """
    text = text.strip()
    if ":" in text:
        fields = text.split(":")
        if len(fields) != 3:
            raise argparse.ArgumentTypeError(
                f"range must be start:stop:count, got {text!r}"
            )
        start, stop = float(fields[0]), float(fields[1])
        count = int(fields[2])
        if count < 1:
            raise argparse.ArgumentTypeError("range count must be >= 1")
        if count == 1:
            return [start]
        step = (stop - start) / (count - 1)
        return [start + i * step for i in range(count)]
    try:
        points = [float(p) for p in text.split(",") if p.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad constraint list {text!r}") from None
    if not points:
        raise argparse.ArgumentTypeError("constraint list is empty")
    return points


def _session(args: argparse.Namespace) -> Session:
    backend = getattr(args, "backend", None)
    liberty = getattr(args, "liberty", None)
    if liberty is not None and backend is None:
        backend = "nldm"
    tracer = None
    if getattr(args, "trace", None):
        from repro.obs import Tracer

        tracer = Tracer()
    return Session(
        bench_dir=getattr(args, "bench_dir", None),
        backend=backend,
        liberty=liberty,
        tracer=tracer,
    )


def _export_trace(args: argparse.Namespace, session: Session) -> None:
    """Write the session's spans to ``--trace`` (no-op without the flag)."""
    path = getattr(args, "trace", None)
    if path and session.tracer.enabled:
        count = session.tracer.export_jsonl(path)
        print(f"trace       : {count} span(s) -> {path}", file=sys.stderr)


def _emit(args: argparse.Namespace, record) -> bool:
    """Print the JSON envelope when requested; returns True if handled."""
    if getattr(args, "json", False):
        print(record.to_json(indent=2))
        return True
    return False


def _cmd_benchmarks(args: argparse.Namespace) -> int:
    from repro.iscas.loader import benchmark_names, load_benchmark

    rows = []
    for name in benchmark_names():
        stats = load_benchmark(name).stats()
        rows.append((name, stats["total_gates"], stats["inputs"], stats["depth"]))
    if getattr(args, "json", False):
        print(
            json.dumps(
                [
                    {"name": n, "gates": g, "inputs": i, "depth": d}
                    for n, g, i, d in rows
                ],
                indent=2,
            )
        )
        return 0
    print(format_table(("circuit", "gates", "inputs", "depth"), rows))
    return 0


def _cmd_lib(args: argparse.Namespace) -> int:
    """Load/validate a Liberty ``.lib`` and report its table geometry."""
    from repro.cells.gate_types import num_inputs
    from repro.liberty import library_from_lib
    from repro.timing.backend import backend_fo4
    from repro.timing.delay_model import fanout_four_delay

    library = library_from_lib(args.lib)
    backend = library.delay_backend
    tables = backend.tables
    tech = library.tech
    cells = []
    for kind in tables.kinds():
        cell = library.cells[kind]
        cin_ref = float(tables.cin_ref[tables.kind_index[kind]])
        fo4_nldm = backend_fo4(cell, tech, cin_ref, backend)
        fo4_analytic = fanout_four_delay(cell, tech, cin_ref)
        cells.append(
            {
                "cell": kind.value,
                "arcs": num_inputs(kind),
                "cin_ref_ff": cin_ref,
                "fo4_nldm_ps": fo4_nldm,
                "fo4_analytic_ps": fo4_analytic,
                "fo4_delta_pct": 100.0 * (fo4_nldm - fo4_analytic) / fo4_analytic,
            }
        )
    if getattr(args, "json", False):
        print(
            json.dumps(
                {
                    "lib": args.lib,
                    "digest": tables.digest,
                    "n_cells": tables.n_cells,
                    "slew_axis_ps": list(tables.slew_axis),
                    "load_axis_ff": list(tables.load_axis),
                    "cells": cells,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print(f"library      : {args.lib}")
    print(f"digest       : {tables.digest}")
    print(f"cells        : {tables.n_cells}")
    print(
        f"slew axis    : {len(tables.slew_axis)} points, "
        f"{tables.slew_axis[0]:g}..{tables.slew_axis[-1]:g} ps"
    )
    print(
        f"load axis    : {len(tables.load_axis)} points, "
        f"{tables.load_axis[0]:g}..{tables.load_axis[-1]:g} fF"
    )
    rows = [
        (
            entry["cell"],
            entry["arcs"],
            f"{entry['cin_ref_ff']:.3f}",
            f"{entry['fo4_nldm_ps']:.2f}",
            f"{entry['fo4_analytic_ps']:.2f}",
            f"{entry['fo4_delta_pct']:+.2f}%",
        )
        for entry in cells
    ]
    print()
    print(
        format_table(
            ("cell", "arcs", "cin_ref (fF)", "FO4 nldm (ps)",
             "FO4 analytic (ps)", "delta"),
            rows,
            title="NLDM cells (FO4 figures per backend)",
        )
    )
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    record = _session(args).characterize(with_simulation=args.simulate)
    if _emit(args, record):
        return 0
    rows = []
    for entry in record.payload:
        rows.append(
            (
                entry.driver.value,
                entry.gate.value,
                entry.computed,
                entry.simulated if entry.simulated is not None else "-",
            )
        )
    print(
        format_table(
            ("driver", "gate", "Flimit (calc)", "Flimit (sim)"),
            rows,
            title="Library characterization (paper Table 2)",
        )
    )
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    record = _session(args).bounds(Job(benchmark=args.benchmark))
    if _emit(args, record):
        return 0
    bounds = record.payload["bounds"]
    print(f"benchmark        : {args.benchmark}")
    print(f"critical path    : {record.extra['path_gates']} gates")
    print(f"Tmax (min area)  : {bounds.tmax_ps:.1f} ps")
    print(f"Tmin             : {bounds.tmin_ps:.1f} ps")
    print(f"area at Tmax     : {bounds.area_tmax_um:.1f} um")
    print(f"area at Tmin     : {bounds.area_tmin_um:.1f} um")
    print(f"eq.4 iterations  : {bounds.iterations}")
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    job = Job(
        benchmark=args.benchmark,
        tc_ps=args.tc_ps,
        tc_ratio=args.tc_ratio if args.tc_ps is None else None,
        scope=args.scope,
        k_paths=args.k_paths,
        weight_mode=args.weight_mode,
        allow_restructuring=not args.no_restructuring,
    )
    session = _session(args)
    record = session.optimize(job)
    _export_trace(args, session)
    if _emit(args, record):
        return 0
    outcome = record.payload
    tc = record.extra["tc_ps"]
    tmin = record.extra["tmin_ps"]
    print(f"benchmark   : {args.benchmark}")
    print(f"Tmin        : {tmin:.1f} ps")
    print(f"Tc          : {tc:.1f} ps ({tc / tmin:.2f} x Tmin)")
    if args.scope == "path":
        print(f"domain      : {outcome.domain.domain}")
        print(f"method      : {outcome.method}")
        print(f"delay       : {outcome.delay_ps:.1f} ps (slack {outcome.slack_ps:.1f})")
        print(f"area (sumW) : {outcome.area_um:.1f} um")
        print(f"feasible    : {outcome.feasible}")
    else:
        print(f"passes      : {outcome.passes}")
        print(f"paths run   : {len(outcome.path_results)}")
        print(f"delay       : {outcome.critical_delay_ps:.1f} ps")
        print(f"area (sumW) : {record.extra['area_um']:.1f} um")
        print(f"feasible    : {outcome.feasible}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.iscas.loader import load_benchmark
    from repro.timing.report import timing_report

    session = _session(args)
    circuit = load_benchmark(args.benchmark, bench_dir=args.bench_dir)
    sta = session.sta(circuit)
    tc = args.tc_ps if args.tc_ps is not None else 1.1 * sta.critical_delay_ps
    report = timing_report(
        circuit, session.library, tc, k_paths=args.paths, sta=sta
    )
    if getattr(args, "json", False):
        print(
            json.dumps(
                {
                    "circuit": report.circuit_name,
                    "tc_ps": report.tc_ps,
                    "critical_delay_ps": report.critical_delay_ps,
                    "worst_slack_ps": report.worst_slack_ps,
                    "violated": report.violated,
                    "max_transition_ps": report.max_transition_ps,
                    "endpoints": [
                        {
                            "net": e.net,
                            "edge": e.edge.value,
                            "arrival_ps": e.arrival_ps,
                            "slack_ps": e.slack_ps,
                        }
                        for e in report.endpoints
                    ],
                    "worst_paths": [
                        {"gates": list(gates), "delay_ps": delay}
                        for gates, delay in report.worst_paths
                    ],
                },
                indent=2,
            )
        )
        return 0
    print(report.render())
    return 0


def _cmd_power(args: argparse.Namespace) -> int:
    job = Job(
        benchmark=args.benchmark,
        frequency_mhz=args.frequency,
        activity_vectors=args.vectors,
    )
    record = _session(args).power(job)
    if _emit(args, record):
        return 0
    report = record.payload
    print(f"benchmark        : {args.benchmark}")
    print(f"area (sum W)     : {record.extra['area_um']:.1f} um")
    print(f"mean activity    : {record.extra['mean_activity']:.3f} toggles/vector")
    print(f"dynamic power    : {report.dynamic_uw:.2f} uW @ {args.frequency} MHz")
    print(f"short-circuit    : {report.short_circuit_uw:.2f} uW")
    print(f"total            : {report.total_uw:.2f} uW")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.explore import run_sweep

    restructuring = {
        "on": (True,),
        "off": (False,),
        "both": (True, False),
    }[args.restructure]
    spec = SweepSpec(
        benchmarks=tuple(args.benchmarks),
        tc_ps_points=tuple(args.tc_ps or ()),
        tc_ratio_points=tuple(args.tc_ratios or ()) if not args.tc_ps else (),
        scope=args.scope,
        k_paths=args.k_paths,
        max_passes=args.max_passes,
        weight_modes=tuple(args.weight_modes.split(",")),
        restructuring=restructuring,
        bench_dir=args.bench_dir,
        label=args.label,
    )
    if args.resume and args.store is None:
        print("error: --resume requires --store", file=sys.stderr)
        return 2

    def progress(done: int, total: int, label: str) -> None:
        print(f"[{done}/{total}] {label}", file=sys.stderr)

    session = _session(args)
    result = run_sweep(
        session,
        spec,
        store=args.store,
        resume=args.resume,
        workers=args.workers,
        chunk_size=args.chunk_size,
        with_power=not args.no_power,
        with_yield=args.with_yield,
        progress=progress if not args.quiet else None,
    )
    _export_trace(args, session)
    if getattr(args, "json", False):
        print(result.record().to_json(indent=2))
        return 0
    print(result.summary.format())
    frontier = result.summary.frontier_labels()
    print(
        f"\npoints      : {len(result.records)} "
        f"({result.computed} computed, {result.resumed} resumed)"
    )
    print(f"pareto      : {len(frontier)} point(s) on the frontier")
    print(f"elapsed     : {result.elapsed_s:.2f} s")
    if args.store is not None:
        print(f"campaign    : {args.store}")
    return 0


def _cmd_mc(args: argparse.Namespace) -> int:
    session = _session(args)
    records = []
    for benchmark in args.benchmarks:
        job = Job(
            benchmark=benchmark,
            tc_ps=args.yield_at,
            mc_samples=args.samples,
            mc_seed=args.seed,
        )
        records.append(session.mc(job))
    _export_trace(args, session)

    if args.store is not None:
        os.makedirs(args.store, exist_ok=True)
        for record in records:
            path = os.path.join(args.store, f"{record.job.benchmark}.mc.json")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(record.to_json(indent=2))
                handle.write("\n")

    if getattr(args, "json", False):
        if len(records) == 1:
            print(records[0].to_json(indent=2))
        else:
            print(
                json.dumps(
                    [record.to_dict() for record in records],
                    indent=2,
                    sort_keys=True,
                )
            )
        return 0

    rows = []
    for record in records:
        result = record.payload
        rows.append(
            (
                record.job.benchmark,
                result.n_samples,
                f"{result.nominal_ps:.1f}",
                f"{result.mean_ps:.1f}",
                f"{result.std_ps:.1f}",
                f"{result.p99_ps:.1f}",
                f"{result.guard_band:.3f}",
                "-"
                if result.yield_fraction is None
                else f"{result.yield_fraction:.3f}",
            )
        )
    print(
        format_table(
            (
                "circuit",
                "corners",
                "nominal (ps)",
                "mean (ps)",
                "std (ps)",
                "p99 (ps)",
                "guard band",
                "yield",
            ),
            rows,
            title="Monte-Carlo corner analysis (fixed sizing)",
        )
    )
    if len(records) == 1:
        result = records[0].payload
        worst = sorted(
            result.endpoints, key=lambda e: e.nominal_ps, reverse=True
        )[: args.endpoints]
        endpoint_rows = [
            (
                e.net,
                f"{e.nominal_ps:.1f}",
                f"{e.p99_ps:.1f}",
                "-" if e.yield_frac is None else f"{e.yield_frac:.3f}",
            )
            for e in worst
        ]
        print()
        print(
            format_table(
                ("endpoint", "nominal (ps)", "p99 (ps)", "yield"),
                endpoint_rows,
                title=f"Worst endpoints ({result.name})",
            )
        )
    if args.store is not None:
        print(f"\nrecords     : {args.store}/<benchmark>.mc.json")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Render a trace JSONL or a run record's telemetry block."""
    from repro.obs import (
        load_trace_jsonl,
        render_record_telemetry,
        render_spans,
    )

    try:
        with open(args.file, encoding="utf-8") as handle:
            data = json.load(handle)
    except json.JSONDecodeError:
        data = None
    if isinstance(data, dict) and "kind" in data and "payload" in data:
        print(render_record_telemetry(data))
        return 0
    spans = load_trace_jsonl(args.file)
    print(render_spans(spans, max_rows=args.max_rows))
    return 0


def _serve_client(args: argparse.Namespace):
    """A :class:`repro.serve.ServeClient` for the daemon args address."""
    from repro.resilience import RetryPolicy
    from repro.serve import ServeClient

    retries = getattr(args, "retries", None)
    retry = RetryPolicy(attempts=retries) if retries else None
    if getattr(args, "port", None):
        return ServeClient(
            host=args.host, port=args.port, timeout_s=args.timeout,
            retry=retry,
        )
    return ServeClient(
        socket_path=args.socket, timeout_s=args.timeout, retry=retry
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-tenant optimization daemon until shutdown."""
    import asyncio
    import logging
    import signal

    from repro.resilience import RetryPolicy
    from repro.serve import PopsServer, ServeConfig

    if args.log_level:
        logging.basicConfig(
            level=getattr(logging, args.log_level.upper()),
            stream=sys.stderr,
            format="%(asctime)s %(levelname)s %(name)s: %(message)s",
        )

    config = ServeConfig(
        socket_path=None if args.port else args.socket,
        host=args.host if args.port else None,
        port=args.port or 0,
        threads=args.threads,
        heavy_threads=args.heavy_threads,
        procs=args.procs,
        store_dir=args.store,
        cache_limit=args.cache_limit,
        bench_dir=args.bench_dir,
        timeout_s=args.job_timeout,
        retry=RetryPolicy(attempts=max(1, args.retries)),
        breaker_failures=args.breaker_failures,
        breaker_cooldown_s=args.breaker_cooldown,
    )

    async def daemon() -> None:
        server = PopsServer(config)
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum,
                    lambda: loop.create_task(server.shutdown(drain=True)),
                )
            except (NotImplementedError, RuntimeError):
                pass  # platforms/loops without signal handler support
        ready = {"event": "ready", "pid": os.getpid(), **server.address}
        print(json.dumps(ready, sort_keys=True), flush=True)
        await server.wait_closed()
        print(
            json.dumps(
                {"event": "closed", "serve": server.stats.as_dict()},
                sort_keys=True,
            ),
            flush=True,
        )

    asyncio.run(daemon())
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """Run one job through the daemon; stream progress to stderr."""
    if args.kind == "optimize":
        job = Job(
            benchmark=args.benchmark,
            tc_ps=args.tc_ps,
            tc_ratio=args.tc_ratio if args.tc_ps is None else None,
            scope=args.scope,
            k_paths=args.k_paths,
            weight_mode=args.weight_mode,
            allow_restructuring=not args.no_restructuring,
        )
    elif args.kind == "bounds":
        job = Job(benchmark=args.benchmark)
    elif args.kind == "power":
        job = Job(
            benchmark=args.benchmark,
            frequency_mhz=args.frequency,
            activity_vectors=args.vectors,
        )
    else:  # mc
        job = Job(
            benchmark=args.benchmark,
            tc_ps=args.yield_at,
            mc_samples=args.samples,
            mc_seed=args.seed,
        )

    def on_event(event) -> None:
        if not args.quiet:
            print(json.dumps(event, sort_keys=True), file=sys.stderr)

    done = _serve_client(args).submit(
        args.kind,
        job,
        priority=args.priority,
        no_cache=args.no_cache,
        on_event=on_event,
        timeout_s=args.deadline,
    )
    record = done["record"]
    if getattr(args, "json", False):
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0
    print(f"kind     : {record['kind']}")
    print(f"benchmark: {args.benchmark}")
    print(f"cached   : {bool(done.get('cached', False))}")
    if "elapsed_s" in done:
        print(f"elapsed  : {done['elapsed_s']:.3f} s")
    for name in sorted(record.get("extra", {})):
        value = record["extra"][name]
        text = f"{value:.3f}" if isinstance(value, float) else str(value)
        print(f"{name:<9}: {text}")
    return 0


def _cmd_serve_status(args: argparse.Namespace) -> int:
    """Print the daemon's observability snapshot."""
    status = _serve_client(args).status()
    if getattr(args, "json", False):
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    serve = status["serve"]
    print(f"pops     : {status['pops']} (protocol v{status['version']})")
    print(f"pid      : {status['pid']}  uptime {status['uptime_s']:.1f} s")
    print(f"draining : {status['draining']}")
    print(
        f"queue    : depth {status['queue']['depth']}, "
        f"inflight {status['queue']['inflight']}"
    )
    print(
        "serve    : "
        + ", ".join(f"{k}={serve[k]}" for k in sorted(serve))
    )
    resilience = status["resilience"]
    breaker = resilience["breaker"]
    counters = resilience["counters"]
    parts = [f"breaker={breaker['state']}"]
    if resilience["timeout_s"] is not None:
        parts.append(f"deadline={resilience['timeout_s']:g}s")
    parts.append(f"retry_attempts={resilience['retry']['attempts']}")
    parts.extend(
        f"{name.split('.', 1)[1]}={counters[name]}" for name in sorted(counters)
    )
    print("resilience: " + ", ".join(parts))
    caches = status["session"]["caches"]
    rows = [
        (
            name,
            caches[name]["size"],
            caches[name]["maxsize"] or "-",
            caches[name]["hits"],
            caches[name]["misses"],
            "-"
            if caches[name].get("hit_rate") is None
            else f"{caches[name]['hit_rate']:.2f}",
            caches[name]["evictions"],
        )
        for name in sorted(caches)
    ]
    print()
    print(
        format_table(
            ("cache", "size", "max", "hits", "misses", "hit rate", "evictions"),
            rows,
            title="Session caches",
        )
    )
    if "store" in status:
        store = status["store"]
        print(
            f"\nstore    : {store['records']} record(s), "
            f"{store['hits']} hit(s), {store['writes']} write(s)"
        )
    return 0


def _cmd_serve_shutdown(args: argparse.Namespace) -> int:
    """Ask the daemon to stop (drained unless --now)."""
    ack = _serve_client(args).shutdown(drain=not args.now)
    if getattr(args, "json", False):
        print(json.dumps(ack, indent=2, sort_keys=True))
        return 0
    mode = "immediate" if args.now else "drained"
    print(f"shutdown : {mode} ({ack.get('queued', 0)} job(s) outstanding)")
    return 0


def _add_backend_args(parser: argparse.ArgumentParser) -> None:
    """Delay-model backend flags shared by the analysis subcommands."""
    parser.add_argument(
        "--backend",
        choices=("analytic", "nldm"),
        default=None,
        help="delay model: closed-form eq. 1-3 (default) or NLDM tables",
    )
    parser.add_argument(
        "--liberty",
        default=None,
        metavar="FILE.lib",
        help="Liberty file for the NLDM backend (implies --backend nldm)",
    )


def _add_client_args(parser: argparse.ArgumentParser) -> None:
    """Daemon addressing flags shared by every client subcommand."""
    parser.add_argument(
        "--socket",
        default="/tmp/pops-serve.sock",
        help="daemon unix socket path (default /tmp/pops-serve.sock)",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="daemon TCP host (with --port)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="daemon TCP port (switches addressing from --socket)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="client socket timeout in seconds",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``pops`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="pops",
        description="POPS low-power CMOS circuit optimization protocol (DATE'05)",
    )
    parser.add_argument(
        "--version", action="version", version=f"pops {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_bench = sub.add_parser("benchmarks", help="list registered benchmark circuits")
    p_bench.add_argument("--json", action="store_true", help="machine-readable output")

    p_char = sub.add_parser("characterize", help="library Flimit table")
    p_char.add_argument(
        "--simulate",
        action="store_true",
        help="also derive Flimit from the transistor-level simulator (slow)",
    )
    p_char.add_argument("--json", action="store_true", help="emit the run record")

    p_lib = sub.add_parser(
        "lib", help="inspect/validate an NLDM Liberty (.lib) file"
    )
    p_lib.add_argument("lib", help="path to the .lib file")
    p_lib.add_argument("--json", action="store_true", help="machine-readable report")

    p_bounds = sub.add_parser("bounds", help="critical path delay bounds")
    p_bounds.add_argument("benchmark", help="benchmark name (see 'benchmarks')")
    p_bounds.add_argument("--bench-dir", default=None, help="real .bench directory")
    _add_backend_args(p_bounds)
    p_bounds.add_argument("--json", action="store_true", help="emit the run record")

    p_opt = sub.add_parser("optimize", help="run the optimization protocol")
    p_opt.add_argument("benchmark")
    p_opt.add_argument("--bench-dir", default=None, help="real .bench directory")
    _add_backend_args(p_opt)
    group = p_opt.add_mutually_exclusive_group()
    group.add_argument("--tc-ps", type=float, default=None, help="constraint in ps")
    group.add_argument(
        "--tc-ratio",
        type=float,
        default=1.5,
        help="constraint as a multiple of Tmin (default 1.5)",
    )
    p_opt.add_argument(
        "--scope",
        choices=("path", "circuit"),
        default="path",
        help="optimize the critical path or the whole netlist",
    )
    p_opt.add_argument(
        "--k-paths", type=int, default=4, help="paths per circuit-scope pass"
    )
    p_opt.add_argument(
        "--weight-mode",
        choices=("uniform", "area"),
        default="uniform",
        help="eq. 6 sensitivity weights",
    )
    p_opt.add_argument(
        "--no-restructuring",
        action="store_true",
        help="forbid the De Morgan fallback for infeasible constraints",
    )
    p_opt.add_argument(
        "--trace",
        default=None,
        metavar="FILE.jsonl",
        help="record hierarchical spans to a trace JSONL file",
    )
    p_opt.add_argument("--json", action="store_true", help="emit the run record")

    p_sweep = sub.add_parser(
        "sweep", help="Tc-sweep campaign with Pareto frontier extraction"
    )
    p_sweep.add_argument(
        "benchmarks", nargs="+", help="benchmark names (see 'benchmarks')"
    )
    p_sweep.add_argument("--bench-dir", default=None, help="real .bench directory")
    _add_backend_args(p_sweep)
    sweep_axis = p_sweep.add_mutually_exclusive_group()
    sweep_axis.add_argument(
        "--tc-ratios",
        type=_parse_points,
        default=[1.1, 1.4, 1.7, 2.0],
        help="Tc axis as multiples of Tmin: '1.1,1.5' or '1.1:2.0:10' "
        "(default 1.1,1.4,1.7,2.0)",
    )
    sweep_axis.add_argument(
        "--tc-ps",
        type=_parse_points,
        default=None,
        help="absolute Tc axis in ps, same list/range syntax",
    )
    p_sweep.add_argument(
        "--scope",
        choices=("circuit", "path"),
        default="circuit",
        help="protocol scope per grid point (default circuit)",
    )
    p_sweep.add_argument(
        "--k-paths", type=int, default=4, help="paths per circuit-scope pass"
    )
    p_sweep.add_argument(
        "--max-passes", type=int, default=6, help="circuit-scope pass limit"
    )
    p_sweep.add_argument(
        "--weight-modes",
        default="uniform",
        help="comma list of sizing weight modes to cross (uniform,area)",
    )
    p_sweep.add_argument(
        "--restructure",
        choices=("on", "off", "both"),
        default="on",
        help="De Morgan fallback axis (default on)",
    )
    p_sweep.add_argument(
        "--label", default=None, help="campaign tag prefixed onto point labels"
    )
    p_sweep.add_argument(
        "--store", default=None, help="campaign directory (JSONL journal)"
    )
    p_sweep.add_argument(
        "--resume",
        action="store_true",
        help="skip points already journaled in --store",
    )
    p_sweep.add_argument(
        "--workers", type=int, default=None, help="process-pool fan-out"
    )
    p_sweep.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="split a benchmark's points into warm chunks of this size",
    )
    p_sweep.add_argument(
        "--no-power",
        action="store_true",
        help="skip the power objective in the summary",
    )
    p_sweep.add_argument(
        "--with-yield",
        action="store_true",
        help="attach Monte-Carlo yields (fourth Pareto objective)",
    )
    p_sweep.add_argument(
        "--quiet", action="store_true", help="suppress per-point progress"
    )
    p_sweep.add_argument(
        "--trace",
        default=None,
        metavar="FILE.jsonl",
        help="record hierarchical spans to a trace JSONL file",
    )
    p_sweep.add_argument("--json", action="store_true", help="emit the sweep record")

    p_mc = sub.add_parser(
        "mc", help="Monte-Carlo corner analysis (delay distribution, yield)"
    )
    p_mc.add_argument(
        "benchmarks", nargs="+", help="benchmark names (see 'benchmarks')"
    )
    p_mc.add_argument("--bench-dir", default=None, help="real .bench directory")
    _add_backend_args(p_mc)
    p_mc.add_argument(
        "--samples", type=int, default=1000, help="process corners to sample"
    )
    p_mc.add_argument("--seed", type=int, default=42, help="corner rng seed")
    p_mc.add_argument(
        "--yield-at",
        type=float,
        default=None,
        help="delay constraint (ps) to report yield against",
    )
    p_mc.add_argument(
        "--endpoints",
        type=int,
        default=5,
        help="worst endpoints to detail (single-benchmark runs)",
    )
    p_mc.add_argument(
        "--store",
        default=None,
        help="directory for per-benchmark record JSON files",
    )
    p_mc.add_argument(
        "--trace",
        default=None,
        metavar="FILE.jsonl",
        help="record hierarchical spans to a trace JSONL file",
    )
    p_mc.add_argument("--json", action="store_true", help="emit the run record(s)")

    p_trace = sub.add_parser(
        "trace", help="render a trace JSONL or a run record's telemetry"
    )
    p_trace.add_argument(
        "file", help="a --trace JSONL file or a run-record JSON envelope"
    )
    p_trace.add_argument(
        "--max-rows",
        type=int,
        default=200,
        help="span-tree rows to print before eliding (default 200)",
    )

    p_report = sub.add_parser("report", help="STA timing report")
    p_report.add_argument("benchmark")
    p_report.add_argument("--bench-dir", default=None)
    _add_backend_args(p_report)
    p_report.add_argument("--tc-ps", type=float, default=None)
    p_report.add_argument("--paths", type=int, default=3)
    p_report.add_argument("--json", action="store_true",
                          help="machine-readable report")

    p_power = sub.add_parser("power", help="area / activity / power report")
    p_power.add_argument("benchmark")
    p_power.add_argument("--bench-dir", default=None)
    _add_backend_args(p_power)
    p_power.add_argument("--frequency", type=float, default=100.0,
                         help="clock frequency in MHz")
    p_power.add_argument("--vectors", type=int, default=128,
                         help="random vectors for activity estimation")
    p_power.add_argument("--json", action="store_true", help="emit the run record")

    p_serve = sub.add_parser(
        "serve", help="run the multi-tenant optimization daemon"
    )
    p_serve.add_argument(
        "--socket",
        default="/tmp/pops-serve.sock",
        help="unix socket to listen on (default /tmp/pops-serve.sock)",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="TCP host (with --port)"
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="listen on TCP instead of the unix socket (0 = ephemeral)",
    )
    p_serve.add_argument(
        "--threads", type=int, default=4, help="light worker threads"
    )
    p_serve.add_argument(
        "--heavy-threads", type=int, default=2,
        help="heavy (optimize/sweep) worker threads",
    )
    p_serve.add_argument(
        "--procs", type=int, default=0,
        help="process-pool size for optimize/sweep (0 = in-thread)",
    )
    p_serve.add_argument(
        "--store", default=None,
        help="content-addressed result store directory",
    )
    p_serve.add_argument(
        "--cache-limit", type=int, default=1024,
        help="per-cache LRU entry bound for the shared session",
    )
    p_serve.add_argument("--bench-dir", default=None, help="real .bench directory")
    p_serve.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="default per-job deadline (jobs/submits may override; "
        "unset = no deadline)",
    )
    p_serve.add_argument(
        "--retries", type=int, default=3,
        help="pool-supervision attempts per job after a worker crash "
        "(default 3)",
    )
    p_serve.add_argument(
        "--breaker-failures", type=int, default=3,
        help="consecutive pool failures before the circuit breaker trips "
        "to in-thread execution (default 3)",
    )
    p_serve.add_argument(
        "--breaker-cooldown", type=float, default=30.0, metavar="SECONDS",
        help="open-breaker cooldown before a half-open probe (default 30)",
    )
    p_serve.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default=None,
        help="enable structured daemon logging to stderr at this level",
    )

    p_submit = sub.add_parser(
        "submit", help="run one job through the serve daemon"
    )
    p_submit.add_argument(
        "kind", choices=("bounds", "optimize", "power", "mc"),
        help="what to run",
    )
    p_submit.add_argument("benchmark", help="benchmark name (see 'benchmarks')")
    _add_client_args(p_submit)
    p_submit.add_argument(
        "--priority", type=int, default=0,
        help="queue priority (lower runs sooner, default 0)",
    )
    p_submit.add_argument(
        "--no-cache", action="store_true",
        help="bypass the daemon's result store",
    )
    p_submit.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="server-side job deadline (--timeout is the client socket "
        "timeout)",
    )
    p_submit.add_argument(
        "--retries", type=int, default=3,
        help="client reconnect-and-resubmit attempts on a dropped "
        "stream (default 3)",
    )
    submit_tc = p_submit.add_mutually_exclusive_group()
    submit_tc.add_argument("--tc-ps", type=float, default=None,
                           help="constraint in ps (optimize)")
    submit_tc.add_argument(
        "--tc-ratio", type=float, default=1.5,
        help="constraint as a multiple of Tmin (optimize, default 1.5)",
    )
    p_submit.add_argument(
        "--scope", choices=("path", "circuit"), default="path",
        help="optimize scope",
    )
    p_submit.add_argument(
        "--k-paths", type=int, default=4, help="paths per circuit-scope pass"
    )
    p_submit.add_argument(
        "--weight-mode", choices=("uniform", "area"), default="uniform",
        help="eq. 6 sensitivity weights (optimize)",
    )
    p_submit.add_argument(
        "--no-restructuring", action="store_true",
        help="forbid the De Morgan fallback (optimize)",
    )
    p_submit.add_argument(
        "--frequency", type=float, default=100.0,
        help="clock frequency in MHz (power)",
    )
    p_submit.add_argument(
        "--vectors", type=int, default=128,
        help="random vectors for activity estimation (power)",
    )
    p_submit.add_argument(
        "--samples", type=int, default=1000, help="MC corners (mc)"
    )
    p_submit.add_argument("--seed", type=int, default=42, help="MC rng seed (mc)")
    p_submit.add_argument(
        "--yield-at", type=float, default=None,
        help="delay constraint (ps) to report yield against (mc)",
    )
    p_submit.add_argument(
        "--quiet", action="store_true",
        help="suppress the NDJSON event stream on stderr",
    )
    p_submit.add_argument("--json", action="store_true", help="emit the run record")

    p_status = sub.add_parser("status", help="serve daemon observability snapshot")
    _add_client_args(p_status)
    p_status.add_argument("--json", action="store_true",
                          help="machine-readable status")

    p_shutdown = sub.add_parser("shutdown", help="stop the serve daemon")
    _add_client_args(p_shutdown)
    p_shutdown.add_argument(
        "--now", action="store_true",
        help="fail the queued backlog instead of draining it",
    )
    p_shutdown.add_argument("--json", action="store_true",
                            help="machine-readable ack")
    return parser


_COMMANDS = {
    "benchmarks": _cmd_benchmarks,
    "lib": _cmd_lib,
    "characterize": _cmd_characterize,
    "bounds": _cmd_bounds,
    "optimize": _cmd_optimize,
    "report": _cmd_report,
    "power": _cmd_power,
    "sweep": _cmd_sweep,
    "mc": _cmd_mc,
    "trace": _cmd_trace,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "status": _cmd_serve_status,
    "shutdown": _cmd_serve_shutdown,
}


def _designed_errors() -> tuple:
    """Exception types that mean 'bad input/spec', not 'pops bug'."""
    from repro.api import JobError
    from repro.explore import CampaignError
    from repro.liberty import LibertyError
    from repro.serve import ProtocolError, ServeClientError

    return (
        JobError,
        CampaignError,
        LibertyError,
        ProtocolError,
        ServeClientError,
        KeyError,
        FileNotFoundError,
    )


def _fail(args: argparse.Namespace, exc: BaseException) -> int:
    """Uniform failure surface: JSON on stdout (with --json), message on
    stderr, exit 2 for designed errors and 1 for unexpected ones."""
    message = str(exc) or repr(exc)
    if isinstance(exc, KeyError) and exc.args:
        # str(KeyError) wraps the message in quotes; unwrap it.
        message = str(exc.args[0])
    designed = isinstance(exc, _designed_errors())
    if getattr(args, "json", False):
        print(
            json.dumps(
                {"error": {"type": type(exc).__name__, "message": message}},
                indent=2,
                sort_keys=True,
            )
        )
    print(f"error: {message}", file=sys.stderr)
    return 2 if designed else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Downstream consumer (head, jq -e ...) closed the pipe early;
        # silence the shutdown traceback and exit with the SIGPIPE code.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except Exception as exc:
        if os.environ.get("POPS_DEBUG"):
            raise
        return _fail(args, exc)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
