"""Buffer insertion: the Flimit efficiency metric and insertion engines."""

from repro.buffering.flimit import (
    TABLE2_GATES,
    FlimitEntry,
    characterize_library,
    flimit,
    flimit_lookup,
    flimit_simulated,
)
from repro.buffering.insertion import (
    BufferingResult,
    default_flimits,
    distribute_with_buffers,
    insert_buffers_at,
    min_delay_with_buffers,
    overloaded_gates,
    overloaded_stages,
)
from repro.buffering.netlist_insertion import (
    insert_buffer_pair,
    reduce_delay_with_buffers,
    remove_buffer_pair,
    trial_buffer_pairs,
)

__all__ = [
    "flimit",
    "flimit_simulated",
    "characterize_library",
    "flimit_lookup",
    "FlimitEntry",
    "TABLE2_GATES",
    "BufferingResult",
    "default_flimits",
    "overloaded_stages",
    "overloaded_gates",
    "insert_buffers_at",
    "min_delay_with_buffers",
    "distribute_with_buffers",
    "insert_buffer_pair",
    "remove_buffer_pair",
    "trial_buffer_pairs",
    "reduce_delay_with_buffers",
]
