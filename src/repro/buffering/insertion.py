"""Buffer insertion on bounded paths (section 4.1, Table 3, Figs. 6/8).

Given the characterised ``Flimit`` table, insertion proceeds as the paper
prescribes:

1. compute the path's minimum-delay sizing;
2. flag *critical nodes* -- stages whose fan-out ratio ``F = C_L / C_IN``
   exceeds the ``Flimit`` of their (driver, gate) pair;
3. insert buffers there, acting as *load dilution* for the flagged gate;
4. either keep the original gate sizes and size only the buffers
   (**local** insertion) or re-run the full sizing machinery on the
   modified path (**global** insertion -- "buffer insertion & global
   sizing" of the Fig. 7 hard-constraint branch).

Buffers default to a single inverter -- the structure-B configuration the
``Flimit`` table characterises; the delay/area comparisons are then
consistent with the limits that triggered the insertion.  Pass
``buffer_stages=2`` for polarity-preserving pairs (the netlist-level
write-back uses them; the path-level experiments follow the paper's
polarity-free convention).
"""

from __future__ import annotations

import math
import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cells.gate_types import GateKind
from repro.cells.library import Library
from repro.buffering.flimit import characterize_library, flimit_lookup
from repro.netlist.circuit import Circuit
from repro.sizing.bounds import min_delay_bound
from repro.sizing.sensitivity import ConstraintResult, distribute_constraint
from repro.timing.evaluation import (
    path_area_um,
    stage_external_loads,
)
from repro.timing.path import BoundedPath, PathStage
from repro.timing.sta import StaResult, external_loads, gate_sizes


@dataclass(frozen=True)
class BufferingResult:
    """Outcome of a buffer-insertion pass.

    Attributes
    ----------
    path:
        The (possibly) modified path; unchanged when no node was critical.
    sizes:
        Sizing vector on the returned path.
    delay_ps / area_um:
        Performance of the returned implementation.
    inserted_at:
        Stage indices (in the *original* path) after which buffers were
        inserted.
    baseline_delay_ps:
        Minimum delay of the unmodified path (the Table 3 "sizing" row).
    """

    path: BoundedPath
    sizes: np.ndarray
    delay_ps: float
    area_um: float
    inserted_at: Tuple[int, ...]
    baseline_delay_ps: float

    @property
    def gain(self) -> float:
        """Fractional Tmin improvement over pure sizing (Table 3 "gain")."""
        if self.baseline_delay_ps <= 0:
            return 0.0
        return 1.0 - self.delay_ps / self.baseline_delay_ps


#: Per-library-instance characterisation cache.  Keyed by ``id`` because
#: :class:`Library` carries an unhashable cell mapping; a weak reference
#: guards against id reuse after garbage collection.
_FLIMIT_CACHE: Dict[int, Tuple["weakref.ref", Dict[Tuple[GateKind, GateKind], float]]] = {}


def default_flimits(
    library: Library, use_cache: bool = True
) -> Dict[Tuple[GateKind, GateKind], float]:
    """Characterise the library once and return the lookup table.

    Characterisation runs a bisection over golden-section searches per
    gate pair -- by far the most expensive prerequisite of the protocol --
    so the result is cached per library instance: every later call with
    the same (immutable) library returns the table without recomputing.
    ``use_cache=False`` forces a fresh characterisation.
    """
    if use_cache:
        entry = _FLIMIT_CACHE.get(id(library))
        if entry is not None and entry[0]() is library:
            return entry[1]
    all_kinds = tuple(cell.kind for cell in library)
    entries = characterize_library(library, gates=all_kinds, drivers=(GateKind.INV,))
    limits = flimit_lookup(entries)
    if use_cache:
        key = id(library)
        _FLIMIT_CACHE[key] = (
            weakref.ref(library, lambda _: _FLIMIT_CACHE.pop(key, None)),
            limits,
        )
    return limits


def flimit_cache_contains(library: Library) -> bool:
    """Whether :func:`default_flimits` would be served from the cache.

    The cache is keyed by ``id(library)`` (libraries are unhashable), so
    a raw key probe can be fooled by id reuse after another library was
    garbage-collected; this helper also checks the stored weak reference,
    making it the one supported way for callers (e.g. the Session
    facade's characterisation counter) to ask about cache residency
    without reaching into the private table.
    """
    entry = _FLIMIT_CACHE.get(id(library))
    return entry is not None and entry[0]() is library


def overloaded_stages(
    path: BoundedPath,
    sizes: np.ndarray,
    limits: Dict[Tuple[GateKind, GateKind], float],
    margin: float = 1.0,
) -> List[int]:
    """Stage indices whose fan-out ratio exceeds ``margin * Flimit``.

    The limit of stage ``i`` is looked up under its actual driver kind
    (stage ``i-1``; an inverter-like driver is assumed at the path input).
    Missing pairs fall back to the inverter-driven entry.
    """
    ext = stage_external_loads(path, sizes)
    ratios = ext / sizes
    flagged: List[int] = []
    for i, stage in enumerate(path.stages):
        driver = path.stages[i - 1].cell.kind if i > 0 else GateKind.INV
        limit = limits.get((driver, stage.cell.kind))
        if limit is None:
            limit = limits.get((GateKind.INV, stage.cell.kind), math.inf)
        if ratios[i] > margin * limit:
            flagged.append(i)
    return flagged


def overloaded_gates(
    circuit: Circuit,
    library: Library,
    limits: Dict[Tuple[GateKind, GateKind], float],
    sta: Optional[StaResult] = None,
    margin: float = 1.0,
) -> List[str]:
    """Netlist-level analogue of :func:`overloaded_stages`.

    Flags every gate whose fan-out ratio ``F = C_L / C_IN`` at the
    current sizing exceeds ``margin * Flimit``.  Loads come from ``sta``
    when given (e.g. an :class:`~repro.timing.incremental.IncrementalSta`
    view -- no re-analysis) and from a fresh load assembly otherwise.
    A netlist gate has one driver per input, so the inverter-driven
    limit is used -- the conservative table row the characterisation
    orders first.
    """
    sizes = gate_sizes(circuit, library)
    loads = sta.loads_ff if sta is not None else external_loads(circuit, library)
    flagged: List[str] = []
    for name, gate in circuit.gates.items():
        limit = limits.get((GateKind.INV, gate.kind), math.inf)
        if loads[name] > margin * limit * sizes[name]:
            flagged.append(name)
    return flagged


def insert_buffers_at(
    path: BoundedPath,
    indices: Sequence[int],
    library: Library,
    buffer_stages: int = 2,
) -> Tuple[BoundedPath, List[int]]:
    """Insert ``buffer_stages`` inverters after each flagged stage.

    The flagged stage's side load migrates to the last buffer stage --
    the buffer drives everything downstream (the paper's in-path load
    dilution).  Returns the new path and the positions (in the new path)
    of every inserted stage.
    """
    if buffer_stages < 1:
        raise ValueError("buffer_stages must be >= 1")
    inv = library.cell(GateKind.INV)
    new_path = path
    inserted_positions: List[int] = []
    offset = 0
    for index in sorted(indices):
        at = index + offset
        original = new_path.stages[at]
        # Strip the side load off the driving stage...
        new_path = new_path.with_stage_replaced(
            at, PathStage(cell=original.cell, cside_ff=0.0, name=original.name)
        )
        for j in range(buffer_stages):
            is_last = j == buffer_stages - 1
            stage = PathStage(
                cell=inv,
                cside_ff=original.cside_ff if is_last else 0.0,
                name=f"{original.name}_buf{j}",
            )
            new_path = new_path.with_stage_inserted(at + 1 + j, stage)
            inserted_positions.append(at + 1 + j)
        offset += buffer_stages
    return new_path, inserted_positions


def _is_inserted_buffer(stage: PathStage) -> bool:
    return "_buf" in stage.name


def _resize_with_buffers_frozen_original(
    new_path: BoundedPath,
    library: Library,
    original_sizes: Dict[str, float],
) -> Tuple[float, np.ndarray]:
    """Local mode: size only the inserted buffers, original gates frozen."""
    n = len(new_path)
    frozen = np.zeros(n, dtype=bool)
    start = np.empty(n)
    inv_min = library.inverter.cin_min(library.tech)
    for i, stage in enumerate(new_path.stages):
        if _is_inserted_buffer(stage):
            start[i] = 4.0 * inv_min
        else:
            frozen[i] = True
            start[i] = original_sizes[stage.name]
    delay, sizes, _, _ = min_delay_bound(
        new_path, library, start_sizes=start, frozen=frozen
    )
    return delay, sizes


def min_delay_with_buffers(
    path: BoundedPath,
    library: Library,
    limits: Optional[Dict[Tuple[GateKind, GateKind], float]] = None,
    buffer_stages: int = 1,
    mode: str = "global",
    max_rounds: int = 4,
    margin: float = 1.0,
) -> BufferingResult:
    """Minimum path delay achievable with buffer insertion (Table 3).

    Each round flags the overloaded stages at the current minimum-delay
    sizing, *tries each candidate individually* and keeps the single
    insertion that improves the path delay most -- inserting at every
    flagged node at once routinely over-buffers (extra stages on nodes
    whose overload the sizing engine would rather absorb).  Rounds repeat
    until no candidate helps.

    ``mode = "global"`` re-optimises every size after each insertion (the
    greedy improvement loop above).  ``mode = "local"`` is the paper's
    section-4.1 *local insertion*: flag once at the minimum-delay sizing,
    insert at every flagged node, keep the original gate sizes and size
    only the inserted buffers -- a deterministic, cheaper variant whose
    result may tie the baseline (it is the Fig. 8 "Local Buff" method,
    not a minimiser).
    """
    if mode not in ("global", "local"):
        raise ValueError("mode must be 'global' or 'local'")
    if buffer_stages < 1:
        raise ValueError("buffer_stages must be >= 1")
    if limits is None:
        limits = default_flimits(library)

    base_tmin, base_sizes, _, _ = min_delay_bound(path, library)
    original_sizes = {
        stage.name: float(base_sizes[i]) for i, stage in enumerate(path.stages)
    }
    best = BufferingResult(
        path=path,
        sizes=base_sizes,
        delay_ps=base_tmin,
        area_um=path_area_um(path, base_sizes, library),
        inserted_at=(),
        baseline_delay_ps=base_tmin,
    )

    if mode == "local":
        flagged = overloaded_stages(path, base_sizes, limits, margin)
        if not flagged:
            return best
        new_path, _ = insert_buffers_at(path, flagged, library, buffer_stages)
        delay, sizes = _resize_with_buffers_frozen_original(
            new_path, library, original_sizes
        )
        return BufferingResult(
            path=new_path,
            sizes=sizes,
            delay_ps=delay,
            area_um=path_area_um(new_path, sizes, library),
            inserted_at=tuple(flagged),
            baseline_delay_ps=base_tmin,
        )

    current_path, current_sizes = path, base_sizes
    chosen_names: List[str] = []
    for _ in range(max_rounds):
        flagged = [
            i
            for i in overloaded_stages(current_path, current_sizes, limits, margin)
            if not _is_inserted_buffer(current_path.stages[i])
        ]
        if not flagged:
            break
        round_best: Optional[Tuple[float, BoundedPath, np.ndarray, str]] = None
        for index in flagged:
            candidate_path, _ = insert_buffers_at(
                current_path, [index], library, buffer_stages
            )
            delay, sizes, _, _ = min_delay_bound(candidate_path, library)
            if round_best is None or delay < round_best[0]:
                round_best = (
                    delay,
                    candidate_path,
                    sizes,
                    current_path.stages[index].name,
                )
        if round_best is None or round_best[0] >= best.delay_ps - 1e-9:
            break
        delay, current_path, current_sizes, name = round_best
        chosen_names.append(name)
        original_positions = tuple(
            sorted(
                i
                for i, stage in enumerate(path.stages)
                if stage.name in chosen_names
            )
        )
        best = BufferingResult(
            path=current_path,
            sizes=current_sizes,
            delay_ps=delay,
            area_um=path_area_um(current_path, current_sizes, library),
            inserted_at=original_positions,
            baseline_delay_ps=base_tmin,
        )
    return best


def _redistribute(
    path: BoundedPath,
    library: Library,
    tc_ps: float,
    mode: str,
    original_names: set,
    reference_sizes: Optional[Dict[str, float]],
    weight_mode: str,
) -> ConstraintResult:
    """Distribute ``Tc`` on a buffered path in global or local mode.

    Global mode re-optimises every size jointly.  Local mode is the
    paper's cheaper variant: the inserted buffers get the classic
    geometric-mean (square-root rule) size between their driver and their
    load -- a purely *local* decision -- and stay frozen while the
    original gates redistribute the constraint around them.
    """
    if mode == "global" or reference_sizes is None:
        return distribute_constraint(path, library, tc_ps, weight_mode=weight_mode)
    n = len(path)
    frozen = np.zeros(n, dtype=bool)
    start = np.empty(n)
    inv_min = library.inverter.cin_min(library.tech)
    for i, stage in enumerate(path.stages):
        if stage.name in original_names:
            start[i] = reference_sizes[stage.name]
        else:
            frozen[i] = True
            driver = start[i - 1] if i > 0 else path.cin_first_ff
            if i + 1 < n:
                next_stage = path.stages[i + 1]
                downstream = reference_sizes.get(next_stage.name, 4.0 * inv_min)
            else:
                downstream = path.cterm_ff
            load = stage.cside_ff + downstream
            start[i] = max(np.sqrt(max(driver * load, 0.0)), inv_min)
    return distribute_constraint(
        path,
        library,
        tc_ps,
        weight_mode=weight_mode,
        frozen=frozen,
        frozen_sizes=start,
    )


def distribute_with_buffers(
    path: BoundedPath,
    library: Library,
    tc_ps: float,
    limits: Optional[Dict[Tuple[GateKind, GateKind], float]] = None,
    buffer_stages: int = 1,
    mode: str = "global",
    weight_mode: str = "uniform",
    max_rounds: int = 3,
) -> Tuple[ConstraintResult, BoundedPath, Tuple[int, ...]]:
    """Meet ``Tc`` on a path with buffer insertion allowed (Figs. 6/8).

    The protocol's use of ``Flimit``: solve the constraint by sizing
    first, then flag the stages whose fan-out ratio *at that constrained
    sizing* exceeds their limit -- in the medium domain gates run small,
    so ratios are high and load dilution buys area; at ``Tc < Tmin``
    sizing is infeasible and insertion extends the reachable range.
    Each round tries the flagged nodes individually and keeps the best
    area improvement (or the first feasibility rescue).

    Returns ``(constraint result, buffered path, inserted positions)``.
    """
    if mode not in ("global", "local"):
        raise ValueError("mode must be 'global' or 'local'")
    if limits is None:
        limits = default_flimits(library)

    best_result = distribute_constraint(path, library, tc_ps, weight_mode=weight_mode)
    best_path = path
    original_names = {stage.name for stage in path.stages}
    reference_sizes = {
        stage.name: float(best_result.sizes[i])
        for i, stage in enumerate(path.stages)
    }

    if mode == "local":
        # The deterministic Fig. 8 "Local Buff" method: insert at every
        # node flagged at the constrained sizing, square-root-size the
        # buffers, redistribute the original gates around them.  No
        # improvement gating -- it is a method, not a minimiser.
        flagged = overloaded_stages(path, best_result.sizes, limits)
        if not flagged:
            return best_result, path, ()
        new_path, _ = insert_buffers_at(path, flagged, library, buffer_stages)
        result = _redistribute(
            new_path, library, tc_ps, "local", original_names,
            reference_sizes, weight_mode,
        )
        inserted = tuple(
            i
            for i, stage in enumerate(new_path.stages)
            if stage.name not in original_names
        )
        return result, new_path, inserted

    for _ in range(max_rounds):
        flagged = [
            i
            for i in overloaded_stages(best_path, best_result.sizes, limits)
            if not _is_inserted_buffer(best_path.stages[i])
        ]
        if not flagged:
            break
        round_best: Optional[Tuple[ConstraintResult, BoundedPath]] = None
        for index in flagged:
            candidate_path, _ = insert_buffers_at(
                best_path, [index], library, buffer_stages
            )
            candidate = _redistribute(
                candidate_path,
                library,
                tc_ps,
                mode,
                original_names,
                reference_sizes,
                weight_mode,
            )
            if round_best is None or _better(candidate, round_best[0]):
                round_best = (candidate, candidate_path)
        if round_best is None or not _better(round_best[0], best_result):
            break
        best_result, best_path = round_best

    inserted = tuple(
        i
        for i, stage in enumerate(best_path.stages)
        if stage.name not in original_names
    )
    return best_result, best_path, inserted


def _better(candidate: ConstraintResult, incumbent: ConstraintResult) -> bool:
    """Feasibility first, then area; then raw delay for infeasible pairs."""
    if candidate.feasible != incumbent.feasible:
        return candidate.feasible
    if candidate.feasible:
        return candidate.area_um < incumbent.area_um - 1e-9
    return candidate.achieved_delay_ps < incumbent.achieved_delay_ps - 1e-9
