"""The load buffer-insertion limit ``Flimit`` (section 4.1, Table 2).

For the Fig. 5 configuration -- gate ``(i-1)`` driving gate ``(i)`` driving
a terminal load ``C_L`` -- ``Flimit`` is the fan-out value ``F = C_L /
C_IN(i)`` above which interposing an optimally-sized buffer between ``(i)``
and the load (structure B) beats driving the load directly (structure A).
Gates ``(i-1)`` and ``(i)`` keep their sizes; only the buffer is sized
(local insertion).

``Flimit`` is a pure *gate efficiency* metric: the weaker the gate's
drive per unit of input capacitance (large logical weight -- NOR worst),
the earlier a buffer pays off, hence the Table 2 ordering
``inv > nand2 > nand3 > nor2 > nor3``.  The library characterisation step
of the protocol (Fig. 7) tabulates it for every driver/gate pair once,
then uses it to flag critical nodes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cells.gate_types import GateKind
from repro.cells.library import Library
from repro.timing.delay_model import Edge
from repro.timing.evaluation import path_delay_ps
from repro.timing.path import make_path


@dataclass(frozen=True)
class FlimitEntry:
    """One characterised (driver, gate) pair.

    Attributes
    ----------
    computed:
        ``Flimit`` from the closed-form model (Table 2 "Calcul." column).
    simulated:
        ``Flimit`` re-derived with the transistor-level simulator
        (Table 2 "Simulation" column); ``None`` until requested.
    """

    driver: GateKind
    gate: GateKind
    computed: float
    simulated: Optional[float] = None


def _two_stage_delay(
    library: Library,
    driver: GateKind,
    gate: GateKind,
    cin_gate_ff: float,
    cload_ff: float,
    input_edge: Edge,
) -> float:
    """Structure A delay: driver -> gate -> load."""
    path = make_path(
        [driver, gate],
        library,
        cin_first_ff=library.cref * 2.0,
        cterm_ff=cload_ff,
        input_edge=input_edge,
    )
    return path_delay_ps(path, [path.cin_first_ff, cin_gate_ff], library)


def _buffered_delay(
    library: Library,
    driver: GateKind,
    gate: GateKind,
    cin_gate_ff: float,
    cload_ff: float,
    input_edge: Edge,
    buffer_stages: int,
) -> float:
    """Structure B delay with the buffer optimally sized (golden search)."""
    kinds = [driver, gate] + [GateKind.INV] * buffer_stages
    path = make_path(
        kinds,
        library,
        cin_first_ff=library.cref * 2.0,
        cterm_ff=cload_ff,
        input_edge=input_edge,
    )
    inv_min = library.inverter.cin_min(library.tech)

    def delay_for(buffer_cins: Sequence[float]) -> float:
        sizes = [path.cin_first_ff, cin_gate_ff] + list(buffer_cins)
        return path_delay_ps(path, sizes, library)

    if buffer_stages == 1:
        # 1-D minimisation over the buffer input capacitance.
        lo, hi = inv_min, max(cload_ff * 2.0, inv_min * 4.0)
        phi = (math.sqrt(5.0) - 1.0) / 2.0
        a, b = lo, hi
        c = b - phi * (b - a)
        d = a + phi * (b - a)
        fc, fd = delay_for([c]), delay_for([d])
        for _ in range(70):
            if fc < fd:
                b, d, fd = d, c, fc
                c = b - phi * (b - a)
                fc = delay_for([c])
            else:
                a, c, fc = c, d, fd
                d = a + phi * (b - a)
                fd = delay_for([d])
        best = 0.5 * (a + b)
        return delay_for([best])

    # Multi-stage buffer: geometric taper parameterised by the first stage,
    # 1-D golden search on the taper base.
    def taper_delay(first_cin: float) -> float:
        ratio = (cload_ff / first_cin) ** (1.0 / buffer_stages)
        cins = [first_cin * ratio**j for j in range(buffer_stages)]
        cins = [max(c, inv_min) for c in cins]
        return delay_for(cins)

    lo, hi = inv_min, max(cload_ff, inv_min * 4.0)
    phi = (math.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, hi
    c = b - phi * (b - a)
    d = a + phi * (b - a)
    fc, fd = taper_delay(c), taper_delay(d)
    for _ in range(70):
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - phi * (b - a)
            fc = taper_delay(c)
        else:
            a, c, fc = c, d, fd
            d = a + phi * (b - a)
            fd = taper_delay(d)
    return taper_delay(0.5 * (a + b))


def flimit(
    library: Library,
    gate: GateKind,
    driver: GateKind = GateKind.INV,
    cin_gate_ff: Optional[float] = None,
    buffer_stages: int = 1,
    input_edge: Edge = Edge.RISE,
    f_max: float = 400.0,
) -> float:
    """Compute ``Flimit`` for ``gate`` controlled by ``driver``.

    Bisection on ``F``: below the limit structure A (no buffer) is faster,
    above it structure B (optimal buffer) wins.  ``buffer_stages = 1`` is
    the paper's local metric; 2 characterises polarity-preserving pairs.
    Returns ``inf`` when the buffer never wins before ``f_max``.
    """
    if buffer_stages < 1:
        raise ValueError("buffer_stages must be >= 1")
    if cin_gate_ff is None:
        cin_gate_ff = 4.0 * library.cref

    def advantage(f: float) -> float:
        cload = f * cin_gate_ff
        t_a = _two_stage_delay(library, driver, gate, cin_gate_ff, cload, input_edge)
        t_b = _buffered_delay(
            library, driver, gate, cin_gate_ff, cload, input_edge, buffer_stages
        )
        return t_a - t_b  # positive when the buffer helps

    lo, hi = 1.0, f_max
    if advantage(lo) > 0:
        return lo
    if advantage(hi) < 0:
        return math.inf
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if advantage(mid) > 0:
            hi = mid
        else:
            lo = mid
    return 0.5 * (lo + hi)


def flimit_simulated(
    library: Library,
    gate: GateKind,
    driver: GateKind = GateKind.INV,
    cin_gate_ff: Optional[float] = None,
    input_edge: Edge = Edge.RISE,
    f_max: float = 60.0,
    n_grid: int = 10,
) -> float:
    """``Flimit`` re-derived with the transistor-level simulator.

    The Table 2 "Simulation" column.  A coarse grid + local bisection keeps
    the transient count manageable; the buffer is sized by the square-root
    rule (geometric mean of the gate drive and the load) rather than a full
    golden search per transient.
    """
    from repro.spice.simulator import SimOptions, simulate_path

    if cin_gate_ff is None:
        cin_gate_ff = 4.0 * library.cref
    inv_min = library.inverter.cin_min(library.tech)
    options = SimOptions(n_steps=1500)

    def advantage(f: float) -> float:
        cload = f * cin_gate_ff
        path_a = make_path(
            [driver, gate],
            library,
            cin_first_ff=library.cref * 2.0,
            cterm_ff=cload,
            input_edge=input_edge,
        )
        t_a = simulate_path(
            path_a, [path_a.cin_first_ff, cin_gate_ff], library, options
        ).path_delay_ps
        path_b = make_path(
            [driver, gate, GateKind.INV],
            library,
            cin_first_ff=library.cref * 2.0,
            cterm_ff=cload,
            input_edge=input_edge,
        )
        # Near-optimal buffer: a short bracket around the geometric-mean
        # rule (a fixed sqrt-sized buffer systematically understates the
        # B structure and inflates the measured limit).
        base = max(math.sqrt(cin_gate_ff * cload), inv_min)
        t_b = min(
            simulate_path(
                path_b,
                [path_b.cin_first_ff, cin_gate_ff, max(scale * base, inv_min)],
                library,
                options,
            ).path_delay_ps
            for scale in (0.5, 0.75, 1.0, 1.5)
        )
        return t_a - t_b

    grid = np.linspace(1.5, f_max, n_grid)
    previous_f, previous_adv = grid[0], advantage(grid[0])
    if previous_adv > 0:
        return float(previous_f)
    for f in grid[1:]:
        adv = advantage(float(f))
        if adv > 0:
            lo, hi = previous_f, float(f)
            for _ in range(12):
                mid = 0.5 * (lo + hi)
                if advantage(mid) > 0:
                    hi = mid
                else:
                    lo = mid
            return 0.5 * (lo + hi)
        previous_f, previous_adv = float(f), adv
    return math.inf


#: The gate set of the paper's Table 2.
TABLE2_GATES = (
    GateKind.INV,
    GateKind.NAND2,
    GateKind.NAND3,
    GateKind.NOR2,
    GateKind.NOR3,
)


def characterize_library(
    library: Library,
    gates: Sequence[GateKind] = TABLE2_GATES,
    drivers: Sequence[GateKind] = (GateKind.INV,),
    with_simulation: bool = False,
    buffer_stages: int = 1,
) -> List[FlimitEntry]:
    """Tabulate ``Flimit`` for every (driver, gate) pair (Fig. 7, step 1)."""
    entries: List[FlimitEntry] = []
    for driver in drivers:
        for gate in gates:
            computed = flimit(library, gate, driver, buffer_stages=buffer_stages)
            simulated = (
                flimit_simulated(library, gate, driver) if with_simulation else None
            )
            entries.append(
                FlimitEntry(
                    driver=driver, gate=gate, computed=computed, simulated=simulated
                )
            )
    return entries


def flimit_lookup(entries: Sequence[FlimitEntry]) -> Dict[Tuple[GateKind, GateKind], float]:
    """(driver, gate) -> computed Flimit mapping for the insertion engine."""
    return {(e.driver, e.gate): e.computed for e in entries}
