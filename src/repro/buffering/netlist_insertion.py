"""Netlist-level buffer insertion: polarity-preserving inverter pairs.

The path-level experiments follow the paper's polarity-free convention
(single inverters); writing an insertion back onto a *netlist* must keep
the logic intact, so the circuit driver inserts inverter pairs: the
flagged gate's entire fan-out (and its primary-output role, if any) moves
behind the pair, realising the same load dilution.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.cells.gate_types import GateKind
from repro.cells.library import Library
from repro.netlist.circuit import Circuit
from repro.timing import batch_probe
from repro.timing.incremental import IncrementalSta


def insert_buffer_pair(
    circuit: Circuit,
    gate_name: str,
    library: Optional[Library] = None,
    cin_ff: Optional[float] = None,
) -> Tuple[str, str]:
    """Insert an inverter pair after ``gate_name`` (in place).

    Every reader of ``gate_name`` -- fan-out gates and the primary-output
    list -- is reconnected to the pair's output, so the original gate
    drives only the first inverter.  Returns the two inverter net names.

    ``cin_ff`` sizes both inverters (defaults to four reference inverters
    when a library is given, otherwise unsized).
    """
    gate = circuit.gate(gate_name)  # raises on unknown names
    first = f"{gate_name}_bufa"
    second = f"{gate_name}_bufb"
    if first in circuit.gates or second in circuit.gates:
        raise ValueError(f"{gate_name!r} already carries an inserted pair")

    if cin_ff is None and library is not None:
        cin_ff = 4.0 * library.cref

    # Rewire the readers first (the pair must not read itself).
    for reader in circuit.gates.values():
        if gate_name in reader.fanin:
            reader.fanin = tuple(
                second if net == gate_name else net for net in reader.fanin
            )
    circuit.add_gate(first, GateKind.INV, [gate_name], cin_ff=cin_ff)
    circuit.add_gate(second, GateKind.INV, [first], cin_ff=cin_ff)
    if gate_name in circuit.outputs:
        circuit.outputs = [
            second if net == gate_name else net for net in circuit.outputs
        ]
    circuit.validate()
    return first, second


def remove_buffer_pair(circuit: Circuit, gate_name: str) -> None:
    """Exact inverse of :func:`insert_buffer_pair` (in place).

    The pair's readers -- fan-out gates and any primary-output slot --
    are reconnected to ``gate_name`` and both inverters are deleted,
    restoring the pre-insertion netlist (gate insertion order of the
    surviving gates included, so a from-scratch STA of the restored
    circuit is bit-identical to one that never saw the trial).
    """
    circuit.gate(gate_name)  # raises on unknown names
    first = f"{gate_name}_bufa"
    second = f"{gate_name}_bufb"
    if first not in circuit.gates or second not in circuit.gates:
        raise ValueError(f"{gate_name!r} carries no inserted pair")
    del circuit.gates[first]
    del circuit.gates[second]
    for reader in circuit.gates.values():
        if second in reader.fanin:
            reader.fanin = tuple(
                gate_name if net == second else net for net in reader.fanin
            )
    if second in circuit.outputs:
        circuit.outputs = [
            gate_name if net == second else net for net in circuit.outputs
        ]
    circuit.validate()


def trial_buffer_pairs(
    circuit: Circuit,
    library: Library,
    candidates: Sequence[str],
    engine: Optional[IncrementalSta] = None,
    cin_ff: Optional[float] = None,
    min_batch_columns: Optional[int] = None,
    probe_engine: Optional["batch_probe.BatchProbeEngine"] = None,
) -> Dict[str, float]:
    """Critical delay with a buffer pair trial-inserted after each candidate.

    With at least ``min_batch_columns`` candidates (default
    :data:`~repro.timing.batch_probe.BATCH_PROBE_MIN_COLUMNS`) the whole
    batch is scored by one cone-sparse propagation
    (:meth:`~repro.timing.batch_probe.BatchProbeEngine.
    buffer_pair_delays`) that never touches ``circuit`` at all; below
    it, each candidate is inserted, re-timed incrementally (structure
    refresh plus the pair's fan-out cone -- not a full STA) and undone
    before the next trial.  Both paths are bit-identical, and either way
    the circuit and the engine leave exactly as they arrived --
    *including* when a scalar re-timing or removal raises mid-trial: the
    in-flight pair is unwound and the engine re-synced before the
    exception propagates.  A caller-supplied ``probe_engine`` (e.g. the
    :meth:`~repro.api.session.Session.probe_engine` cache) must have
    been built with boundary conditions matching ``engine``'s; it is
    re-bound to ``circuit``'s current sizing here.  Returns
    ``candidate -> critical delay (ps)``.
    """
    if engine is not None and engine.circuit is not circuit:
        raise ValueError("engine must track the probed circuit")

    if batch_probe.should_batch(len(candidates), min_batch_columns):
        if probe_engine is None:
            kwargs = {}
            if engine is not None:
                kwargs = dict(
                    input_transition_ps=engine.input_transition_ps,
                    output_load_ff=engine.output_load_ff,
                    wire_model=engine.wire_model,
                )
            probe_engine = batch_probe.BatchProbeEngine(circuit, library, **kwargs)
        else:
            probe_engine.bind(circuit)
        batch = probe_engine.buffer_pair_delays(candidates, cin_ff=cin_ff)
        return {name: float(d) for name, d in zip(candidates, batch)}

    if engine is None:
        engine = IncrementalSta(circuit, library)
    delays: Dict[str, float] = {}
    try:
        for name in candidates:
            insert_buffer_pair(circuit, name, library, cin_ff=cin_ff)
            try:
                delays[name] = engine.refresh_structure().critical_delay_ps
            finally:
                remove_buffer_pair(circuit, name)
    finally:
        engine.refresh_structure()
    return delays


def reduce_delay_with_buffers(
    circuit: Circuit,
    library: Library,
    limits: Optional[Dict] = None,
    max_insertions: int = 8,
    engine: Optional[IncrementalSta] = None,
    min_batch_columns: Optional[int] = None,
) -> Tuple[Circuit, Tuple[str, ...], float]:
    """Greedy netlist-level load dilution: trial, keep the best, repeat.

    Each round flags the gates whose fan-out ratio exceeds their
    ``Flimit`` (:func:`~repro.buffering.insertion.overloaded_gates`),
    trial-inserts a polarity-preserving pair after each flagged gate and
    keeps the single insertion that lowers the circuit's critical delay
    most.  Rounds repeat until no trial helps or ``max_insertions`` is
    reached.  Rounds with at least ``min_batch_columns`` flagged gates
    are scored by the cone-sparse batch kernel (see
    :func:`trial_buffer_pairs`; each kept insertion changes the
    structure, so the probe engine is rebuilt per batched round).
    Mutates ``circuit`` in place; returns it with the names of the
    buffered gates and the final critical delay.
    """
    from repro.buffering.insertion import default_flimits, overloaded_gates

    if limits is None:
        limits = default_flimits(library)
    if engine is None:
        engine = IncrementalSta(circuit, library)
    elif engine.circuit is not circuit:
        raise ValueError("engine must track the probed circuit")
    inserted: List[str] = []
    best_delay = engine.critical_delay_ps
    while len(inserted) < max_insertions:
        flagged = [
            name
            for name in overloaded_gates(circuit, library, limits, sta=engine.result())
            if "_buf" not in name and f"{name}_bufa" not in circuit.gates
        ]
        if not flagged:
            break
        trials = trial_buffer_pairs(
            circuit,
            library,
            flagged,
            engine=engine,
            min_batch_columns=min_batch_columns,
        )
        winner = min(trials, key=lambda name: trials[name])
        if trials[winner] >= best_delay - 1e-9:
            break
        insert_buffer_pair(circuit, winner, library)
        best_delay = engine.refresh_structure().critical_delay_ps
        inserted.append(winner)
    return circuit, tuple(inserted), best_delay
