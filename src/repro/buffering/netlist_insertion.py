"""Netlist-level buffer insertion: polarity-preserving inverter pairs.

The path-level experiments follow the paper's polarity-free convention
(single inverters); writing an insertion back onto a *netlist* must keep
the logic intact, so the circuit driver inserts inverter pairs: the
flagged gate's entire fan-out (and its primary-output role, if any) moves
behind the pair, realising the same load dilution.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.cells.gate_types import GateKind
from repro.cells.library import Library
from repro.netlist.circuit import Circuit


def insert_buffer_pair(
    circuit: Circuit,
    gate_name: str,
    library: Optional[Library] = None,
    cin_ff: Optional[float] = None,
) -> Tuple[str, str]:
    """Insert an inverter pair after ``gate_name`` (in place).

    Every reader of ``gate_name`` -- fan-out gates and the primary-output
    list -- is reconnected to the pair's output, so the original gate
    drives only the first inverter.  Returns the two inverter net names.

    ``cin_ff`` sizes both inverters (defaults to four reference inverters
    when a library is given, otherwise unsized).
    """
    gate = circuit.gate(gate_name)  # raises on unknown names
    first = f"{gate_name}_bufa"
    second = f"{gate_name}_bufb"
    if first in circuit.gates or second in circuit.gates:
        raise ValueError(f"{gate_name!r} already carries an inserted pair")

    if cin_ff is None and library is not None:
        cin_ff = 4.0 * library.cref

    # Rewire the readers first (the pair must not read itself).
    for reader in circuit.gates.values():
        if gate_name in reader.fanin:
            reader.fanin = tuple(
                second if net == gate_name else net for net in reader.fanin
            )
    circuit.add_gate(first, GateKind.INV, [gate_name], cin_ff=cin_ff)
    circuit.add_gate(second, GateKind.INV, [first], cin_ff=cin_ff)
    if gate_name in circuit.outputs:
        circuit.outputs = [
            second if net == gate_name else net for net in circuit.outputs
        ]
    circuit.validate()
    return first, second
