"""Circuit-level Monte-Carlo results: distributions, yield, guard bands.

:func:`mc_analyze` is the subsystem's front door: compile (or reuse) the
batch form of a circuit, evaluate the nominal corner and ``n_samples``
perturbed corners in one vectorized pass, and collapse the outcome into
an :class:`McResult` -- the critical-delay distribution, per-endpoint
statistics, the guard band a constraint would need, and (when the run
names a constraint) the yield it achieves.  The result is JSON-lossless
(:func:`mc_result_to_dict` / :func:`mc_result_from_dict`) so
``KIND_MC`` run records archive and round-trip like every other record.

:func:`mc_scalar_samples` is the per-corner reference loop the batch
kernel is measured against (and must agree with): one perturbed
technology, one rebuilt library, one full scalar STA per corner --
the circuit-scale analogue of the original
:func:`repro.analysis.variation.delay_distribution` implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.variation import (
    DelayDistribution,
    VariationSpec,
    perturbed_technology,
)
from repro.cells.library import Library, default_library
from repro.mc.compile import CompiledCircuit, compile_circuit
from repro.mc.corners import nominal_corners, sample_corners
from repro.mc.kernel import batch_analyze
from repro.netlist.circuit import Circuit
from repro.timing.sta import analyze, gate_sizes


@dataclass(frozen=True)
class McEndpoint:
    """Per-primary-output delay statistics across the sampled corners."""

    net: str
    nominal_ps: float
    mean_ps: float
    std_ps: float
    p99_ps: float
    #: Fraction of corners meeting the run's ``tc_ps`` (None without one).
    yield_frac: Optional[float]


@dataclass(frozen=True)
class McResult:
    """One circuit-level Monte-Carlo run, fully summarised.

    ``samples_ps`` keeps the raw per-corner critical delays so every
    statistic (and any later yield query) is reproducible from the
    record alone.
    """

    name: str
    n_samples: int
    seed: int
    spec: VariationSpec
    tc_ps: Optional[float]
    target_yield: float
    nominal_ps: float
    samples_ps: np.ndarray
    endpoints: Tuple[McEndpoint, ...]

    # -- derived statistics -------------------------------------------

    @property
    def mean_ps(self) -> float:
        """Mean critical delay over the corners (ps)."""
        return float(self.samples_ps.mean())

    @property
    def std_ps(self) -> float:
        """Critical-delay standard deviation (ps)."""
        return float(self.samples_ps.std())

    @property
    def p01_ps(self) -> float:
        """1st percentile of the critical delay (ps)."""
        return float(np.percentile(self.samples_ps, 1))

    @property
    def p50_ps(self) -> float:
        """Median critical delay (ps)."""
        return float(np.percentile(self.samples_ps, 50))

    @property
    def p99_ps(self) -> float:
        """99th percentile of the critical delay (ps)."""
        return float(np.percentile(self.samples_ps, 99))

    @property
    def guard_band(self) -> float:
        """Multiplicative 99%-yield margin: ``p99 / nominal``."""
        if self.nominal_ps <= 0:
            return 1.0
        return self.p99_ps / self.nominal_ps

    @property
    def required_guard_band(self) -> float:
        """The Tc multiplier ``target_yield`` of corners would need."""
        needed = float(
            np.percentile(self.samples_ps, 100.0 * self.target_yield)
        )
        return needed / self.nominal_ps

    @property
    def yield_fraction(self) -> Optional[float]:
        """Yield at the run's constraint (None when no ``tc_ps`` given)."""
        if self.tc_ps is None:
            return None
        return self.yield_at(self.tc_ps)

    def yield_at(self, tc_ps: float) -> float:
        """Fraction of corners whose critical delay meets ``tc_ps``."""
        if tc_ps <= 0:
            raise ValueError("tc_ps must be positive")
        return float(np.mean(self.samples_ps <= tc_ps))

    def distribution(self) -> DelayDistribution:
        """The critical-delay distribution in the path-level container."""
        return DelayDistribution(
            nominal_ps=self.nominal_ps,
            mean_ps=self.mean_ps,
            std_ps=self.std_ps,
            p01_ps=self.p01_ps,
            p50_ps=self.p50_ps,
            p99_ps=self.p99_ps,
            samples_ps=self.samples_ps,
        )


def mc_analyze(
    circuit: Circuit,
    library: Library,
    spec: Optional[VariationSpec] = None,
    n_samples: int = 1000,
    seed: int = 42,
    tc_ps: Optional[float] = None,
    target_yield: float = 0.99,
    compiled: Optional[CompiledCircuit] = None,
    input_transition_ps: float = 0.0,
    output_load_ff: Optional[float] = None,
) -> McResult:
    """Vectorized Monte-Carlo corner analysis of a sized circuit.

    The sizing is held fixed at its nominal resolution (per-gate
    ``cin_ff``, library minimum where unset) while the process corners
    vary -- the paper's "how much margin must a blind flow carry"
    question lifted from one path to the whole netlist.

    ``compiled`` reuses an existing compilation (it must already be
    bound to ``circuit``'s sizing -- the Session cache's job);
    ``tc_ps`` attaches a constraint so the result carries yields.
    """
    if n_samples < 2:
        raise ValueError("n_samples must be >= 2")
    if not 0.0 < target_yield < 1.0:
        raise ValueError("target_yield must lie in (0, 1)")
    if tc_ps is not None and tc_ps <= 0:
        raise ValueError("tc_ps must be positive")
    if spec is None:
        spec = VariationSpec()
    if compiled is None:
        compiled = compile_circuit(
            circuit,
            library,
            input_transition_ps=input_transition_ps,
            output_load_ff=output_load_ff,
        )
    elif compiled.library is not library:
        raise ValueError(
            "compiled circuit was built against a different library"
        )

    nominal = batch_analyze(compiled, nominal_corners(library.tech, 1))
    corners = sample_corners(library.tech, spec, n_samples, seed)
    batch = batch_analyze(compiled, corners)

    nominal_worst = nominal.endpoint_arrivals()[:, 0]
    worst = batch.endpoint_arrivals()
    endpoints: List[McEndpoint] = []
    for i, net in enumerate(compiled.output_names):
        endpoints.append(
            McEndpoint(
                net=net,
                nominal_ps=float(nominal_worst[i]),
                mean_ps=float(worst[i].mean()),
                std_ps=float(worst[i].std()),
                p99_ps=float(np.percentile(worst[i], 99)),
                yield_frac=(
                    None if tc_ps is None else float(np.mean(worst[i] <= tc_ps))
                ),
            )
        )
    return McResult(
        name=circuit.name,
        n_samples=n_samples,
        seed=seed,
        spec=spec,
        tc_ps=None if tc_ps is None else float(tc_ps),
        target_yield=float(target_yield),
        nominal_ps=float(nominal.critical_delay_ps[0]),
        samples_ps=batch.critical_delay_ps,
        endpoints=tuple(endpoints),
    )


def mc_scalar_samples(
    circuit: Circuit,
    library: Library,
    spec: Optional[VariationSpec] = None,
    n_samples: int = 1000,
    seed: int = 42,
    input_transition_ps: float = 0.0,
    output_load_ff: Optional[float] = None,
) -> np.ndarray:
    """Per-corner reference loop: one scalar STA per sampled technology.

    Semantics match :func:`mc_analyze` exactly -- fixed nominal sizing
    and output load, library rebuilt on each perturbed technology (the
    default cell set is a pure function of ``k_ratio``, so the rebuild
    changes only the technology) -- and the sampled corners are the same
    rng stream :func:`~repro.mc.corners.sample_corners` reproduces.
    This is the oracle the equivalence tests and the >= 20x performance
    bar in ``benchmarks/test_perf_mc.py`` measure the batch kernel
    against.
    """
    if spec is None:
        spec = VariationSpec()
    sizes = gate_sizes(circuit, library)
    load = 4.0 * library.cref if output_load_ff is None else output_load_ff
    rng = np.random.default_rng(seed)
    samples = np.empty(n_samples)
    for i in range(n_samples):
        corner_tech = perturbed_technology(library.tech, spec, rng)
        corner_lib = default_library(
            corner_tech, k_ratio=library.inverter.k_ratio
        )
        samples[i] = analyze(
            circuit,
            corner_lib,
            input_transition_ps=input_transition_ps,
            output_load_ff=load,
            sizes=sizes,
        ).critical_delay_ps
    return samples


# -- serialization -----------------------------------------------------


def variation_spec_to_dict(spec: VariationSpec) -> Dict[str, float]:
    """JSON-native view of a :class:`VariationSpec`."""
    return {
        "tau_sigma": float(spec.tau_sigma),
        "r_sigma": float(spec.r_sigma),
        "vt_sigma": float(spec.vt_sigma),
        "c_gate_sigma": float(spec.c_gate_sigma),
        "c_junction_sigma": float(spec.c_junction_sigma),
    }


def mc_result_to_dict(result: McResult) -> Dict[str, Any]:
    """Lossless JSON-compatible representation of an :class:`McResult`."""
    return {
        "name": result.name,
        "n_samples": int(result.n_samples),
        "seed": int(result.seed),
        "spec": variation_spec_to_dict(result.spec),
        "tc_ps": None if result.tc_ps is None else float(result.tc_ps),
        "target_yield": float(result.target_yield),
        "nominal_ps": float(result.nominal_ps),
        "samples_ps": [float(x) for x in result.samples_ps],
        "endpoints": [
            {
                "net": e.net,
                "nominal_ps": float(e.nominal_ps),
                "mean_ps": float(e.mean_ps),
                "std_ps": float(e.std_ps),
                "p99_ps": float(e.p99_ps),
                "yield_frac": (
                    None if e.yield_frac is None else float(e.yield_frac)
                ),
            }
            for e in result.endpoints
        ],
    }


def mc_result_from_dict(data: Dict[str, Any]) -> McResult:
    """Rebuild an :class:`McResult` from :func:`mc_result_to_dict`."""
    return McResult(
        name=data["name"],
        n_samples=int(data["n_samples"]),
        seed=int(data["seed"]),
        spec=VariationSpec(**data["spec"]),
        tc_ps=None if data["tc_ps"] is None else float(data["tc_ps"]),
        target_yield=float(data["target_yield"]),
        nominal_ps=float(data["nominal_ps"]),
        samples_ps=np.asarray(data["samples_ps"], dtype=float),
        endpoints=tuple(
            McEndpoint(
                net=e["net"],
                nominal_ps=e["nominal_ps"],
                mean_ps=e["mean_ps"],
                std_ps=e["std_ps"],
                p99_ps=e["p99_ps"],
                yield_frac=e["yield_frac"],
            )
            for e in data["endpoints"]
        ),
    )
