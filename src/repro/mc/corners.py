"""Vectorized process-corner sampling: one array draw, N technologies.

:func:`repro.analysis.variation.perturbed_technology` samples one corner
at a time -- five truncated-normal multipliers per
:class:`~repro.process.technology.Technology` instance.  The batch
engine needs the *same* corners as parameter arrays.  The key fact that
makes the two representations interchangeable is how numpy's
``Generator`` consumes its bit stream: ``rng.normal(1.0, sigma)`` is
exactly ``1.0 + sigma * rng.standard_normal()`` (one ziggurat draw), so
a single ``standard_normal((n_samples, n_active))`` call -- filled in C
order -- consumes the stream in precisely the per-sample interleaved
order of the scalar loop.  :func:`sample_corners` therefore reproduces
the scalar samples *bit for bit* for the same seed (asserted in
``tests/test_mc.py``); parameters with a zero sigma draw nothing, again
matching the scalar guard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.variation import VariationSpec
from repro.process.technology import Technology

#: The multiplier draw order of ``perturbed_technology``: the shared
#: ``vt`` multiplier first, then the keyword-argument evaluation order
#: of the ``tech.scaled`` call.
DRAW_ORDER = ("vt", "tau", "r", "c_gate", "c_junction")


@dataclass(frozen=True)
class CornerSamples:
    """A batch of sampled process corners, struct-of-arrays.

    Each field mirrors one :class:`Technology` attribute as a
    ``(n_samples,)`` float array; ``tech`` is the nominal technology the
    corners perturb (and supplies everything variation leaves fixed --
    ``vdd``, capacitance geometry, ``w_min_um``).
    """

    tech: Technology
    tau_ps: np.ndarray
    r_ratio: np.ndarray
    vtn: np.ndarray
    vtp: np.ndarray
    c_gate_ff_per_um: np.ndarray
    c_junction_ff_per_um: np.ndarray

    def __post_init__(self) -> None:
        n = self.tau_ps.shape
        for name in ("r_ratio", "vtn", "vtp", "c_gate_ff_per_um",
                     "c_junction_ff_per_um"):
            if getattr(self, name).shape != n:
                raise ValueError("corner parameter arrays must share one shape")

    @property
    def n_samples(self) -> int:
        """Number of sampled corners."""
        return int(self.tau_ps.shape[0])

    def __len__(self) -> int:
        return self.n_samples

    @property
    def vtn_reduced(self) -> np.ndarray:
        """Reduced NMOS thresholds ``v_TN = V_TN / V_DD`` per corner."""
        return self.vtn / self.tech.vdd

    @property
    def vtp_reduced(self) -> np.ndarray:
        """Reduced PMOS thresholds ``v_TP = |V_TP| / V_DD`` per corner."""
        return self.vtp / self.tech.vdd

    def technology_at(self, index: int) -> Technology:
        """Corner ``index`` as a scalar :class:`Technology` (test oracle)."""
        return self.tech.scaled(
            tau_ps=float(self.tau_ps[index]),
            r_ratio=float(self.r_ratio[index]),
            vtn=float(self.vtn[index]),
            vtp=float(self.vtp[index]),
            c_gate_ff_per_um=float(self.c_gate_ff_per_um[index]),
            c_junction_ff_per_um=float(self.c_junction_ff_per_um[index]),
        )


def nominal_corners(tech: Technology, n_samples: int = 1) -> CornerSamples:
    """``n_samples`` copies of the nominal corner (the oracle column)."""
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")

    def rep(value: float) -> np.ndarray:
        return np.full(n_samples, value, dtype=float)

    return CornerSamples(
        tech=tech,
        tau_ps=rep(tech.tau_ps),
        r_ratio=rep(tech.r_ratio),
        vtn=rep(tech.vtn),
        vtp=rep(tech.vtp),
        c_gate_ff_per_um=rep(tech.c_gate_ff_per_um),
        c_junction_ff_per_um=rep(tech.c_junction_ff_per_um),
    )


def sample_corners(
    tech: Technology,
    spec: Optional[VariationSpec] = None,
    n_samples: int = 1000,
    seed: int = 42,
) -> CornerSamples:
    """Sample ``n_samples`` corners as arrays, scalar-loop compatible.

    The draws reproduce ``perturbed_technology`` run ``n_samples`` times
    on ``np.random.default_rng(seed)`` bit for bit: one standard-normal
    matrix is filled in C order, so row ``i`` holds sample ``i``'s
    multipliers in the scalar draw order (:data:`DRAW_ORDER`, zero-sigma
    parameters skipped), and each multiplier is formed and truncated with
    the same operations (``1 + sigma*z`` clipped to ``[0.5, 1.5]``).
    """
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    if spec is None:
        spec = VariationSpec()
    rng = np.random.default_rng(seed)
    sigmas = {
        "vt": spec.vt_sigma,
        "tau": spec.tau_sigma,
        "r": spec.r_sigma,
        "c_gate": spec.c_gate_sigma,
        "c_junction": spec.c_junction_sigma,
    }
    active = [name for name in DRAW_ORDER if sigmas[name]]
    z = rng.standard_normal((n_samples, len(active)))
    mults = {name: np.ones(n_samples) for name in DRAW_ORDER}
    for column, name in enumerate(active):
        mults[name] = np.clip(1.0 + sigmas[name] * z[:, column], 0.5, 1.5)

    vt_mult = mults["vt"]
    return CornerSamples(
        tech=tech,
        tau_ps=tech.tau_ps * mults["tau"],
        r_ratio=tech.r_ratio * mults["r"],
        vtn=np.minimum(tech.vtn * vt_mult, 0.9 * tech.vdd),
        vtp=np.minimum(tech.vtp * vt_mult, 0.9 * tech.vdd),
        c_gate_ff_per_um=tech.c_gate_ff_per_um * mults["c_gate"],
        c_junction_ff_per_um=tech.c_junction_ff_per_um * mults["c_junction"],
    )
