"""Vectorized Monte-Carlo / corner analysis over compiled circuits.

The scalar flow evaluates one technology corner at a time; this package
turns variation analysis into a batch workload::

    from repro.mc import compile_circuit, mc_analyze

    compiled = compile_circuit(circuit, library)     # once per structure
    result = mc_analyze(circuit, library, n_samples=1000,
                        tc_ps=900.0, compiled=compiled)
    print(result.guard_band, result.yield_fraction)

Pieces:

* :mod:`repro.mc.corners`  -- corner sampling as array draws, rng-stream
  compatible with the scalar ``perturbed_technology`` loop;
* :mod:`repro.mc.compile`  -- struct-of-arrays circuit compilation
  (levelized topology, padded fan-in, per-gate cell constants);
* :mod:`repro.mc.kernel`   -- the batch STA kernel (all corners at once,
  bit-identical to ``timing.sta.analyze`` at the nominal corner) and the
  batch path-delay kernel behind ``analysis.variation``;
* :mod:`repro.mc.result`   -- :class:`McResult` distributions / yields /
  guard bands with lossless JSON round-tripping, plus the scalar
  per-corner reference loop.
"""

from repro.mc.compile import CompiledCircuit, compile_circuit
from repro.mc.corners import (
    CornerSamples,
    nominal_corners,
    sample_corners,
)
from repro.mc.kernel import BatchStaResult, batch_analyze, batch_path_delays
from repro.mc.result import (
    McEndpoint,
    McResult,
    mc_analyze,
    mc_result_from_dict,
    mc_result_to_dict,
    mc_scalar_samples,
    variation_spec_to_dict,
)

__all__ = [
    "CompiledCircuit",
    "compile_circuit",
    "CornerSamples",
    "nominal_corners",
    "sample_corners",
    "BatchStaResult",
    "batch_analyze",
    "batch_path_delays",
    "McEndpoint",
    "McResult",
    "mc_analyze",
    "mc_result_to_dict",
    "mc_result_from_dict",
    "mc_scalar_samples",
    "variation_spec_to_dict",
]
