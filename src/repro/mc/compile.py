"""One-time struct-of-arrays compilation of a circuit for the batch engine.

The scalar STA (:func:`repro.timing.sta.analyze`) walks Python dicts --
perfect for one corner, hopeless for thousands.  :class:`CompiledCircuit`
flattens everything the eq. 1-3 math needs into numpy arrays once per
*structure*:

* a **net row space**: primary inputs first, then every gate in
  levelized topological order (all of a gate's fan-in lives in earlier
  rows, and gates of one level are contiguous, so the kernel can process
  a whole level with a handful of array ops);
* **padded fan-in indices** per gate (CSR-like, ``max_fanin`` columns
  with a validity mask) pointing into the net row space;
* **per-gate cell constants** of the delay model -- ``k``, the logical
  weights, the parasitic coefficient, the inversion flag -- gathered
  from the characterised library.

Sizing is bound separately (:meth:`CompiledCircuit.bind`): per-gate
``C_IN``, external loads and every derived sizing-only scalar (total
load, Miller coupling factors) are cheap array refreshes, so one
compiled structure serves every sizing of the same netlist -- exactly
the :meth:`~repro.netlist.circuit.Circuit.structure_key` granularity the
:class:`~repro.api.session.Session` caches on.

Sizes and loads are resolved through the scalar engine's own kernels
(:func:`~repro.timing.sta.gate_sizes`,
:func:`~repro.timing.sta.external_loads`), which pins the batch kernel's
bit-identity with :func:`~repro.timing.sta.analyze` at the nominal
corner: both engines see the very same floats.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cells.library import Library
from repro.netlist.circuit import Circuit
from repro.netlist.wireload import WireLoadModel
from repro.timing.sta import external_loads, gate_sizes


class CompiledCircuit:
    """Struct-of-arrays form of one circuit structure plus a bound sizing.

    Parameters mirror :func:`~repro.timing.sta.analyze`; construction
    performs the structure compilation *and* binds the circuit's current
    sizing (call :meth:`bind` to re-bind after ``cin_ff`` mutations).

    Attributes (structure, fixed after construction)
    ------------------------------------------------
    ``names``
        Gate names in compiled (levelized) order; gate ``g`` occupies
        net row ``n_inputs + g``.
    ``row_of``
        ``net name -> row`` for primary inputs and gates.
    ``levels``
        ``(start, end)`` gate-id slices, one per topological level.
    ``fanin_rows`` / ``fanin_mask``
        ``(n_gates, max_fanin)`` padded fan-in rows and validity mask.
    ``inverting``
        Per-gate polarity flip flag.
    """

    def __init__(
        self,
        circuit: Circuit,
        library: Library,
        input_transition_ps: float = 0.0,
        output_load_ff: Optional[float] = None,
        wire_model: Optional[WireLoadModel] = None,
    ) -> None:
        circuit.validate()
        self.library = library
        self.input_transition_ps = float(input_transition_ps)
        self.output_load_ff = (
            4.0 * library.cref if output_load_ff is None else float(output_load_ff)
        )
        self.wire_model = wire_model
        self.name = circuit.name
        self.structure_key = circuit.structure_key()

        # -- levelized gate order and net row space --------------------
        topo = circuit.topological_order()
        level: Dict[str, int] = {net: 0 for net in circuit.inputs}
        for gate_name in topo:
            gate = circuit.gates[gate_name]
            level[gate_name] = 1 + max(
                (level[source] for source in gate.fanin), default=0
            )
        max_level = max((level[name] for name in topo), default=0)
        by_level: List[List[str]] = [[] for _ in range(max_level + 1)]
        for gate_name in topo:  # stable within a level: topological order
            by_level[level[gate_name]].append(gate_name)

        self.n_inputs = len(circuit.inputs)
        self.names: Tuple[str, ...] = tuple(
            name for bucket in by_level for name in bucket
        )
        self.n_gates = len(self.names)
        self.row_of: Dict[str, int] = {
            net: row for row, net in enumerate(circuit.inputs)
        }
        for gate_id, name in enumerate(self.names):
            self.row_of[name] = self.n_inputs + gate_id

        self.levels: Tuple[Tuple[int, int], ...] = tuple()
        start = 0
        slices = []
        for bucket in by_level:
            if not bucket:
                continue
            slices.append((start, start + len(bucket)))
            start += len(bucket)
        self.levels = tuple(slices)

        # -- padded fan-in ---------------------------------------------
        max_fanin = max(
            (len(circuit.gates[name].fanin) for name in self.names), default=1
        )
        self.fanin_rows = np.zeros((self.n_gates, max_fanin), dtype=np.intp)
        self.fanin_mask = np.zeros((self.n_gates, max_fanin), dtype=bool)
        for gate_id, name in enumerate(self.names):
            for slot, source in enumerate(circuit.gates[name].fanin):
                self.fanin_rows[gate_id, slot] = self.row_of[source]
                self.fanin_mask[gate_id, slot] = True

        # -- per-gate cell constants -----------------------------------
        self.k_ratio = np.empty(self.n_gates)
        self.dw_hl = np.empty(self.n_gates)
        self.dw_lh = np.empty(self.n_gates)
        self.p_intrinsic = np.empty(self.n_gates)
        self.inverting = np.zeros(self.n_gates, dtype=bool)
        for gate_id, name in enumerate(self.names):
            cell = library.cell(circuit.gates[name].kind)
            self.k_ratio[gate_id] = cell.k_ratio
            self.dw_hl[gate_id] = cell.dw_hl
            self.dw_lh[gate_id] = cell.dw_lh
            self.p_intrinsic[gate_id] = cell.p_intrinsic
            self.inverting[gate_id] = cell.inverting

        # Symmetry factor of the falling edge (eq. 3) is sizing- and
        # corner-free: S_HL = DW_HL * (1 + k) / 2.  The rising edge picks
        # up the perturbed R per corner, so the kernel builds it itself.
        self.s_hl = self.dw_hl * (1.0 + self.k_ratio) / 2.0

        self.output_names: Tuple[str, ...] = tuple(circuit.outputs)
        self.output_rows = np.array(
            [self.row_of[net] for net in circuit.outputs], dtype=np.intp
        )

        self.bind(circuit)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledCircuit({self.name!r}, gates={self.n_gates}, "
            f"levels={len(self.levels)})"
        )

    @property
    def n_nets(self) -> int:
        """Rows in the net space (primary inputs + gates)."""
        return self.n_inputs + self.n_gates

    def gate_row(self, name: str) -> int:
        """Net row of a gate or primary input (test/report helper)."""
        return self.row_of[name]

    # -- sizing binding ------------------------------------------------

    def bind(self, circuit: Circuit) -> "CompiledCircuit":
        """(Re-)bind the per-gate sizing state of ``circuit``.

        ``circuit`` must share this compilation's structure key; sizes
        default to the library minimum exactly as in the scalar engine,
        and external loads are assembled by the scalar engine's own
        summation kernel so every float matches ``analyze``.
        """
        if circuit.structure_key() != self.structure_key:
            raise ValueError(
                f"circuit {circuit.name!r} does not match the compiled "
                "structure; compile it instead of re-binding"
            )
        sizes = gate_sizes(circuit, self.library)
        loads = external_loads(
            circuit,
            self.library,
            output_load_ff=self.output_load_ff,
            sizes=sizes,
            wire_model=self.wire_model,
        )
        self.cin = np.array([sizes[name] for name in self.names])
        self.load = np.array([loads[name] for name in self.names])
        # Total load (external + own junction parasitic), eq. 2's C_L:
        # same operation order as delay_model.total_load.
        self.cl_total = self.p_intrinsic * self.cin + self.load
        # Miller coupling factors per switching-input polarity (eq. 1);
        # cm follows Cell.coupling_cap's operation order exactly.
        cm_rise = 0.5 * self.cin * self.k_ratio / (1.0 + self.k_ratio)
        cm_fall = 0.5 * self.cin / (1.0 + self.k_ratio)
        self.half_coupling_rise = 0.5 * (
            1.0 + 2.0 * cm_rise / (cm_rise + self.cl_total)
        )
        self.half_coupling_fall = 0.5 * (
            1.0 + 2.0 * cm_fall / (cm_fall + self.cl_total)
        )
        return self

    def sizes_dict(self) -> Dict[str, float]:
        """Currently bound per-gate input capacitances (a copy)."""
        return {name: float(c) for name, c in zip(self.names, self.cin)}


def compile_circuit(
    circuit: Circuit,
    library: Library,
    input_transition_ps: float = 0.0,
    output_load_ff: Optional[float] = None,
    wire_model: Optional[WireLoadModel] = None,
) -> CompiledCircuit:
    """Compile ``circuit`` for the batch engine (convenience wrapper)."""
    return CompiledCircuit(
        circuit,
        library,
        input_transition_ps=input_transition_ps,
        output_load_ff=output_load_ff,
        wire_model=wire_model,
    )
