"""One-time struct-of-arrays compilation of a circuit for the batch engine.

The scalar STA (:func:`repro.timing.sta.analyze`) walks Python dicts --
perfect for one corner, hopeless for thousands.  :class:`CompiledCircuit`
flattens everything the eq. 1-3 math needs into numpy arrays once per
*structure*:

* a **net row space**: primary inputs first, then every gate in
  levelized topological order (all of a gate's fan-in lives in earlier
  rows, and gates of one level are contiguous, so the kernel can process
  a whole level with a handful of array ops);
* **padded fan-in indices** per gate (CSR-like, ``max_fanin`` columns
  with a validity mask) pointing into the net row space;
* **per-gate cells** (and the generic inversion flags), from which the
  library's delay backend folds its own per-gate constants -- the
  analytic model's ``k``/logical-weight/parasitic arrays, or an NLDM
  model's stacked table views -- via
  :meth:`~repro.timing.backend.DelayBackend.compile_model`.

Sizing is bound separately (:meth:`CompiledCircuit.bind`): per-gate
``C_IN`` and external loads are cheap array refreshes here, and every
derived sizing-only quantity (total load, Miller coupling factors) is
refreshed by the backend model's own ``bind`` -- so one compiled
structure serves every sizing of the same netlist, exactly the
:meth:`~repro.netlist.circuit.Circuit.structure_key` granularity the
:class:`~repro.api.session.Session` caches on.

Sizes and loads are resolved through the scalar engine's own kernels
(:func:`~repro.timing.sta.gate_sizes`,
:func:`~repro.timing.sta.external_loads`), which pins the batch kernel's
bit-identity with :func:`~repro.timing.sta.analyze` at the nominal
corner: both engines see the very same floats.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cells.cell import Cell
from repro.cells.library import Library
from repro.netlist.circuit import Circuit
from repro.netlist.wireload import WireLoadModel
from repro.timing.sta import external_loads, gate_sizes


class CompiledCircuit:
    """Struct-of-arrays form of one circuit structure plus a bound sizing.

    Parameters mirror :func:`~repro.timing.sta.analyze`; construction
    performs the structure compilation *and* binds the circuit's current
    sizing (call :meth:`bind` to re-bind after ``cin_ff`` mutations).

    Attributes (structure, fixed after construction)
    ------------------------------------------------
    ``names``
        Gate names in compiled (levelized) order; gate ``g`` occupies
        net row ``n_inputs + g``.
    ``row_of``
        ``net name -> row`` for primary inputs and gates.
    ``levels``
        ``(start, end)`` gate-id slices, one per topological level.
    ``fanin_rows`` / ``fanin_mask``
        ``(n_gates, max_fanin)`` padded fan-in rows and validity mask.
    ``cells`` / ``inverting``
        Per-gate characterised cell and polarity flip flag.
    ``model``
        The backend's :class:`~repro.timing.backend.BatchDelayModel`
        for this structure; it owns every delay-model-specific array
        (the analytic constants, or NLDM table stacks).
    """

    def __init__(
        self,
        circuit: Circuit,
        library: Library,
        input_transition_ps: float = 0.0,
        output_load_ff: Optional[float] = None,
        wire_model: Optional[WireLoadModel] = None,
    ) -> None:
        circuit.validate()
        self.library = library
        self.input_transition_ps = float(input_transition_ps)
        self.output_load_ff = (
            4.0 * library.cref if output_load_ff is None else float(output_load_ff)
        )
        self.wire_model = wire_model
        self.name = circuit.name
        self.structure_key = circuit.structure_key()

        # -- levelized gate order and net row space --------------------
        topo = circuit.topological_order()
        level: Dict[str, int] = {net: 0 for net in circuit.inputs}
        for gate_name in topo:
            gate = circuit.gates[gate_name]
            level[gate_name] = 1 + max(
                (level[source] for source in gate.fanin), default=0
            )
        max_level = max((level[name] for name in topo), default=0)
        by_level: List[List[str]] = [[] for _ in range(max_level + 1)]
        for gate_name in topo:  # stable within a level: topological order
            by_level[level[gate_name]].append(gate_name)

        self.n_inputs = len(circuit.inputs)
        self.names: Tuple[str, ...] = tuple(
            name for bucket in by_level for name in bucket
        )
        self.n_gates = len(self.names)
        self.row_of: Dict[str, int] = {
            net: row for row, net in enumerate(circuit.inputs)
        }
        for gate_id, name in enumerate(self.names):
            self.row_of[name] = self.n_inputs + gate_id

        self.levels: Tuple[Tuple[int, int], ...] = tuple()
        start = 0
        slices = []
        for bucket in by_level:
            if not bucket:
                continue
            slices.append((start, start + len(bucket)))
            start += len(bucket)
        self.levels = tuple(slices)

        # -- padded fan-in ---------------------------------------------
        max_fanin = max(
            (len(circuit.gates[name].fanin) for name in self.names), default=1
        )
        self.fanin_rows = np.zeros((self.n_gates, max_fanin), dtype=np.intp)
        self.fanin_mask = np.zeros((self.n_gates, max_fanin), dtype=bool)
        for gate_id, name in enumerate(self.names):
            for slot, source in enumerate(circuit.gates[name].fanin):
                self.fanin_rows[gate_id, slot] = self.row_of[source]
                self.fanin_mask[gate_id, slot] = True

        # -- per-gate cells and generic polarity -----------------------
        self.cells: Tuple[Cell, ...] = tuple(
            library.cell(circuit.gates[name].kind) for name in self.names
        )
        self.inverting = np.zeros(self.n_gates, dtype=bool)
        for gate_id, cell in enumerate(self.cells):
            self.inverting[gate_id] = cell.inverting

        self.output_names: Tuple[str, ...] = tuple(circuit.outputs)
        self.output_rows = np.array(
            [self.row_of[net] for net in circuit.outputs], dtype=np.intp
        )

        # The backend folds its per-gate constants (the analytic model's
        # k/logical-weight/parasitic arrays, an NLDM model's table
        # stacks) into arrays once per structure.
        self.model = library.delay_backend.compile_model(self)

        self.bind(circuit)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledCircuit({self.name!r}, gates={self.n_gates}, "
            f"levels={len(self.levels)})"
        )

    @property
    def n_nets(self) -> int:
        """Rows in the net space (primary inputs + gates)."""
        return self.n_inputs + self.n_gates

    def gate_row(self, name: str) -> int:
        """Net row of a gate or primary input (test/report helper)."""
        return self.row_of[name]

    # -- sizing binding ------------------------------------------------

    def bind(self, circuit: Circuit) -> "CompiledCircuit":
        """(Re-)bind the per-gate sizing state of ``circuit``.

        ``circuit`` must share this compilation's structure key; sizes
        default to the library minimum exactly as in the scalar engine,
        and external loads are assembled by the scalar engine's own
        summation kernel so every float matches ``analyze``.
        """
        if circuit.structure_key() != self.structure_key:
            raise ValueError(
                f"circuit {circuit.name!r} does not match the compiled "
                "structure; compile it instead of re-binding"
            )
        sizes = gate_sizes(circuit, self.library)
        loads = external_loads(
            circuit,
            self.library,
            output_load_ff=self.output_load_ff,
            sizes=sizes,
            wire_model=self.wire_model,
        )
        self.cin = np.array([sizes[name] for name in self.names])
        self.load = np.array([loads[name] for name in self.names])
        # Derived sizing-only quantities (total loads, coupling factors,
        # effective table loads) belong to the backend model.
        self.model.bind(self)
        return self

    def sizes_dict(self) -> Dict[str, float]:
        """Currently bound per-gate input capacitances (a copy)."""
        return {name: float(c) for name, c in zip(self.names, self.cin)}


def compile_circuit(
    circuit: Circuit,
    library: Library,
    input_transition_ps: float = 0.0,
    output_load_ff: Optional[float] = None,
    wire_model: Optional[WireLoadModel] = None,
) -> CompiledCircuit:
    """Compile ``circuit`` for the batch engine (convenience wrapper)."""
    return CompiledCircuit(
        circuit,
        library,
        input_transition_ps=input_transition_ps,
        output_load_ff=output_load_ff,
        wire_model=wire_model,
    )
