"""Batch STA and batch path evaluation: all corners at once.

The kernels here propagate the eq. 1-3 delay model for *N process
corners simultaneously*: every timing quantity is a ``(rows, n_samples)``
array, and one level of the circuit is handled by a handful of numpy
operations instead of ``n_samples`` Python dict walks.

Bit-identity contract
---------------------
The batch kernel evaluates exactly the arithmetic of the scalar engines,
in the same operation order (multiplication/division associativity
included), so at the nominal corner its arrivals and transitions equal
:func:`repro.timing.sta.analyze` -- and therefore
:class:`~repro.timing.incremental.IncrementalSta` -- *bit for bit*
(asserted over every CORE circuit in ``tests/test_mc.py``).  Two model
facts make the max-reduction itself exact:

* a gate's output **transition** (eq. 2) depends only on the output edge
  and the gate's own size/load -- never on *which* fan-in arc wins -- so
  the per-edge reduction only needs ``max`` over candidate arrival
  times, which is exact in floating point;
* a candidate's arrival is ``t_src + delay`` computed fully before the
  comparison, exactly like the scalar kernel's strict-``>`` selection.

The scalar engine's tie-break (first-come on exactly equal arrivals)
can, in principle, pick a different *cause* than the batch argmax, but
never a different arrival/transition value, so the annotations agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.cells.library import Library
from repro.mc.compile import CompiledCircuit
from repro.mc.corners import CornerSamples
from repro.timing.backend import BatchDelayModel
from repro.timing.delay_model import Edge, output_edge_for
from repro.timing.evaluation import _check_sizes, path_delay_ps
from repro.timing.path import BoundedPath


class AnalyticBatchModel(BatchDelayModel):
    """Batch surface of the analytic backend: the eq. 1-3 level loop.

    The constructor folds the per-gate cell constants of the compiled
    structure into arrays (written onto ``compiled`` itself -- the
    cone-sparse probe engine shares them), :meth:`bind` refreshes the
    sizing-derived ones, and :meth:`propagate` is the original
    :func:`batch_analyze` level loop, moved verbatim so the bit-identity
    contract above survives the backend seam untouched.
    """

    def __init__(self, compiled: CompiledCircuit) -> None:
        n_gates = len(compiled.cells)
        compiled.k_ratio = np.empty(n_gates)
        compiled.dw_hl = np.empty(n_gates)
        compiled.dw_lh = np.empty(n_gates)
        compiled.p_intrinsic = np.empty(n_gates)
        for gate_id, cell in enumerate(compiled.cells):
            compiled.k_ratio[gate_id] = cell.k_ratio
            compiled.dw_hl[gate_id] = cell.dw_hl
            compiled.dw_lh[gate_id] = cell.dw_lh
            compiled.p_intrinsic[gate_id] = cell.p_intrinsic
        # Symmetry factor of the falling edge (eq. 3) is sizing- and
        # corner-free: S_HL = DW_HL * (1 + k) / 2.  The rising edge picks
        # up the perturbed R per corner, so propagate builds it itself.
        compiled.s_hl = compiled.dw_hl * (1.0 + compiled.k_ratio) / 2.0

    def bind(self, compiled: CompiledCircuit) -> None:
        """Refresh the sizing-derived analytic arrays after a re-bind."""
        # Total load (external + own junction parasitic), eq. 2's C_L:
        # same operation order as delay_model.total_load.
        compiled.cl_total = compiled.p_intrinsic * compiled.cin + compiled.load
        # Miller coupling factors per switching-input polarity (eq. 1);
        # cm follows Cell.coupling_cap's operation order exactly.
        cm_rise = 0.5 * compiled.cin * compiled.k_ratio / (1.0 + compiled.k_ratio)
        cm_fall = 0.5 * compiled.cin / (1.0 + compiled.k_ratio)
        compiled.half_coupling_rise = 0.5 * (
            1.0 + 2.0 * cm_rise / (cm_rise + compiled.cl_total)
        )
        compiled.half_coupling_fall = 0.5 * (
            1.0 + 2.0 * cm_fall / (cm_fall + compiled.cl_total)
        )

    def propagate(
        self,
        compiled: CompiledCircuit,
        corners: CornerSamples,
        time_rise: np.ndarray,
        time_fall: np.ndarray,
        tran_rise: np.ndarray,
        tran_fall: np.ndarray,
    ) -> None:
        """Run the eq. 1-3 level loop over every corner column."""
        n_in = compiled.n_inputs
        tau = corners.tau_ps
        r = corners.r_ratio
        # Half input-slope weights of eq. 1 per switching-input polarity:
        # the scalar kernel computes (0.5 * v_T) * t_in in that order.
        hv_rise = 0.5 * corners.vtn_reduced
        hv_fall = 0.5 * corners.vtp_reduced
        neg_inf = -np.inf

        for start, end in compiled.levels:
            k = compiled.k_ratio[start:end, None]
            cl = compiled.cl_total[start:end, None]
            cin = compiled.cin[start:end, None]
            inv = compiled.inverting[start:end, None]

            # Eq. 3 rising-edge symmetry factor with the corner's R, and
            # the eq. 2 transitions for both output edges (operation
            # order of Cell.s_lh / output_transition_time preserved).
            s_lh = compiled.dw_lh[start:end, None] * (r[None, :] / k) * (1.0 + k) / 2.0
            tout_rise = s_lh * tau[None, :] * cl / cin
            tout_fall = compiled.s_hl[start:end, None] * tau[None, :] * cl / cin

            # Load/coupling contribution of eq. 1 per *input* polarity: a
            # rising input drives the falling output of an inverting cell.
            b_rise = compiled.half_coupling_rise[start:end, None] * np.where(
                inv, tout_fall, tout_rise
            )
            b_fall = compiled.half_coupling_fall[start:end, None] * np.where(
                inv, tout_rise, tout_fall
            )

            rows = compiled.fanin_rows[start:end]
            mask = compiled.fanin_mask[start:end, :, None]

            delay = hv_rise[None, None, :] * tran_rise[rows] + b_rise[:, None, :]
            cand = time_rise[rows] + delay
            m_rise = np.max(np.where(mask, cand, neg_inf), axis=1)

            delay = hv_fall[None, None, :] * tran_fall[rows] + b_fall[:, None, :]
            cand = time_fall[rows] + delay
            m_fall = np.max(np.where(mask, cand, neg_inf), axis=1)

            out = slice(n_in + start, n_in + end)
            time_rise[out] = np.where(inv, m_fall, m_rise)
            time_fall[out] = np.where(inv, m_rise, m_fall)
            tran_rise[out] = tout_rise
            tran_fall[out] = tout_fall


@dataclass(frozen=True)
class BatchStaResult:
    """Full-circuit batch timing annotation over ``n_samples`` corners.

    All arrays are ``(n_nets, n_samples)`` in the compiled net row
    space (primary inputs first, then gates in levelized order).
    """

    compiled: CompiledCircuit
    time_rise: np.ndarray
    time_fall: np.ndarray
    tran_rise: np.ndarray
    tran_fall: np.ndarray
    #: Worst arrival over all primary outputs and polarities, per sample.
    critical_delay_ps: np.ndarray

    @property
    def n_samples(self) -> int:
        """Number of corners evaluated."""
        return int(self.time_rise.shape[1])

    def arrival(self, net: str, edge: Edge) -> np.ndarray:
        """Per-sample arrival times of ``edge`` at ``net`` (ps)."""
        row = self.compiled.gate_row(net)
        return self.time_rise[row] if edge is Edge.RISE else self.time_fall[row]

    def transition(self, net: str, edge: Edge) -> np.ndarray:
        """Per-sample transition times of ``edge`` at ``net`` (ps)."""
        row = self.compiled.gate_row(net)
        return self.tran_rise[row] if edge is Edge.RISE else self.tran_fall[row]

    def endpoint_arrivals(self) -> np.ndarray:
        """Worst arrival per primary output, ``(n_outputs, n_samples)``."""
        rows = self.compiled.output_rows
        return np.maximum(self.time_rise[rows], self.time_fall[rows])

    def endpoint_yields(self, tc_ps: float) -> Dict[str, float]:
        """Per-endpoint fraction of corners meeting ``tc_ps``."""
        if tc_ps <= 0:
            raise ValueError("tc_ps must be positive")
        worst = self.endpoint_arrivals()
        return {
            net: float(np.mean(worst[i] <= tc_ps))
            for i, net in enumerate(self.compiled.output_names)
        }

    def yield_at(self, tc_ps: float) -> float:
        """Fraction of corners whose critical delay meets ``tc_ps``."""
        if tc_ps <= 0:
            raise ValueError("tc_ps must be positive")
        return float(np.mean(self.critical_delay_ps <= tc_ps))


def batch_analyze(
    compiled: CompiledCircuit, corners: CornerSamples
) -> BatchStaResult:
    """Propagate arrivals for every corner at once, level by level."""
    n = corners.n_samples
    n_nets = compiled.n_nets
    n_in = compiled.n_inputs

    time_rise = np.empty((n_nets, n))
    time_fall = np.empty((n_nets, n))
    tran_rise = np.empty((n_nets, n))
    tran_fall = np.empty((n_nets, n))
    time_rise[:n_in] = 0.0
    time_fall[:n_in] = 0.0
    tran_rise[:n_in] = compiled.input_transition_ps
    tran_fall[:n_in] = compiled.input_transition_ps

    compiled.model.propagate(
        compiled, corners, time_rise, time_fall, tran_rise, tran_fall
    )

    rows = compiled.output_rows
    critical = np.max(
        np.maximum(time_rise[rows], time_fall[rows]), axis=0
    )
    return BatchStaResult(
        compiled=compiled,
        time_rise=time_rise,
        time_fall=time_fall,
        tran_rise=tran_rise,
        tran_fall=tran_fall,
        critical_delay_ps=critical,
    )


def batch_path_delays(
    path: BoundedPath,
    sizes: Sequence[float],
    library: Library,
    corners: CornerSamples,
) -> np.ndarray:
    """Eq. 1 delay of one sized path at every corner, ``(n_samples,)``.

    The vectorized twin of
    :func:`repro.timing.evaluation.path_delay_ps`: stage constants that
    variation perturbs (``S*tau`` through ``tau``/``R``, the reduced
    thresholds) become per-corner arrays; everything else (coupling,
    parasitics, side loads, the sizing) is the fixed scalar the nominal
    evaluation uses, in the same operation order -- so the corner ``i``
    column equals a scalar re-evaluation under ``corners.technology_at(i)``
    bit for bit.

    Backends without exact corner support (NLDM tables, whose arcs are
    characterised at one process point) approximate corner ``i`` as the
    nominal backend delay scaled by the global speed ratio
    ``tau_i / tau_nominal`` -- exact at the nominal corner, first-order
    elsewhere (see ``capabilities.exact_corners``).
    """
    arr = _check_sizes(path, sizes)
    if not library.delay_backend.capabilities.exact_corners:
        nominal = path_delay_ps(path, arr, library)
        return np.asarray(nominal * (corners.tau_ps / library.tech.tau_ps))
    tau = corners.tau_ps
    r = corners.r_ratio
    vt_rise = corners.vtn_reduced
    vt_fall = corners.vtp_reduced

    total = 0.0
    tin = path.tin_first_ps
    edge = path.input_edge
    n = len(path)
    for i in range(n):
        stage = path.stages[i]
        cell = stage.cell
        out_edge = output_edge_for(cell, edge)
        if out_edge is Edge.FALL:
            s = cell.dw_hl * (1.0 + cell.k_ratio) / 2.0
        else:
            s = cell.dw_lh * (r / cell.k_ratio) * (1.0 + cell.k_ratio) / 2.0
        s_tau = s * tau
        vt = vt_rise if edge is Edge.RISE else vt_fall
        m = cell.coupling_cap(1.0, input_rising=edge is Edge.RISE)

        c = arr[i]
        downstream = arr[i + 1] if i + 1 < n else path.cterm_ff
        cl = cell.p_intrinsic * c + stage.cside_ff + downstream
        tout = s_tau * cl / c
        cm = m * c
        half_k = 0.5 * (1.0 + 2.0 * cm / (cm + cl))
        total = total + (0.5 * vt * tin + half_k * tout)
        tin = tout
        edge = out_edge
    return np.asarray(total)
