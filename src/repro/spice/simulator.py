"""Transistor-level transient simulation of bounded paths.

This is the repository's HSPICE stand-in: an independent, physics-based
reference against which the closed-form eq. 1-3 model is validated (the
paper's Fig. 2 and Table 2 "simulation" columns).

Model
-----
* Each gate is reduced to its switching arc: the on-path transistor pair
  with series stacks folded into effective widths (``W / stack``), side
  inputs held at their non-controlling values.  Composite cells (BUF,
  AND, OR, XOR) are expanded into their inverting primitive stages first.
* Devices follow the Sakurai--Newton alpha-power law
  (:mod:`repro.process.transistor`), evaluated vectorised over all nodes.
* Node dynamics include the gate input/output coupling capacitance
  ``C_M`` as a tridiagonal capacitance matrix -- the Miller effect the
  eq. 1 coupling factor approximates -- plus junction, side and terminal
  loads.
* Integration: fixed-step RK4 on ``M dV/dt = I(V, t)``.

Units: fF, ps, V, mA throughout (consistent: mA = fF*V/ps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cells.cell import Cell
from repro.cells.gate_types import GateKind
from repro.cells.library import Library
from repro.process.transistor import nmos_for, pmos_for
from repro.spice.waveform import delay_50, ramp_input, transition_time
from repro.timing.delay_model import Edge
from repro.timing.evaluation import evaluate_path
from repro.timing.path import BoundedPath


@dataclass(frozen=True)
class SimOptions:
    """Transient analysis controls.

    Attributes
    ----------
    n_steps:
        RK4 steps over the full window.
    t_end_ps:
        Simulation window; ``None`` auto-sizes it from the closed-form
        path delay (3x + input transition margin).
    input_transition_ps:
        Full-swing ramp time of the stimulus.
    """

    n_steps: int = 4000
    t_end_ps: Optional[float] = None
    input_transition_ps: float = 20.0


@dataclass(frozen=True)
class ChainSimResult:
    """Waveforms and measurements of one path transient.

    Attributes
    ----------
    times_ps / input_volts / node_volts:
        Raw waveforms; ``node_volts[i]`` is primitive stage ``i``'s output.
    stage_map:
        For each *path* stage, the primitive node index of its output.
    path_delay_ps:
        50% input to 50% last-output propagation delay.
    stage_delays_ps:
        Per path-stage 50%-50% delays.
    stage_transitions_ps:
        Full-swing-equivalent output transition per path stage.
    """

    times_ps: np.ndarray
    input_volts: np.ndarray
    node_volts: np.ndarray
    stage_map: Tuple[int, ...]
    path_delay_ps: float
    stage_delays_ps: Tuple[float, ...]
    stage_transitions_ps: Tuple[float, ...]


@dataclass(frozen=True)
class _PrimStage:
    """One inverting primitive stage of the expanded chain."""

    wn_eff_um: float
    wp_eff_um: float
    cm_ff: float
    cnode_ff: float  # junction + side + downstream input caps (no CM)


_COMPOSITE_EXPANSION = {
    GateKind.BUF: (GateKind.INV, GateKind.INV),
    GateKind.AND2: (GateKind.NAND2, GateKind.INV),
    GateKind.AND3: (GateKind.NAND3, GateKind.INV),
    GateKind.AND4: (GateKind.NAND4, GateKind.INV),
    GateKind.OR2: (GateKind.NOR2, GateKind.INV),
    GateKind.OR3: (GateKind.NOR3, GateKind.INV),
    GateKind.OR4: (GateKind.NOR4, GateKind.INV),
    # XOR/XNOR switching arc: two NAND-like stages.
    GateKind.XOR2: (GateKind.NAND2, GateKind.NAND2),
    GateKind.XNOR2: (GateKind.NAND2, GateKind.NAND2),
}


def _expand_stages(
    path: BoundedPath, sizes: np.ndarray, library: Library
) -> Tuple[List[Tuple[Cell, float, float]], Tuple[int, ...]]:
    """Expand composites; returns [(cell, cin, cside)], and per-path-stage
    primitive output indices."""
    expanded: List[Tuple[Cell, float, float]] = []
    stage_map: List[int] = []
    for stage, cin in zip(path.stages, sizes):
        kind = stage.cell.kind
        if kind in _COMPOSITE_EXPANSION:
            first_kind, second_kind = _COMPOSITE_EXPANSION[kind]
            first = library.cell(first_kind)
            second = library.cell(second_kind)
            # Internal stage sized like the input stage: the usual
            # composite-cell layout choice.
            expanded.append((first, cin, 0.0))
            expanded.append((second, cin, stage.cside_ff))
        else:
            expanded.append((stage.cell, cin, stage.cside_ff))
        stage_map.append(len(expanded) - 1)
    return expanded, tuple(stage_map)


def _alpha_power_current(
    widths_um: np.ndarray,
    vgs: np.ndarray,
    vds: np.ndarray,
    beta: float,
    vt: float,
    alpha: float,
    vd0_coeff: float,
) -> np.ndarray:
    """Vectorised Sakurai--Newton drain current (mA)."""
    vgst = np.maximum(vgs - vt, 0.0)
    vds_pos = np.maximum(vds, 0.0)
    i_sat = beta * widths_um * vgst**alpha
    vd0 = vd0_coeff * vgst ** (alpha / 2.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        x = np.where(vd0 > 0, vds_pos / np.where(vd0 > 0, vd0, 1.0), np.inf)
    triode = i_sat * np.clip(x, 0.0, 1.0) * (2.0 - np.clip(x, 0.0, 1.0))
    return np.where(x >= 1.0, i_sat, triode)


def simulate_path(
    path: BoundedPath,
    sizes: Sequence[float],
    library: Library,
    options: Optional[SimOptions] = None,
) -> ChainSimResult:
    """Transient-simulate a sized path and measure its delays."""
    if options is None:
        options = SimOptions()
    tech = library.tech
    vdd = tech.vdd
    arr = np.asarray(sizes, dtype=float).copy()
    if arr.shape != (len(path),):
        raise ValueError(f"expected {len(path)} sizes, got shape {arr.shape}")
    arr[0] = path.cin_first_ff

    prim, stage_map = _expand_stages(path, arr, library)
    m = len(prim)
    input_rising = path.input_edge is Edge.RISE

    # Assemble per-node electrical data.
    stages: List[_PrimStage] = []
    for i, (cell, cin, cside) in enumerate(prim):
        wn, wp = cell.wn_wp_um(cin, tech)
        downstream = prim[i + 1][1] if i + 1 < m else path.cterm_ff
        cnode = cell.parasitic_cap(cin) + cside + downstream
        # Simulation-side C_M: mean of the two per-edge values (the edge
        # alternates stage to stage anyway).
        cm = 0.5 * (cell.coupling_cap(cin, True) + cell.coupling_cap(cin, False))
        stages.append(
            _PrimStage(
                wn_eff_um=wn / cell.stack_n,
                wp_eff_um=wp / cell.stack_p,
                cm_ff=cm,
                cnode_ff=cnode,
            )
        )

    wn_eff = np.array([s.wn_eff_um for s in stages])
    wp_eff = np.array([s.wp_eff_um for s in stages])
    cm = np.array([s.cm_ff for s in stages])
    cnode = np.array([s.cnode_ff for s in stages])

    # Capacitance matrix: node i couples to its driving node (i-1 or the
    # source) through cm[i], and to node i+1 through cm[i+1].
    matrix = np.zeros((m, m))
    for i in range(m):
        matrix[i, i] = cnode[i] + cm[i]
        if i + 1 < m:
            matrix[i, i] += cm[i + 1]
            matrix[i, i + 1] -= cm[i + 1]
            matrix[i + 1, i] -= cm[i + 1]
    m_inv = np.linalg.inv(matrix)

    nmos = nmos_for(tech)
    pmos = pmos_for(tech)

    if options.t_end_ps is not None:
        t_end = options.t_end_ps
    else:
        model = evaluate_path(path, arr, library)
        t_end = 3.0 * model.total_delay_ps + 10.0 * options.input_transition_ps + 50.0
    t_start = 2.0 * options.input_transition_ps + 10.0
    times = np.linspace(0.0, t_end, options.n_steps + 1)
    dt = times[1] - times[0]

    vin_t = ramp_input(times, vdd, input_rising, t_start, options.input_transition_ps)
    slope = vdd / options.input_transition_ps if options.input_transition_ps > 0 else 0.0

    def input_level(t: float) -> float:
        if options.input_transition_ps == 0:
            level = vdd if t >= t_start else 0.0
        else:
            frac = np.clip((t - t_start) / options.input_transition_ps, 0.0, 1.0)
            level = vdd * frac
        return level if input_rising else vdd - level

    def input_slope(t: float) -> float:
        if options.input_transition_ps == 0:
            return 0.0
        inside = t_start <= t <= t_start + options.input_transition_ps
        if not inside:
            return 0.0
        return slope if input_rising else -slope

    def derivative(t: float, v: np.ndarray) -> np.ndarray:
        vin = np.empty(m)
        vin[0] = input_level(t)
        vin[1:] = v[:-1]
        i_n = _alpha_power_current(
            wn_eff, vin, v, nmos.beta_ma_per_um, nmos.vt, nmos.alpha, nmos.vd0_per_vgst
        )
        i_p = _alpha_power_current(
            wp_eff, vdd - vin, vdd - v, pmos.beta_ma_per_um, pmos.vt, pmos.alpha,
            pmos.vd0_per_vgst,
        )
        rhs = i_p - i_n
        rhs[0] += cm[0] * input_slope(t)
        return m_inv @ rhs

    # DC initial condition: primitives are all inverting.
    v = np.empty(m)
    level = 0.0 if input_rising else vdd
    for i in range(m):
        level = vdd - level
        v[i] = level

    history = np.empty((m, times.size))
    history[:, 0] = v
    for step in range(times.size - 1):
        t = times[step]
        k1 = derivative(t, v)
        k2 = derivative(t + 0.5 * dt, v + 0.5 * dt * k1)
        k3 = derivative(t + 0.5 * dt, v + 0.5 * dt * k2)
        k4 = derivative(t + dt, v + dt * k3)
        v = v + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
        v = np.clip(v, -0.5 * vdd, 1.5 * vdd)
        history[:, step + 1] = v

    # Measurements on the original path stages.
    stage_delays: List[float] = []
    stage_transitions: List[float] = []
    prev_wave = vin_t
    prev_rising = input_rising
    for path_index, node_index in enumerate(stage_map):
        wave = history[node_index]
        # Polarity at this output.
        edge = path.edge_at(path_index)
        cell = path.stages[path_index].cell
        out_rising = (edge is Edge.RISE) != cell.inverting
        stage_delays.append(
            delay_50(times, prev_wave, wave, vdd, prev_rising, out_rising)
        )
        stage_transitions.append(transition_time(times, wave, vdd, out_rising))
        prev_wave = wave
        prev_rising = out_rising

    last_wave = history[stage_map[-1]]
    last_rising = prev_rising
    path_delay = delay_50(times, vin_t, last_wave, vdd, input_rising, last_rising)

    return ChainSimResult(
        times_ps=times,
        input_volts=vin_t,
        node_volts=history,
        stage_map=stage_map,
        path_delay_ps=path_delay,
        stage_delays_ps=tuple(stage_delays),
        stage_transitions_ps=tuple(stage_transitions),
    )


def simulate_gate(
    kind: GateKind,
    library: Library,
    cin_ff: float,
    cload_ff: float,
    input_edge: Edge = Edge.RISE,
    options: Optional[SimOptions] = None,
) -> ChainSimResult:
    """Single-gate transient (Table 2 style characterisation helper)."""
    from repro.timing.path import make_path

    path = make_path(
        [kind],
        library,
        cin_first_ff=cin_ff,
        cterm_ff=cload_ff,
        input_edge=input_edge,
    )
    return simulate_path(path, [cin_ff], library, options=options)
