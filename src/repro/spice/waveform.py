"""Waveform measurement utilities for the transient simulator.

Mirrors the measurements an HSPICE ``.measure`` deck would perform on the
paper's validation runs: 50% crossing delays and 20%-80% transition times
extrapolated to full swing.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class MeasurementError(RuntimeError):
    """The requested crossing does not exist in the waveform."""


def crossing_time(
    times_ps: Sequence[float],
    volts: Sequence[float],
    level: float,
    rising: bool,
    after_ps: float = 0.0,
) -> float:
    """First time the waveform crosses ``level`` in the given direction.

    Linear interpolation between samples; ``after_ps`` skips an initial
    settling window.
    """
    t = np.asarray(times_ps, dtype=float)
    v = np.asarray(volts, dtype=float)
    if t.shape != v.shape or t.ndim != 1:
        raise ValueError("times and volts must be 1-D arrays of equal length")
    mask = t >= after_ps
    t = t[mask]
    v = v[mask]
    if t.size < 2:
        raise MeasurementError("waveform too short for a crossing measurement")
    if rising:
        hits = np.nonzero((v[:-1] < level) & (v[1:] >= level))[0]
    else:
        hits = np.nonzero((v[:-1] > level) & (v[1:] <= level))[0]
    if hits.size == 0:
        direction = "rising" if rising else "falling"
        raise MeasurementError(f"no {direction} crossing of {level:.3f} V found")
    i = int(hits[0])
    dv = v[i + 1] - v[i]
    if dv == 0:
        return float(t[i])
    frac = (level - v[i]) / dv
    return float(t[i] + frac * (t[i + 1] - t[i]))


def delay_50(
    times_ps: Sequence[float],
    v_in: Sequence[float],
    v_out: Sequence[float],
    vdd: float,
    input_rising: bool,
    output_rising: bool,
    after_ps: float = 0.0,
) -> float:
    """50%-to-50% propagation delay between two waveforms (ps)."""
    level = 0.5 * vdd
    t_in = crossing_time(times_ps, v_in, level, input_rising, after_ps)
    t_out = crossing_time(times_ps, v_out, level, output_rising, after_ps=t_in)
    return t_out - t_in


def transition_time(
    times_ps: Sequence[float],
    volts: Sequence[float],
    vdd: float,
    rising: bool,
    after_ps: float = 0.0,
) -> float:
    """20%-80% transition time extrapolated to full swing (ps).

    The factor ``1/0.6`` converts the measured 20-80 window to the
    full-swing transition-time definition used by the eq. 2 model.
    """
    lo, hi = 0.2 * vdd, 0.8 * vdd
    if rising:
        t_lo = crossing_time(times_ps, volts, lo, True, after_ps)
        t_hi = crossing_time(times_ps, volts, hi, True, after_ps=t_lo)
        return (t_hi - t_lo) / 0.6
    t_hi = crossing_time(times_ps, volts, hi, False, after_ps)
    t_lo = crossing_time(times_ps, volts, lo, False, after_ps=t_hi)
    return (t_lo - t_hi) / 0.6


def ramp_input(
    times_ps: np.ndarray,
    vdd: float,
    rising: bool,
    start_ps: float,
    transition_ps: float,
) -> np.ndarray:
    """An input ramp waveform sampled on ``times_ps``.

    ``transition_ps`` is the full-swing transition time; a zero value
    produces a step.
    """
    if transition_ps < 0:
        raise ValueError("transition_ps must be non-negative")
    if transition_ps == 0:
        ramp = np.where(times_ps >= start_ps, 1.0, 0.0)
    else:
        ramp = np.clip((times_ps - start_ps) / transition_ps, 0.0, 1.0)
    return vdd * ramp if rising else vdd * (1.0 - ramp)
