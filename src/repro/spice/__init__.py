"""Transistor-level reference simulator (the repository's HSPICE stand-in)."""

from repro.spice.simulator import (
    ChainSimResult,
    SimOptions,
    simulate_gate,
    simulate_path,
)
from repro.spice.waveform import (
    MeasurementError,
    crossing_time,
    delay_50,
    ramp_input,
    transition_time,
)

__all__ = [
    "SimOptions",
    "ChainSimResult",
    "simulate_path",
    "simulate_gate",
    "crossing_time",
    "delay_50",
    "transition_time",
    "ramp_input",
    "MeasurementError",
]
