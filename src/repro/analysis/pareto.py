"""Pareto-dominance utilities for multi-objective result sets.

The paper reads every technique comparison off curves over the
constraint axis -- delay bounds (Fig. 1), area vs ``Tc`` (Figs. 4/8),
the constraint-domain map (Fig. 6).  A sweep produces the raw points;
this module supplies the dominance filter that turns them into the
delay/area/power trade-off frontier the curves are drawn from.

All objectives are minimized.  ``None`` objective values mean "metric
not available for this point" and are treated as incomparable on that
objective (neither better nor worse), so mixed campaigns -- e.g. path
jobs without a power model -- still get a well-defined frontier.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

#: One point's objective vector; ``None`` marks an unavailable metric.
Objectives = Sequence[Optional[float]]


def dominates(first: Objectives, second: Objectives) -> bool:
    """Whether ``first`` Pareto-dominates ``second`` (all minimized).

    Requires: no worse on every comparable objective, strictly better on
    at least one.  Objectives where either side is ``None`` are skipped;
    if nothing is comparable, neither point dominates.
    """
    if len(first) != len(second):
        raise ValueError("objective vectors must have equal length")
    no_worse = True
    strictly_better = False
    for a, b in zip(first, second):
        if a is None or b is None:
            continue
        if a > b:
            no_worse = False
            break
        if a < b:
            strictly_better = True
    return no_worse and strictly_better


def pareto_indices(points: Sequence[Objectives]) -> List[int]:
    """Indices of the non-dominated points, in input order.

    Deterministic: ties (duplicate objective vectors) all survive, so
    re-running a sweep can never flip which points are "on" the
    frontier.  Quadratic in the number of points -- sweeps are hundreds
    of points, not millions.
    """
    survivors: List[int] = []
    for i, candidate in enumerate(points):
        if not any(
            dominates(points[j], candidate) for j in range(len(points)) if j != i
        ):
            survivors.append(i)
    return survivors
