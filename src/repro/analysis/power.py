"""Power estimation: dynamic (switched capacitance) + short-circuit terms.

The paper uses ``sum W`` as its area/power cost because, at fixed activity
and frequency, dynamic power is proportional to the switched gate
capacitance, which scales with transistor width.  This module makes that
link explicit and quantitative:

* ``P_dyn  = sum_nets  alpha(net) * C(net) * VDD^2 * f``
* ``P_sc  ~= k_sc * P_dyn * (tau_transition / T_clock)`` -- the classic
  short-circuit fraction estimate, driven by the STA transition times.

Absolute watts depend on the (calibrated, not foundry) process data; the
value of the model is comparative -- e.g. quantifying the power saved by
the constant-sensitivity sizing vs a greedy baseline at equal ``Tc``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.analysis.activity import ActivityReport, estimate_activity
from repro.cells.library import Library
from repro.netlist.circuit import Circuit
from repro.timing.sta import analyze, external_loads, gate_sizes


@dataclass(frozen=True)
class PowerReport:
    """Power breakdown of a sized circuit.

    All figures in microwatts for the given clock frequency.
    """

    dynamic_uw: float
    short_circuit_uw: float
    frequency_mhz: float
    switched_cap_ff: float

    @property
    def total_uw(self) -> float:
        """Dynamic plus short-circuit power (uW)."""
        return self.dynamic_uw + self.short_circuit_uw


def estimate_power(
    circuit: Circuit,
    library: Library,
    frequency_mhz: float = 100.0,
    activity: Optional[ActivityReport] = None,
    sizes: Optional[Mapping[str, float]] = None,
    short_circuit_fraction: float = 0.1,
) -> PowerReport:
    """Estimate the dynamic + short-circuit power of a sized circuit.

    Parameters
    ----------
    activity:
        Per-net toggle rates; estimated with default settings if omitted.
    short_circuit_fraction:
        Crowbar-current fraction applied to the dynamic term, scaled by
        the mean transition-to-period ratio.
    """
    if frequency_mhz <= 0:
        raise ValueError("frequency_mhz must be positive")
    if activity is None:
        activity = estimate_activity(circuit)
    if sizes is None:
        sizes = gate_sizes(circuit, library)
    tech = library.tech
    loads = external_loads(circuit, library, sizes=sizes)

    switched_cap = 0.0  # activity-weighted fF
    for gate in circuit.gates.values():
        cell = library.cell(gate.kind)
        node_cap = cell.parasitic_cap(sizes[gate.name]) + loads[gate.name]
        switched_cap += activity.rate(gate.name) * node_cap

    # fF * V^2 * MHz = 1e-15 F * V^2 * 1e6 / s = 1e-9 W = 1e-3 uW.
    dynamic_uw = switched_cap * tech.vdd**2 * frequency_mhz * 1e-3

    sta = analyze(circuit, library, sizes=sizes)
    transitions = [
        event.transition_ps
        for per_net in sta.arrivals.values()
        for event in per_net.values()
    ]
    mean_transition_ps = sum(transitions) / len(transitions) if transitions else 0.0
    period_ps = 1e6 / frequency_mhz
    sc_scale = short_circuit_fraction * (mean_transition_ps / period_ps) * 100.0
    short_circuit_uw = dynamic_uw * min(sc_scale, 0.5)

    return PowerReport(
        dynamic_uw=dynamic_uw,
        short_circuit_uw=short_circuit_uw,
        frequency_mhz=frequency_mhz,
        switched_cap_ff=switched_cap,
    )
