"""Process-variation analysis: Monte-Carlo corners on the delay model.

The paper motivates deterministic bounds partly by the *uncertainty*
iterative flows must absorb ("the uncertainty in routing capacitance
estimation imposes ... very large safety margins resulting in oversized
designs", section 2).  This module quantifies that story on our model:

* sample process corners -- multiplicative perturbations of ``tau``,
  ``R``, the thresholds and the capacitance densities -- around the
  nominal technology;
* re-evaluate a *fixed sizing* under each corner;
* report the delay distribution and the guard-band a constraint needs.

Sizing decisions themselves stay nominal (re-optimising per corner is the
classic robust-design extension; the returned distribution tells you how
much margin that would have to buy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.cells.library import Library, default_library
from repro.process.technology import Technology
from repro.timing.evaluation import path_delay_ps
from repro.timing.path import BoundedPath


@dataclass(frozen=True)
class VariationSpec:
    """Relative (1-sigma) spreads of the process parameters.

    Defaults follow typical die-to-die 0.25 um numbers: a few percent on
    speed (``tau``), the P/N balance, thresholds and capacitances.
    """

    tau_sigma: float = 0.05
    r_sigma: float = 0.04
    vt_sigma: float = 0.04
    c_gate_sigma: float = 0.03
    c_junction_sigma: float = 0.05

    def __post_init__(self) -> None:
        for name in ("tau_sigma", "r_sigma", "vt_sigma", "c_gate_sigma",
                     "c_junction_sigma"):
            value = getattr(self, name)
            if not 0.0 <= value < 0.5:
                raise ValueError(f"{name} must lie in [0, 0.5), got {value}")


@dataclass(frozen=True)
class DelayDistribution:
    """Monte-Carlo delay statistics of one sized path.

    All times in ps.
    """

    nominal_ps: float
    mean_ps: float
    std_ps: float
    p01_ps: float
    p50_ps: float
    p99_ps: float
    samples_ps: np.ndarray

    @property
    def guard_band(self) -> float:
        """Multiplicative margin for 99% yield: ``p99 / nominal``."""
        if self.nominal_ps <= 0:
            return 1.0
        return self.p99_ps / self.nominal_ps

    def yield_at(self, tc_ps: float) -> float:
        """Fraction of corners meeting a delay constraint."""
        if tc_ps <= 0:
            raise ValueError("tc_ps must be positive")
        return float(np.mean(self.samples_ps <= tc_ps))


def perturbed_technology(
    tech: Technology, spec: VariationSpec, rng: np.random.Generator
) -> Technology:
    """One sampled corner of ``tech`` (truncated-normal multipliers)."""

    def mult(sigma: float) -> float:
        return float(np.clip(rng.normal(1.0, sigma), 0.5, 1.5)) if sigma else 1.0

    vt_mult = mult(spec.vt_sigma)
    return tech.scaled(
        tau_ps=tech.tau_ps * mult(spec.tau_sigma),
        r_ratio=tech.r_ratio * mult(spec.r_sigma),
        vtn=min(tech.vtn * vt_mult, 0.9 * tech.vdd),
        vtp=min(tech.vtp * vt_mult, 0.9 * tech.vdd),
        c_gate_ff_per_um=tech.c_gate_ff_per_um * mult(spec.c_gate_sigma),
        c_junction_ff_per_um=tech.c_junction_ff_per_um
        * mult(spec.c_junction_sigma),
    )


def delay_distribution(
    path: BoundedPath,
    sizes: Sequence[float],
    library: Library,
    spec: Optional[VariationSpec] = None,
    n_samples: int = 500,
    seed: int = 42,
) -> DelayDistribution:
    """Monte-Carlo delay distribution of a fixed sizing across corners.

    The corners are evaluated by the vectorized batch kernel
    (:func:`repro.mc.kernel.batch_path_delays`): one array draw replaces
    the per-sample library rebuild of the original loop.  The sampled
    corners reproduce that loop's rng stream draw for draw
    (:func:`repro.mc.corners.sample_corners`), and the kernel preserves
    its operation order, so for the default cell set the samples match
    the retired scalar implementation (kept as
    :func:`_scalar_corner_samples` for the equivalence tests) bit for
    bit on every platform where ``Generator.normal`` is one ziggurat
    draw -- the tests pin a 1e-12 relative tolerance as the portable
    contract.

    For a *custom* cell set the batch kernel is a deliberate behaviour
    fix: the old loop's ``default_library`` rebuild silently swapped
    default cells under the path at every corner, whereas the kernel
    evaluates the path's actual ``stage.cell`` constants (only the
    technology varies, matching the nominal evaluation's cells).
    """
    if n_samples < 2:
        raise ValueError("n_samples must be >= 2")
    if spec is None:
        spec = VariationSpec()
    # Imported lazily: repro.mc's corner sampler imports VariationSpec
    # from this module at load time.
    from repro.mc.corners import sample_corners
    from repro.mc.kernel import batch_path_delays

    nominal = path_delay_ps(path, sizes, library)
    corners = sample_corners(library.tech, spec, n_samples, seed)
    samples = batch_path_delays(path, sizes, library, corners)

    return DelayDistribution(
        nominal_ps=nominal,
        mean_ps=float(samples.mean()),
        std_ps=float(samples.std()),
        p01_ps=float(np.percentile(samples, 1)),
        p50_ps=float(np.percentile(samples, 50)),
        p99_ps=float(np.percentile(samples, 99)),
        samples_ps=samples,
    )


def _rebind_path(path: BoundedPath, library: Library) -> BoundedPath:
    """The same path structure with cells from another library."""
    from dataclasses import replace

    stages = tuple(
        replace(stage, cell=library.cell(stage.cell.kind))
        for stage in path.stages
    )
    return replace(path, stages=stages)


def _scalar_corner_samples(
    path: BoundedPath,
    sizes: Sequence[float],
    library: Library,
    spec: VariationSpec,
    n_samples: int,
    seed: int,
) -> np.ndarray:
    """The original per-corner loop: one library rebuild per sample.

    Retired from :func:`delay_distribution` in favour of the batch
    kernel; kept as the reference the equivalence tests and the
    ``benchmarks/test_perf_mc.py`` speedup bar compare against.  Note
    the rebuild re-binds the path to ``default_library`` cells, so this
    reference is only meaningful for default cell sets (the kernel uses
    the path's actual cells -- see :func:`delay_distribution`).
    """
    rng = np.random.default_rng(seed)
    samples = np.empty(n_samples)
    for i in range(n_samples):
        corner_tech = perturbed_technology(library.tech, spec, rng)
        corner_lib = default_library(corner_tech,
                                     k_ratio=library.inverter.k_ratio)
        corner_path = _rebind_path(path, corner_lib)
        samples[i] = path_delay_ps(corner_path, sizes, corner_lib)
    return samples


def required_guard_band(
    path: BoundedPath,
    sizes: Sequence[float],
    library: Library,
    target_yield: float = 0.99,
    spec: Optional[VariationSpec] = None,
    n_samples: int = 500,
    seed: int = 42,
) -> float:
    """The Tc multiplier needed so ``target_yield`` of corners pass.

    This is the "safety margin" of the paper's introduction, made
    quantitative: a flow that cannot see the delay distribution has to
    multiply its constraint by this factor.
    """
    if not 0.0 < target_yield < 1.0:
        raise ValueError("target_yield must lie in (0, 1)")
    dist = delay_distribution(path, sizes, library, spec=spec,
                              n_samples=n_samples, seed=seed)
    needed = float(np.percentile(dist.samples_ps, 100.0 * target_yield))
    return needed / dist.nominal_ps
