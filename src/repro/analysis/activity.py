"""Switching-activity estimation by seeded random-vector simulation.

"Low power oriented" sizing treats ``sum W`` as the power proxy because
switched capacitance scales with gate width at constant activity.  This
module supplies the activity side: Monte-Carlo logic simulation counting
output toggles per net, so the power model can weight each net's
capacitance by how often it actually switches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.netlist.circuit import Circuit


@dataclass(frozen=True)
class ActivityReport:
    """Per-net switching activity.

    Attributes
    ----------
    toggle_rate:
        Net name -> expected toggles per input vector pair (0..1).
    vectors:
        Number of vector pairs simulated.
    """

    toggle_rate: Dict[str, float]
    vectors: int

    def rate(self, net: str) -> float:
        """Toggle rate of one net (0 for never-switching nets)."""
        return self.toggle_rate.get(net, 0.0)

    @property
    def mean_rate(self) -> float:
        """Average toggle rate over every net of the circuit."""
        if not self.toggle_rate:
            return 0.0
        return float(np.mean(list(self.toggle_rate.values())))


def estimate_activity(
    circuit: Circuit,
    n_vectors: int = 256,
    seed: int = 7,
    input_probability: float = 0.5,
) -> ActivityReport:
    """Estimate per-net toggle rates with random input vectors.

    Vectors are applied in sequence; a net's toggle rate is the fraction
    of consecutive vector pairs across which its value changed (zero-delay
    model -- glitching is not counted, matching the paper's power proxy).
    """
    if n_vectors < 2:
        raise ValueError("n_vectors must be >= 2")
    if not 0.0 < input_probability < 1.0:
        raise ValueError("input_probability must be in (0, 1)")
    rng = np.random.default_rng(seed)
    toggles: Dict[str, int] = {name: 0 for name in circuit.gates}
    for net in circuit.inputs:
        toggles[net] = 0

    previous: Optional[Dict[str, bool]] = None
    for _ in range(n_vectors):
        vector = {
            net: bool(rng.random() < input_probability) for net in circuit.inputs
        }
        values = circuit.simulate(vector)
        if previous is not None:
            for net, value in values.items():
                if value != previous[net]:
                    toggles[net] += 1
        previous = values

    pairs = n_vectors - 1
    return ActivityReport(
        toggle_rate={net: count / pairs for net, count in toggles.items()},
        vectors=n_vectors,
    )
