"""Area accounting: the paper's ``sum W`` metric at circuit scope."""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.cells.library import Library
from repro.netlist.circuit import Circuit
from repro.timing.sta import gate_sizes


def circuit_area_um(
    circuit: Circuit,
    library: Library,
    sizes: Optional[Mapping[str, float]] = None,
) -> float:
    """Total transistor width (um) of a sized circuit."""
    if sizes is None:
        sizes = gate_sizes(circuit, library)
    total = 0.0
    for gate in circuit.gates.values():
        cell = library.cell(gate.kind)
        total += cell.total_width_um(sizes[gate.name], library.tech)
    return total


def area_by_kind_um(
    circuit: Circuit,
    library: Library,
    sizes: Optional[Mapping[str, float]] = None,
) -> Dict[str, float]:
    """``sum W`` broken down by gate kind (reporting helper)."""
    if sizes is None:
        sizes = gate_sizes(circuit, library)
    breakdown: Dict[str, float] = {}
    for gate in circuit.gates.values():
        cell = library.cell(gate.kind)
        width = cell.total_width_um(sizes[gate.name], library.tech)
        breakdown[gate.kind.value] = breakdown.get(gate.kind.value, 0.0) + width
    return breakdown


def total_input_capacitance_ff(
    circuit: Circuit,
    library: Library,
    sizes: Optional[Mapping[str, float]] = None,
) -> float:
    """Total gate input capacitance (fF) -- the switched-cap substrate."""
    if sizes is None:
        sizes = gate_sizes(circuit, library)
    total = 0.0
    for gate in circuit.gates.values():
        cell = library.cell(gate.kind)
        total += cell.n_inputs * sizes[gate.name]
    return total
