"""Analysis substrate: area, switching activity and power estimation."""

from repro.analysis.activity import ActivityReport, estimate_activity
from repro.analysis.area import (
    area_by_kind_um,
    circuit_area_um,
    total_input_capacitance_ff,
)
from repro.analysis.pareto import dominates, pareto_indices
from repro.analysis.power import PowerReport, estimate_power
from repro.analysis.variation import (
    DelayDistribution,
    VariationSpec,
    delay_distribution,
    required_guard_band,
)

__all__ = [
    "circuit_area_um",
    "area_by_kind_um",
    "total_input_capacitance_ff",
    "ActivityReport",
    "estimate_activity",
    "PowerReport",
    "estimate_power",
    "dominates",
    "pareto_indices",
    "VariationSpec",
    "DelayDistribution",
    "delay_distribution",
    "required_guard_band",
]
