"""Deterministic fault injection: seeded plans, named sites, real hooks.

Chaos behaviour must be *repeatable* to be testable, so faults are not
random monkey-patches: production code carries a handful of named
**injection sites** (one cheap module-global check each, inert unless a
plan is installed), and a :class:`FaultPlan` declares exactly which
sites fire on which hit.  The same plan against the same workload fires
the same faults in the same places, every run.

Sites wired into the stack:

========================  ====================================================
:data:`SITE_WORKER_CRASH`  process-pool worker calls ``os._exit`` mid-job
                           (:func:`repro.api.session._optimize_job_worker`,
                           the sweep chunk worker) -- the parent observes
                           ``BrokenProcessPool``
:data:`SITE_POOL_BROKEN`   :class:`InlinePool` (the in-process pool double)
                           raises ``BrokenProcessPool`` from ``submit``
:data:`SITE_EXEC_SLOW`     the serve executor sleeps ``delay_s`` before
                           dispatch (deadline/timeout tests)
:data:`SITE_STREAM_DROP`   :class:`~repro.serve.client.ServeClient` tears its
                           socket down mid event stream
:data:`SITE_TORN_WRITE`    :class:`~repro.serve.store.ResultStore.put` files a
                           truncated record (quarantine tests)
========================  ====================================================

Plans install three ways: :func:`install` / :func:`uninstall` (or the
:func:`installed` context manager) for in-process tests, and the
``POPS_FAULT_PLAN`` environment variable naming a saved plan JSON for
daemons and pool workers in other processes (the CI chaos smoke).  A
plan loaded from a file coordinates *cross-process* firing budgets
through ``O_EXCL`` marker files next to the plan, so "crash one worker,
once" stays one crash even though every worker process loads its own
copy.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence

#: Environment variable naming a saved plan file (daemon / worker hook).
ENV_PLAN = "POPS_FAULT_PLAN"

#: Exit status an injected worker crash dies with (distinguishable from
#: a real interpreter fault in logs).
CRASH_EXIT_CODE = 73

# -- the named injection sites ----------------------------------------

SITE_WORKER_CRASH = "pool.worker_crash"
SITE_POOL_BROKEN = "pool.broken"
SITE_EXEC_SLOW = "executor.slow"
SITE_STREAM_DROP = "client.stream_drop"
SITE_TORN_WRITE = "store.torn_write"

#: Every site production code checks (validation surface).
SITES = (
    SITE_WORKER_CRASH,
    SITE_POOL_BROKEN,
    SITE_EXEC_SLOW,
    SITE_STREAM_DROP,
    SITE_TORN_WRITE,
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault: fire at a site, a bounded number of times.

    Attributes
    ----------
    site:
        The injection point (one of :data:`SITES`).
    times:
        How many hits fire (the budget); further hits pass through.
    after:
        Hits to let through untouched before the first firing -- "drop
        the stream after 2 events" is ``after=2, times=1``.
    delay_s:
        Sleep length for :data:`SITE_EXEC_SLOW` firings.
    """

    site: str
    times: int = 1
    after: int = 0
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(f"site must be one of {SITES}, got {self.site!r}")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")


class FaultPlan:
    """A seeded, deterministic schedule of injected faults.

    Hit counting is per site and per process; whether hit ``n`` fires is
    a pure function of the plan (``after <= n < after + times`` for some
    spec).  With a ``state_dir`` (set automatically by :meth:`load`),
    each firing additionally claims an ``O_EXCL`` marker file, making
    the ``times`` budget global across processes -- exactly one worker
    crashes no matter how many workers load the plan.

    ``seed`` is part of the plan identity (it rides through
    :meth:`to_dict`) and seeds any future probabilistic faults; the
    sites above fire purely by hit count.
    """

    def __init__(
        self,
        faults: Sequence[FaultSpec],
        seed: int = 0,
        state_dir: Optional[str] = None,
    ) -> None:
        self.faults: List[FaultSpec] = list(faults)
        self.seed = int(seed)
        self.state_dir = state_dir
        self._lock = threading.Lock()
        self._hits: Dict[str, int] = {}
        self._fired: Dict[str, int] = {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan({self.faults!r}, seed={self.seed})"

    # -- firing --------------------------------------------------------

    def fire(self, site: str) -> Optional[FaultSpec]:
        """Count one hit at ``site``; return the spec if it fires."""
        with self._lock:
            n = self._hits.get(site, 0)
            self._hits[site] = n + 1
            for spec in self.faults:
                if spec.site != site:
                    continue
                if n < spec.after or n >= spec.after + spec.times:
                    continue
                if self.state_dir is not None and not self._claim(spec):
                    return None
                self._fired[site] = self._fired.get(site, 0) + 1
                return spec
        return None

    def _claim(self, spec: FaultSpec) -> bool:
        """Take one unit of a spec's cross-process budget (marker file)."""
        tag = spec.site.replace(".", "-")
        for i in range(spec.times):
            marker = os.path.join(
                self.state_dir, f".fault-{tag}-{spec.after}-{i}"
            )
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False

    def fired(self) -> Dict[str, int]:
        """``site -> firings`` so far, in this process (test assertions)."""
        with self._lock:
            return dict(self._fired)

    def hits(self) -> Dict[str, int]:
        """``site -> hits`` (fired or not) so far, in this process."""
        with self._lock:
            return dict(self._hits)

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native form (``save``/``load`` round-trip)."""
        return {
            "seed": self.seed,
            "faults": [asdict(spec) for spec in self.faults],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        return cls(
            [FaultSpec(**spec) for spec in data.get("faults", [])],
            seed=int(data.get("seed", 0)),
        )

    def save(self, path: str) -> str:
        """Write the plan JSON (the ``POPS_FAULT_PLAN`` target)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        """Read a saved plan; its directory becomes the marker state dir."""
        with open(path, encoding="utf-8") as handle:
            plan = cls.from_dict(json.load(handle))
        plan.state_dir = os.path.dirname(os.path.abspath(path))
        return plan


# -- the process-global hook ------------------------------------------

_ACTIVE: Optional[FaultPlan] = None
_ENV_CHECKED = False


def install(plan: FaultPlan) -> None:
    """Make ``plan`` the process's active plan (tests, embedding)."""
    global _ACTIVE
    _ACTIVE = plan


def uninstall() -> None:
    """Deactivate fault injection for this process."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def installed(plan: FaultPlan) -> Iterator[FaultPlan]:
    """``with installed(plan):`` -- scoped install for tests."""
    install(plan)
    try:
        yield plan
    finally:
        uninstall()


def active() -> Optional[FaultPlan]:
    """The process's active plan, loading ``POPS_FAULT_PLAN`` once."""
    global _ACTIVE, _ENV_CHECKED
    if _ACTIVE is None and not _ENV_CHECKED:
        _ENV_CHECKED = True
        path = os.environ.get(ENV_PLAN)
        if path:
            _ACTIVE = FaultPlan.load(path)
    return _ACTIVE


def fire(site: str) -> Optional[FaultSpec]:
    """Hit ``site`` on the active plan; ``None`` when nothing fires.

    This is the check production code carries: with no plan installed
    (the overwhelmingly common case) it costs one global read and one
    ``None`` comparison.
    """
    plan = _ACTIVE
    if plan is None:
        if _ENV_CHECKED:
            return None
        plan = active()
        if plan is None:
            return None
    return plan.fire(site)


def maybe_crash(site: str = SITE_WORKER_CRASH) -> None:
    """Die with :data:`CRASH_EXIT_CODE` if the plan says so (workers)."""
    if fire(site) is not None:
        os._exit(CRASH_EXIT_CODE)


def maybe_sleep(site: str = SITE_EXEC_SLOW) -> None:
    """Sleep ``delay_s`` if the plan fires (slow-execution injection)."""
    spec = fire(site)
    if spec is not None and spec.delay_s > 0:
        time.sleep(spec.delay_s)


# -- a deterministic process-pool double ------------------------------


class InlinePool:
    """A ``ProcessPoolExecutor`` stand-in that runs submissions inline.

    Chaos tests need ``BrokenProcessPool`` behaviour that does not
    depend on working subprocess support (sandboxes deny it), so the
    serve executor accepts a ``pool_factory`` and tests hand it this:
    ``submit`` runs the callable synchronously -- byte-identical results
    by construction -- except when the active plan fires
    :data:`SITE_POOL_BROKEN`, in which case the returned future carries
    ``BrokenProcessPool`` exactly as a crashed worker would.
    """

    def __init__(self, max_workers: int = 1) -> None:
        self.max_workers = max_workers
        self.submitted = 0
        self.broken = 0

    def submit(self, fn, *args):  # noqa: ANN001 - executor protocol
        """Run ``fn(*args)`` now; return a settled future."""
        from concurrent.futures import Future
        from concurrent.futures.process import BrokenProcessPool

        self.submitted += 1
        future: "Future" = Future()
        if fire(SITE_POOL_BROKEN) is not None:
            self.broken += 1
            future.set_exception(
                BrokenProcessPool("injected worker crash (fault plan)")
            )
            return future
        try:
            future.set_result(fn(*args))
        except BaseException as exc:  # marshalled like a real pool
            future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = True, **_: Any) -> None:
        """Nothing to tear down (protocol compatibility)."""
