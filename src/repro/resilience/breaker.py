"""A circuit breaker over an unreliable execution path.

The serve executor wraps its optional process pool in a
:class:`CircuitBreaker`: after ``failures`` *consecutive* pool failures
the breaker trips **open** and jobs run on the always-available
in-thread path instead of burning retries against a broken pool.  After
``cooldown_s`` the breaker lets exactly one probe job through
(**half-open**); a probe success closes the breaker and the pool path
resumes, a probe failure re-opens it for another cooldown.

The clock is injectable (``clock=time.monotonic`` by default) so the
trip/half-open/recovery cycle is unit-testable without sleeping, and
every transition is counted for the metrics surface.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict

#: Breaker states (the ``state`` field of :meth:`CircuitBreaker.as_dict`).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Trip after K consecutive failures; probe recovery after a cooldown.

    Parameters
    ----------
    failures:
        Consecutive failures that trip the breaker open.
    cooldown_s:
        Seconds the breaker stays open before allowing a half-open probe.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        failures: int = 3,
        cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failures < 1:
            raise ValueError(f"failures must be >= 1, got {failures}")
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.failures = failures
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive = 0
        self._opened_at = 0.0
        #: Lifetime transition counters (metrics surface).
        self.trips = 0
        self.probes = 0
        self.recoveries = 0
        self.short_circuits = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half_open"`` (without probing)."""
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """Whether the protected path may be tried right now.

        Closed: always.  Open: ``False`` until ``cooldown_s`` elapsed,
        then the breaker moves to half-open and admits exactly one
        probe.  Half-open: ``False`` while the probe is outstanding.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at >= self.cooldown_s:
                    self._state = HALF_OPEN
                    self.probes += 1
                    return True
                self.short_circuits += 1
                return False
            # Half-open: one probe is already in flight.
            self.short_circuits += 1
            return False

    def record_success(self) -> None:
        """The protected path worked; close (a probe success recovers)."""
        with self._lock:
            if self._state == HALF_OPEN:
                self.recoveries += 1
            self._state = CLOSED
            self._consecutive = 0

    def record_failure(self) -> None:
        """The protected path failed; trip when the run reaches K."""
        with self._lock:
            if self._state == HALF_OPEN:
                # A failed probe re-opens immediately.
                self._state = OPEN
                self._opened_at = self._clock()
                self.trips += 1
                return
            self._consecutive += 1
            if self._consecutive >= self.failures and self._state == CLOSED:
                self._state = OPEN
                self._opened_at = self._clock()
                self.trips += 1

    def as_dict(self) -> Dict[str, Any]:
        """JSON-native snapshot for the metrics endpoint."""
        with self._lock:
            return {
                "state": self._state,
                "failures": self.failures,
                "cooldown_s": self.cooldown_s,
                "consecutive_failures": self._consecutive,
                "trips": self.trips,
                "probes": self.probes,
                "recoveries": self.recoveries,
                "short_circuits": self.short_circuits,
            }
