"""``repro.resilience``: fault tolerance for the serving stack.

Stdlib-only building blocks threaded through serve, the Session batch
runner and the explore sweep runner:

* :class:`~repro.resilience.policy.RetryPolicy` -- bounded attempts,
  exponential backoff, deterministic seeded jitter; shared by pool
  supervision, client reconnects and ``wait_ready`` polling;
* :class:`~repro.resilience.policy.JobTimeoutError` -- the structured
  deadline failure (``Job.timeout_s`` / submit-level ``timeout_s``);
* :class:`~repro.resilience.breaker.CircuitBreaker` -- trips the serve
  executor to in-thread execution after K consecutive process-pool
  failures and half-open-probes recovery;
* :mod:`~repro.resilience.faults` -- the deterministic fault-injection
  harness (:class:`~repro.resilience.faults.FaultPlan`, named sites,
  ``POPS_FAULT_PLAN`` env hook) every chaos test drives.

See the "Resilience" section of ``docs/ARCHITECTURE.md`` for the
failure taxonomy and the retry/breaker defaults.
"""

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import FaultPlan, FaultSpec, InlinePool
from repro.resilience.policy import JobTimeoutError, RetryPolicy

__all__ = [
    "CircuitBreaker",
    "FaultPlan",
    "FaultSpec",
    "InlinePool",
    "JobTimeoutError",
    "RetryPolicy",
]
