"""Bounded retries with deterministic backoff, and per-job deadlines.

:class:`RetryPolicy` is the one retry shape every layer shares -- the
serve executor's process-pool supervision, the client's
reconnect-with-backoff and ``wait_ready`` polling, and the batch/sweep
runners' pool retries.  Delays grow exponentially from ``base_s`` up to
``max_delay_s`` with *seeded* jitter: the jitter stream comes from
``random.Random(seed)``, so two runs of the same policy produce the
same delay sequence -- chaos tests assert on exact retry behaviour
instead of sleeping and hoping.

:class:`JobTimeoutError` is the structured deadline failure: the serve
executor raises it when a job outlives its ``timeout_s``, and the
server turns it into a ``timeout`` error event (the worker slot is
freed; the abandoned computation cannot be interrupted mid-flight and
is left to finish on a detached thread).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from random import Random
from typing import Callable, Iterator, Optional, Tuple, Type


class JobTimeoutError(RuntimeError):
    """A job exceeded its deadline (``Job.timeout_s`` or submit-level).

    ``timeout_s`` carries the deadline that expired so error events and
    logs can report it without re-parsing the message.
    """

    def __init__(self, message: str, timeout_s: float) -> None:
        super().__init__(message)
        self.timeout_s = float(timeout_s)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with seeded exponential backoff.

    Attributes
    ----------
    attempts:
        Total tries (first attempt included); ``1`` means no retries.
    base_s:
        Delay before the first retry, in seconds.
    multiplier:
        Exponential growth factor between consecutive retries.
    max_delay_s:
        Hard cap on any single delay.
    jitter:
        Fraction of each delay drawn uniformly from
        ``[0, jitter * delay]`` and added to it -- decorrelates herds of
        clients without breaking determinism (the draw is seeded).
    seed:
        Seed for the jitter stream; equal policies yield equal delays.
    """

    attempts: int = 3
    base_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_s < 0:
            raise ValueError(f"base_s must be >= 0, got {self.base_s}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_delay_s < 0:
            raise ValueError(f"max_delay_s must be >= 0, got {self.max_delay_s}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delays(self) -> Iterator[float]:
        """The deterministic delay (seconds) before each retry.

        Yields ``attempts - 1`` values: the wait before retry 1, retry 2,
        ...  The jitter stream restarts from :attr:`seed` on every call,
        so the sequence is a pure function of the policy.
        """
        rng = Random(self.seed)
        delay = self.base_s
        for _ in range(self.attempts - 1):
            capped = min(delay, self.max_delay_s)
            yield capped + (rng.random() * self.jitter * capped)
            delay *= self.multiplier

    def run(
        self,
        fn: Callable[[], "object"],
        retry_on: Tuple[Type[BaseException], ...] = (Exception,),
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> "object":
        """Call ``fn`` under this policy; return its first success.

        ``retry_on`` names the exception types worth retrying -- anything
        else propagates immediately.  ``on_retry(attempt, exc)`` fires
        before each backoff sleep (metrics/logging hook); ``sleep`` is
        injectable so tests never actually wait.  The final failure
        re-raises the last exception.
        """
        delays = self.delays()
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn()
            except retry_on as exc:
                try:
                    delay = next(delays)
                except StopIteration:
                    raise exc from None
                if on_retry is not None:
                    on_retry(attempt, exc)
                if delay > 0:
                    sleep(delay)
