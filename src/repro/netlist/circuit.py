"""Combinational circuit DAG: gates, nets, topological utilities.

The netlist layer is deliberately simple -- named single-output gates wired
by fan-in lists -- because that is exactly the ISCAS'85 ``.bench`` data
model the paper evaluates on.  Sizing state (per-gate input capacitance) is
carried on the instances so the circuit-level optimizer and the STA engine
share one source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.cells.gate_types import GateKind, logic_eval, num_inputs


class NetlistError(ValueError):
    """Structural problem in a circuit (dangling net, cycle, arity...)."""


@dataclass
class GateInstance:
    """One gate in a circuit.

    Attributes
    ----------
    name:
        Net name of the gate output (``.bench`` convention: one net per
        gate, named after it).
    kind:
        Logic primitive.
    fanin:
        Ordered input net names (primary inputs or other gate outputs).
    cin_ff:
        Per-input capacitance -- the sizing state.  ``None`` means
        "not yet sized"; the timing layer substitutes the library minimum.
    """

    name: str
    kind: GateKind
    fanin: Tuple[str, ...]
    cin_ff: Optional[float] = None

    def __post_init__(self) -> None:
        expected = num_inputs(self.kind)
        if len(self.fanin) != expected:
            raise NetlistError(
                f"gate {self.name!r} of kind {self.kind} expects {expected} "
                f"inputs, got {len(self.fanin)}"
            )


class Circuit:
    """A combinational netlist: primary I/O plus a DAG of gates."""

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.gates: Dict[str, GateInstance] = {}

    # -- construction -------------------------------------------------

    def add_input(self, name: str) -> str:
        """Declare a primary input net."""
        if name in self.gates:
            raise NetlistError(f"net {name!r} already defined as a gate")
        if name not in self.inputs:
            self.inputs.append(name)
        return name

    def add_output(self, name: str) -> str:
        """Mark a net as a primary output (must exist by validation time)."""
        if name not in self.outputs:
            self.outputs.append(name)
        return name

    def add_gate(
        self,
        name: str,
        kind: GateKind,
        fanin: Sequence[str],
        cin_ff: Optional[float] = None,
    ) -> GateInstance:
        """Add a gate whose output net is ``name``."""
        if name in self.gates:
            raise NetlistError(f"duplicate gate {name!r}")
        if name in self.inputs:
            raise NetlistError(f"net {name!r} already declared as primary input")
        gate = GateInstance(name=name, kind=kind, fanin=tuple(fanin), cin_ff=cin_ff)
        self.gates[name] = gate
        return gate

    # -- structure ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.gates)

    def __contains__(self, net: str) -> bool:
        return net in self.gates or net in self.inputs

    def gate(self, name: str) -> GateInstance:
        """Look up a gate by output net name."""
        try:
            return self.gates[name]
        except KeyError:
            raise NetlistError(f"no gate named {name!r}") from None

    def fanout_map(self) -> Dict[str, List[str]]:
        """Net name -> list of gate names it feeds."""
        fanout: Dict[str, List[str]] = {net: [] for net in self.inputs}
        for name in self.gates:
            fanout.setdefault(name, [])
        for gate in self.gates.values():
            for source in gate.fanin:
                fanout.setdefault(source, []).append(gate.name)
        return fanout

    def topological_order(self) -> List[str]:
        """Gate names in topological order; raises on cycles."""
        indegree: Dict[str, int] = {}
        for gate in self.gates.values():
            indegree[gate.name] = sum(1 for f in gate.fanin if f in self.gates)
        ready = [name for name, deg in sorted(indegree.items()) if deg == 0]
        fanout = self.fanout_map()
        order: List[str] = []
        while ready:
            name = ready.pop()
            order.append(name)
            for succ in fanout.get(name, ()):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self.gates):
            raise NetlistError(f"circuit {self.name!r} contains a combinational cycle")
        return order

    def validate(self) -> None:
        """Check structural sanity: no dangling nets, acyclic, outputs exist."""
        known: Set[str] = set(self.inputs) | set(self.gates)
        for gate in self.gates.values():
            for source in gate.fanin:
                if source not in known:
                    raise NetlistError(
                        f"gate {gate.name!r} reads undefined net {source!r}"
                    )
        for out in self.outputs:
            if out not in known:
                raise NetlistError(f"primary output {out!r} is undefined")
        if not self.outputs:
            raise NetlistError("circuit has no primary outputs")
        self.topological_order()

    def depth(self) -> int:
        """Maximum logic depth in gate counts."""
        level: Dict[str, int] = {net: 0 for net in self.inputs}
        for name in self.topological_order():
            gate = self.gates[name]
            level[name] = 1 + max((level[f] for f in gate.fanin), default=0)
        return max((level[name] for name in self.gates), default=0)

    def stats(self) -> Dict[str, int]:
        """Gate-count statistics by kind plus totals."""
        counts: Dict[str, int] = {}
        for gate in self.gates.values():
            counts[gate.kind.value] = counts.get(gate.kind.value, 0) + 1
        counts["total_gates"] = len(self.gates)
        counts["inputs"] = len(self.inputs)
        counts["outputs"] = len(self.outputs)
        counts["depth"] = self.depth() if self.gates else 0
        return counts

    # -- fingerprints -------------------------------------------------

    def state_key(self) -> Tuple:
        """Hashable fingerprint of structure *and* sizing.

        Any mutation that can change timing -- topology, gate kinds,
        fan-in order, per-gate sizes -- changes the key, so analyses
        memoized under it can never go stale (the session caches and the
        sweep warm-start memos both rely on this).
        """
        return (
            self.name,
            tuple(self.inputs),
            tuple(self.outputs),
            tuple(
                (gate.name, gate.kind.value, gate.fanin, gate.cin_ff)
                for gate in self.gates.values()
            ),
        )

    def structure_key(self) -> Tuple:
        """The sizing-free prefix of :meth:`state_key`.

        Two circuits with the same structure key differ at most in
        per-gate ``cin_ff`` values -- exactly the precondition for
        re-timing one from the other with an incremental cone update.
        """
        return (
            self.name,
            tuple(self.inputs),
            tuple(self.outputs),
            tuple(
                (gate.name, gate.kind.value, gate.fanin)
                for gate in self.gates.values()
            ),
        )

    # -- behaviour ----------------------------------------------------

    def simulate(self, input_values: Mapping[str, bool]) -> Dict[str, bool]:
        """Evaluate every net for one input vector."""
        values: Dict[str, bool] = {}
        for net in self.inputs:
            if net not in input_values:
                raise NetlistError(f"missing value for primary input {net!r}")
            values[net] = bool(input_values[net])
        for name in self.topological_order():
            gate = self.gates[name]
            values[name] = logic_eval(gate.kind, [values[f] for f in gate.fanin])
        return values

    def output_values(self, input_values: Mapping[str, bool]) -> Dict[str, bool]:
        """Primary-output slice of :meth:`simulate`."""
        values = self.simulate(input_values)
        return {net: values[net] for net in self.outputs}

    # -- copies -------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "Circuit":
        """Deep copy (gate instances are re-created)."""
        dup = Circuit(name or self.name)
        dup.inputs = list(self.inputs)
        dup.outputs = list(self.outputs)
        for gate in self.gates.values():
            dup.gates[gate.name] = GateInstance(
                name=gate.name, kind=gate.kind, fanin=gate.fanin, cin_ff=gate.cin_ff
            )
        return dup


def equivalent(
    first: Circuit,
    second: Circuit,
    vectors: Iterable[Mapping[str, bool]],
) -> bool:
    """Whether two circuits agree on every supplied input vector.

    The circuits must share primary input/output names.  Used by the
    restructuring engine to certify De Morgan rewrites.
    """
    if set(first.inputs) != set(second.inputs):
        raise NetlistError("circuits have different primary inputs")
    if set(first.outputs) != set(second.outputs):
        raise NetlistError("circuits have different primary outputs")
    for vector in vectors:
        if first.output_values(vector) != second.output_values(vector):
            return False
    return True


def exhaustive_vectors(inputs: Sequence[str], limit: int = 16):
    """All 2^n vectors for small input counts (n <= limit)."""
    n = len(inputs)
    if n > limit:
        raise ValueError(f"too many inputs for exhaustive enumeration ({n})")
    for code in range(1 << n):
        yield {net: bool((code >> i) & 1) for i, net in enumerate(inputs)}
