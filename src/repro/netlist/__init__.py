"""Netlist substrate: circuit DAGs, ``.bench`` I/O, structural builders."""

from repro.netlist.bench_parser import (
    BenchParseError,
    load_bench,
    parse_bench,
    to_bench,
)
from repro.netlist.builders import (
    adder_inputs,
    adder_value,
    and_or_tree,
    gate_chain,
    inverter_chain,
    parity_tree,
    ripple_carry_adder,
)
from repro.netlist.wireload import (
    WLM_LARGE,
    WLM_MEDIUM,
    WLM_SMALL,
    WireLoadModel,
)
from repro.netlist.circuit import (
    Circuit,
    GateInstance,
    NetlistError,
    equivalent,
    exhaustive_vectors,
)

__all__ = [
    "Circuit",
    "GateInstance",
    "NetlistError",
    "equivalent",
    "exhaustive_vectors",
    "parse_bench",
    "load_bench",
    "to_bench",
    "BenchParseError",
    "inverter_chain",
    "gate_chain",
    "ripple_carry_adder",
    "full_adder_nand",
    "adder_inputs",
    "adder_value",
    "parity_tree",
    "and_or_tree",
    "WireLoadModel",
    "WLM_SMALL",
    "WLM_MEDIUM",
    "WLM_LARGE",
]

from repro.netlist.builders import full_adder_nand  # noqa: E402  (re-export)
