"""Fan-out based wire load models.

The paper's introduction singles out "the uncertainty in routing
capacitance estimation" as what forces iterative flows into oversized
designs.  Pre-layout, the standard estimate is a *wire load model*: a
lumped capacitance per net as a function of its fan-out count.  The STA
engine accepts one so every experiment can be re-run with routing
parasitics included, and the variation module can perturb them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WireLoadModel:
    """Lumped wire capacitance per net: ``c_base + c_per_fanout * n``.

    Attributes
    ----------
    name:
        Identifier (e.g. the die-area class it was characterised for).
    c_base_ff:
        Minimum wiring (via + short stub) capacitance of any routed net.
    c_per_fanout_ff:
        Incremental capacitance per fan-out pin (longer wire, more taps).
    """

    name: str
    c_base_ff: float
    c_per_fanout_ff: float

    def __post_init__(self) -> None:
        if self.c_base_ff < 0 or self.c_per_fanout_ff < 0:
            raise ValueError("wire load coefficients must be non-negative")

    def wire_cap_ff(self, n_fanout: int) -> float:
        """Estimated routing capacitance of a net with ``n_fanout`` sinks."""
        if n_fanout < 0:
            raise ValueError("n_fanout must be non-negative")
        if n_fanout == 0:
            return 0.0
        return self.c_base_ff + self.c_per_fanout_ff * n_fanout

    def scaled(self, factor: float) -> "WireLoadModel":
        """A pessimism/optimism corner of this model."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return WireLoadModel(
            name=f"{self.name}*{factor:g}",
            c_base_ff=self.c_base_ff * factor,
            c_per_fanout_ff=self.c_per_fanout_ff * factor,
        )


#: Typical pre-layout classes for a 0.25 um process (block-level scale).
WLM_SMALL = WireLoadModel("small", c_base_ff=1.5, c_per_fanout_ff=1.0)
WLM_MEDIUM = WireLoadModel("medium", c_base_ff=3.0, c_per_fanout_ff=2.0)
WLM_LARGE = WireLoadModel("large", c_base_ff=6.0, c_per_fanout_ff=4.0)
