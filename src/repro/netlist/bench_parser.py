"""ISCAS'85 ``.bench`` format reader / writer.

The paper's benchmarks (c432 ... c7552) are distributed in the ``.bench``
netlist format::

    # comment
    INPUT(G1)
    OUTPUT(G17)
    G10 = NAND(G1, G3)
    G11 = NOT(G10)

We support the full ISCAS'85 vocabulary (AND/OR/NAND/NOR/XOR/XNOR up to
fan-in 4, NOT, BUFF).  Wider gates are decomposed into balanced trees of
the widest available primitive, preserving logic -- the original ISCAS
netlists contain e.g. 8-input NANDs which no realistic 0.25 um library
offers as a single stage.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.cells.gate_types import (
    GateKind,
    and_kind,
    nand_kind,
    nor_kind,
    or_kind,
)
from repro.netlist.circuit import Circuit, NetlistError

_INPUT_RE = re.compile(r"^INPUT\s*\(\s*([^)]+?)\s*\)$", re.IGNORECASE)
_OUTPUT_RE = re.compile(r"^OUTPUT\s*\(\s*([^)]+?)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(
    r"^(?P<out>\S+)\s*=\s*(?P<fn>[A-Za-z]+)\s*\(\s*(?P<args>[^)]*)\s*\)$"
)

_MAX_FANIN = 4


class BenchParseError(NetlistError):
    """Malformed ``.bench`` text."""


def _tree_reduce(
    circuit: Circuit,
    base: str,
    nets: List[str],
    make_kind,
    invert_last: bool,
) -> str:
    """Reduce ``nets`` with a balanced tree of AND/OR primitives.

    ``make_kind`` maps a width (2..4) to the non-inverting kind; when
    ``invert_last`` is set the final stage uses the inverting counterpart
    (NAND/NOR) so the overall function is the wide NAND/NOR.
    """
    counter = 0
    current = nets
    while len(current) > _MAX_FANIN:
        grouped: List[str] = []
        for start in range(0, len(current), _MAX_FANIN):
            chunk = current[start : start + _MAX_FANIN]
            if len(chunk) == 1:
                grouped.append(chunk[0])
                continue
            net = f"{base}__t{counter}"
            counter += 1
            circuit.add_gate(net, make_kind(len(chunk)), chunk)
            grouped.append(net)
        current = grouped
    final_kind = make_kind(len(current))
    if invert_last:
        if make_kind is and_kind:
            final_kind = nand_kind(len(current))
        else:
            final_kind = nor_kind(len(current))
    circuit.add_gate(base, final_kind, current)
    return base


def _add_parsed_gate(circuit: Circuit, out: str, fn: str, args: List[str]) -> None:
    fn = fn.upper()
    n = len(args)
    if fn == "NOT":
        if n != 1:
            raise BenchParseError(f"NOT expects 1 input at {out!r}")
        circuit.add_gate(out, GateKind.INV, args)
        return
    if fn in ("BUFF", "BUF"):
        if n != 1:
            raise BenchParseError(f"BUFF expects 1 input at {out!r}")
        circuit.add_gate(out, GateKind.BUF, args)
        return
    if fn in ("XOR", "XNOR"):
        if n != 2:
            raise BenchParseError(f"{fn} beyond 2 inputs is not supported at {out!r}")
        kind = GateKind.XOR2 if fn == "XOR" else GateKind.XNOR2
        circuit.add_gate(out, kind, args)
        return
    if n < 2:
        raise BenchParseError(f"{fn} expects >= 2 inputs at {out!r}")
    if fn == "AND":
        if n <= _MAX_FANIN:
            circuit.add_gate(out, and_kind(n), args)
        else:
            _tree_reduce(circuit, out, args, and_kind, invert_last=False)
        return
    if fn == "OR":
        if n <= _MAX_FANIN:
            circuit.add_gate(out, or_kind(n), args)
        else:
            _tree_reduce(circuit, out, args, or_kind, invert_last=False)
        return
    if fn == "NAND":
        if n <= _MAX_FANIN:
            circuit.add_gate(out, nand_kind(n), args)
        else:
            _tree_reduce(circuit, out, args, and_kind, invert_last=True)
        return
    if fn == "NOR":
        if n <= _MAX_FANIN:
            circuit.add_gate(out, nor_kind(n), args)
        else:
            _tree_reduce(circuit, out, args, or_kind, invert_last=True)
        return
    raise BenchParseError(f"unknown gate function {fn!r} at {out!r}")


def parse_bench(text: str, name: str = "bench") -> Circuit:
    """Parse ``.bench`` text into a validated :class:`Circuit`."""
    circuit = Circuit(name)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        match = _INPUT_RE.match(line)
        if match:
            circuit.add_input(match.group(1))
            continue
        match = _OUTPUT_RE.match(line)
        if match:
            circuit.add_output(match.group(1))
            continue
        match = _GATE_RE.match(line)
        if match:
            args = [a.strip() for a in match.group("args").split(",") if a.strip()]
            try:
                _add_parsed_gate(circuit, match.group("out"), match.group("fn"), args)
            except NetlistError as exc:
                raise BenchParseError(f"line {lineno}: {exc}") from exc
            continue
        raise BenchParseError(f"line {lineno}: cannot parse {raw!r}")
    circuit.validate()
    return circuit


def load_bench(path: str) -> Circuit:
    """Read a ``.bench`` file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    stem = path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
    return parse_bench(text, name=stem)


_KIND_TO_BENCH: Dict[GateKind, str] = {
    GateKind.INV: "NOT",
    GateKind.BUF: "BUFF",
    GateKind.NAND2: "NAND",
    GateKind.NAND3: "NAND",
    GateKind.NAND4: "NAND",
    GateKind.NOR2: "NOR",
    GateKind.NOR3: "NOR",
    GateKind.NOR4: "NOR",
    GateKind.AND2: "AND",
    GateKind.AND3: "AND",
    GateKind.AND4: "AND",
    GateKind.OR2: "OR",
    GateKind.OR3: "OR",
    GateKind.OR4: "OR",
    GateKind.XOR2: "XOR",
    GateKind.XNOR2: "XNOR",
}


def to_bench(circuit: Circuit) -> str:
    """Serialise a circuit back to ``.bench`` text (round-trips with parse)."""
    lines: List[str] = [f"# {circuit.name}"]
    for net in circuit.inputs:
        lines.append(f"INPUT({net})")
    for net in circuit.outputs:
        lines.append(f"OUTPUT({net})")
    for name in circuit.topological_order():
        gate = circuit.gates[name]
        fn = _KIND_TO_BENCH.get(gate.kind)
        if fn is None:
            raise NetlistError(
                f"gate kind {gate.kind} has no .bench spelling "
                f"(decompose complex gates before writing)"
            )
        lines.append(f"{name} = {fn}({', '.join(gate.fanin)})")
    return "\n".join(lines) + "\n"
