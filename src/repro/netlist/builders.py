"""Structural circuit builders: chains, trees, full adders, multipliers.

These produce the deterministic workloads of the experiment suite -- most
importantly the NAND-level 16-bit ripple-carry adder ("Adder16" in the
paper's tables, with its ~99-gate carry-to-sum critical path).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.cells.gate_types import GateKind
from repro.netlist.circuit import Circuit


def inverter_chain(length: int, name: str = "invchain") -> Circuit:
    """A chain of ``length`` inverters -- the Mead/Sutherland toy path."""
    if length < 1:
        raise ValueError("length must be >= 1")
    circuit = Circuit(name)
    previous = circuit.add_input("in")
    for i in range(length):
        net = f"n{i}"
        circuit.add_gate(net, GateKind.INV, [previous])
        previous = net
    circuit.add_output(previous)
    circuit.validate()
    return circuit


def gate_chain(kinds: Sequence[GateKind], name: str = "chain") -> Circuit:
    """A chain where stage ``i`` takes the previous net plus side inputs.

    Multi-input gates receive dedicated primary inputs on their non-path
    pins, so the chain is a clean single sensitisable path.
    """
    if not kinds:
        raise ValueError("kinds must be non-empty")
    circuit = Circuit(name)
    previous = circuit.add_input("in")
    from repro.cells.gate_types import num_inputs

    for i, kind in enumerate(kinds):
        n = num_inputs(kind)
        fanin = [previous]
        for pin in range(1, n):
            side = circuit.add_input(f"s{i}_{pin}")
            fanin.append(side)
        net = f"n{i}"
        circuit.add_gate(net, kind, fanin)
        previous = net
    circuit.add_output(previous)
    circuit.validate()
    return circuit


def full_adder_nand(
    circuit: Circuit, a: str, b: str, cin: str, prefix: str
) -> Tuple[str, str]:
    """Classic 9-NAND full adder; returns ``(sum, carry_out)`` nets.

    The 9-NAND decomposition keeps the carry chain 3 NAND stages deep per
    bit, which is what gives the 16-bit ripple adder its ~99-gate critical
    path in the paper's Table 1 accounting (sum network included).
    """
    g = lambda suffix, kind, fanin: circuit.add_gate(
        f"{prefix}_{suffix}", kind, fanin
    ).name
    n1 = g("n1", GateKind.NAND2, [a, b])
    n2 = g("n2", GateKind.NAND2, [a, n1])
    n3 = g("n3", GateKind.NAND2, [b, n1])
    half_sum = g("hs", GateKind.NAND2, [n2, n3])  # a XOR b
    n5 = g("n5", GateKind.NAND2, [half_sum, cin])
    n6 = g("n6", GateKind.NAND2, [half_sum, n5])
    n7 = g("n7", GateKind.NAND2, [cin, n5])
    total = g("sum", GateKind.NAND2, [n6, n7])  # (a XOR b) XOR cin
    carry = g("cout", GateKind.NAND2, [n1, n5])
    return total, carry


def ripple_carry_adder(bits: int = 16, name: Optional[str] = None) -> Circuit:
    """NAND-level ripple-carry adder (the paper's "Adder16" for 16 bits)."""
    if bits < 1:
        raise ValueError("bits must be >= 1")
    circuit = Circuit(name or f"adder{bits}")
    a_bits = [circuit.add_input(f"a{i}") for i in range(bits)]
    b_bits = [circuit.add_input(f"b{i}") for i in range(bits)]
    carry = circuit.add_input("cin")
    for i in range(bits):
        total, carry = full_adder_nand(circuit, a_bits[i], b_bits[i], carry, f"fa{i}")
        circuit.add_output(total)
    circuit.add_output(carry)
    circuit.validate()
    return circuit


def adder_value(outputs, bits: int) -> int:
    """Decode a ripple adder's output dict into an integer (sum + carry)."""
    total = 0
    for i in range(bits):
        if outputs[f"fa{i}_sum"]:
            total |= 1 << i
    if outputs[f"fa{bits - 1}_cout"]:
        total |= 1 << bits
    return total


def adder_inputs(a: int, b: int, bits: int, cin: bool = False) -> dict:
    """Encode two integers into a ripple adder input vector."""
    if a < 0 or b < 0 or a >= (1 << bits) or b >= (1 << bits):
        raise ValueError("operands out of range")
    vector = {"cin": cin}
    for i in range(bits):
        vector[f"a{i}"] = bool((a >> i) & 1)
        vector[f"b{i}"] = bool((b >> i) & 1)
    return vector


def parity_tree(width: int, name: Optional[str] = None) -> Circuit:
    """XOR parity tree -- a deep non-inverting workload for the STA tests."""
    if width < 2:
        raise ValueError("width must be >= 2")
    circuit = Circuit(name or f"parity{width}")
    nets: List[str] = [circuit.add_input(f"x{i}") for i in range(width)]
    counter = 0
    while len(nets) > 1:
        paired: List[str] = []
        for i in range(0, len(nets) - 1, 2):
            net = f"p{counter}"
            counter += 1
            circuit.add_gate(net, GateKind.XOR2, [nets[i], nets[i + 1]])
            paired.append(net)
        if len(nets) % 2:
            paired.append(nets[-1])
        nets = paired
    circuit.add_output(nets[0])
    circuit.validate()
    return circuit


def and_or_tree(width: int, name: Optional[str] = None) -> Circuit:
    """Alternating NAND/NOR reduction tree (classic multiplexer-ish shape)."""
    if width < 2:
        raise ValueError("width must be >= 2")
    circuit = Circuit(name or f"aotree{width}")
    nets: List[str] = [circuit.add_input(f"x{i}") for i in range(width)]
    counter = 0
    level = 0
    while len(nets) > 1:
        kind = GateKind.NAND2 if level % 2 == 0 else GateKind.NOR2
        paired: List[str] = []
        for i in range(0, len(nets) - 1, 2):
            net = f"t{counter}"
            counter += 1
            circuit.add_gate(net, kind, [nets[i], nets[i + 1]])
            paired.append(net)
        if len(nets) % 2:
            paired.append(nets[-1])
        nets = paired
        level += 1
    circuit.add_output(nets[0])
    circuit.validate()
    return circuit
