"""``repro.serve``: the multi-tenant optimization service.

A long-lived asyncio daemon (:class:`~repro.serve.server.PopsServer`)
owns one shared, lock-guarded, bounded-cache
:class:`~repro.api.session.Session` and amortizes its memoized
characterisation, compiled circuits, STA engines and bounds across many
clients:

* requests arrive as NDJSON lines over a local socket
  (:mod:`repro.serve.protocol`), carrying the same frozen ``Job`` /
  ``SweepSpec`` dicts the rest of the repo speaks;
* a priority queue feeds a bounded worker pool
  (:mod:`repro.serve.queue`, :mod:`repro.serve.scheduler`): threads for
  cache-warm STA/MC jobs, the existing process pool (optionally) for
  CPU-heavy optimizations;
* identical in-flight submissions **coalesce** on the job-spec hash --
  N concurrent clients asking for the same spec pay for one execution
  and all receive the same :class:`~repro.api.records.RunRecord`;
* completed records land in a content-addressed on-disk store
  (:mod:`repro.serve.store`), so repeat submissions are served from
  disk across daemon restarts;
* every lifecycle step streams back as a progress event, and shutdown
  drains the queue before the daemon exits;
* failures are supervised (:mod:`repro.resilience`): per-job deadlines,
  process-pool crash recovery under a retry policy and circuit breaker,
  client reconnect-and-resume, and a queued-job ``cancel`` op.

``pops serve`` runs the daemon; ``pops submit`` / ``pops status`` /
``pops shutdown`` are the bundled clients
(:class:`~repro.serve.client.ServeClient` is the programmatic one).
"""

from repro.serve.client import ServeClient, ServeClientError
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    SUBMIT_KINDS,
    ProtocolError,
    job_spec_key,
)
from repro.serve.queue import JobTicket, PriorityJobQueue, ServeStats
from repro.serve.scheduler import JobExecutor
from repro.serve.server import PopsServer, ServeConfig, start_server_thread
from repro.serve.store import ResultStore

__all__ = [
    "PROTOCOL_VERSION",
    "SUBMIT_KINDS",
    "ProtocolError",
    "job_spec_key",
    "JobTicket",
    "PriorityJobQueue",
    "ServeStats",
    "JobExecutor",
    "PopsServer",
    "ServeConfig",
    "start_server_thread",
    "ResultStore",
    "ServeClient",
    "ServeClientError",
]
