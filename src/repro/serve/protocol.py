"""The serve wire protocol: NDJSON requests, events and spec hashing.

One connection carries one request: the client sends a single JSON
object on one line, the server answers with a stream of JSON event
lines and closes.  Everything on the wire is JSON-native -- jobs and
sweep specs travel as their existing ``to_dict`` forms, run records as
their lossless envelopes.

Requests (``op`` discriminates)::

    {"op": "ping"}
    {"op": "status"}
    {"op": "metrics"}
    {"op": "shutdown", "drain": true}
    {"op": "submit", "kind": "optimize", "job": {...Job.to_dict()...},
     "priority": 0, "no_cache": false, "timeout_s": 30.0}
    {"op": "submit", "kind": "sweep", "spec": {...SweepSpec.to_dict()...}}
    {"op": "cancel", "key": "<job spec key>"}

Events (``event`` discriminates)::

    {"event": "pong", "version": 1, ...}
    {"event": "status", "serve": {...}, "session": {...}, "queue": {...}}
    {"event": "metrics", "metrics": {...unified obs snapshot...}}
    {"event": "shutting-down", "queued": N}
    {"event": "queued", "key": ..., "coalesced": false, "cached": false}
    {"event": "started", "key": ...}
    {"event": "progress", "key": ..., "done": i, "total": n, "label": ...}
    {"event": "done", "key": ..., "record": {...}, "cached": false}
    {"event": "error", "error": {"type": ..., "message": ...}}
    {"event": "cancelled", "key": ..., "cancelled": true}

A submit-level ``timeout_s`` is the job's deadline (it overrides the
job's own ``timeout_s`` field) and is deliberately *not* part of the
spec hash -- the same work under a different deadline is still the same
work for coalescing and the result store.  ``cancel`` withdraws a
**queued** job by its spec key: every waiter receives a structured
error event; a job already on a worker cannot be interrupted and the
cancel is refused (``"cancelled": false``).

The **job-spec key** is the deduplication identity everything hangs on:
the SHA-256 of the canonical JSON of ``{"kind": ..., "spec": ...}``.
Identical in-flight submissions coalesce on it, and the content-
addressed result store files completed records under it.  Two jobs hash
equal exactly when their serialized specs are equal -- inline circuits
hash by *content*, so the same netlist submitted by two tenants dedups
even though the ``Job`` objects compare by identity in-process.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Tuple

#: Bumped when the wire format changes incompatibly.
PROTOCOL_VERSION = 1

#: Request operations a server understands.  ``metrics`` and ``cancel``
#: (additive within this protocol version; older servers answer an
#: unknown-op error) return the unified observability snapshot of
#: :func:`repro.obs.serve_metrics` and withdraw a queued job.
OPS = ("ping", "status", "metrics", "shutdown", "submit", "cancel")

#: Submittable work kinds and the Session/explore surface they map to.
SUBMIT_KINDS = ("bounds", "optimize", "power", "mc", "sweep")

#: Hard cap on one request line (a submit carrying a large inline
#: circuit is legitimate; an unbounded line is a memory hazard).
MAX_LINE_BYTES = 32 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed or unsupported request/response line."""


def job_spec_key(kind: str, spec: Dict[str, Any]) -> str:
    """The content hash identifying one unit of work.

    Canonical JSON (sorted keys, compact separators) of the kind plus
    the serialized spec, SHA-256 hex.  Pure function of the request
    content: the coalescing table and the result store share it.
    """
    if kind not in SUBMIT_KINDS:
        raise ProtocolError(f"kind must be one of {SUBMIT_KINDS}, got {kind!r}")
    canonical = json.dumps(
        {"kind": kind, "spec": spec},
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def encode_line(message: Dict[str, Any]) -> bytes:
    """One protocol object as one NDJSON line (trailing newline)."""
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def decode_line(raw: bytes) -> Dict[str, Any]:
    """Parse one NDJSON line into a protocol object."""
    if len(raw) > MAX_LINE_BYTES:
        raise ProtocolError(f"request line exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad protocol line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"protocol line must be an object, got {message!r}")
    return message


def validate_request(message: Dict[str, Any]) -> str:
    """Check the request envelope; return its ``op``."""
    op = message.get("op")
    if op not in OPS:
        raise ProtocolError(f"op must be one of {OPS}, got {op!r}")
    return str(op)


def validate_submit(message: Dict[str, Any]) -> Tuple[str, Dict[str, Any]]:
    """Check a submit request; return ``(kind, spec dict)``.

    Sweep submissions carry their payload under ``spec``, everything
    else under ``job`` (matching the repo's two declarative spec kinds).
    The payload is *structurally* validated here; full semantic
    validation happens when the worker rebuilds the frozen ``Job`` /
    ``SweepSpec`` (whose constructors are the single source of truth).
    """
    kind = message.get("kind")
    if kind not in SUBMIT_KINDS:
        raise ProtocolError(f"kind must be one of {SUBMIT_KINDS}, got {kind!r}")
    field = "spec" if kind == "sweep" else "job"
    payload = message.get(field)
    if not isinstance(payload, dict):
        raise ProtocolError(f"submit kind {kind!r} needs a {field!r} object")
    priority = message.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise ProtocolError(f"priority must be an integer, got {priority!r}")
    timeout_s = message.get("timeout_s")
    if timeout_s is not None:
        if (
            isinstance(timeout_s, bool)
            or not isinstance(timeout_s, (int, float))
            or timeout_s <= 0
        ):
            raise ProtocolError(
                f"timeout_s must be a positive number, got {timeout_s!r}"
            )
    return str(kind), payload


def validate_cancel(message: Dict[str, Any]) -> str:
    """Check a cancel request; return the job spec key to withdraw."""
    key = message.get("key")
    if not isinstance(key, str) or not key:
        raise ProtocolError(f"cancel needs a job spec 'key', got {key!r}")
    return key


def error_event(exc: BaseException, **fields: Any) -> Dict[str, Any]:
    """The standard error event for an exception."""
    event: Dict[str, Any] = {
        "event": "error",
        "error": {"type": type(exc).__name__, "message": str(exc)},
    }
    event.update(fields)
    return event
