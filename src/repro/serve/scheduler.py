"""The worker side: one ticket in, one serialized run record out.

:class:`JobExecutor` owns the daemon's bounded worker pools and knows
how to run every submit kind against the shared session:

* **light pool** (threads): ``bounds`` / ``power`` / ``mc`` -- these are
  cache-warm after the first tenant (memoized extraction, compiled
  circuits, batch kernels) and release the GIL into numpy for the heavy
  part, so threads are the right grain;
* **heavy pool** (threads, optionally escalating to the existing
  process-pool machinery): ``optimize`` and ``sweep``, the CPU-bound
  protocol runs.  With ``procs > 0`` single optimizations ship to a
  ``ProcessPoolExecutor`` via the same worker entry
  (:func:`repro.api.session._optimize_job_worker`) the batch runner
  uses -- byte-identical records are the established contract -- and
  sweeps fan their chunks out through ``run_sweep``'s own pool support.
  Environments without working subprocess support fall back to
  in-thread execution transparently (the repo-wide ``POOL_ERRORS``
  contract).

Results always cross this boundary in *serialized* form (the record's
lossless dict), which is exactly what the coalescing fan-out and the
content-addressed store file, and what pins server records
byte-identical to direct ``Session`` calls.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Dict, Optional

from repro.api.job import Job, SweepSpec
from repro.api.session import (
    JOB_ERROR_KEY,
    POOL_ERRORS,
    Session,
    _optimize_job_worker,
)
from repro.serve.protocol import ProtocolError

#: Kinds routed to the heavy pool (full protocol runs).
HEAVY_KINDS = ("optimize", "sweep")

#: Emits one already-shaped progress event (thread-safe on the server).
EventFn = Callable[[Dict[str, Any]], None]


class JobExecutor:
    """Bounded worker pools + the kind dispatch table.

    Parameters
    ----------
    session:
        The shared (lock-guarded) session every job runs against.
    threads / heavy_threads:
        Light / heavy thread-pool sizes.
    procs:
        When positive, ``optimize`` jobs escalate to a process pool of
        this size and ``sweep`` jobs pass it as their ``workers`` fan-
        out.  Zero keeps everything in-thread (always available).
    """

    def __init__(
        self,
        session: Session,
        threads: int = 4,
        heavy_threads: int = 2,
        procs: int = 0,
    ) -> None:
        if threads < 1 or heavy_threads < 1:
            raise ValueError("worker pools need at least one thread each")
        self.session = session
        self.threads = threads
        self.heavy_threads = heavy_threads
        self.procs = max(0, procs)
        self._light = ThreadPoolExecutor(
            max_workers=threads, thread_name_prefix="pops-light"
        )
        self._heavy = ThreadPoolExecutor(
            max_workers=heavy_threads, thread_name_prefix="pops-heavy"
        )
        self._proc_pool: Optional[ProcessPoolExecutor] = None

    # -- pool selection ------------------------------------------------

    def executor_for(self, kind: str) -> ThreadPoolExecutor:
        """The thread pool a kind's work runs on."""
        return self._heavy if kind in HEAVY_KINDS else self._light

    def pool_name(self, kind: str) -> str:
        """``"heavy"`` or ``"light"`` -- the pool :meth:`executor_for` picks.

        Job-lifecycle events and the serve metrics report this label so
        operators can see which pool each kind actually landed on.
        """
        return "heavy" if kind in HEAVY_KINDS else "light"

    def _process_pool(self) -> ProcessPoolExecutor:
        if self._proc_pool is None:
            self._proc_pool = ProcessPoolExecutor(max_workers=self.procs)
        return self._proc_pool

    # -- execution -----------------------------------------------------

    def run(
        self,
        kind: str,
        payload: Dict[str, Any],
        progress: Optional[EventFn] = None,
    ) -> Dict[str, Any]:
        """Execute one unit of work; return the record's lossless dict.

        Runs *in a worker thread* (the server dispatches it via
        ``run_in_executor``).  Job exceptions propagate to the caller,
        which turns them into error events.
        """
        if kind == "bounds":
            return self.session.bounds(Job.from_dict(payload)).to_dict()
        if kind == "power":
            return self.session.power(Job.from_dict(payload)).to_dict()
        if kind == "mc":
            return self.session.mc(Job.from_dict(payload)).to_dict()
        if kind == "optimize":
            return self._run_optimize(Job.from_dict(payload))
        if kind == "sweep":
            return self._run_sweep(SweepSpec.from_dict(payload), progress)
        raise ProtocolError(f"unsupported submit kind {kind!r}")

    def _run_optimize(self, job: Job) -> Dict[str, Any]:
        """One optimization, in-process or on the process pool."""
        if self.procs > 0:
            task = (
                self.session.library,
                self.session.flimits(),
                self.session.bench_dir,
                job.to_dict(),
            )
            try:
                outcome = self._process_pool().submit(
                    _optimize_job_worker, task
                ).result()
            except POOL_ERRORS:
                # No working subprocesses here: permanently fall back to
                # in-thread execution (same records, by contract).
                self.procs = 0
            else:
                if JOB_ERROR_KEY in outcome:
                    raise outcome[JOB_ERROR_KEY]
                self.session.stats.jobs_run += 1
                return outcome
        return self.session.optimize(job).to_dict()

    def _run_sweep(
        self, spec: SweepSpec, progress: Optional[EventFn]
    ) -> Dict[str, Any]:
        """One sweep campaign; per-point completions stream as events."""
        from repro.explore import run_sweep

        progress_cb = None
        if progress is not None:

            def progress_cb(done: int, total: int, label: str) -> None:
                progress(
                    {
                        "event": "progress",
                        "done": int(done),
                        "total": int(total),
                        "label": label,
                    }
                )

        result = run_sweep(
            self.session,
            spec,
            workers=self.procs if self.procs > 0 else None,
            progress=progress_cb,
        )
        return result.record().to_dict()

    # -- lifecycle / observability -------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Tear the pools down (after the server drained its queue)."""
        self._light.shutdown(wait=wait)
        self._heavy.shutdown(wait=wait)
        if self._proc_pool is not None:
            self._proc_pool.shutdown(wait=wait)
            self._proc_pool = None

    def stats(self) -> Dict[str, Any]:
        """Pool shape for the status endpoint."""
        return {
            "threads": self.threads,
            "heavy_threads": self.heavy_threads,
            "procs": self.procs,
        }
