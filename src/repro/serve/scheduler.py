"""The worker side: one ticket in, one serialized run record out.

:class:`JobExecutor` owns the daemon's bounded worker pools and knows
how to run every submit kind against the shared session:

* **light pool** (threads): ``bounds`` / ``power`` / ``mc`` -- these are
  cache-warm after the first tenant (memoized extraction, compiled
  circuits, batch kernels) and release the GIL into numpy for the heavy
  part, so threads are the right grain;
* **heavy pool** (threads, optionally escalating to the existing
  process-pool machinery): ``optimize`` and ``sweep``, the CPU-bound
  protocol runs.  With ``procs > 0`` single optimizations ship to a
  ``ProcessPoolExecutor`` via the same worker entry
  (:func:`repro.api.session._optimize_job_worker`) the batch runner
  uses -- byte-identical records are the established contract -- and
  sweeps fan their chunks out through ``run_sweep``'s own pool support.

The executor is also where the resilience layer lives (see the
"Resilience" section of ``docs/ARCHITECTURE.md``):

* **deadlines** -- a job carrying ``Job.timeout_s`` (or a submit-level
  ``timeout_s``) runs on a detached deadline thread; when it expires,
  :class:`~repro.resilience.JobTimeoutError` frees the worker slot and
  the server emits a structured timeout error event (the abandoned
  computation finishes on its thread -- Python threads cannot be
  killed -- but no queue capacity waits on it);
* **pool supervision** -- a worker that crashes mid-job surfaces as
  ``BrokenProcessPool``: the pool is recreated and the job retried
  under the shared :class:`~repro.resilience.RetryPolicy`.  Transport
  errors (no semaphores / no fork support: ``OSError`` /
  ``ImportError``) mean subprocesses will *never* work here, so only
  they downgrade ``procs`` permanently -- logged and counted, never
  silent;
* a **circuit breaker** -- K consecutive pool failures trip execution
  to the always-available in-thread path; after a cooldown one probe
  job tests the pool again (half-open) and a success restores it.

Every retry, timeout, trip and fallback increments a ``resilience.*``
counter on the executor's :class:`~repro.obs.metrics.MetricsRegistry`
(the server shares its registry, so all of it surfaces in
``serve_metrics`` and the ``metrics`` protocol op).

Results always cross this boundary in *serialized* form (the record's
lossless dict), which is exactly what the coalescing fan-out and the
content-addressed store file, and what pins server records
byte-identical to direct ``Session`` calls.
"""

from __future__ import annotations

import logging
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, Optional

from repro.api.job import Job, SweepSpec
from repro.api.session import (
    JOB_ERROR_KEY,
    Session,
    _optimize_job_worker,
)
from repro.obs.metrics import MetricsRegistry
from repro.resilience import CircuitBreaker, JobTimeoutError, RetryPolicy
from repro.resilience import faults
from repro.serve.protocol import ProtocolError

log = logging.getLogger("repro.serve")

#: Kinds routed to the heavy pool (full protocol runs).
HEAVY_KINDS = ("optimize", "sweep")

#: Emits one already-shaped progress event (thread-safe on the server).
EventFn = Callable[[Dict[str, Any]], None]

#: Builds a process pool (injectable: chaos tests hand in
#: :class:`repro.resilience.InlinePool`).
PoolFactory = Callable[[int], Any]


def _default_pool_factory(max_workers: int) -> Any:
    from concurrent.futures import ProcessPoolExecutor

    return ProcessPoolExecutor(max_workers=max_workers)


class JobExecutor:
    """Bounded worker pools + the kind dispatch table.

    Parameters
    ----------
    session:
        The shared (lock-guarded) session every job runs against.
    threads / heavy_threads:
        Light / heavy thread-pool sizes.
    procs:
        When positive, ``optimize`` jobs escalate to a process pool of
        this size and ``sweep`` jobs pass it as their ``workers`` fan-
        out.  Zero keeps everything in-thread (always available).
    retry:
        Policy for retrying a job whose pool worker crashed mid-run
        (``BrokenProcessPool``); the pool is recreated between attempts.
    breaker:
        Circuit breaker over the process-pool path; trips to in-thread
        execution after K consecutive pool failures.
    metrics:
        Registry the ``resilience.*`` counters land on (the server
        passes its own so everything shows up in ``serve_metrics``).
    timeout_s:
        Default per-job deadline; ``Job.timeout_s`` or a submit-level
        ``timeout_s`` override it per job.  ``None`` disables deadlines.
    pool_factory:
        Process-pool constructor (tests inject a deterministic double).
    """

    def __init__(
        self,
        session: Session,
        threads: int = 4,
        heavy_threads: int = 2,
        procs: int = 0,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        metrics: Optional[MetricsRegistry] = None,
        timeout_s: Optional[float] = None,
        pool_factory: Optional[PoolFactory] = None,
    ) -> None:
        if threads < 1 or heavy_threads < 1:
            raise ValueError("worker pools need at least one thread each")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s}")
        self.session = session
        self.threads = threads
        self.heavy_threads = heavy_threads
        self.procs = max(0, procs)
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.timeout_s = timeout_s
        self.pool_factory: PoolFactory = (
            pool_factory if pool_factory is not None else _default_pool_factory
        )
        self._light = ThreadPoolExecutor(
            max_workers=threads, thread_name_prefix="pops-light"
        )
        self._heavy = ThreadPoolExecutor(
            max_workers=heavy_threads, thread_name_prefix="pops-heavy"
        )
        self._proc_pool: Optional[Any] = None
        # Deadline-guarded jobs run on this detached pool so the caller
        # can stop waiting; sized like the worker pools it shadows.
        self._deadline: Optional[ThreadPoolExecutor] = None
        self._abandoned = 0

    # -- pool selection ------------------------------------------------

    def executor_for(self, kind: str) -> ThreadPoolExecutor:
        """The thread pool a kind's work runs on."""
        return self._heavy if kind in HEAVY_KINDS else self._light

    def pool_name(self, kind: str) -> str:
        """``"heavy"`` or ``"light"`` -- the pool :meth:`executor_for` picks.

        Job-lifecycle events and the serve metrics report this label so
        operators can see which pool each kind actually landed on.
        """
        return "heavy" if kind in HEAVY_KINDS else "light"

    def _process_pool(self) -> Any:
        if self._proc_pool is None:
            self._proc_pool = self.pool_factory(self.procs)
        return self._proc_pool

    def _discard_pool(self) -> None:
        """Drop a broken pool so the next attempt builds a fresh one."""
        pool = self._proc_pool
        self._proc_pool = None
        if pool is not None:
            try:
                pool.shutdown(wait=False)
            except Exception:  # pragma: no cover - best-effort teardown
                pass

    def _deadline_pool(self) -> ThreadPoolExecutor:
        if self._deadline is None:
            self._deadline = ThreadPoolExecutor(
                max_workers=self.threads + self.heavy_threads,
                thread_name_prefix="pops-deadline",
            )
        return self._deadline

    # -- execution -----------------------------------------------------

    def run(
        self,
        kind: str,
        payload: Dict[str, Any],
        progress: Optional[EventFn] = None,
        timeout_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Execute one unit of work; return the record's lossless dict.

        Runs *in a worker thread* (the server dispatches it via
        ``run_in_executor``).  Job exceptions propagate to the caller,
        which turns them into error events.  ``timeout_s`` is the
        deadline precedence chain: the submit-level value here, else the
        job's own ``timeout_s`` field, else the executor default; when
        one applies and expires, :class:`JobTimeoutError` is raised and
        the worker slot is freed (the abandoned computation finishes on
        a detached deadline thread).
        """
        deadline = timeout_s
        if deadline is None:
            value = payload.get("timeout_s")
            deadline = float(value) if value is not None else self.timeout_s
        if deadline is None:
            return self._dispatch(kind, payload, progress)
        future = self._deadline_pool().submit(
            self._dispatch, kind, payload, progress
        )
        try:
            return future.result(timeout=deadline)
        except FuturesTimeoutError:
            future.cancel()  # free the slot if it never started
            self._abandoned += 1
            self.metrics.inc("resilience.timeouts")
            log.warning("%s job exceeded its %.3fs deadline", kind, deadline)
            raise JobTimeoutError(
                f"{kind} job exceeded its {deadline:g}s deadline",
                timeout_s=deadline,
            ) from None

    def _dispatch(
        self,
        kind: str,
        payload: Dict[str, Any],
        progress: Optional[EventFn],
    ) -> Dict[str, Any]:
        # Injected slowness lands here, inside the deadline guard, so a
        # fault plan can drive a job over its timeout deterministically.
        faults.maybe_sleep(faults.SITE_EXEC_SLOW)
        if kind == "bounds":
            return self.session.bounds(Job.from_dict(payload)).to_dict()
        if kind == "power":
            return self.session.power(Job.from_dict(payload)).to_dict()
        if kind == "mc":
            return self.session.mc(Job.from_dict(payload)).to_dict()
        if kind == "optimize":
            return self._run_optimize(Job.from_dict(payload))
        if kind == "sweep":
            return self._run_sweep(SweepSpec.from_dict(payload), progress)
        raise ProtocolError(f"unsupported submit kind {kind!r}")

    def _run_optimize(self, job: Job) -> Dict[str, Any]:
        """One optimization: supervised process pool, or in-thread.

        The pool path is guarded three ways.  A worker crash
        (``BrokenProcessPool``) recreates the pool and retries under
        :attr:`retry`; every crash also feeds :attr:`breaker`, which
        trips to in-thread execution after K consecutive failures and
        half-open-probes the pool later.  Transport/import errors mean
        this environment cannot run subprocesses at all, so only they
        downgrade :attr:`procs` permanently -- with a log line and a
        counter, never silently.
        """
        if self.procs > 0 and self.breaker.allow():
            task = (
                self.session.library,
                self.session.flimits(),
                self.session.bench_dir,
                job.to_dict(),
            )
            delays = self.retry.delays()
            while True:
                try:
                    outcome = self._process_pool().submit(
                        _optimize_job_worker, task
                    ).result()
                except BrokenProcessPool:
                    self.metrics.inc("resilience.pool_broken")
                    self.breaker.record_failure()
                    self._discard_pool()
                    self.metrics.inc("resilience.pool_recreated")
                    if self.breaker.state != "closed":
                        self.metrics.inc("resilience.breaker_trips")
                        log.error(
                            "process pool tripped the circuit breaker "
                            "(%d consecutive failures); optimize jobs run "
                            "in-thread until a probe succeeds",
                            self.breaker.failures,
                        )
                        break
                    try:
                        delay = next(delays)
                    except StopIteration:
                        log.error(
                            "job %r: pool worker crashed on every attempt "
                            "(%d); falling back in-thread",
                            job.name,
                            self.retry.attempts,
                        )
                        break
                    self.metrics.inc("resilience.retries")
                    log.warning(
                        "job %r: pool worker crashed mid-run; retrying on a "
                        "fresh pool in %.3fs",
                        job.name,
                        delay,
                    )
                    if delay > 0:
                        time.sleep(delay)
                except (OSError, ImportError) as exc:
                    # No working subprocess support in this environment:
                    # permanently fall back to in-thread execution (same
                    # records, by contract) -- visibly.
                    self.metrics.inc("resilience.pool_disabled")
                    log.warning(
                        "process pool unavailable (%s: %s); optimize jobs "
                        "run in-thread from now on",
                        type(exc).__name__,
                        exc,
                    )
                    self.procs = 0
                    break
                else:
                    self.breaker.record_success()
                    if JOB_ERROR_KEY in outcome:
                        raise outcome[JOB_ERROR_KEY]
                    self.session.stats.jobs_run += 1
                    return outcome
            self.metrics.inc("resilience.fallbacks")
        return self.session.optimize(job).to_dict()

    def _run_sweep(
        self, spec: SweepSpec, progress: Optional[EventFn]
    ) -> Dict[str, Any]:
        """One sweep campaign; per-point completions stream as events."""
        from repro.explore import run_sweep

        progress_cb = None
        if progress is not None:

            def progress_cb(done: int, total: int, label: str) -> None:
                progress(
                    {
                        "event": "progress",
                        "done": int(done),
                        "total": int(total),
                        "label": label,
                    }
                )

        result = run_sweep(
            self.session,
            spec,
            workers=self.procs if self.procs > 0 else None,
            progress=progress_cb,
        )
        return result.record().to_dict()

    # -- lifecycle / observability -------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Tear the pools down (after the server drained its queue)."""
        self._light.shutdown(wait=wait)
        self._heavy.shutdown(wait=wait)
        if self._deadline is not None:
            # Never wait on abandoned (timed-out) computations.
            self._deadline.shutdown(wait=False, cancel_futures=True)
            self._deadline = None
        if self._proc_pool is not None:
            self._proc_pool.shutdown(wait=wait and self._abandoned == 0)
            self._proc_pool = None

    def stats(self) -> Dict[str, Any]:
        """Pool shape for the status endpoint."""
        return {
            "threads": self.threads,
            "heavy_threads": self.heavy_threads,
            "procs": self.procs,
        }

    def resilience_stats(self) -> Dict[str, Any]:
        """Retry/deadline/breaker state for ``serve_metrics``."""
        counters = self.metrics.snapshot()["counters"]
        return {
            "retry": {
                "attempts": self.retry.attempts,
                "base_s": self.retry.base_s,
                "max_delay_s": self.retry.max_delay_s,
            },
            "timeout_s": self.timeout_s,
            "abandoned": self._abandoned,
            "breaker": self.breaker.as_dict(),
            "counters": {
                name: value
                for name, value in counters.items()
                if name.startswith("resilience.")
            },
        }
