"""Content-addressed on-disk store of completed run records.

Records are filed under their :func:`~repro.serve.protocol.job_spec_key`
-- the SHA-256 of the canonical request content -- so a repeat
submission of the same spec is served from disk without touching the
queue, across daemon restarts.  Layout (two-level fan-out keeps any one
directory small under millions of records)::

    <root>/
      ab/
        abcdef....json    # one lossless RunRecord envelope per key

Writes are atomic (temp file + ``os.replace``), so a crash mid-write
can never leave a torn record: the key either resolves to a complete
envelope or misses and the job is recomputed.  A stored file that fails
to parse is treated as a miss and overwritten by the next completion.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Optional


class ResultStore:
    """Spec-hash addressed archive of ``RunRecord.to_dict()`` envelopes."""

    def __init__(self, root: str) -> None:
        self.root = str(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore({self.root!r}, hits={self.hits}, misses={self.misses})"

    def path_for(self, key: str) -> str:
        """Where a key's record lives (whether or not it exists yet)."""
        return os.path.join(self.root, key[:2], f"{key}.json")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored record dict for a key, or ``None`` on a miss."""
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if not isinstance(record, dict):
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, key: str, record: Dict[str, Any]) -> str:
        """Atomically file a completed record under its key."""
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1
        return path

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.path_for(key))

    def count(self) -> int:
        """Number of records on disk (a walk; observability only)."""
        total = 0
        for _, _, files in os.walk(self.root):
            total += sum(1 for name in files if name.endswith(".json"))
        return total

    def stats(self) -> Dict[str, Any]:
        """JSON-native counters for the status endpoint."""
        return {
            "root": self.root,
            "records": self.count(),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
        }
