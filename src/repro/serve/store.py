"""Content-addressed on-disk store of completed run records.

Records are filed under their :func:`~repro.serve.protocol.job_spec_key`
-- the SHA-256 of the canonical request content -- so a repeat
submission of the same spec is served from disk without touching the
queue, across daemon restarts.  Layout (two-level fan-out keeps any one
directory small under millions of records)::

    <root>/
      ab/
        abcdef....json    # one lossless RunRecord envelope per key

Writes are atomic (temp file + ``os.replace``), so the store's own
writer can never leave a torn record.  Files can still arrive corrupt
from outside the atomic path -- a torn copy into the directory, disk
corruption, a truncating backup restore -- and those are **quarantined**
on first contact: the unparsable file is renamed to ``<key>.json.corrupt``
(counted in :meth:`ResultStore.stats`), the lookup reports a miss, and
the next completion rewrites the key.  ``key in store`` answers through
the same read path as :meth:`ResultStore.get`, so membership and
retrieval can never disagree about a corrupt entry.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Optional

from repro.resilience import faults

#: Suffix quarantined (unparsable) record files are renamed to.
CORRUPT_SUFFIX = ".corrupt"


class ResultStore:
    """Spec-hash addressed archive of ``RunRecord.to_dict()`` envelopes."""

    def __init__(self, root: str) -> None:
        self.root = str(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.quarantined = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore({self.root!r}, hits={self.hits}, misses={self.misses})"

    def path_for(self, key: str) -> str:
        """Where a key's record lives (whether or not it exists yet)."""
        return os.path.join(self.root, key[:2], f"{key}.json")

    def _read(self, key: str) -> Optional[Dict[str, Any]]:
        """Load a key's record; quarantine and miss on a corrupt file.

        The single read path behind :meth:`get` and ``in``: a file that
        exists but does not parse to a dict is renamed to
        ``*.corrupt`` (never re-read, counted in :attr:`quarantined`)
        so membership, retrieval and the next overwrite all agree it is
        gone.
        """
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as handle:
                record = json.load(handle)
        except OSError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._quarantine(path)
            return None
        if not isinstance(record, dict):
            self._quarantine(path)
            return None
        return record

    def _quarantine(self, path: str) -> None:
        """Move an unparsable record aside (keep the evidence)."""
        try:
            os.replace(path, path + CORRUPT_SUFFIX)
        except OSError:  # pragma: no cover - lost the race / read-only fs
            return
        self.quarantined += 1

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored record dict for a key, or ``None`` on a miss."""
        record = self._read(key)
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, key: str, record: Dict[str, Any]) -> str:
        """Atomically file a completed record under its key."""
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = json.dumps(record, sort_keys=True) + "\n"
        if faults.fire(faults.SITE_TORN_WRITE) is not None:
            # Injected torn write: land half the bytes at the final path
            # (simulating a non-atomic writer / interrupted copy) so the
            # quarantine path is exercised by real on-disk state.
            payload = payload[: max(1, len(payload) // 2)]
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1
        return path

    def __contains__(self, key: str) -> bool:
        """Whether :meth:`get` would hit (corrupt files answer False)."""
        return self._read(key) is not None

    def count(self) -> int:
        """Number of records on disk (a walk; observability only)."""
        total = 0
        for _, _, files in os.walk(self.root):
            total += sum(1 for name in files if name.endswith(".json"))
        return total

    def corrupt_count(self) -> int:
        """Quarantined files currently on disk (a walk)."""
        total = 0
        for _, _, files in os.walk(self.root):
            total += sum(1 for name in files if name.endswith(CORRUPT_SUFFIX))
        return total

    def stats(self) -> Dict[str, Any]:
        """JSON-native counters for the status endpoint."""
        return {
            "root": self.root,
            "records": self.count(),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "quarantined": self.quarantined,
            "corrupt_files": self.corrupt_count(),
        }
