"""The asyncio daemon: one shared session, many tenants.

:class:`PopsServer` listens on a local socket (unix-domain by default,
TCP loopback optionally), speaks the NDJSON protocol of
:mod:`repro.serve.protocol`, and owns:

* one lock-guarded, bounded-cache :class:`~repro.api.session.Session`
  (the amortized state every request shares);
* a :class:`~repro.serve.queue.PriorityJobQueue` drained by asyncio
  worker tasks that dispatch into the
  :class:`~repro.serve.scheduler.JobExecutor` pools;
* the in-flight coalescing table (``spec key -> ticket``) and the
  optional content-addressed :class:`~repro.serve.store.ResultStore`.

Lifecycle: ``await start()`` binds the socket and spawns workers;
``await wait_closed()`` parks until a shutdown request (or
:meth:`shutdown`) completes.  A draining shutdown stops accepting new
submissions immediately, finishes every queued and in-flight job (their
waiters all receive their ``done`` events), then tears the pools down.
"""

from __future__ import annotations

import asyncio
import logging
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro import __version__
from repro.api.session import Session
from repro.obs.metrics import MetricsRegistry, serve_metrics
from repro.obs.trace import Stopwatch
from repro.resilience import CircuitBreaker, JobTimeoutError, RetryPolicy
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_line,
    encode_line,
    error_event,
    job_spec_key,
    validate_cancel,
    validate_request,
    validate_submit,
)
from repro.serve.queue import JobTicket, PriorityJobQueue, ServeStats
from repro.serve.scheduler import JobExecutor
from repro.serve.store import ResultStore

#: The daemon's structured logger.  The package installs a NullHandler
#: on the root ``repro`` logger, so nothing is emitted unless the
#: embedding application (or ``pops serve --log-level``) configures
#: handlers -- opt-in by design.
log = logging.getLogger("repro.serve")


@dataclass
class ServeConfig:
    """Everything a daemon needs to come up.

    Exactly one listening surface: ``socket_path`` (unix-domain, the
    default surface) or ``host``/``port`` (TCP loopback; port 0 binds an
    ephemeral port, readable from :attr:`PopsServer.address` after
    start).

    The resilience knobs (see ``docs/ARCHITECTURE.md`` "Resilience"):
    ``timeout_s`` is the default per-job deadline (``None`` disables
    deadlines; jobs and submits can override per request); ``retry`` is
    the pool-supervision backoff policy; ``breaker_failures`` /
    ``breaker_cooldown_s`` shape the circuit breaker that trips
    process-pool execution to in-thread after consecutive worker
    crashes.  ``pool_factory`` injects a process-pool constructor
    (chaos tests pass :class:`repro.resilience.InlinePool`).
    """

    socket_path: Optional[str] = None
    host: Optional[str] = None
    port: int = 0
    threads: int = 4
    heavy_threads: int = 2
    procs: int = 0
    store_dir: Optional[str] = None
    cache_limit: Optional[int] = 1024
    bench_dir: Optional[str] = None
    timeout_s: Optional[float] = None
    retry: Optional[RetryPolicy] = None
    breaker_failures: int = 3
    breaker_cooldown_s: float = 30.0
    pool_factory: Optional[Any] = None

    def __post_init__(self) -> None:
        if (self.socket_path is None) == (self.host is None):
            raise ValueError(
                "give exactly one of 'socket_path' and 'host' (+'port')"
            )


class PopsServer:
    """The multi-tenant optimization daemon."""

    def __init__(
        self, config: ServeConfig, session: Optional[Session] = None
    ) -> None:
        self.config = config
        self.session = (
            session
            if session is not None
            else Session(
                bench_dir=config.bench_dir, cache_limit=config.cache_limit
            )
        )
        #: Lifecycle timing histograms (``serve.queue_wait_s``,
        #: ``serve.exec_s``), per-kind/pool counters and the executor's
        #: ``resilience.*`` counters; snapshotted by the ``metrics`` op
        #: and the ``status`` timings block.
        self.metrics = MetricsRegistry()
        self.executor = JobExecutor(
            self.session,
            threads=config.threads,
            heavy_threads=config.heavy_threads,
            procs=config.procs,
            retry=config.retry,
            breaker=CircuitBreaker(
                failures=config.breaker_failures,
                cooldown_s=config.breaker_cooldown_s,
            ),
            metrics=self.metrics,
            timeout_s=config.timeout_s,
            pool_factory=config.pool_factory,
        )
        self.store = (
            ResultStore(config.store_dir) if config.store_dir else None
        )
        self.stats = ServeStats()
        self.queue = PriorityJobQueue()
        self._inflight: Dict[str, JobTicket] = {}
        self._draining = False
        self._shutting_down = False
        self._started_unix = 0.0
        self._server: Optional[asyncio.AbstractServer] = None
        self._workers: List[asyncio.Task] = []
        self._closed: Optional[asyncio.Event] = None
        self._gate: Optional[asyncio.Event] = None
        self.loop: Optional[asyncio.AbstractEventLoop] = None

    # -- lifecycle -----------------------------------------------------

    @property
    def address(self) -> Dict[str, Any]:
        """Where the daemon listens (JSON-native, for the ready line)."""
        if self.config.socket_path is not None:
            return {"socket": self.config.socket_path}
        port = self.config.port
        if self._server is not None and self._server.sockets:
            port = self._server.sockets[0].getsockname()[1]
        return {"host": self.config.host, "port": port}

    @property
    def draining(self) -> bool:
        """Whether a shutdown drain has begun (submits are rejected)."""
        return self._draining

    async def start(self) -> None:
        """Bind the socket and spawn the queue workers."""
        self.loop = asyncio.get_running_loop()
        self._closed = asyncio.Event()
        self._gate = asyncio.Event()
        self._gate.set()
        self._started_unix = time.time()
        limit = MAX_LINE_BYTES + 1024
        if self.config.socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.config.socket_path, limit=limit
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self.config.host,
                port=self.config.port,
                limit=limit,
            )
        n_workers = self.config.threads + self.config.heavy_threads
        self._workers = [
            self.loop.create_task(self._worker(), name=f"pops-worker-{i}")
            for i in range(n_workers)
        ]
        log.info(
            "serving on %s (threads=%d heavy=%d procs=%d store=%s)",
            self.address,
            self.config.threads,
            self.config.heavy_threads,
            self.config.procs,
            self.config.store_dir or "none",
        )

    async def wait_closed(self) -> None:
        """Park until a shutdown has fully completed."""
        assert self._closed is not None, "server was never started"
        await self._closed.wait()

    async def run(self) -> None:
        """``start()`` then park until shutdown (the daemon main)."""
        await self.start()
        await self.wait_closed()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop the daemon.

        ``drain=True`` (graceful): refuse new submissions, finish every
        queued and in-flight job -- all waiters get their ``done``
        events -- then exit.  ``drain=False``: queued-but-unstarted
        tickets are failed with a shutdown error; jobs already on a
        worker still run to completion (threads cannot be interrupted
        safely).
        """
        if self._shutting_down:
            return
        self._shutting_down = True
        self._draining = True
        log.info(
            "shutdown requested (drain=%s, queued=%d, inflight=%d)",
            drain,
            self.queue.depth,
            len(self._inflight),
        )
        if not drain:
            await self._cancel_backlog()
        await self.queue.join()
        for _ in self._workers:
            self.queue.put_sentinel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.executor.shutdown()
        if self.config.socket_path is not None:
            try:
                os.unlink(self.config.socket_path)
            except OSError:
                pass
        assert self._closed is not None
        self._closed.set()
        log.info("shutdown complete")

    async def _cancel_backlog(self) -> None:
        """Fail every queued-but-unstarted ticket (non-drain shutdown)."""
        while self.queue.depth > 0:
            ticket = await self.queue.get()
            if ticket is None:
                self.queue.task_done()
                continue
            self._inflight.pop(ticket.key, None)
            self.stats.failed += 1
            ticket.publish(
                error_event(
                    RuntimeError("server shut down before the job started"),
                    key=ticket.key,
                )
            )
            self.queue.task_done()

    # -- test / operational affordances --------------------------------

    def pause(self) -> None:
        """Hold workers before their next job (thread-safe, for tests)."""
        assert self.loop is not None and self._gate is not None
        self.loop.call_soon_threadsafe(self._gate.clear)

    def resume(self) -> None:
        """Release paused workers (thread-safe)."""
        assert self.loop is not None and self._gate is not None
        self.loop.call_soon_threadsafe(self._gate.set)

    def request_shutdown(self, drain: bool = True) -> None:
        """Schedule a shutdown from any thread."""
        assert self.loop is not None
        self.loop.call_soon_threadsafe(
            lambda: self.loop.create_task(self.shutdown(drain=drain))
        )

    # -- the status block ----------------------------------------------

    def status(self) -> Dict[str, Any]:
        """The full observability snapshot (the ``status`` event body)."""
        status: Dict[str, Any] = {
            "event": "status",
            "version": PROTOCOL_VERSION,
            "pops": __version__,
            "pid": os.getpid(),
            "uptime_s": time.time() - self._started_unix,
            "draining": self._draining,
            "serve": self.stats.as_dict(),
            "queue": {
                "depth": self.queue.depth,
                "inflight": len(self._inflight),
            },
            "pools": self.executor.stats(),
            "resilience": self.executor.resilience_stats(),
            "session": self.session.cache_stats(),
            # Job-lifecycle timing summaries (queue wait, execution) --
            # the extended-status surface of the observability layer.
            "timings": self.metrics.snapshot()["histograms"],
        }
        if self.store is not None:
            status["store"] = self.store.stats()
        return status

    # -- connection handling -------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.connections += 1
        try:
            raw = await reader.readline()
            if not raw:
                return
            try:
                message = decode_line(raw)
                op = validate_request(message)
            except ProtocolError as exc:
                await self._send(writer, error_event(exc))
                return
            if op == "ping":
                await self._send(
                    writer,
                    {
                        "event": "pong",
                        "version": PROTOCOL_VERSION,
                        "pops": __version__,
                        "draining": self._draining,
                    },
                )
            elif op == "status":
                await self._send(writer, self.status())
            elif op == "metrics":
                await self._send(
                    writer,
                    {
                        "event": "metrics",
                        "version": PROTOCOL_VERSION,
                        "metrics": serve_metrics(self),
                    },
                )
            elif op == "shutdown":
                drain = bool(message.get("drain", True))
                await self._send(
                    writer,
                    {
                        "event": "shutting-down",
                        "drain": drain,
                        "queued": self.queue.depth + len(self._inflight),
                    },
                )
                assert self.loop is not None
                self.loop.create_task(self.shutdown(drain=drain))
            elif op == "cancel":
                await self._handle_cancel(message, writer)
            elif op == "submit":
                await self._handle_submit(message, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; any job it queued keeps running
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _send(
        self, writer: asyncio.StreamWriter, event: Dict[str, Any]
    ) -> None:
        writer.write(encode_line(event))
        await writer.drain()

    async def _handle_submit(
        self, message: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        if self._draining:
            self.stats.rejected += 1
            log.warning("submit rejected: server is draining")
            await self._send(
                writer,
                error_event(
                    RuntimeError("server is draining; not accepting new work")
                ),
            )
            return
        try:
            kind, payload = validate_submit(message)
        except ProtocolError as exc:
            await self._send(writer, error_event(exc))
            return
        key = job_spec_key(kind, payload)
        self.stats.submitted += 1

        # 1. Content-addressed store: repeat submissions skip the queue.
        if self.store is not None and not message.get("no_cache"):
            record = self.store.get(key)
            if record is not None:
                self.stats.store_hits += 1
                log.info("job %s kind=%s served from store", key[:12], kind)
                await self._send(
                    writer,
                    {
                        "event": "queued",
                        "key": key,
                        "kind": kind,
                        "coalesced": False,
                        "cached": True,
                    },
                )
                await self._send(
                    writer,
                    {
                        "event": "done",
                        "key": key,
                        "record": record,
                        "cached": True,
                    },
                )
                return

        # 2. Coalesce onto an in-flight ticket, or enqueue a new one.
        #    (No awaits between the lookup and subscribe: the check is
        #    atomic relative to the worker that retires the ticket.)
        ticket = self._inflight.get(key)
        coalesced = ticket is not None
        if ticket is None:
            ticket = JobTicket(
                key=key,
                kind=kind,
                payload=payload,
                priority=int(message.get("priority", 0)),
                timeout_s=message.get("timeout_s"),
            )
            self._inflight[key] = ticket
            self.queue.put(ticket)
        else:
            self.stats.coalesced += 1
        log.info(
            "job %s kind=%s accepted (coalesced=%s, queue_depth=%d)",
            key[:12],
            kind,
            coalesced,
            self.queue.depth,
        )
        events = ticket.subscribe()
        await self._send(
            writer,
            {
                "event": "queued",
                "key": key,
                "kind": kind,
                "coalesced": coalesced,
                "cached": False,
                "queue_depth": self.queue.depth,
            },
        )

        # 3. Stream the ticket's events until it settles.
        while True:
            event = await events.get()
            await self._send(writer, event)
            if event.get("event") in ("done", "error"):
                break

    async def _handle_cancel(
        self, message: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        """Withdraw a queued (not yet started) job by its spec key."""
        try:
            key = validate_cancel(message)
        except ProtocolError as exc:
            await self._send(writer, error_event(exc))
            return
        ticket = self._inflight.get(key)
        cancelled = ticket is not None and not ticket.started
        if cancelled:
            assert ticket is not None
            ticket.cancelled = True
            self._inflight.pop(key, None)
            self.stats.cancelled += 1
            self.metrics.inc("serve.jobs.cancelled")
            log.info("job %s cancelled while queued", key[:12])
            ticket.publish(
                error_event(
                    RuntimeError("job cancelled before it started"),
                    key=key,
                    cancelled=True,
                )
            )
        await self._send(
            writer, {"event": "cancelled", "key": key, "cancelled": cancelled}
        )

    # -- queue workers --------------------------------------------------

    async def _worker(self) -> None:
        assert self.loop is not None and self._gate is not None
        while True:
            ticket = await self.queue.get()
            if ticket is None:
                self.queue.task_done()
                return
            await self._gate.wait()
            try:
                if not ticket.cancelled:
                    await self._execute(ticket)
            finally:
                self.queue.task_done()

    async def _execute(self, ticket: JobTicket) -> None:
        assert self.loop is not None
        loop = self.loop
        ticket.started = True
        pool = self.executor.pool_name(ticket.kind)
        queue_wait_s = time.perf_counter() - ticket.created_s
        self.metrics.observe("serve.queue_wait_s", queue_wait_s)
        self.metrics.inc(f"serve.jobs.{ticket.kind}")
        self.metrics.inc(f"serve.pool.{pool}")
        ticket.publish(
            {
                "event": "started",
                "key": ticket.key,
                "kind": ticket.kind,
                "pool": pool,
                "queue_wait_s": queue_wait_s,
            }
        )
        log.info(
            "job %s kind=%s started on %s pool (waited %.3fs, waiters=%d)",
            ticket.key[:12],
            ticket.kind,
            pool,
            queue_wait_s,
            ticket.waiters,
        )

        def progress(event: Dict[str, Any]) -> None:
            # Called from worker threads: hop back onto the loop.
            payload = dict(event)
            payload["key"] = ticket.key
            loop.call_soon_threadsafe(ticket.publish, payload)

        sw = Stopwatch()
        try:
            record = await loop.run_in_executor(
                self.executor.executor_for(ticket.kind),
                self.executor.run,
                ticket.kind,
                ticket.payload,
                progress,
                ticket.timeout_s,
            )
        except JobTimeoutError as exc:
            self.stats.failed += 1
            self.stats.timeouts += 1
            self.metrics.inc("serve.jobs.failed")
            self.metrics.inc("serve.jobs.timeout")
            log.error(
                "job %s kind=%s timed out after %gs",
                ticket.key[:12],
                ticket.kind,
                exc.timeout_s,
            )
            outcome = error_event(
                exc, key=ticket.key, timeout=True, timeout_s=exc.timeout_s
            )
        except Exception as exc:
            self.stats.failed += 1
            self.metrics.inc("serve.jobs.failed")
            log.error(
                "job %s kind=%s failed: %s", ticket.key[:12], ticket.kind, exc
            )
            outcome = error_event(exc, key=ticket.key)
        else:
            self.stats.executed += 1
            elapsed_s = sw.elapsed_s
            self.metrics.observe("serve.exec_s", elapsed_s)
            log.info(
                "job %s kind=%s done in %.3fs (fan-out to %d waiter(s))",
                ticket.key[:12],
                ticket.kind,
                elapsed_s,
                ticket.waiters,
            )
            if self.store is not None:
                self.store.put(ticket.key, record)
            outcome = {
                "event": "done",
                "key": ticket.key,
                "record": record,
                "cached": False,
                "elapsed_s": elapsed_s,
                "pool": pool,
                "waiters": ticket.waiters,
            }
        self._inflight.pop(ticket.key, None)
        ticket.publish(outcome)


def start_server_thread(
    config: ServeConfig,
    session: Optional[Session] = None,
    timeout_s: float = 30.0,
    server: Optional[PopsServer] = None,
) -> Tuple[PopsServer, threading.Thread]:
    """Run a daemon on a background thread; return once it listens.

    The embedding surface tests, examples and notebooks use: the caller
    talks to the returned server through a
    :class:`~repro.serve.client.ServeClient` (or its thread-safe
    ``pause``/``resume``/``request_shutdown`` affordances) and joins the
    thread after requesting shutdown.  A prebuilt ``server`` (already
    constructed from ``config``, e.g. with an injected pool factory) can
    be passed instead of having one constructed here.
    """
    if server is None:
        server = PopsServer(config, session=session)
    ready = threading.Event()
    failure: List[BaseException] = []

    def runner() -> None:
        async def main() -> None:
            await server.start()
            ready.set()
            await server.wait_closed()

        try:
            asyncio.run(main())
        except BaseException as exc:  # surfaced to the starting thread
            failure.append(exc)
            ready.set()

    thread = threading.Thread(target=runner, name="pops-serve", daemon=True)
    thread.start()
    if not ready.wait(timeout_s):
        raise RuntimeError("serve daemon did not come up in time")
    if failure:
        raise failure[0]
    return server, thread
