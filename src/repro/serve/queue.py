"""Priority job queue, coalescing tickets and serve-level counters.

A :class:`JobTicket` is one unit of queued work: the spec-hash key, the
payload, and the fan-out surface -- every client waiting on the same
spec subscribes to the same ticket and receives the same event stream
(and therefore the same record).  The server's in-flight table maps
``key -> ticket``; a submit that finds its key already in flight
*coalesces* by subscribing instead of enqueueing.

:class:`PriorityJobQueue` orders tickets by ``(priority, arrival)``:
lower priority values run sooner, FIFO within a priority class.  A
``None`` sentinel wakes workers up for shutdown after the drain.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class ServeStats:
    """Daemon-level counters (the ``status`` endpoint's ``serve`` block).

    ``submitted`` counts accepted submit requests; of those,
    ``store_hits`` were answered from the content-addressed store,
    ``coalesced`` attached to an in-flight ticket, and the rest were
    enqueued and eventually ``executed`` or ``failed``.  ``rejected``
    counts submits refused because the daemon was draining;
    ``cancelled`` counts queued tickets withdrawn by the ``cancel`` op,
    and ``timeouts`` the jobs that died on their deadline (a subset of
    ``failed``).
    """

    submitted: int = 0
    executed: int = 0
    failed: int = 0
    coalesced: int = 0
    store_hits: int = 0
    rejected: int = 0
    connections: int = 0
    cancelled: int = 0
    timeouts: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for the status event."""
        return dict(self.__dict__)


@dataclass
class JobTicket:
    """One enqueued (possibly coalesced) unit of work.

    Attributes
    ----------
    key:
        The job-spec hash -- the coalescing / store identity.
    kind / payload:
        What to run (``payload`` is the serialized Job or SweepSpec).
    priority:
        Queue ordering; lower runs sooner.
    timeout_s:
        Optional submit-level deadline for this job (overrides the
        job's own ``timeout_s`` field and the executor default).
    waiters:
        How many clients are subscribed (1 + coalesced arrivals).
    created_s:
        Monotonic creation stamp (``time.perf_counter``); the server
        reads it when the ticket starts to report the queue wait.
    started / cancelled:
        Lifecycle flags: ``started`` flips when a worker picks the
        ticket up (a started job can no longer be cancelled);
        ``cancelled`` marks a withdrawn ticket so the worker that
        eventually dequeues it skips execution.
    """

    key: str
    kind: str
    payload: Dict[str, Any]
    priority: int = 0
    timeout_s: Optional[float] = None
    waiters: int = 0
    created_s: float = field(default_factory=time.perf_counter)
    started: bool = False
    cancelled: bool = False
    _subscribers: List[asyncio.Queue] = field(default_factory=list)

    def subscribe(self) -> asyncio.Queue:
        """A private event queue fed by every future :meth:`publish`."""
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.append(queue)
        self.waiters += 1
        return queue

    def publish(self, event: Dict[str, Any]) -> None:
        """Fan one event out to every subscriber."""
        for queue in self._subscribers:
            queue.put_nowait(event)


class PriorityJobQueue:
    """An ``asyncio.PriorityQueue`` of tickets with shutdown sentinels.

    Entries never compare beyond ``(priority, seq)`` -- the arrival
    counter is unique -- so tickets themselves need no ordering.
    """

    #: Sentinel priority: sorts after every real job so a drain finishes
    #: the backlog before workers see the wake-up.
    _SENTINEL_PRIORITY = 1 << 62

    def __init__(self) -> None:
        self._queue: asyncio.PriorityQueue = asyncio.PriorityQueue()
        self._seq = itertools.count()
        self._depth = 0

    @property
    def depth(self) -> int:
        """Tickets enqueued and not yet picked up by a worker."""
        return self._depth

    def put(self, ticket: JobTicket) -> None:
        """Enqueue one ticket at its priority."""
        self._depth += 1
        self._queue.put_nowait((ticket.priority, next(self._seq), ticket))

    def put_sentinel(self) -> None:
        """Wake one worker up for shutdown (after the real backlog)."""
        self._queue.put_nowait((self._SENTINEL_PRIORITY, next(self._seq), None))

    async def get(self) -> Optional[JobTicket]:
        """Next ticket by priority, or ``None`` for a shutdown sentinel."""
        _, _, ticket = await self._queue.get()
        if ticket is not None:
            self._depth -= 1
        return ticket

    def task_done(self) -> None:
        """Mark one :meth:`get` processed (sentinels included)."""
        self._queue.task_done()

    async def join(self) -> None:
        """Wait until every enqueued item has been processed."""
        await self._queue.join()
