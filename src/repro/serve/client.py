"""Blocking client for the serve daemon (the ``pops submit`` surface).

One request per connection: the client opens the socket, writes one
NDJSON line, then consumes the server's event stream.  No asyncio on
this side -- plain sockets, so the client is trivially usable from
scripts, tests, thread pools and other processes.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Callable, Dict, Iterator, Optional, Union

from repro.api.job import Job, SweepSpec
from repro.api.records import RunRecord
from repro.cells.library import Library
from repro.serve.protocol import MAX_LINE_BYTES, encode_line

#: Optional per-event observer (progress rendering, logging).
EventFn = Callable[[Dict[str, Any]], None]


class ServeClientError(RuntimeError):
    """The server answered with an error event (or the stream broke).

    ``error`` carries the server's ``{"type": ..., "message": ...}``
    block when one was received.
    """

    def __init__(self, message: str, error: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.error = error or {}


class ServeClient:
    """Talks to one daemon, addressed by unix socket or TCP loopback."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout_s: float = 600.0,
        library: Optional[Library] = None,
    ) -> None:
        if (socket_path is None) == (host is None):
            raise ValueError(
                "give exactly one of 'socket_path' and 'host' (+'port')"
            )
        if host is not None and port is None:
            raise ValueError("TCP addressing needs a port")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.library = library

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = self.socket_path or f"{self.host}:{self.port}"
        return f"ServeClient({where!r})"

    # -- transport -----------------------------------------------------

    def _connect(self) -> socket.socket:
        try:
            if self.socket_path is not None:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout_s)
                sock.connect(self.socket_path)
            else:
                sock = socket.create_connection(
                    (self.host, int(self.port or 0)), timeout=self.timeout_s
                )
        except OSError as exc:
            where = self.socket_path or f"{self.host}:{self.port}"
            raise ServeClientError(
                f"cannot reach the serve daemon at {where}: {exc}"
            ) from exc
        return sock

    def request(self, message: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
        """Send one request; yield every event line until the server closes."""
        with self._connect() as sock:
            sock.sendall(encode_line(message))
            with sock.makefile("rb") as stream:
                for raw in stream:
                    if len(raw) > MAX_LINE_BYTES:
                        raise ServeClientError("oversized event line")
                    event = json.loads(raw.decode("utf-8"))
                    if not isinstance(event, dict):
                        raise ServeClientError(f"bad event line: {event!r}")
                    yield event

    def _request_one(self, message: Dict[str, Any]) -> Dict[str, Any]:
        for event in self.request(message):
            if event.get("event") == "error":
                raise ServeClientError(
                    event["error"].get("message", "server error"),
                    error=event.get("error"),
                )
            return event
        raise ServeClientError("server closed the stream without an answer")

    # -- control plane -------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        """Liveness probe; returns the pong event."""
        return self._request_one({"op": "ping"})

    def status(self) -> Dict[str, Any]:
        """The daemon's full observability snapshot."""
        return self._request_one({"op": "status"})

    def metrics(self) -> Dict[str, Any]:
        """The unified obs snapshot (``repro.obs.serve_metrics`` shape)."""
        return self._request_one({"op": "metrics"})["metrics"]

    def shutdown(self, drain: bool = True) -> Dict[str, Any]:
        """Ask the daemon to stop (drained by default); returns its ack."""
        return self._request_one({"op": "shutdown", "drain": drain})

    def wait_ready(self, timeout_s: float = 10.0) -> Dict[str, Any]:
        """Poll ``ping`` until the daemon answers (startup handshake)."""
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                return self.ping()
            except (OSError, ServeClientError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    # -- work ----------------------------------------------------------

    def submit_events(
        self,
        kind: str,
        spec: Union[Job, SweepSpec, Dict[str, Any]],
        priority: int = 0,
        no_cache: bool = False,
    ) -> Iterator[Dict[str, Any]]:
        """Submit one job; yield the raw event stream as it arrives."""
        if isinstance(spec, (Job, SweepSpec)):
            spec = spec.to_dict()
        field = "spec" if kind == "sweep" else "job"
        message: Dict[str, Any] = {
            "op": "submit",
            "kind": kind,
            field: spec,
            "priority": int(priority),
        }
        if no_cache:
            message["no_cache"] = True
        return self.request(message)

    def submit(
        self,
        kind: str,
        spec: Union[Job, SweepSpec, Dict[str, Any]],
        priority: int = 0,
        no_cache: bool = False,
        on_event: Optional[EventFn] = None,
    ) -> Dict[str, Any]:
        """Submit and wait; return the terminal ``done`` event.

        ``on_event`` observes every intermediate event (queued, started,
        per-point progress).  An error event raises
        :class:`ServeClientError`.
        """
        for event in self.submit_events(
            kind, spec, priority=priority, no_cache=no_cache
        ):
            name = event.get("event")
            if name == "error":
                raise ServeClientError(
                    event["error"].get("message", "job failed"),
                    error=event.get("error"),
                )
            if name == "done":
                return event
            if on_event is not None:
                on_event(event)
        raise ServeClientError("server closed the stream before completion")

    def submit_record(
        self,
        kind: str,
        spec: Union[Job, SweepSpec, Dict[str, Any]],
        priority: int = 0,
        no_cache: bool = False,
        on_event: Optional[EventFn] = None,
    ) -> RunRecord:
        """Submit, wait, and rebuild the typed :class:`RunRecord`."""
        done = self.submit(
            kind, spec, priority=priority, no_cache=no_cache, on_event=on_event
        )
        return RunRecord.from_dict(done["record"], library=self.library)
