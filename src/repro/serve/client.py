"""Blocking client for the serve daemon (the ``pops submit`` surface).

One request per connection: the client opens the socket, writes one
NDJSON line, then consumes the server's event stream.  No asyncio on
this side -- plain sockets, so the client is trivially usable from
scripts, tests, thread pools and other processes.

Resilience: :meth:`ServeClient.submit` survives a dropped event stream
by reconnecting under the client's :class:`~repro.resilience.RetryPolicy`
and resubmitting the *same* spec.  Resubmission is idempotent by
construction -- the job-spec key is a content hash, so the repeat either
coalesces onto the still-running ticket or is served from the result
store -- which is why a blind resubmit is safe.  Transport failures
(connect refused, mid-stream close) retry; a structured error *event*
from the server is an answer, not an outage, and never retries.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Callable, Dict, Iterator, Optional, Union

from repro.api.job import Job, SweepSpec
from repro.api.records import RunRecord
from repro.cells.library import Library
from repro.resilience import RetryPolicy, faults
from repro.serve.protocol import MAX_LINE_BYTES, encode_line, job_spec_key

#: Optional per-event observer (progress rendering, logging).
EventFn = Callable[[Dict[str, Any]], None]


class ServeClientError(RuntimeError):
    """The server answered with an error event (or the stream broke).

    ``error`` carries the server's ``{"type": ..., "message": ...}``
    block when one was received.  ``transient`` marks transport-level
    failures (connect refused, stream dropped mid-answer) that a
    resubmit can heal; a server-sent error event is final.
    """

    def __init__(
        self,
        message: str,
        error: Optional[Dict[str, Any]] = None,
        transient: bool = False,
    ):
        super().__init__(message)
        self.error = error or {}
        self.transient = transient


class ServeClient:
    """Talks to one daemon, addressed by unix socket or TCP loopback."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout_s: float = 600.0,
        library: Optional[Library] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if (socket_path is None) == (host is None):
            raise ValueError(
                "give exactly one of 'socket_path' and 'host' (+'port')"
            )
        if host is not None and port is None:
            raise ValueError("TCP addressing needs a port")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.library = library
        #: Backoff policy shared by submit-resume and ``wait_ready``.
        self.retry = retry if retry is not None else RetryPolicy()
        #: Transport-level reconnect-and-resubmit count (observability).
        self.reconnects = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = self.socket_path or f"{self.host}:{self.port}"
        return f"ServeClient({where!r})"

    # -- transport -----------------------------------------------------

    def _connect(self) -> socket.socket:
        try:
            if self.socket_path is not None:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout_s)
                sock.connect(self.socket_path)
            else:
                sock = socket.create_connection(
                    (self.host, int(self.port or 0)), timeout=self.timeout_s
                )
        except OSError as exc:
            where = self.socket_path or f"{self.host}:{self.port}"
            raise ServeClientError(
                f"cannot reach the serve daemon at {where}: {exc}",
                transient=True,
            ) from exc
        return sock

    def request(self, message: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
        """Send one request; yield every event line until the server closes."""
        with self._connect() as sock:
            sock.sendall(encode_line(message))
            with sock.makefile("rb") as stream:
                for raw in stream:
                    if len(raw) > MAX_LINE_BYTES:
                        raise ServeClientError("oversized event line")
                    event = json.loads(raw.decode("utf-8"))
                    if not isinstance(event, dict):
                        raise ServeClientError(f"bad event line: {event!r}")
                    if faults.fire(faults.SITE_STREAM_DROP) is not None:
                        # Injected socket drop: ``after=N`` delivers N
                        # events, then the connection dies before the
                        # next one reaches the consumer.
                        raise ConnectionResetError(
                            "injected stream drop (fault plan)"
                        )
                    yield event

    def _request_one(self, message: Dict[str, Any]) -> Dict[str, Any]:
        for event in self.request(message):
            if event.get("event") == "error":
                raise ServeClientError(
                    event["error"].get("message", "server error"),
                    error=event.get("error"),
                )
            return event
        raise ServeClientError("server closed the stream without an answer")

    # -- control plane -------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        """Liveness probe; returns the pong event."""
        return self._request_one({"op": "ping"})

    def status(self) -> Dict[str, Any]:
        """The daemon's full observability snapshot."""
        return self._request_one({"op": "status"})

    def metrics(self) -> Dict[str, Any]:
        """The unified obs snapshot (``repro.obs.serve_metrics`` shape)."""
        return self._request_one({"op": "metrics"})["metrics"]

    def shutdown(self, drain: bool = True) -> Dict[str, Any]:
        """Ask the daemon to stop (drained by default); returns its ack."""
        return self._request_one({"op": "shutdown", "drain": drain})

    def cancel(self, key: str) -> bool:
        """Withdraw a queued job by its spec key; ``True`` on success.

        A job already running (or unknown to the daemon) answers
        ``False`` -- started work cannot be interrupted.
        """
        event = self._request_one({"op": "cancel", "key": key})
        return bool(event.get("cancelled"))

    def wait_ready(self, timeout_s: float = 10.0) -> Dict[str, Any]:
        """Poll ``ping`` until the daemon answers (startup handshake).

        Backs off under the client's shared :class:`RetryPolicy` (its
        delay schedule, repeated past its attempt budget until the
        deadline).  On giving up, the raised :class:`ServeClientError`
        carries the *last underlying error* -- the difference between
        "socket file does not exist yet" and "connection refused" is
        exactly what you need when a daemon fails to come up.
        """
        deadline = time.monotonic() + timeout_s
        delays = self.retry.delays()
        delay = self.retry.base_s
        last: Optional[BaseException] = None
        while True:
            try:
                return self.ping()
            except (OSError, ServeClientError) as exc:
                last = exc
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeClientError(
                    f"serve daemon not ready after {timeout_s:g}s "
                    f"(last error: {last})",
                    transient=True,
                ) from last
            try:
                delay = next(delays)
            except StopIteration:
                pass  # keep repeating the final (capped) delay
            time.sleep(min(delay, max(0.0, remaining)))

    # -- work ----------------------------------------------------------

    @staticmethod
    def spec_key(
        kind: str, spec: Union[Job, SweepSpec, Dict[str, Any]]
    ) -> str:
        """The job-spec hash a submit of this work would be filed under.

        Computable client-side (it is a pure content hash), so a caller
        can :meth:`cancel` or correlate store entries without waiting
        for the server's ``queued`` event.
        """
        if isinstance(spec, (Job, SweepSpec)):
            spec = spec.to_dict()
        return job_spec_key(kind, spec)

    def submit_events(
        self,
        kind: str,
        spec: Union[Job, SweepSpec, Dict[str, Any]],
        priority: int = 0,
        no_cache: bool = False,
        timeout_s: Optional[float] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Submit one job; yield the raw event stream as it arrives.

        ``timeout_s`` here is the *job deadline* enforced server-side
        (the constructor's ``timeout_s`` is the socket timeout).  The
        raw stream does not reconnect -- resume-on-drop lives in
        :meth:`submit`.
        """
        return self.request(
            self._submit_message(kind, spec, priority, no_cache, timeout_s)
        )

    def _submit_message(
        self,
        kind: str,
        spec: Union[Job, SweepSpec, Dict[str, Any]],
        priority: int,
        no_cache: bool,
        timeout_s: Optional[float],
    ) -> Dict[str, Any]:
        if isinstance(spec, (Job, SweepSpec)):
            spec = spec.to_dict()
        field = "spec" if kind == "sweep" else "job"
        message: Dict[str, Any] = {
            "op": "submit",
            "kind": kind,
            field: spec,
            "priority": int(priority),
        }
        if no_cache:
            message["no_cache"] = True
        if timeout_s is not None:
            message["timeout_s"] = float(timeout_s)
        return message

    def _consume(
        self, message: Dict[str, Any], on_event: Optional[EventFn]
    ) -> Dict[str, Any]:
        """Drive one submit stream to its terminal event."""
        for event in self.request(message):
            name = event.get("event")
            if name == "error":
                raise ServeClientError(
                    event.get("error", {}).get("message", "job failed"),
                    error=event.get("error"),
                )
            if name == "done":
                return event
            if on_event is not None:
                on_event(event)
        raise ServeClientError(
            "server closed the stream before completion", transient=True
        )

    def submit(
        self,
        kind: str,
        spec: Union[Job, SweepSpec, Dict[str, Any]],
        priority: int = 0,
        no_cache: bool = False,
        on_event: Optional[EventFn] = None,
        timeout_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Submit and wait; return the terminal ``done`` event.

        ``on_event`` observes every intermediate event (queued, started,
        per-point progress).  ``timeout_s`` is the server-side job
        deadline.  An error *event* raises :class:`ServeClientError`
        immediately; a *transport* failure (daemon unreachable, stream
        dropped mid-answer) reconnects under the retry policy and
        resubmits the same spec -- idempotent because the repeat
        coalesces or hits the result store.
        """
        message = self._submit_message(kind, spec, priority, no_cache, timeout_s)
        delays = self.retry.delays()
        while True:
            try:
                return self._consume(message, on_event)
            except ServeClientError as exc:
                if not exc.transient:
                    raise
                last: BaseException = exc
            except (ConnectionError, OSError) as exc:
                last = exc
            try:
                delay = next(delays)
            except StopIteration:
                raise ServeClientError(
                    f"gave up after {self.retry.attempts} attempt(s): {last}",
                    transient=True,
                ) from last
            self.reconnects += 1
            time.sleep(delay)

    def submit_record(
        self,
        kind: str,
        spec: Union[Job, SweepSpec, Dict[str, Any]],
        priority: int = 0,
        no_cache: bool = False,
        on_event: Optional[EventFn] = None,
        timeout_s: Optional[float] = None,
    ) -> RunRecord:
        """Submit, wait, and rebuild the typed :class:`RunRecord`."""
        done = self.submit(
            kind,
            spec,
            priority=priority,
            no_cache=no_cache,
            on_event=on_event,
            timeout_s=timeout_s,
        )
        return RunRecord.from_dict(done["record"], library=self.library)
