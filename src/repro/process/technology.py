"""Technology descriptors for the closed-form delay model and the simulator.

The paper's delay model (eqs. 1-3) is parameterised by a handful of
process-level constants:

* ``tau_ps`` -- the process time unit :math:`\\tau` that scales every
  transition time (eq. 2).
* ``r_ratio`` -- ``R``, the ratio of the current available in an N
  transistor to that of a P transistor of identical width.
* ``vtn`` / ``vtp`` -- threshold voltages, entering the delay through the
  reduced values ``v_T = V_T / V_DD`` (eq. 1).
* capacitance densities used to convert between input capacitance (the
  sizing variable) and transistor widths (the area/power metric ``sum W``).

The default :data:`CMOS025` instance is calibrated to public 0.25 um
numbers (VDD = 2.5 V, VT = 0.5 V).  Absolute picoseconds differ from the
authors' foundry kit, but every metric the paper reports is a ratio, so the
reproduction only depends on the model structure.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Technology:
    """Immutable bundle of process constants.

    Attributes
    ----------
    name:
        Human readable identifier, e.g. ``"cmos025"``.
    vdd:
        Supply voltage in volts.
    vtn:
        NMOS threshold voltage in volts (positive).
    vtp:
        PMOS threshold voltage magnitude in volts (positive).
    tau_ps:
        Process time unit :math:`\\tau` in picoseconds.  It characterises
        the intrinsic switching speed of the process (eq. 2 of the paper).
    r_ratio:
        ``R`` -- N over P current ratio for identical width and load.
    c_gate_ff_per_um:
        Gate (input) capacitance per micron of transistor width, in fF/um.
    c_junction_ff_per_um:
        Drain junction (parasitic output) capacitance per micron, in fF/um.
    w_min_um:
        Minimum drawn transistor width in microns.  Sets the minimum
        available drive ``CREF`` together with the cell geometry.
    mobility_exponent:
        Alpha of the Sakurai--Newton alpha-power law used by the
        transistor-level simulator (velocity saturation index).
    """

    name: str
    vdd: float
    vtn: float
    vtp: float
    tau_ps: float
    r_ratio: float
    c_gate_ff_per_um: float
    c_junction_ff_per_um: float
    w_min_um: float
    mobility_exponent: float = 1.3

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise ValueError(f"vdd must be positive, got {self.vdd}")
        if not 0 < self.vtn < self.vdd:
            raise ValueError(f"vtn must lie in (0, vdd), got {self.vtn}")
        if not 0 < self.vtp < self.vdd:
            raise ValueError(f"vtp must lie in (0, vdd), got {self.vtp}")
        if self.tau_ps <= 0:
            raise ValueError(f"tau_ps must be positive, got {self.tau_ps}")
        if self.r_ratio <= 0:
            raise ValueError(f"r_ratio must be positive, got {self.r_ratio}")
        if self.c_gate_ff_per_um <= 0:
            raise ValueError("c_gate_ff_per_um must be positive")
        if self.c_junction_ff_per_um < 0:
            raise ValueError("c_junction_ff_per_um must be non-negative")
        if self.w_min_um <= 0:
            raise ValueError("w_min_um must be positive")

    @property
    def vtn_reduced(self) -> float:
        """Reduced NMOS threshold ``v_TN = V_TN / V_DD`` (eq. 1)."""
        return self.vtn / self.vdd

    @property
    def vtp_reduced(self) -> float:
        """Reduced PMOS threshold ``v_TP = |V_TP| / V_DD`` (eq. 1)."""
        return self.vtp / self.vdd

    def width_for_cin(self, cin_ff: float) -> float:
        """Total transistor width (um) presenting ``cin_ff`` of input cap.

        The area metric of the paper is the sum of transistor widths
        ``sum W``; sizing works on input capacitances, and this converts
        back: ``C_IN = c_gate * (W_N + W_P)``.
        """
        if cin_ff < 0:
            raise ValueError(f"cin_ff must be non-negative, got {cin_ff}")
        return cin_ff / self.c_gate_ff_per_um

    def cin_for_width(self, width_um: float) -> float:
        """Input capacitance (fF) of ``width_um`` total gate width."""
        if width_um < 0:
            raise ValueError(f"width_um must be non-negative, got {width_um}")
        return width_um * self.c_gate_ff_per_um

    def scaled(self, **overrides: float) -> "Technology":
        """Return a copy with selected fields replaced (corner modelling)."""
        return replace(self, **overrides)


#: Default process of the paper: 0.25 um CMOS, 2.5 V.
CMOS025 = Technology(
    name="cmos025",
    vdd=2.5,
    vtn=0.50,
    vtp=0.55,
    tau_ps=14.5,
    r_ratio=2.4,
    c_gate_ff_per_um=1.80,
    c_junction_ff_per_um=1.10,
    w_min_um=0.60,
    mobility_exponent=1.30,
)

#: A faster node, used by scaling studies and tests only.
CMOS018 = Technology(
    name="cmos018",
    vdd=1.8,
    vtn=0.42,
    vtp=0.46,
    tau_ps=9.5,
    r_ratio=2.2,
    c_gate_ff_per_um=1.45,
    c_junction_ff_per_um=0.95,
    w_min_um=0.42,
    mobility_exponent=1.25,
)

#: An even faster node for scaling studies.
CMOS013 = Technology(
    name="cmos013",
    vdd=1.3,
    vtn=0.34,
    vtp=0.36,
    tau_ps=6.0,
    r_ratio=2.0,
    c_gate_ff_per_um=1.20,
    c_junction_ff_per_um=0.80,
    w_min_um=0.30,
    mobility_exponent=1.20,
)
