"""Calibration of the closed-form model constants from device physics.

The paper calibrates ``tau`` and ``R`` from SPICE on the target process
(ref. [14], Maurine et al., TCAD 2002).  We mirror that flow: given the
alpha-power device parameters, recover the effective ``tau`` and ``R``
seen by the linear transition-time model (eq. 2), so the analytical and
transistor-level halves of the repository agree by construction.

This module is deliberately independent of :mod:`repro.spice` (which would
be a circular import); it uses the same device equations directly on the
canonical step-response integral of an inverter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.process.technology import Technology
from repro.process.transistor import MosfetParams, drain_current, nmos_for, pmos_for


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a ``tau``/``R`` extraction.

    Attributes
    ----------
    tau_ps:
        Extracted process time unit (ps).
    r_ratio:
        Extracted N/P current ratio.
    tau_model_ps:
        The value carried by the technology descriptor, for comparison.
    r_model:
        The descriptor's ``R``, for comparison.
    """

    tau_ps: float
    r_ratio: float
    tau_model_ps: float
    r_model: float

    @property
    def tau_error(self) -> float:
        """Relative mismatch between extracted and descriptor ``tau``."""
        return abs(self.tau_ps - self.tau_model_ps) / self.tau_model_ps

    @property
    def r_error(self) -> float:
        """Relative mismatch between extracted and descriptor ``R``."""
        return abs(self.r_ratio - self.r_model) / self.r_model


def _step_discharge_time(
    params: MosfetParams,
    width_um: float,
    cap_ff: float,
    vdd: float,
    v_from: float,
    v_to: float,
    n_steps: int = 400,
) -> float:
    """Time (ps) for the device to move the node from ``v_from`` to ``v_to``.

    Integrates ``t = C * integral dV / I(V)`` with the gate held at full
    overdrive (step input), using the trapezoidal rule.  ``v_from`` and
    ``v_to`` are node voltages referenced so that ``vds`` = node voltage.
    """
    if v_from <= v_to:
        raise ValueError("v_from must exceed v_to for a discharge integral")
    volts = np.linspace(v_from, v_to, n_steps)
    currents = np.array([drain_current(params, width_um, vdd, max(v, 1e-9)) for v in volts])
    inv_i = 1.0 / np.maximum(currents, 1e-12)
    # fF * V / mA = ps.  (numpy 2 renamed trapz -> trapezoid.)
    trapezoid = getattr(np, "trapezoid", None) or np.trapz
    return float(cap_ff * trapezoid(inv_i, -volts))


def calibrate_tau_and_r(tech: Technology, fanout: float = 4.0) -> CalibrationResult:
    """Extract ``tau`` and ``R`` from the alpha-power devices.

    Mirrors the paper's calibration: the output transition time of an
    inverter under a fast input is ``tau_out = S * tau * C_L / C_IN`` with
    ``S_HL = (1 + k) / 2`` for an inverter (see
    :meth:`repro.cells.cell.Cell.s_hl`).  We simulate the 80%-20% step
    discharge of a fanout-``fanout`` inverter, convert to a full-swing
    equivalent transition, and invert the formula for ``tau``.  ``R`` is
    read directly off the device saturation currents.
    """
    if fanout <= 0:
        raise ValueError(f"fanout must be positive, got {fanout}")
    nmos = nmos_for(tech)
    pmos = pmos_for(tech)
    k = 2.0  # canonical inverter P/N ratio used by the default library
    wn = 2.0  # um; arbitrary, cancels out
    wp = k * wn
    cin = tech.cin_for_width(wn + wp)
    cload = fanout * cin

    # 80 -> 20 % discharge through the NMOS, extrapolated to full swing.
    t_80_20 = _step_discharge_time(nmos, wn, cload, tech.vdd, 0.8 * tech.vdd, 0.2 * tech.vdd)
    tau_out_hl = t_80_20 / 0.6
    s_hl = (1.0 + k) / 2.0
    tau_ps = tau_out_hl / (s_hl * (cload / cin))

    i_n = drain_current(nmos, 1.0, tech.vdd, tech.vdd)
    i_p = drain_current(pmos, 1.0, tech.vdd, tech.vdd)
    r_ratio = i_n / i_p

    return CalibrationResult(
        tau_ps=tau_ps,
        r_ratio=r_ratio,
        tau_model_ps=tech.tau_ps,
        r_model=tech.r_ratio,
    )
