"""Process-level substrate: technology descriptors and transistor models.

The paper evaluates on an (unnamed) industrial 0.25 um CMOS process.  We
substitute a parametric :class:`~repro.process.technology.Technology`
descriptor calibrated to public 0.25 um numbers, plus a Sakurai--Newton
alpha-power MOSFET model used by the transistor-level reference simulator
(:mod:`repro.spice`).
"""

from repro.process.technology import CMOS025, CMOS018, CMOS013, Technology
from repro.process.transistor import (
    MosfetParams,
    drain_current,
    nmos_for,
    pmos_for,
    saturation_voltage,
)
from repro.process.calibration import CalibrationResult, calibrate_tau_and_r

__all__ = [
    "Technology",
    "CMOS025",
    "CMOS018",
    "CMOS013",
    "MosfetParams",
    "drain_current",
    "saturation_voltage",
    "nmos_for",
    "pmos_for",
    "calibrate_tau_and_r",
    "CalibrationResult",
]
