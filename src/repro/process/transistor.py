"""Sakurai--Newton alpha-power-law MOSFET model.

The paper validates its closed-form delay expressions against HSPICE on a
0.25 um process.  We cannot run HSPICE, so :mod:`repro.spice` integrates the
gate networks with this classic short-channel analytical device model
(T. Sakurai, A.R. Newton, "Alpha-power law MOSFET model and its applications
to CMOS inverter delay", JSSC 1990).  It captures velocity saturation, which
is what makes 0.25 um delays deviate from the square-law model, and is
entirely self-contained.

Currents are expressed in mA for widths in um and voltages in V, so that
``t = C dV / I`` comes out in nanoseconds for capacitances in pF -- the
simulator works in (fF, ps) and rescales accordingly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.process.technology import Technology

#: Saturation-to-average switching current correction (triode-region
#: shortfall of the alpha-power device over a full output swing).
CURRENT_SHAPE_FACTOR = 1.33


@dataclass(frozen=True)
class MosfetParams:
    """Alpha-power-law parameters of a device family (NMOS or PMOS).

    Attributes
    ----------
    polarity:
        ``"n"`` or ``"p"``.
    vt:
        Threshold voltage magnitude in volts.
    beta_ma_per_um:
        Saturation transconductance: ``I_sat = beta * W * (Vgst)**alpha``
        in mA for W in um.
    alpha:
        Velocity-saturation index (2 = long channel, ~1.2-1.4 at 0.25 um).
    vd0_per_vgst:
        Saturation drain voltage coefficient: ``V_D0 = K * Vgst**(alpha/2)``.
    """

    polarity: str
    vt: float
    beta_ma_per_um: float
    alpha: float
    vd0_per_vgst: float = 0.5

    def __post_init__(self) -> None:
        if self.polarity not in ("n", "p"):
            raise ValueError(f"polarity must be 'n' or 'p', got {self.polarity!r}")
        if self.vt <= 0:
            raise ValueError(f"vt must be positive, got {self.vt}")
        if self.beta_ma_per_um <= 0:
            raise ValueError("beta_ma_per_um must be positive")
        if self.alpha < 1.0:
            raise ValueError(f"alpha must be >= 1, got {self.alpha}")


def saturation_voltage(params: MosfetParams, vgst: float) -> float:
    """Drain saturation voltage ``V_D0`` for gate overdrive ``vgst``."""
    if vgst <= 0:
        return 0.0
    return params.vd0_per_vgst * vgst ** (params.alpha / 2.0)


def drain_current(params: MosfetParams, width_um: float, vgs: float, vds: float) -> float:
    """Drain current (mA) of a device of ``width_um`` microns.

    ``vgs`` and ``vds`` are magnitudes (the caller handles PMOS sign
    conventions).  Cut-off below threshold; Sakurai--Newton triode below
    ``V_D0``; constant saturation current above.
    """
    if width_um < 0:
        raise ValueError(f"width_um must be non-negative, got {width_um}")
    vgst = vgs - params.vt
    if vgst <= 0 or vds <= 0 or width_um == 0:
        return 0.0
    i_sat = params.beta_ma_per_um * width_um * vgst**params.alpha
    vd0 = saturation_voltage(params, vgst)
    if vds >= vd0 or vd0 == 0:
        return i_sat
    x = vds / vd0
    return i_sat * x * (2.0 - x)


def nmos_for(tech: Technology) -> MosfetParams:
    """NMOS parameters consistent with a technology descriptor.

    The transconductance is derived from the process time unit so that the
    simulator and the closed-form model live on the same speed scale: the
    eq. 2 transition time ``S_HL * tau * C_L / C_IN`` of an inverter must
    match its physical full-swing discharge time ``C_L * V_DD / I_N``.
    """
    vgst = tech.vdd - tech.vtn
    if vgst <= 0:
        raise ValueError("technology has vtn >= vdd")
    # Consistency with eq. 2: the full-swing discharge time C_L*V_DD/I of
    # an inverter must equal S_HL*tau*C_L/C_IN with S_HL = (1+k)/2, which
    # pins the unit current at 2*c_gate*V_DD/tau per micron of N width.
    # The device spends part of the swing in the triode region where it
    # delivers less than I_sat; CURRENT_SHAPE_FACTOR compensates so the
    # *effective* switching current honours the identity (calibrated on
    # step-response inverter transients, see repro.process.calibration).
    # (fF * V / ps = mA.)
    i_unit = (
        CURRENT_SHAPE_FACTOR * 2.0 * tech.c_gate_ff_per_um * tech.vdd / tech.tau_ps
    )
    beta = i_unit / vgst**tech.mobility_exponent
    return MosfetParams(
        polarity="n",
        vt=tech.vtn,
        beta_ma_per_um=beta,
        alpha=tech.mobility_exponent,
        vd0_per_vgst=0.5,
    )


def pmos_for(tech: Technology) -> MosfetParams:
    """PMOS parameters: NMOS transconductance divided by ``R``."""
    n = nmos_for(tech)
    vgst_n = tech.vdd - tech.vtn
    vgst_p = tech.vdd - tech.vtp
    if vgst_p <= 0:
        raise ValueError("technology has vtp >= vdd")
    # Keep I_p(W) = I_n(W) / R at full overdrive despite differing VT.
    beta_p = n.beta_ma_per_um * vgst_n**n.alpha / (tech.r_ratio * vgst_p**n.alpha)
    return MosfetParams(
        polarity="p",
        vt=tech.vtp,
        beta_ma_per_um=beta_p,
        alpha=n.alpha,
        vd0_per_vgst=0.5,
    )


def unit_saturation_current(params: MosfetParams, vdd: float) -> float:
    """Saturation current (mA) of a 1 um device at full gate overdrive."""
    return drain_current(params, 1.0, vdd, vdd)


def effective_resistance(params: MosfetParams, width_um: float, vdd: float) -> float:
    """Switching-average effective resistance (kOhm) of the device.

    Classic approximation: average of ``V/I`` at ``vds = vdd`` and
    ``vds = vdd/2``.  Used by quick RC estimates and sanity tests; the
    transient simulator integrates the full nonlinear current instead.
    """
    if width_um <= 0:
        raise ValueError("width_um must be positive")
    i_full = drain_current(params, width_um, vdd, vdd)
    i_half = drain_current(params, width_um, vdd, vdd / 2.0)
    if i_full <= 0 or i_half <= 0:
        return math.inf
    return 0.5 * (vdd / i_full + (vdd / 2.0) / i_half)
