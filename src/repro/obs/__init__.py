"""``repro.obs``: tracing, metrics and per-run telemetry (stdlib-only).

The observability layer the rest of the stack threads through:

* :class:`Tracer` / :data:`NULL_TRACER` -- hierarchical spans with a
  single-attribute-check disabled path (:mod:`repro.obs.trace`);
* :class:`Stopwatch` -- the shared wall-clock helper replacing
  hand-rolled ``perf_counter`` pairs;
* :class:`MetricsRegistry` plus the :func:`session_metrics` /
  :func:`serve_metrics` unified snapshots (:mod:`repro.obs.metrics`);
* :class:`OptimizerTelemetry` -- the per-pass optimizer story recorded
  into ``RunRecord`` envelopes (:mod:`repro.obs.telemetry`);
* the ``pops trace`` renderers (:mod:`repro.obs.report`).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    hit_rate,
    serve_metrics,
    session_metrics,
)
from repro.obs.report import render_record_telemetry, render_spans
from repro.obs.telemetry import OptimizerTelemetry, PassTelemetry
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Stopwatch,
    Tracer,
    load_trace_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "OptimizerTelemetry",
    "PassTelemetry",
    "Span",
    "Stopwatch",
    "Tracer",
    "hit_rate",
    "load_trace_jsonl",
    "render_record_telemetry",
    "render_spans",
    "serve_metrics",
    "session_metrics",
]
