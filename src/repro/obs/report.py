"""Human-readable rendering for traces and recorded telemetry.

Backs ``pops trace``: :func:`render_spans` draws the span tree (with a
cumulative per-name summary) from a JSONL trace file, and
:func:`render_record_telemetry` prints the pass-by-pass optimizer story
embedded in a serialized :class:`~repro.api.records.RunRecord`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:9.3f} ms"


def _fmt_attrs(attrs: Dict[str, Any], limit: int = 4) -> str:
    if not attrs:
        return ""
    parts = []
    for i, (key, value) in enumerate(sorted(attrs.items())):
        if i == limit:
            parts.append("...")
            break
        if isinstance(value, float):
            value = f"{value:.4g}"
        parts.append(f"{key}={value}")
    return "  [" + " ".join(parts) + "]"


def render_spans(spans: List[Dict[str, Any]], max_rows: int = 200) -> str:
    """The span tree plus a per-name cumulative summary, as text.

    Parameters
    ----------
    spans:
        Span dicts as written by ``Tracer.export_jsonl`` (and read back
        by ``load_trace_jsonl``).
    max_rows:
        Tree rows rendered before eliding the remainder (the summary
        always covers every span).
    """
    if not spans:
        return "empty trace (0 spans)"
    children: Dict[Any, List[Dict[str, Any]]] = defaultdict(list)
    ids = {span.get("id") for span in spans}
    roots: List[Dict[str, Any]] = []
    for span in spans:
        parent = span.get("parent")
        if parent is None or parent not in ids:
            roots.append(span)
        else:
            children[parent].append(span)

    def sort_key(span: Dict[str, Any]) -> Any:
        return (span.get("t0_s", 0.0), span.get("id", 0))

    lines: List[str] = []
    elided = [0]

    def walk(span: Dict[str, Any], depth: int) -> None:
        if len(lines) >= max_rows:
            elided[0] += 1
        else:
            dur = float(span.get("dur_s", 0.0))
            lines.append(
                f"{_fmt_ms(dur)}  "
                + "  " * depth
                + str(span.get("name", "?"))
                + _fmt_attrs(span.get("attrs") or {})
            )
        for child in sorted(children[span.get("id")], key=sort_key):
            walk(child, depth + 1)

    for root in sorted(roots, key=sort_key):
        walk(root, 0)
    if elided[0]:
        lines.append(f"... {elided[0]} more spans elided")

    totals: Dict[str, List[float]] = defaultdict(lambda: [0, 0.0])
    for span in spans:
        entry = totals[str(span.get("name", "?"))]
        entry[0] += 1
        entry[1] += float(span.get("dur_s", 0.0))
    lines.append("")
    lines.append(f"{len(spans)} spans; cumulative by name:")
    ranked = sorted(totals.items(), key=lambda kv: -kv[1][1])
    for name, (count, total) in ranked:
        lines.append(f"  {_fmt_ms(total)}  {count:6d}x  {name}")
    return "\n".join(lines)


def render_record_telemetry(record: Dict[str, Any]) -> str:
    """The telemetry story of a serialized ``RunRecord``, as text.

    Renders the envelope header (kind, job, timing) and, when the
    record carries a ``"telemetry"`` block, the per-pass delay
    trajectory / move-accounting table, the rollback verdict and the
    rescue-buffer outcome.
    """
    lines: List[str] = []
    job = record.get("job") or {}
    lines.append(f"record   : {record.get('kind', '?')}")
    if job:
        label = job.get("name") or job.get("benchmark") or "?"
        lines.append(f"job      : {label}")
    timing = record.get("timing") or {}
    if timing:
        lines.append(f"elapsed  : {float(timing.get('elapsed_s', 0.0)):.3f} s")
    telemetry = record.get("telemetry")
    if not telemetry:
        lines.append("telemetry: none recorded")
        return "\n".join(lines)
    lines.append(
        "target   : tc = %.1f ps" % float(telemetry.get("tc_ps", 0.0))
    )
    initial = float(telemetry.get("initial_delay_ps", 0.0))
    final = float(telemetry.get("final_delay_ps", 0.0))
    lines.append(
        f"delay    : {initial:.1f} ps -> {final:.1f} ps "
        f"({final - initial:+.1f} ps)"
    )
    lines.append(
        "moves    : %d accepted, %d rejected"
        % (int(telemetry.get("accepted", 0)), int(telemetry.get("rejected", 0)))
    )
    rollback = telemetry.get("rollback", "none")
    if rollback != "none":
        lines.append(
            f"rollback : {rollback} "
            f"({int(telemetry.get('rolled_back_passes', 0))} pass(es) discarded)"
        )
    rescue = telemetry.get("rescue") or {}
    if rescue.get("attempted"):
        gates = rescue.get("gates") or []
        lines.append(
            "rescue   : %d buffer(s), %.1f ps -> %.1f ps"
            % (
                len(gates),
                float(rescue.get("delay_before_ps", 0.0)),
                float(rescue.get("delay_after_ps", 0.0)),
            )
        )
    passes = telemetry.get("passes") or []
    if passes:
        lines.append("")
        lines.append(
            "pass   delay_ps   paths  sized  struct  skipped  elapsed"
        )
        for entry in passes:
            lines.append(
                "%4d   %8.1f   %5d  %5d  %6d  %7d  %6.3fs"
                % (
                    int(entry.get("index", 0)),
                    float(entry.get("critical_delay_ps", 0.0)),
                    int(entry.get("paths_extracted", 0)),
                    int(entry.get("applied_sizing", 0)),
                    int(entry.get("applied_structural", 0)),
                    int(entry.get("skipped", 0)),
                    float(entry.get("elapsed_s", 0.0)),
                )
            )
    return "\n".join(lines)
