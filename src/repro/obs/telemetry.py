"""Per-run optimizer telemetry attached to circuit optimization results.

The circuit-scope optimizer (:func:`repro.protocol.optimizer
.optimize_circuit`) always collects an :class:`OptimizerTelemetry` --
the bookkeeping is a handful of integers per pass, far below timing
noise -- answering the two questions the ad-hoc counters never could:
*where did the delay go, pass by pass* and *why did the run roll back*.

The telemetry rides on ``CircuitOptimizationResult.telemetry`` in
memory and is serialized into the :class:`~repro.api.records.RunRecord`
envelope under the optional top-level ``"telemetry"`` block (next to
``"timing"``, and like it omitted from the byte-stable
``to_dict(with_timing=False)`` form, so every determinism/parity
contract is untouched).  Old readers ignore the unknown key; old
records simply have no telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class PassTelemetry:
    """What one optimizer pass proposed, applied and achieved.

    Attributes
    ----------
    index:
        Zero-based pass number.
    critical_delay_ps:
        Circuit critical delay *after* this pass.
    paths_extracted:
        Candidate critical paths extracted this pass.
    proposed:
        Path optimizations attempted (== paths extracted).
    applied_sizing:
        Paths whose optimized sizes were written back.
    applied_structural:
        Paths that additionally triggered a structural transform.
    skipped:
        Paths skipped (already seen this pass, or no outcome).
    elapsed_s:
        Wall-clock spent in this pass.
    """

    index: int
    critical_delay_ps: float
    paths_extracted: int = 0
    proposed: int = 0
    applied_sizing: int = 0
    applied_structural: int = 0
    skipped: int = 0
    elapsed_s: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-native representation."""
        return {
            "index": self.index,
            "critical_delay_ps": float(self.critical_delay_ps),
            "paths_extracted": self.paths_extracted,
            "proposed": self.proposed,
            "applied_sizing": self.applied_sizing,
            "applied_structural": self.applied_structural,
            "skipped": self.skipped,
            "elapsed_s": float(self.elapsed_s),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PassTelemetry":
        """Rebuild from :meth:`as_dict` output."""
        return cls(
            index=int(data["index"]),
            critical_delay_ps=float(data["critical_delay_ps"]),
            paths_extracted=int(data.get("paths_extracted", 0)),
            proposed=int(data.get("proposed", 0)),
            applied_sizing=int(data.get("applied_sizing", 0)),
            applied_structural=int(data.get("applied_structural", 0)),
            skipped=int(data.get("skipped", 0)),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
        )


@dataclass
class OptimizerTelemetry:
    """The full pass-by-pass story of one circuit optimization run.

    Attributes
    ----------
    tc_ps:
        The cycle-time target the run optimized toward.
    initial_delay_ps:
        Critical delay before the first pass.
    final_delay_ps:
        Critical delay of the returned (best) state.
    passes:
        One :class:`PassTelemetry` per executed pass.
    rollback:
        How the endgame restored the best state: ``"none"`` (last pass
        was the best), ``"sizing"`` (sizes rewound onto an unchanged
        structure) or ``"structural"`` (full circuit snapshot restored).
    rolled_back_passes:
        Passes discarded by that rollback (0 when ``rollback="none"``).
    rescue:
        Rescue-buffer endgame outcome: ``{"attempted": bool,
        "gates": [...], "delay_before_ps": float, "delay_after_ps":
        float}`` (the lists/floats only when attempted).
    """

    tc_ps: float
    initial_delay_ps: float
    final_delay_ps: float = 0.0
    passes: List[PassTelemetry] = field(default_factory=list)
    rollback: str = "none"
    rolled_back_passes: int = 0
    rescue: Dict[str, Any] = field(default_factory=lambda: {"attempted": False})

    @property
    def delay_trajectory_ps(self) -> List[float]:
        """Critical delay after each pass, first pass first."""
        return [p.critical_delay_ps for p in self.passes]

    @property
    def accepted(self) -> int:
        """Total path moves applied across all passes (sizing or structural)."""
        return sum(p.applied_sizing + p.applied_structural for p in self.passes)

    @property
    def rejected(self) -> int:
        """Total path moves proposed but not applied."""
        return sum(
            p.proposed - p.applied_sizing - p.applied_structural
            for p in self.passes
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-native representation (the ``RunRecord`` telemetry block)."""
        return {
            "tc_ps": float(self.tc_ps),
            "initial_delay_ps": float(self.initial_delay_ps),
            "final_delay_ps": float(self.final_delay_ps),
            "delay_trajectory_ps": [float(d) for d in self.delay_trajectory_ps],
            "accepted": self.accepted,
            "rejected": self.rejected,
            "passes": [p.as_dict() for p in self.passes],
            "rollback": self.rollback,
            "rolled_back_passes": self.rolled_back_passes,
            "rescue": dict(self.rescue),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "OptimizerTelemetry":
        """Rebuild from :meth:`as_dict` output (derived fields recomputed)."""
        return cls(
            tc_ps=float(data["tc_ps"]),
            initial_delay_ps=float(data["initial_delay_ps"]),
            final_delay_ps=float(data.get("final_delay_ps", 0.0)),
            passes=[PassTelemetry.from_dict(p) for p in data.get("passes", [])],
            rollback=str(data.get("rollback", "none")),
            rolled_back_passes=int(data.get("rolled_back_passes", 0)),
            rescue=dict(data.get("rescue") or {"attempted": False}),
        )


def telemetry_block(telemetry: Optional[OptimizerTelemetry]) -> Optional[Dict[str, Any]]:
    """The envelope block for a result's telemetry (``None`` passes through)."""
    if telemetry is None:
        return None
    return telemetry.as_dict()
