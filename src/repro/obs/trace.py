"""Hierarchical tracing with near-zero disabled-path overhead.

A :class:`Tracer` records :class:`Span` objects -- named, attributed
intervals measured on the monotonic clock (``time.perf_counter``) --
nested via a per-thread stack so spans opened inside other spans pick up
a parent automatically.  Spans are opened with the :meth:`Tracer.span`
context manager or the :meth:`Tracer.traced` decorator; instantaneous
marks are recorded with :meth:`Tracer.event`.  Finished spans can be
exported as JSON Lines (one span per line) for ``pops trace``.

The :class:`NullTracer` singleton (:data:`NULL_TRACER`) is the default
everywhere tracing is threaded through the stack.  Its fast path is a
single ``enabled`` attribute check: hot kernels guard their
instrumentation with ``if tracer is not None and tracer.enabled`` and
skip all span bookkeeping when tracing is off, which is what keeps the
disabled-tracer overhead on the incremental-STA kernel inside the
benchmark gate (see ``benchmarks/test_perf_obs.py``).

:class:`Stopwatch` is the shared wall-clock helper used by every
Session job method, the sweep runner and the serve executor instead of
hand-rolled ``perf_counter()`` start/stop pairs.
"""

from __future__ import annotations

import functools
import itertools
import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional


class Stopwatch:
    """A started monotonic timer; ``elapsed_s`` reads it without stopping.

    Replaces the hand-rolled ``started = time.perf_counter()`` /
    ``time.perf_counter() - started`` pairs around job bodies::

        sw = Stopwatch()
        ...                     # timed work
        record.elapsed_s = sw.elapsed_s

    Attributes
    ----------
    started : float
        ``time.perf_counter()`` at construction (or last :meth:`restart`).
    """

    __slots__ = ("started",)

    def __init__(self) -> None:
        self.started = time.perf_counter()

    @property
    def elapsed_s(self) -> float:
        """Seconds elapsed since construction (monotonic)."""
        return time.perf_counter() - self.started

    def restart(self) -> None:
        """Reset the start mark to now."""
        self.started = time.perf_counter()


class Span:
    """One named interval on a tracer's timeline.

    Attributes
    ----------
    name : str
        Dotted span name (see the span taxonomy in
        ``docs/ARCHITECTURE.md``), e.g. ``"optimize.pass"``.
    span_id : int
        Identifier unique within the owning tracer.
    parent_id : int or None
        ``span_id`` of the enclosing span on the same thread, or ``None``
        for a root span.
    start_s : float
        Start offset in seconds relative to the tracer's epoch.
    end_s : float or None
        End offset, ``None`` while the span is still open.  Events
        (instantaneous marks) have ``end_s == start_s``.
    attrs : dict
        JSON-native key/value attributes attached at open or during the
        span via :meth:`set`.
    """

    __slots__ = ("name", "span_id", "parent_id", "start_s", "end_s", "attrs")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        start_s: float,
        attrs: Dict[str, Any],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.attrs = attrs

    @property
    def duration_s(self) -> float:
        """Span duration in seconds (0.0 while still open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def set(self, **attrs: Any) -> None:
        """Attach extra attributes to the span while it is open."""
        self.attrs.update(attrs)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native representation (one trace-file line)."""
        return {
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "t0_s": self.start_s,
            "dur_s": self.duration_s,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"dur_s={self.duration_s:.6f})"
        )


class Tracer:
    """Collects hierarchical spans; thread-safe, monotonic-clocked.

    Span nesting is tracked per thread, so concurrent executors (the
    serve thread pools) each build their own well-formed subtree.  All
    clock reads are ``time.perf_counter()`` offsets from the tracer's
    construction epoch; ``epoch_unix`` anchors them to wall time for
    display.

    Attributes
    ----------
    enabled : bool
        ``True`` on real tracers.  Hot paths check only this flag when
        deciding whether to record.
    spans : list of Span
        Finished (and currently open) spans in open order.
    epoch_unix : float
        ``time.time()`` at construction, for absolute timestamps.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._epoch = time.perf_counter()
        self.epoch_unix = time.time()
        self.spans: List[Span] = []

    # -- clock ---------------------------------------------------------

    def now_s(self) -> float:
        """Seconds since the tracer epoch (monotonic)."""
        return time.perf_counter() - self._epoch

    # -- span stack ----------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_span(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a span for the duration of the ``with`` block.

        Parameters
        ----------
        name : str
            Dotted span name.
        **attrs
            JSON-native attributes recorded on the span.

        Yields
        ------
        Span
            The open span; callers may ``.set(...)`` more attributes.
        """
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        with self._lock:
            span = Span(name, next(self._ids), parent, self.now_s(), attrs)
            self.spans.append(span)
        stack.append(span)
        try:
            yield span
        finally:
            span.end_s = self.now_s()
            stack.pop()

    def event(self, name: str, **attrs: Any) -> Span:
        """Record an instantaneous mark under the current span."""
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        with self._lock:
            span = Span(name, next(self._ids), parent, self.now_s(), attrs)
            span.end_s = span.start_s
            self.spans.append(span)
        return span

    def traced(
        self, name: Optional[str] = None, **attrs: Any
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorate a function so every call runs inside a span.

        Parameters
        ----------
        name : str, optional
            Span name; defaults to the function's ``__qualname__``.
        **attrs
            Static attributes recorded on every call's span.
        """

        def decorate(func: Callable[..., Any]) -> Callable[..., Any]:
            span_name = name or func.__qualname__

            @functools.wraps(func)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                if not self.enabled:
                    return func(*args, **kwargs)
                with self.span(span_name, **attrs):
                    return func(*args, **kwargs)

            return wrapper

        return decorate

    # -- export --------------------------------------------------------

    def to_dicts(self) -> List[Dict[str, Any]]:
        """All spans as JSON-native dicts, sorted by start time."""
        with self._lock:
            spans = sorted(self.spans, key=lambda s: (s.start_s, s.span_id))
            return [s.to_dict() for s in spans]

    def export_jsonl(self, path: str) -> int:
        """Write one JSON object per span to ``path``; returns the count.

        The first line is a ``{"trace": ...}`` header carrying the epoch
        so readers can recover absolute times; ``pops trace`` skips it.
        """
        spans = self.to_dicts()
        with open(path, "w", encoding="utf-8") as handle:
            header = {"trace": {"epoch_unix": self.epoch_unix, "spans": len(spans)}}
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for span in spans:
                handle.write(json.dumps(span, sort_keys=True) + "\n")
        return len(spans)


class _NullSpan:
    """The shared do-nothing span yielded by :class:`NullTracer`."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        """Discard attributes."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """Disabled tracer: records nothing, shared no-op span.

    ``enabled`` is ``False`` so instrumented hot paths skip their
    bookkeeping after a single attribute check; the context-manager API
    still works (yielding a shared inert span) so cold paths need no
    conditionals at all.
    """

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:  # type: ignore[override]
        """Return the shared no-op context manager."""
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> _NullSpan:  # type: ignore[override]
        """Discard the event."""
        return _NULL_SPAN

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Always empty."""
        return []

    def export_jsonl(self, path: str) -> int:
        """Write nothing; returns 0."""
        return 0


#: Shared disabled tracer -- the default wherever tracing is optional.
NULL_TRACER = NullTracer()


def load_trace_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read spans back from :meth:`Tracer.export_jsonl` output.

    Header lines (``{"trace": ...}``) are skipped; malformed lines raise
    ``ValueError`` with the offending line number.
    """
    spans: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
            if not isinstance(data, dict):
                raise ValueError(f"{path}:{lineno}: span line is not an object")
            if "trace" in data and "name" not in data:
                continue
            spans.append(data)
    return spans
