"""Named counters, gauges and histograms behind one snapshot schema.

:class:`MetricsRegistry` is the process-local metric store: instruments
are created on first use (``registry.counter("serve.jobs").inc()``) and
:meth:`MetricsRegistry.snapshot` renders everything as one JSON-native
dict.  Metric names are dotted, lowercase, ``<layer>.<thing>[.<unit>]``
-- ``serve.queue_wait_s``, ``sta.update`` -- matching the span taxonomy
(see the Observability section in ``docs/ARCHITECTURE.md``).

:func:`session_metrics` and :func:`serve_metrics` are the unification
layer over the stack's pre-existing ad-hoc stat surfaces
(``SessionStats``, ``BoundedCache.stats``, ``IncrementalSta.stats``,
batch-probe dispatch decisions, ``ServeStats`` / queue / store): they
*read* those surfaces -- no public field changes -- and assemble the one
combined schema that the serve ``metrics`` protocol op and ``pops
status`` report.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, Optional

#: Retained observations per histogram; summaries beyond this window are
#: computed over the most recent values (count/total stay exact).
HISTOGRAM_WINDOW = 4096


def hit_rate(hits: int, misses: int) -> Optional[float]:
    """Hit fraction in ``[0, 1]``, or ``None`` before any lookups."""
    total = hits + misses
    if total == 0:
        return None
    return hits / total


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1)."""
        self.value += n


class Gauge:
    """A point-in-time value, overwritten on every set."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value


class Histogram:
    """Streaming distribution summary over observed floats.

    ``count`` and ``total`` are exact over the histogram's lifetime;
    quantiles come from a bounded window of the most recent
    :data:`HISTOGRAM_WINDOW` observations.
    """

    __slots__ = ("count", "total", "min", "max", "_window")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._window: Deque[float] = deque(maxlen=HISTOGRAM_WINDOW)

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._window.append(value)

    def summary(self) -> Dict[str, Any]:
        """Count, total, min/max/mean and windowed p50/p90/p99."""
        out: Dict[str, Any] = {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": (self.total / self.count) if self.count else None,
        }
        if self._window:
            ordered = sorted(self._window)
            last = len(ordered) - 1
            for label, q in (("p50", 0.50), ("p90", 0.90), ("p99", 0.99)):
                out[label] = ordered[min(last, int(round(q * last)))]
        else:
            out["p50"] = out["p90"] = out["p99"] = None
        return out


class MetricsRegistry:
    """Thread-safe registry of named counters, gauges and histograms.

    Instruments are created lazily on first access and live for the
    registry's lifetime.  One name maps to one instrument kind; asking
    for the same name as a different kind raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_free(self, name: str, table: Dict[str, Any]) -> None:
        for other in (self._counters, self._gauges, self._histograms):
            if other is not table and name in other:
                raise ValueError(f"metric {name!r} already registered as another kind")

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created if absent."""
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._check_free(name, self._counters)
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created if absent."""
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._check_free(name, self._gauges)
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``, created if absent."""
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._check_free(name, self._histograms)
                instrument = self._histograms[name] = Histogram()
            return instrument

    # -- convenience ---------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        """Increment the counter ``name`` by ``n``."""
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name``."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` on the histogram ``name``."""
        self.histogram(name).observe(value)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-native view of every instrument.

        Returns ``{"counters": {name: int}, "gauges": {name: float},
        "histograms": {name: summary}}`` with names sorted for stable
        output.
        """
        with self._lock:
            return {
                "counters": {
                    name: self._counters[name].value
                    for name in sorted(self._counters)
                },
                "gauges": {
                    name: self._gauges[name].value for name in sorted(self._gauges)
                },
                "histograms": {
                    name: self._histograms[name].summary()
                    for name in sorted(self._histograms)
                },
            }


# -- unified snapshots over the pre-existing stat surfaces -------------


def session_metrics(session: Any) -> Dict[str, Any]:
    """One combined metrics view of a live :class:`repro.api.Session`.

    Reads (never mutates) the session's existing surfaces and returns::

        {
          "schema": 1,
          "session": {"counters": ..., "caches": {name: stats+hit_rate}},
          "sta":     {"engines": n, <summed IncrementalStats>,
                      "mean_cone_gates": ...},
          "probe":   <batch-probe dispatch decisions + threshold>,
        }
    """
    from repro.timing import batch_probe

    cache_stats = session.cache_stats()
    sta: Dict[str, Any] = {
        "engines": 0,
        "full_builds": 0,
        "updates": 0,
        "structure_refreshes": 0,
        "gates_reevaluated": 0,
        "cone_truncations": 0,
    }
    for engine in list(session._engines.values()):
        stats = engine.stats
        sta["engines"] += 1
        sta["full_builds"] += stats.full_builds
        sta["updates"] += stats.updates
        sta["structure_refreshes"] += stats.structure_refreshes
        sta["gates_reevaluated"] += stats.gates_reevaluated
        sta["cone_truncations"] += stats.cone_truncations
    sta["mean_cone_gates"] = (
        sta["gates_reevaluated"] / sta["updates"] if sta["updates"] else None
    )
    return {
        "schema": 1,
        "session": {
            "counters": cache_stats["counters"],
            "caches": cache_stats["caches"],
        },
        "sta": sta,
        "probe": batch_probe.DISPATCH_STATS.as_dict(),
    }


def serve_metrics(server: Any) -> Dict[str, Any]:
    """The :func:`session_metrics` view extended with serve-layer state.

    Adds the daemon's job counters (with derived coalescing ratio),
    queue depth / in-flight gauges, executor pool shape, result-store
    counters, the executor's resilience state (retry/breaker/deadline
    configuration, ``resilience.*`` counters) and the server registry's
    lifecycle histograms (``serve.queue_wait_s``, ``serve.exec_s``).
    """
    snap = session_metrics(server.session)
    counters = server.stats.as_dict()
    submitted = counters.get("submitted", 0)
    coalesced = counters.get("coalesced", 0)
    serve: Dict[str, Any] = dict(counters)
    serve["coalescing_ratio"] = coalesced / submitted if submitted else None
    serve["queue_depth"] = server.queue.depth
    serve["inflight"] = len(server._inflight)
    serve["pools"] = server.executor.stats()
    snap["serve"] = serve
    snap["store"] = None if server.store is None else server.store.stats()
    snap["resilience"] = server.executor.resilience_stats()
    snap["timings"] = server.metrics.snapshot()["histograms"]
    return snap
