"""Baseline optimizers: the AMPS-like industrial surrogate and Sutherland."""

from repro.baselines.amps import (
    AmpsResult,
    amps_distribute_constraint,
    amps_minimum_delay,
)
from repro.baselines.sutherland import SutherlandResult, sutherland_distribute

__all__ = [
    "AmpsResult",
    "amps_minimum_delay",
    "amps_distribute_constraint",
    "SutherlandResult",
    "sutherland_distribute",
]
