"""AMPS-like industrial sizing baseline.

The paper compares POPS against AMPS (Synopsys), characterised as an
*iterative* transistor sizer: repeated timing evaluations drive greedy
per-gate size bumps, optionally refined by a pseudo-random phase ("the
minimum value obtained is lower than that resulting from a pseudo-random
sizing technique", Fig. 2).  We cannot run AMPS, so this module implements
that class of algorithm faithfully:

* discrete greedy steepest-descent sizing (TILOS-style multiplicative
  bumps, one gate per iteration, full path re-evaluation each time);
* a seeded pseudo-random perturbation/repair phase;
* area recovery by greedy down-sizing while the constraint holds.

Its *behavioural* signature matches the paper's observations by
construction: hundreds-to-thousands of delay evaluations per path
(vs tens for the constant-sensitivity engine -- the Table 1 CPU gap),
discretisation-limited minimum delay (Fig. 2) and over-sized
constraint solutions (Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.cells.library import Library
from repro.timing.evaluation import path_area_um, path_delay_ps
from repro.timing.path import BoundedPath


@dataclass(frozen=True)
class AmpsResult:
    """Outcome of an AMPS-style run.

    Attributes
    ----------
    delay_ps / area_um / sizes:
        The implementation found.
    evaluations:
        Number of full path delay evaluations spent -- the cost metric
        behind the Table 1 CPU-time comparison.
    met_constraint:
        For constrained runs, whether ``Tc`` was reached.
    """

    delay_ps: float
    area_um: float
    sizes: np.ndarray
    evaluations: int
    met_constraint: bool = True


def amps_minimum_delay(
    path: BoundedPath,
    library: Library,
    step: float = 1.18,
    max_iterations: int = 2000,
    seed: int = 2005,
    random_restarts: int = 2,
) -> AmpsResult:
    """Greedy iterative minimum-delay sizing (the Fig. 2 AMPS column).

    From minimum drives, repeatedly bump the single gate whose
    multiplicative up-size improves the path delay most, until no bump
    helps.  A seeded pseudo-random restart phase then tries to escape the
    discretisation plateau.  The step granularity leaves the result a few
    percent above the true (continuous) optimum.
    """
    if step <= 1.0:
        raise ValueError("step must exceed 1")
    rng = np.random.default_rng(seed)
    n = len(path)
    evaluations = 0

    def delay(sizes: np.ndarray) -> float:
        nonlocal evaluations
        evaluations += 1
        return path_delay_ps(path, sizes, library)

    def greedy_descend(sizes: np.ndarray) -> Tuple[np.ndarray, float]:
        current = sizes.copy()
        t_current = delay(current)
        for _ in range(max_iterations):
            best_gain, best_index = 0.0, -1
            for i in range(1, n):
                trial = current.copy()
                trial[i] *= step
                gain = t_current - delay(trial)
                if gain > best_gain:
                    best_gain, best_index = gain, i
            if best_index < 0:
                break
            current[best_index] *= step
            t_current -= best_gain
        return current, delay(current)

    best_sizes, best_delay = greedy_descend(path.min_sizes(library))

    for _ in range(random_restarts):
        perturbed = best_sizes * rng.uniform(0.7, 1.4, size=n)
        perturbed = path.clamp_sizes(perturbed, library)
        candidate_sizes, candidate_delay = greedy_descend(perturbed)
        if candidate_delay < best_delay:
            best_sizes, best_delay = candidate_sizes, candidate_delay

    return AmpsResult(
        delay_ps=best_delay,
        area_um=path_area_um(path, best_sizes, library),
        sizes=best_sizes,
        evaluations=evaluations,
    )


def amps_distribute_constraint(
    path: BoundedPath,
    library: Library,
    tc_ps: float,
    step: float = 1.18,
    max_iterations: int = 4000,
    seed: int = 2005,
    recovery_sweeps: int = 2,
) -> AmpsResult:
    """TILOS-style constrained sizing with greedy area recovery (Fig. 4).

    Phase 1 bumps the most delay-effective gate until ``Tc`` holds (the
    classic greedy oversizes: it never revisits earlier bumps).  Phase 2
    greedily shrinks gates while the constraint still holds.  Phase 3 is a
    seeded pseudo-random repair sweep.  The result meets timing but at a
    larger ``sum W`` than the constant-sensitivity optimum.
    """
    if tc_ps <= 0:
        raise ValueError("tc_ps must be positive")
    rng = np.random.default_rng(seed)
    n = len(path)
    evaluations = 0

    def delay(sizes: np.ndarray) -> float:
        nonlocal evaluations
        evaluations += 1
        return path_delay_ps(path, sizes, library)

    sizes = path.min_sizes(library)
    t_current = delay(sizes)

    # Phase 1: greedy speed-up until the constraint is met.
    iterations = 0
    while t_current > tc_ps and iterations < max_iterations:
        iterations += 1
        best_ratio, best_index, best_delay = 0.0, -1, t_current
        for i in range(1, n):
            trial = sizes.copy()
            trial[i] *= step
            t_trial = delay(trial)
            gain = t_current - t_trial
            cost = trial[i] - sizes[i]
            ratio = gain / cost if cost > 0 else 0.0
            if ratio > best_ratio:
                best_ratio, best_index, best_delay = ratio, i, t_trial
        if best_index < 0:
            break  # no single bump helps: greedy is stuck
        sizes[best_index] *= step
        t_current = best_delay
    met = t_current <= tc_ps

    # Phase 2: greedy area recovery.  Industrial flows budget a limited
    # number of recovery sweeps (each is a full-path re-evaluation per
    # gate); the residual oversize after that budget is the Fig. 4 gap.
    sweeps = 0
    improved = True
    while improved and met and sweeps < recovery_sweeps:
        sweeps += 1
        improved = False
        order = list(range(1, n))
        rng.shuffle(order)
        for i in order:
            trial = sizes.copy()
            trial[i] /= step
            trial = path.clamp_sizes(trial, library)
            if trial[i] >= sizes[i]:
                continue
            if delay(trial) <= tc_ps:
                sizes = trial
                improved = True
        t_current = delay(sizes)

    return AmpsResult(
        delay_ps=t_current,
        area_um=path_area_um(path, sizes, library),
        sizes=sizes,
        evaluations=evaluations,
        met_constraint=met,
    )
