"""Sutherland / logical-effort constraint distribution (section 3.2).

The paper's reference point for constraint distribution: impose the *same
delay* on every stage (Mead's equal-taper rule generalised by Sutherland's
logical effort).  Fast, but it oversizes gates with large logical weights
-- which is exactly what the constant-sensitivity method fixes (Fig. 3/4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cells.library import Library
from repro.timing.evaluation import evaluate_path, path_area_um, path_delay_ps
from repro.timing.path import BoundedPath


@dataclass(frozen=True)
class SutherlandResult:
    """Equal-stage-delay sizing outcome."""

    delay_ps: float
    area_um: float
    sizes: np.ndarray
    stage_budget_ps: float
    met_constraint: bool


def _sizes_for_budget(
    path: BoundedPath, library: Library, budget_ps: float, sweeps: int = 60
) -> np.ndarray:
    """Sizes giving each stage ``budget_ps`` of delay (fixed point).

    Backward Gauss-Seidel: given the downstream size, each stage's size is
    the one that makes its eq. 1 delay equal to the budget.  Clamped to
    minimum drives (a stage whose minimum delay exceeds the budget simply
    saturates -- equal distribution is then infeasible at that budget).
    """
    n = len(path)
    sizes = path.min_sizes(library)
    # A stage whose side load makes the budget unreachable would drive the
    # fixed point to infinity; the cap makes it saturate at a realistic
    # maximum drive instead (the stage then simply exceeds its budget --
    # equal distribution degrades gracefully rather than failing).
    size_cap = 2e3 * library.cref
    for _ in range(sweeps):
        previous = sizes.copy()
        timing = evaluate_path(path, sizes, library)
        for i in range(n - 1, 0, -1):
            # Stage delay is ~ A_i * C_ext / C_IN + const: invert for C_IN.
            stage_delay = timing.stage_delays_ps[i]
            if stage_delay <= 0:
                continue
            # Delay scales ~ 1/C_IN around the current point for the load
            # term; use a secant update on the dominant dependence.  The
            # taper cap keeps a stage from outgrowing what its driver can
            # charge (otherwise the driver's budget blows up instead).
            scale = stage_delay / budget_ps
            taper_cap = 10.0 * sizes[i - 1]
            sizes[i] = min(sizes[i] * scale, size_cap, taper_cap)
        sizes = path.clamp_sizes(sizes, library)
        if np.allclose(previous, sizes, rtol=1e-7, atol=1e-9):
            break
    return sizes


def sutherland_distribute(
    path: BoundedPath,
    library: Library,
    tc_ps: float,
    max_bisection: int = 50,
) -> SutherlandResult:
    """Meet ``Tc`` by equalising stage delays (the paper's fast baseline).

    Bisects the per-stage budget ``Tc / n`` scale until the total path
    delay matches ``Tc``; every stage then carries (approximately) the
    same delay, regardless of how expensive that is for heavy gates.
    """
    if tc_ps <= 0:
        raise ValueError("tc_ps must be positive")
    n = len(path)

    lo, hi = tc_ps / (8.0 * n), 4.0 * tc_ps / n
    best: Optional[np.ndarray] = None
    best_budget = hi
    for _ in range(max_bisection):
        budget = 0.5 * (lo + hi)
        sizes = _sizes_for_budget(path, library, budget)
        total = path_delay_ps(path, sizes, library)
        if total <= tc_ps:
            best, best_budget = sizes, budget
            lo = budget  # try a lazier (larger-budget, smaller-area) fit
        else:
            hi = budget
        if hi - lo < 1e-6 * tc_ps:
            break

    met = best is not None
    if best is None:
        best = _sizes_for_budget(path, library, tc_ps / n)
        best_budget = tc_ps / n
    total = path_delay_ps(path, best, library)
    return SutherlandResult(
        delay_ps=total,
        area_um=path_area_um(path, best, library),
        sizes=best,
        stage_budget_ps=best_budget,
        met_constraint=met and total <= tc_ps * (1.0 + 1e-6),
    )
