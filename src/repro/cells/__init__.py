"""Standard-cell substrate: gate kinds, characterised cells, libraries."""

from repro.cells.cell import Cell
from repro.cells.gate_types import (
    GateKind,
    and_kind,
    is_inverting,
    logic_eval,
    nand_kind,
    nor_kind,
    num_inputs,
    or_kind,
)
from repro.cells.library import Library, UnknownCellError, default_library

__all__ = [
    "GateKind",
    "Cell",
    "Library",
    "UnknownCellError",
    "default_library",
    "logic_eval",
    "is_inverting",
    "num_inputs",
    "nand_kind",
    "nor_kind",
    "and_kind",
    "or_kind",
]
