"""Gate kinds, their logic functions and structural properties.

Every netlist element in the repository is one of these primitive kinds.
The set covers the ISCAS'85 ``.bench`` vocabulary (AND/OR/NAND/NOR/XOR/
XNOR/NOT/BUFF) so that real benchmark netlists parse directly, plus the
wide NAND/NOR variants the paper's library characterisation uses.
"""

from __future__ import annotations

from enum import Enum
from typing import Sequence


class GateKind(str, Enum):
    """Primitive gate types known to the library."""

    INV = "inv"
    BUF = "buf"
    NAND2 = "nand2"
    NAND3 = "nand3"
    NAND4 = "nand4"
    NOR2 = "nor2"
    NOR3 = "nor3"
    NOR4 = "nor4"
    AND2 = "and2"
    AND3 = "and3"
    AND4 = "and4"
    OR2 = "or2"
    OR3 = "or3"
    OR4 = "or4"
    XOR2 = "xor2"
    XNOR2 = "xnor2"
    AOI21 = "aoi21"
    AOI22 = "aoi22"
    OAI21 = "oai21"
    OAI22 = "oai22"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Number of logic inputs per kind.
_NUM_INPUTS = {
    GateKind.INV: 1,
    GateKind.BUF: 1,
    GateKind.NAND2: 2,
    GateKind.NAND3: 3,
    GateKind.NAND4: 4,
    GateKind.NOR2: 2,
    GateKind.NOR3: 3,
    GateKind.NOR4: 4,
    GateKind.AND2: 2,
    GateKind.AND3: 3,
    GateKind.AND4: 4,
    GateKind.OR2: 2,
    GateKind.OR3: 3,
    GateKind.OR4: 4,
    GateKind.XOR2: 2,
    GateKind.XNOR2: 2,
    GateKind.AOI21: 3,
    GateKind.AOI22: 4,
    GateKind.OAI21: 3,
    GateKind.OAI22: 4,
}

#: Kinds whose output polarity is the complement of the switching input.
_INVERTING = {
    GateKind.INV,
    GateKind.NAND2,
    GateKind.NAND3,
    GateKind.NAND4,
    GateKind.NOR2,
    GateKind.NOR3,
    GateKind.NOR4,
    GateKind.XNOR2,
    GateKind.AOI21,
    GateKind.AOI22,
    GateKind.OAI21,
    GateKind.OAI22,
}


def num_inputs(kind: GateKind) -> int:
    """Logic fan-in of ``kind``."""
    return _NUM_INPUTS[kind]


def is_inverting(kind: GateKind) -> bool:
    """Whether a rising input edge produces a falling output edge.

    XOR is treated as non-inverting and XNOR as inverting, i.e. the side
    inputs are assumed low -- the convention used consistently by the path
    timing engine when propagating edge polarity.
    """
    return kind in _INVERTING


def logic_eval(kind: GateKind, inputs: Sequence[bool]) -> bool:
    """Evaluate the boolean function of ``kind`` on ``inputs``."""
    expected = num_inputs(kind)
    if len(inputs) != expected:
        raise ValueError(f"{kind} expects {expected} inputs, got {len(inputs)}")
    if kind is GateKind.INV:
        return not inputs[0]
    if kind is GateKind.BUF:
        return bool(inputs[0])
    if kind in (GateKind.AND2, GateKind.AND3, GateKind.AND4):
        return all(inputs)
    if kind in (GateKind.NAND2, GateKind.NAND3, GateKind.NAND4):
        return not all(inputs)
    if kind in (GateKind.OR2, GateKind.OR3, GateKind.OR4):
        return any(inputs)
    if kind in (GateKind.NOR2, GateKind.NOR3, GateKind.NOR4):
        return not any(inputs)
    if kind is GateKind.XOR2:
        return inputs[0] != inputs[1]
    if kind is GateKind.XNOR2:
        return inputs[0] == inputs[1]
    if kind is GateKind.AOI21:
        # NOT((a AND b) OR c)
        return not ((inputs[0] and inputs[1]) or inputs[2])
    if kind is GateKind.AOI22:
        # NOT((a AND b) OR (c AND d))
        return not ((inputs[0] and inputs[1]) or (inputs[2] and inputs[3]))
    if kind is GateKind.OAI21:
        # NOT((a OR b) AND c)
        return not ((inputs[0] or inputs[1]) and inputs[2])
    if kind is GateKind.OAI22:
        # NOT((a OR b) AND (c OR d))
        return not ((inputs[0] or inputs[1]) and (inputs[2] or inputs[3]))
    raise ValueError(f"unknown gate kind {kind!r}")  # pragma: no cover


def nand_kind(width: int) -> GateKind:
    """The NAND kind of fan-in ``width`` (2..4)."""
    try:
        return {2: GateKind.NAND2, 3: GateKind.NAND3, 4: GateKind.NAND4}[width]
    except KeyError:
        raise ValueError(f"no NAND of width {width}") from None


def nor_kind(width: int) -> GateKind:
    """The NOR kind of fan-in ``width`` (2..4)."""
    try:
        return {2: GateKind.NOR2, 3: GateKind.NOR3, 4: GateKind.NOR4}[width]
    except KeyError:
        raise ValueError(f"no NOR of width {width}") from None


def and_kind(width: int) -> GateKind:
    """The AND kind of fan-in ``width`` (2..4)."""
    try:
        return {2: GateKind.AND2, 3: GateKind.AND3, 4: GateKind.AND4}[width]
    except KeyError:
        raise ValueError(f"no AND of width {width}") from None


def or_kind(width: int) -> GateKind:
    """The OR kind of fan-in ``width`` (2..4)."""
    try:
        return {2: GateKind.OR2, 3: GateKind.OR3, 4: GateKind.OR4}[width]
    except KeyError:
        raise ValueError(f"no OR of width {width}") from None
