"""Characterised standard cell: electrical view of a gate kind.

A :class:`Cell` carries everything the closed-form delay model (eqs. 1-3 of
the paper) needs about one gate type:

* ``k_ratio`` -- the P/N configuration ratio ``k``;
* ``dw_hl`` / ``dw_lh`` -- the *logical weights* ``DW`` of eq. 3, defined as
  the ratio of the current available in an inverter to that of the gate's
  serial transistor array, per output edge;
* ``p_intrinsic`` -- the self-loading coefficient: the output parasitic
  (junction) capacitance is ``C_par = p_intrinsic * C_IN``;
* stack heights, used by the transistor-level reference simulator.

Sizing works directly on the per-input capacitance ``C_IN``; widths and
areas are derived views (``sum W`` is the paper's area/power metric).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cells.gate_types import GateKind, is_inverting, num_inputs
from repro.process.technology import Technology


@dataclass(frozen=True)
class Cell:
    """Electrical characterisation of one gate kind.

    Attributes
    ----------
    kind:
        The logic primitive this cell implements.
    k_ratio:
        P/N width ratio ``k`` (eq. 3).
    dw_hl:
        Logical weight of the falling output edge (N pull-down array).
    dw_lh:
        Logical weight of the rising output edge (P pull-up array).
    p_intrinsic:
        Output parasitic capacitance per unit of input capacitance.
    area_factor:
        Total transistor width per input, in units of ``C_IN / c_gate``.
        1.0 for single-stage primitives; composites (BUF, AND, OR, XOR)
        carry their internal stage.
    stack_n / stack_p:
        Series transistor counts of the pull-down / pull-up networks
        (transistor-level simulator view).
    cin_min_ff:
        Optional explicit minimum drive (fF).  Cells imported from a
        Liberty library carry the characterised pin capacitance here;
        ``None`` derives the floor from the technology's minimum width
        exactly as before.
    """

    kind: GateKind
    k_ratio: float
    dw_hl: float
    dw_lh: float
    p_intrinsic: float
    area_factor: float = 1.0
    stack_n: int = 1
    stack_p: int = 1
    cin_min_ff: Optional[float] = None

    def __post_init__(self) -> None:
        if self.cin_min_ff is not None and self.cin_min_ff <= 0:
            raise ValueError("cin_min_ff must be positive when given")
        if self.k_ratio <= 0:
            raise ValueError(f"k_ratio must be positive, got {self.k_ratio}")
        if self.dw_hl < 1.0 or self.dw_lh < 1.0:
            raise ValueError(
                f"logical weights must be >= 1 (inverter reference), "
                f"got dw_hl={self.dw_hl}, dw_lh={self.dw_lh}"
            )
        if self.p_intrinsic < 0:
            raise ValueError("p_intrinsic must be non-negative")
        if self.area_factor <= 0:
            raise ValueError("area_factor must be positive")
        if self.stack_n < 1 or self.stack_p < 1:
            raise ValueError("stack heights must be >= 1")

    @property
    def name(self) -> str:
        """Library name of the cell (the gate kind value)."""
        return self.kind.value

    @property
    def n_inputs(self) -> int:
        """Logic fan-in."""
        return num_inputs(self.kind)

    @property
    def inverting(self) -> bool:
        """Whether the cell inverts edge polarity."""
        return is_inverting(self.kind)

    def s_hl(self, tech: Technology) -> float:
        """Symmetry factor of the falling output edge (eq. 3).

        ``S_HL = DW_HL * (1 + k) / 2``: for a fixed input capacitance,
        widening P (larger ``k``) starves the N device of width, and a
        serial N array divides the discharge current by ``DW_HL``.
        """
        return self.dw_hl * (1.0 + self.k_ratio) / 2.0

    def s_lh(self, tech: Technology) -> float:
        """Symmetry factor of the rising output edge (eq. 3).

        ``S_LH = DW_LH * (R / k) * (1 + k) / 2``: the pull-up current is
        ``R`` times weaker per micron and scales with the P share
        ``k / (1 + k)`` of the input capacitance.
        """
        return self.dw_lh * (tech.r_ratio / self.k_ratio) * (1.0 + self.k_ratio) / 2.0

    def coupling_cap(self, cin_ff: float, input_rising: bool) -> float:
        """Input-output coupling capacitance ``C_M`` (eq. 1).

        Half the input capacitance of the P (N) transistor for a rising
        (falling) input edge, following the paper's prescription.
        """
        if cin_ff < 0:
            raise ValueError("cin_ff must be non-negative")
        if input_rising:
            return 0.5 * cin_ff * self.k_ratio / (1.0 + self.k_ratio)
        return 0.5 * cin_ff / (1.0 + self.k_ratio)

    def parasitic_cap(self, cin_ff: float) -> float:
        """Output junction capacitance ``C_par`` for a drive of ``cin_ff``."""
        if cin_ff < 0:
            raise ValueError("cin_ff must be non-negative")
        return self.p_intrinsic * cin_ff

    def cin_min(self, tech: Technology) -> float:
        """Minimum available drive: per-input C_IN at minimum widths (fF).

        Cached per instance (the eq. 4/6 sweeps ask for it every stage
        of every Gauss-Seidel iteration); the stored technology reference
        pins the key's identity, so the slot can never serve a value for
        a recycled technology object.
        """
        entry = self.__dict__.get("_cin_min_entry")
        if entry is not None and entry[0] is tech:
            return entry[1]
        if self.cin_min_ff is not None:
            value = self.cin_min_ff
        else:
            value = tech.cin_for_width(tech.w_min_um * (1.0 + self.k_ratio))
        object.__setattr__(self, "_cin_min_entry", (tech, value))
        return value

    def total_width_um(self, cin_ff: float, tech: Technology) -> float:
        """Total transistor width (um) of the gate at drive ``cin_ff``.

        Every input presents ``cin_ff``, so the device width scales with
        the fan-in; ``area_factor`` folds in internal stages of composite
        cells.  This is the per-gate contribution to the paper's ``sum W``.
        """
        return self.area_factor * self.n_inputs * tech.width_for_cin(cin_ff)

    def wn_wp_um(self, cin_ff: float, tech: Technology) -> tuple:
        """(W_N, W_P) in um of the devices tied to one input."""
        w_total = tech.width_for_cin(cin_ff)
        wn = w_total / (1.0 + self.k_ratio)
        return wn, self.k_ratio * wn
