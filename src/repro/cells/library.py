"""Standard cell library: the characterised cell set of the 0.25 um flow.

The default library mirrors the gate set the paper characterises (inverter,
NAND2/3, NOR2/3 in Table 2) extended to the full ISCAS'85 vocabulary.
Logical weights follow the series-array current-division argument of
ref. [14]: an ``n``-high N stack divides the pull-down current by roughly
``n`` (slightly less, because of body-effect relief on internal nodes), and
the penalty lands on the HL edge for NANDs and -- amplified by ``R/k`` -- on
the LH edge for NORs.  This is what makes NOR gates the least efficient
(lowest ``Flimit``) in Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, Mapping, Optional, Tuple

from repro.cells.cell import Cell
from repro.cells.gate_types import GateKind
from repro.process.technology import CMOS025, Technology

if TYPE_CHECKING:
    from repro.timing.backend import DelayBackend


class UnknownCellError(KeyError):
    """Raised when a gate kind is not present in the library."""


@dataclass(frozen=True)
class Library:
    """An immutable collection of characterised cells plus its technology.

    ``backend`` selects the delay model every evaluator dispatches
    through; ``None`` (the default) resolves to the shared analytic
    eq. 1-3 backend, so pre-existing construction sites are unchanged.
    """

    tech: Technology
    cells: Mapping[GateKind, Cell] = field(repr=False)
    backend: Optional["DelayBackend"] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if GateKind.INV not in self.cells:
            raise ValueError("a library must at least contain an inverter")

    def __contains__(self, kind: GateKind) -> bool:
        return kind in self.cells

    def __iter__(self) -> Iterator[Cell]:
        return iter(self.cells.values())

    def __len__(self) -> int:
        return len(self.cells)

    def cell(self, kind: GateKind) -> Cell:
        """Look up the cell for ``kind``; raise :class:`UnknownCellError`."""
        try:
            return self.cells[kind]
        except KeyError:
            raise UnknownCellError(f"no cell for gate kind {kind!r}") from None

    @property
    def inverter(self) -> Cell:
        """The reference inverter."""
        return self.cells[GateKind.INV]

    @property
    def cref(self) -> float:
        """Minimum available drive ``CREF`` (fF): the minimum inverter input."""
        return self.inverter.cin_min(self.tech)

    @property
    def delay_backend(self) -> "DelayBackend":
        """The delay backend every evaluator dispatches through.

        Resolves ``backend=None`` to the shared analytic singleton; the
        result is cached per instance (the import is deferred because
        ``repro.timing`` imports this module at package init).
        """
        cached = self.__dict__.get("_backend_cache")
        if cached is not None:
            return cached
        backend = self.backend
        if backend is None:
            from repro.timing.backend import ANALYTIC_BACKEND

            backend = ANALYTIC_BACKEND
        object.__setattr__(self, "_backend_cache", backend)
        return backend

    def fingerprint(self) -> Tuple:
        """Hashable identity of everything that determines timing.

        Folds the technology scalars, the characterised cell parameters
        and the backend's :meth:`~repro.timing.backend.DelayBackend.
        cache_token` into one tuple; the
        :class:`~repro.api.session.Session` prefixes every timing cache
        key with it so two libraries (or two backends over the same
        cells) can never alias an entry.  Cached per instance --
        libraries are immutable.
        """
        cached = self.__dict__.get("_fingerprint_cache")
        if cached is not None:
            return cached
        tech = self.tech
        tech_key = (
            tech.name,
            tech.vdd,
            tech.vtn,
            tech.vtp,
            tech.tau_ps,
            tech.r_ratio,
            tech.c_gate_ff_per_um,
            tech.c_junction_ff_per_um,
            tech.w_min_um,
            tech.mobility_exponent,
        )
        cells_key = tuple(
            (
                kind.value,
                cell.k_ratio,
                cell.dw_hl,
                cell.dw_lh,
                cell.p_intrinsic,
                cell.area_factor,
                cell.stack_n,
                cell.stack_p,
                cell.cin_min_ff,
            )
            for kind, cell in sorted(
                self.cells.items(), key=lambda item: item[0].value
            )
        )
        fp = (tech_key, cells_key, self.delay_backend.cache_token())
        object.__setattr__(self, "_fingerprint_cache", fp)
        return fp


def _default_cells(k_ratio: float) -> Dict[GateKind, Cell]:
    """Build the default cell set for a configuration ratio ``k``."""

    def cell(kind, dw_hl, dw_lh, p, area=1.0, sn=1, sp=1):
        return Cell(
            kind=kind,
            k_ratio=k_ratio,
            dw_hl=dw_hl,
            dw_lh=dw_lh,
            p_intrinsic=p,
            area_factor=area,
            stack_n=sn,
            stack_p=sp,
        )

    # Logical weights: n-stack ~ 1 + 0.85*(n-1) on the stacked edge with a
    # small cross-penalty on the parallel edge (internal node loading).
    # Area factors of stacked cells reflect the layout reality that series
    # devices are widened to recover part of the stack's drive loss; the
    # P stacks of NORs pay roughly R times more silicon for it than the
    # N stacks of NANDs -- the physical root of the Table 4 area gains.
    return {
        GateKind.INV: cell(GateKind.INV, 1.00, 1.00, 0.61),
        GateKind.BUF: cell(GateKind.BUF, 1.35, 1.35, 0.95, area=1.45),
        GateKind.NAND2: cell(GateKind.NAND2, 1.85, 1.20, 0.78, area=1.10, sn=2),
        GateKind.NAND3: cell(GateKind.NAND3, 2.70, 1.40, 0.95, area=1.18, sn=3),
        GateKind.NAND4: cell(GateKind.NAND4, 3.55, 1.60, 1.12, area=1.25, sn=4),
        GateKind.NOR2: cell(GateKind.NOR2, 1.20, 1.85, 0.82, area=1.30, sp=2),
        GateKind.NOR3: cell(GateKind.NOR3, 1.40, 2.70, 1.00, area=1.55, sp=3),
        GateKind.NOR4: cell(GateKind.NOR4, 1.60, 3.55, 1.20, area=1.80, sp=4),
        GateKind.AND2: cell(GateKind.AND2, 1.55, 1.45, 1.00, area=1.30, sn=2),
        GateKind.AND3: cell(GateKind.AND3, 2.10, 1.60, 1.15, area=1.25, sn=3),
        GateKind.AND4: cell(GateKind.AND4, 2.70, 1.75, 1.30, area=1.22, sn=4),
        GateKind.OR2: cell(GateKind.OR2, 1.45, 1.70, 1.00, area=1.30, sp=2),
        GateKind.OR3: cell(GateKind.OR3, 1.60, 2.25, 1.15, area=1.25, sp=3),
        GateKind.OR4: cell(GateKind.OR4, 1.75, 2.85, 1.30, area=1.22, sp=4),
        GateKind.XOR2: cell(GateKind.XOR2, 2.30, 2.30, 1.30, area=1.60, sn=2, sp=2),
        GateKind.XNOR2: cell(GateKind.XNOR2, 2.30, 2.30, 1.30, area=1.60, sn=2, sp=2),
        # Complex AOI/OAI gates: 2-high stacks on both networks, with the
        # OAI variants paying the series-P penalty on the rising edge.
        GateKind.AOI21: cell(GateKind.AOI21, 1.95, 1.95, 1.00, sn=2, sp=2),
        GateKind.AOI22: cell(GateKind.AOI22, 2.05, 2.15, 1.18, sn=2, sp=2),
        GateKind.OAI21: cell(GateKind.OAI21, 1.70, 2.25, 1.00, sn=2, sp=2),
        GateKind.OAI22: cell(GateKind.OAI22, 1.85, 2.45, 1.18, sn=2, sp=2),
    }


def default_library(tech: Optional[Technology] = None, k_ratio: float = 2.0) -> Library:
    """The default characterised library for ``tech`` (0.25 um if omitted).

    ``k_ratio`` is the P/N width ratio applied uniformly; 2.0 is the usual
    compromise between rising-edge speed and input capacitance at 0.25 um.
    """
    if tech is None:
        tech = CMOS025
    return Library(tech=tech, cells=_default_cells(k_ratio))
