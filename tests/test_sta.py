"""Tests for the polarity-aware STA engine."""

import pytest

from repro.cells.gate_types import GateKind
from repro.netlist.builders import gate_chain, inverter_chain, ripple_carry_adder
from repro.netlist.circuit import Circuit
from repro.timing.delay_model import Edge
from repro.timing.evaluation import path_delay_ps
from repro.timing.path import make_path
from repro.timing.sta import analyze, external_loads, gate_sizes, trace_critical_gates


class TestLoads:
    def test_fanout_loads_accumulate(self, lib):
        c = Circuit("fan")
        c.add_input("a")
        c.add_gate("g", GateKind.INV, ["a"])
        c.add_gate("x", GateKind.INV, ["g"])
        c.add_gate("y", GateKind.NAND2, ["g", "a"])
        c.add_output("x")
        c.add_output("y")
        sizes = gate_sizes(c, lib)
        loads = external_loads(c, lib, output_load_ff=10.0, sizes=sizes)
        assert loads["g"] == pytest.approx(sizes["x"] + sizes["y"])
        assert loads["x"] == pytest.approx(10.0)

    def test_explicit_sizes_used(self, lib):
        c = inverter_chain(2)
        c.gates["n1"].cin_ff = 50.0
        sizes = gate_sizes(c, lib)
        assert sizes["n1"] == 50.0
        assert sizes["n0"] == pytest.approx(lib.inverter.cin_min(lib.tech))


class TestChainAgreement:
    def test_sta_matches_path_evaluation_on_chain(self, lib):
        """On a pure chain, block STA == bounded path evaluation."""
        kinds = [GateKind.INV, GateKind.NAND2, GateKind.INV, GateKind.NOR2]
        circuit = gate_chain(kinds)
        sta = analyze(circuit, lib, output_load_ff=4.0 * lib.cref)
        sizes = gate_sizes(circuit, lib)
        path = make_path(
            kinds,
            lib,
            cin_first_ff=sizes["n0"],
            cterm_ff=4.0 * lib.cref,
            input_edge=Edge.RISE,
        )
        path_sizes = [sizes[f"n{i}"] for i in range(len(kinds))]
        path_delay = path_delay_ps(path, path_sizes, lib)
        net, edge = sta.critical_output
        # STA takes the worst polarity; our path fixed RISE at the input.
        assert sta.critical_delay_ps >= path_delay - 1e-6
        # The rising-input arrival must be represented exactly.
        rise_path = path_delay
        arrivals = sta.arrivals[f"n{len(kinds) - 1}"]
        assert any(
            abs(ev.time_ps - rise_path) < 1e-6 for ev in arrivals.values()
        )


class TestPolarity:
    def test_single_inverter_polarities(self, lib):
        c = inverter_chain(1)
        sta = analyze(c, lib)
        arr = sta.arrivals["n0"]
        assert set(arr) == {Edge.RISE, Edge.FALL}
        # Falling output comes from rising input through vtn; rising from vtp.
        assert arr[Edge.FALL].cause == ("in", Edge.RISE)
        assert arr[Edge.RISE].cause == ("in", Edge.FALL)

    def test_critical_trace_is_connected(self, lib):
        adder = ripple_carry_adder(8)
        sta = analyze(adder, lib)
        chain = trace_critical_gates(sta, adder)
        assert len(chain) >= 8
        for upstream, downstream in zip(chain, chain[1:]):
            assert upstream in adder.gates[downstream].fanin


class TestMonotonicity:
    def test_bigger_output_load_slower(self, lib):
        adder = ripple_carry_adder(4)
        light = analyze(adder, lib, output_load_ff=2.0 * lib.cref)
        heavy = analyze(adder, lib, output_load_ff=40.0 * lib.cref)
        assert heavy.critical_delay_ps > light.critical_delay_ps

    def test_slower_inputs_slower_outputs(self, lib):
        adder = ripple_carry_adder(4)
        fast = analyze(adder, lib, input_transition_ps=0.0)
        slow = analyze(adder, lib, input_transition_ps=200.0)
        assert slow.critical_delay_ps > fast.critical_delay_ps

    def test_upsizing_the_output_gate_helps(self, lib):
        """Upsizing the last critical gate (whose load is the fixed output
        register) speeds the circuit up -- no upstream path pays for it
        beyond its own drive increase."""
        adder = ripple_carry_adder(4)
        before = analyze(adder, lib, output_load_ff=40.0 * lib.cref)
        chain = trace_critical_gates(before, adder)
        adder.gates[chain[-1]].cin_ff = 4.0 * lib.cref
        after = analyze(adder, lib, output_load_ff=40.0 * lib.cref)
        assert after.critical_delay_ps < before.critical_delay_ps

    def test_upsizing_mid_gate_can_slow_adjacent_paths(self, lib):
        """Section 1 of the paper: 'gate sizing ... may slow down adjacent
        upward paths'.  Blowing up one mid-path gate loads its driver and
        every sibling path through it."""
        adder = ripple_carry_adder(4)
        before = analyze(adder, lib)
        chain = trace_critical_gates(before, adder)
        mid = chain[len(chain) // 2]
        adder.gates[mid].cin_ff = 60.0 * lib.cref
        after = analyze(adder, lib)
        assert after.critical_delay_ps > before.critical_delay_ps


class TestWireLoads:
    def test_wire_model_slows_circuit(self, lib):
        from repro.netlist.wireload import WLM_MEDIUM

        adder = ripple_carry_adder(4)
        bare = analyze(adder, lib)
        routed = analyze(adder, lib, wire_model=WLM_MEDIUM)
        assert routed.critical_delay_ps > bare.critical_delay_ps

    def test_heavier_class_slower(self, lib):
        from repro.netlist.wireload import WLM_LARGE, WLM_SMALL

        adder = ripple_carry_adder(4)
        small = analyze(adder, lib, wire_model=WLM_SMALL)
        large = analyze(adder, lib, wire_model=WLM_LARGE)
        assert large.critical_delay_ps > small.critical_delay_ps

    def test_model_validation(self):
        from repro.netlist.wireload import WireLoadModel

        with pytest.raises(ValueError):
            WireLoadModel("bad", -1.0, 1.0)
        model = WireLoadModel("ok", 1.0, 2.0)
        assert model.wire_cap_ff(0) == 0.0
        assert model.wire_cap_ff(3) == pytest.approx(7.0)
        with pytest.raises(ValueError):
            model.wire_cap_ff(-1)

    def test_scaled_corner(self):
        from repro.netlist.wireload import WLM_SMALL

        pessimistic = WLM_SMALL.scaled(2.0)
        assert pessimistic.wire_cap_ff(4) == pytest.approx(
            2.0 * WLM_SMALL.wire_cap_ff(4)
        )
