"""Tests for buffer insertion on bounded paths."""

import numpy as np
import pytest

from repro.cells.gate_types import GateKind
from repro.buffering.insertion import (
    default_flimits,
    distribute_with_buffers,
    insert_buffers_at,
    min_delay_with_buffers,
    overloaded_stages,
)
from repro.sizing.bounds import min_delay_bound
from repro.sizing.sensitivity import distribute_constraint
from repro.timing.path import make_path


@pytest.fixture(scope="module")
def limits(lib):
    return default_flimits(lib)


@pytest.fixture()
def hot_path(lib):
    """A path with one massively loaded interior node (side fan-out).

    The side load is large enough that even the Tmin sizing cannot absorb
    it below the Flimit -- the regime where buffers beat sizing.
    """
    side = [0.0, 0.0, 400.0 * lib.cref, 0.0, 0.0]
    return make_path(
        [GateKind.INV, GateKind.NAND2, GateKind.NOR2, GateKind.NAND2, GateKind.INV],
        lib,
        cterm_ff=10.0 * lib.cref,
        cside_ff=side,
    )


class TestOverloadDetection:
    def test_hot_node_flagged(self, lib, hot_path, limits):
        _, sizes, _, _ = min_delay_bound(hot_path, lib)
        flagged = overloaded_stages(hot_path, sizes, limits)
        assert 2 in flagged

    def test_balanced_path_unflagged(self, lib, limits):
        path = make_path([GateKind.INV] * 5, lib, cterm_ff=8.0 * lib.cref)
        _, sizes, _, _ = min_delay_bound(path, lib)
        assert overloaded_stages(path, sizes, limits) == []

    def test_margin_scales_threshold(self, lib, hot_path, limits):
        _, sizes, _, _ = min_delay_bound(hot_path, lib)
        strict = overloaded_stages(hot_path, sizes, limits, margin=0.1)
        lax = overloaded_stages(hot_path, sizes, limits, margin=100.0)
        assert len(strict) >= len(overloaded_stages(hot_path, sizes, limits))
        assert lax == []


class TestInsertion:
    def test_insert_moves_side_load(self, lib, hot_path):
        new_path, positions = insert_buffers_at(hot_path, [2], lib, buffer_stages=2)
        assert len(new_path) == len(hot_path) + 2
        assert positions == [3, 4]
        # The NOR no longer carries the side load; the last buffer does.
        assert new_path.stages[2].cside_ff == 0.0
        assert new_path.stages[4].cside_ff == pytest.approx(400.0 * lib.cref)

    def test_multi_insertion_index_shift(self, lib, hot_path):
        new_path, positions = insert_buffers_at(
            hot_path, [1, 3], lib, buffer_stages=1
        )
        assert len(new_path) == len(hot_path) + 2
        # Second insertion lands after the shift from the first.
        assert positions == [2, 5]
        assert new_path.stages[2].cell.kind is GateKind.INV
        assert new_path.stages[5].cell.kind is GateKind.INV

    def test_invalid_buffer_stages(self, lib, hot_path):
        with pytest.raises(ValueError):
            insert_buffers_at(hot_path, [2], lib, buffer_stages=0)


class TestMinDelayWithBuffers:
    def test_improves_hot_path(self, lib, hot_path, limits):
        result = min_delay_with_buffers(hot_path, lib, limits=limits)
        assert result.inserted_at  # something was inserted
        assert result.delay_ps < result.baseline_delay_ps
        assert 0.0 < result.gain < 0.6

    def test_leaves_balanced_path_alone(self, lib, limits):
        path = make_path([GateKind.INV] * 5, lib, cterm_ff=8.0 * lib.cref)
        result = min_delay_with_buffers(path, lib, limits=limits)
        assert result.inserted_at == ()
        assert result.path is path
        assert result.gain == 0.0

    def test_local_mode_freezes_gates(self, lib, hot_path, limits):
        base_tmin, base_sizes, _, _ = min_delay_bound(hot_path, lib)
        result = min_delay_with_buffers(hot_path, lib, limits=limits, mode="local")
        if result.inserted_at:
            # Original gates kept their Tmin sizes.
            original = [s for s in result.path.stages if "buf" not in s.name]
            kept = [
                result.sizes[i]
                for i, s in enumerate(result.path.stages)
                if "buf" not in s.name
            ]
            np.testing.assert_allclose(kept, base_sizes, rtol=1e-6)

    def test_local_never_beats_global(self, lib, hot_path, limits):
        local = min_delay_with_buffers(hot_path, lib, limits=limits, mode="local")
        global_ = min_delay_with_buffers(hot_path, lib, limits=limits, mode="global")
        assert global_.delay_ps <= local.delay_ps + 1e-6

    def test_invalid_mode(self, lib, hot_path):
        with pytest.raises(ValueError):
            min_delay_with_buffers(hot_path, lib, mode="sideways")


class TestDistributeWithBuffers:
    def test_extends_feasible_range(self, lib, hot_path, limits):
        """A constraint below the sizing-only Tmin becomes feasible."""
        plain_tmin, _, _, _ = min_delay_bound(hot_path, lib)
        buffered = min_delay_with_buffers(hot_path, lib, limits=limits)
        assert buffered.delay_ps < plain_tmin
        tc = 0.5 * (buffered.delay_ps + plain_tmin)  # between the two minima
        plain = distribute_constraint(hot_path, lib, tc)
        assert not plain.feasible
        result, path, inserted = distribute_with_buffers(
            hot_path, lib, tc, limits=limits
        )
        assert result.feasible
        assert inserted

    def test_area_reduction_in_medium_domain(self, lib, hot_path, limits):
        """Fig. 6's medium-constraint story: buffers save area."""
        plain_tmin, _, _, _ = min_delay_bound(hot_path, lib)
        tc = 1.3 * plain_tmin
        plain = distribute_constraint(hot_path, lib, tc)
        buffered, _, inserted = distribute_with_buffers(
            hot_path, lib, tc, limits=limits
        )
        assert plain.feasible and buffered.feasible
        if inserted:
            assert buffered.area_um < plain.area_um
