"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cells.gate_types import GateKind
from repro.cells.library import default_library
from repro.process.technology import CMOS025
from repro.timing.path import make_path


@pytest.fixture(scope="session")
def lib():
    """The default 0.25 um library (immutable; safe to share)."""
    return default_library()


@pytest.fixture(scope="session")
def tech():
    return CMOS025


@pytest.fixture()
def short_path(lib):
    """A 4-stage mixed path with a healthy terminal load."""
    return make_path(
        [GateKind.INV, GateKind.NAND2, GateKind.NOR2, GateKind.INV],
        lib,
        cterm_ff=20.0 * lib.cref,
    )


@pytest.fixture()
def eleven_gate_path(lib):
    """The Fig. 1 / Fig. 3 style 11-gate path."""
    kinds = [
        GateKind.INV,
        GateKind.NAND2,
        GateKind.NOR2,
        GateKind.INV,
        GateKind.NAND3,
        GateKind.INV,
        GateKind.NOR3,
        GateKind.INV,
        GateKind.NAND2,
        GateKind.INV,
        GateKind.INV,
    ]
    return make_path(kinds, lib, cterm_ff=40.0 * lib.cref)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
