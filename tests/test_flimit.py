"""Tests for the Flimit buffer-insertion metric (Table 2)."""


import pytest

from repro.cells.gate_types import GateKind
from repro.buffering.flimit import (
    TABLE2_GATES,
    characterize_library,
    flimit,
    flimit_lookup,
)
from repro.timing.evaluation import path_delay_ps
from repro.timing.path import make_path


@pytest.fixture(scope="module")
def limits(lib):
    return {g: flimit(lib, g) for g in TABLE2_GATES}


class TestOrdering:
    def test_paper_ordering(self, limits):
        """Table 2: inv > nand2 > nand3 > nor2 > nor3."""
        assert (
            limits[GateKind.INV]
            > limits[GateKind.NAND2]
            > limits[GateKind.NAND3]
            > limits[GateKind.NOR2]
            > limits[GateKind.NOR3]
        )

    def test_magnitudes_near_paper(self, limits):
        """Within ~25% of the published 0.25 um values."""
        paper = {
            GateKind.INV: 5.7,
            GateKind.NAND2: 4.9,
            GateKind.NAND3: 4.5,
            GateKind.NOR2: 3.8,
            GateKind.NOR3: 2.7,
        }
        for kind, expected in paper.items():
            assert limits[kind] == pytest.approx(expected, rel=0.25)

    def test_all_finite_and_above_one(self, limits):
        for value in limits.values():
            assert 1.0 < value < 50.0


class TestCrossoverSemantics:
    """Flimit is *defined* by the A/B delay crossover -- check it."""

    @pytest.mark.parametrize("kind", [GateKind.INV, GateKind.NOR2])
    def test_below_limit_no_buffer_wins(self, lib, kind, limits):
        f = 0.6 * limits[kind]
        cin = 4.0 * lib.cref
        cload = f * cin
        t_plain = _structure_a(lib, kind, cin, cload)
        t_buffered = _structure_b_best(lib, kind, cin, cload)
        assert t_plain <= t_buffered + 1e-9

    @pytest.mark.parametrize("kind", [GateKind.INV, GateKind.NOR2])
    def test_above_limit_buffer_wins(self, lib, kind, limits):
        f = 1.8 * limits[kind]
        cin = 4.0 * lib.cref
        cload = f * cin
        t_plain = _structure_a(lib, kind, cin, cload)
        t_buffered = _structure_b_best(lib, kind, cin, cload)
        assert t_buffered < t_plain


def _structure_a(lib, kind, cin, cload):
    path = make_path([GateKind.INV, kind], lib, cin_first_ff=2 * lib.cref,
                     cterm_ff=cload)
    return path_delay_ps(path, [path.cin_first_ff, cin], lib)


def _structure_b_best(lib, kind, cin, cload):
    import numpy as np

    path = make_path([GateKind.INV, kind, GateKind.INV], lib,
                     cin_first_ff=2 * lib.cref, cterm_ff=cload)
    inv_min = lib.inverter.cin_min(lib.tech)
    candidates = np.geomspace(inv_min, max(2 * cload, 2 * inv_min), 120)
    return min(
        path_delay_ps(path, [path.cin_first_ff, cin, c], lib) for c in candidates
    )


class TestCharacterization:
    def test_characterize_library_table(self, lib):
        entries = characterize_library(lib, gates=(GateKind.INV, GateKind.NOR3))
        assert len(entries) == 2
        lookup = flimit_lookup(entries)
        assert (GateKind.INV, GateKind.INV) in lookup
        assert lookup[(GateKind.INV, GateKind.NOR3)] < lookup[
            (GateKind.INV, GateKind.INV)
        ]

    def test_driver_independence_in_this_model(self, lib):
        """In the eq. 1 model the driver's slope contribution to gate (i)
        is additive and identical in structures A and B, so it cancels in
        the crossover: Flimit depends on the gate, not the driver.  (The
        pair-keyed lookup API still follows the paper's characterisation
        protocol.)"""
        via_inv = flimit(lib, GateKind.INV, driver=GateKind.INV)
        via_nor = flimit(lib, GateKind.INV, driver=GateKind.NOR3)
        assert via_inv == pytest.approx(via_nor, rel=1e-6)

    def test_buffer_pair_limit_higher(self, lib):
        """A polarity-preserving pair costs more, so it pays off later."""
        single = flimit(lib, GateKind.INV, buffer_stages=1)
        pair = flimit(lib, GateKind.INV, buffer_stages=2)
        assert pair > single

    def test_invalid_buffer_stages(self, lib):
        with pytest.raises(ValueError):
            flimit(lib, GateKind.INV, buffer_stages=0)
