"""Tests for :mod:`repro.serve` -- the multi-tenant optimization daemon.

The acceptance surface of the serving layer:

* request coalescing (N concurrent identical submissions execute once,
  every waiter receives the same record);
* server records byte-identical to direct ``Session`` calls;
* graceful drain (backlog finishes, new submits are rejected);
* bounded LRU session caches with observable hit/miss/eviction counters;
* a content-addressed result store that survives daemon restarts.

Everything runs against an in-process daemon (``start_server_thread``)
talking over a real unix socket in ``tmp_path``.
"""

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import BoundedCache, Job, RunRecord, Session, SweepSpec
from repro.serve import (
    PopsServer,
    ProtocolError,
    ResultStore,
    ServeClient,
    ServeClientError,
    ServeConfig,
    job_spec_key,
    start_server_thread,
)


@pytest.fixture()
def daemon(tmp_path):
    """An in-process daemon with a result store; yields (server, client)."""
    config = ServeConfig(
        socket_path=str(tmp_path / "pops.sock"),
        threads=4,
        heavy_threads=2,
        store_dir=str(tmp_path / "store"),
        cache_limit=128,
    )
    server, thread = start_server_thread(config)
    client = ServeClient(socket_path=config.socket_path)
    yield server, client
    if not thread.is_alive():
        return
    server.request_shutdown(drain=True)
    thread.join(timeout=60)
    assert not thread.is_alive(), "daemon failed to shut down"


class TestProtocol:
    def test_spec_key_is_order_insensitive(self):
        a = {"benchmark": "fpd", "tc_ps": 900.0}
        b = {"tc_ps": 900.0, "benchmark": "fpd"}
        assert job_spec_key("optimize", a) == job_spec_key("optimize", b)

    def test_spec_key_separates_kinds(self):
        spec = Job(benchmark="fpd").to_dict()
        assert job_spec_key("bounds", spec) != job_spec_key("mc", spec)

    def test_spec_key_rejects_unknown_kind(self):
        with pytest.raises(ProtocolError):
            job_spec_key("frobnicate", {})

    def test_inline_circuits_hash_by_content(self):
        from repro.iscas.loader import load_benchmark

        j1 = Job(circuit=load_benchmark("fpd"), tc_ps=900.0)
        j2 = Job(circuit=load_benchmark("fpd"), tc_ps=900.0)
        assert j1.circuit is not j2.circuit
        assert job_spec_key("optimize", j1.to_dict()) == job_spec_key(
            "optimize", j2.to_dict()
        )

    def test_bad_requests_get_error_events(self, daemon):
        _, client = daemon
        for message in (
            {"op": "frobnicate"},
            {"op": "submit", "kind": "optimize"},  # no job payload
            {"op": "submit", "kind": "nope", "job": {}},
            {"op": "submit", "kind": "optimize", "job": {}, "priority": "hi"},
        ):
            events = list(client.request(message))
            assert len(events) == 1
            assert events[0]["event"] == "error"
            assert events[0]["error"]["type"] == "ProtocolError"

    def test_ping(self, daemon):
        _, client = daemon
        pong = client.ping()
        assert pong["event"] == "pong"
        assert pong["draining"] is False


class TestBoundedCache:
    def test_unbounded_is_a_dict_with_counters(self):
        cache = BoundedCache()
        cache["a"] = 1
        assert cache == {"a": 1}
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.stats() == {
            "size": 1, "maxsize": None, "hits": 1, "misses": 1, "evictions": 0,
            "hit_rate": 0.5,
        }

    def test_lru_eviction_order(self):
        cache = BoundedCache(maxsize=2)
        cache["a"] = 1
        cache["b"] = 2
        cache.get("a")          # refresh 'a': 'b' is now least recent
        cache["c"] = 3
        assert "b" not in cache
        assert set(cache) == {"a", "c"}
        assert cache.evictions == 1

    def test_overwrite_does_not_evict(self):
        cache = BoundedCache(maxsize=2)
        cache["a"] = 1
        cache["b"] = 2
        cache["a"] = 10
        assert set(cache) == {"a", "b"}
        assert cache.evictions == 0

    def test_peek_counts_nothing(self):
        cache = BoundedCache(maxsize=2)
        cache["a"] = 1
        assert cache.peek("a") == 1
        assert cache.peek("zzz") is None
        assert cache.hits == 0 and cache.misses == 0

    def test_getitem_refreshes_recency(self):
        cache = BoundedCache(maxsize=2)
        cache["a"] = 1
        cache["b"] = 2
        _ = cache["a"]
        cache["c"] = 3
        assert "a" in cache and "b" not in cache

    def test_clear_keeps_counters(self):
        cache = BoundedCache(maxsize=1)
        cache["a"] = 1
        cache["b"] = 2          # evicts 'a'
        cache.clear()
        assert len(cache) == 0
        assert cache.evictions == 1

    def test_rejects_silly_maxsize(self):
        with pytest.raises(ValueError):
            BoundedCache(maxsize=0)


class TestSessionConcurrency:
    def test_bounded_session_evicts_and_counts(self):
        session = Session(cache_limit=2)
        for name in ("fpd", "adder16", "c432"):
            session.bounds(Job(benchmark=name))
        stats = session.cache_stats()
        assert stats["limit"] == 2
        bounds = stats["caches"]["bounds"]
        assert bounds["size"] == 2
        assert bounds["evictions"] == 1
        # evicted entry recomputes on the next miss, never served stale
        record = session.bounds(Job(benchmark="fpd"))
        assert record.kind == "bounds"
        assert stats["caches"]["bounds"]["maxsize"] == 2

    def test_cache_stats_shape(self):
        session = Session()
        session.bounds(Job(benchmark="fpd"))
        stats = session.cache_stats()
        assert set(stats["caches"]) == {
            "benchmarks", "sta", "engines", "paths", "bounds", "compiled",
            "probes",
        }
        assert stats["counters"]["jobs_run"] == 1

    def test_clear_caches_under_lock(self):
        session = Session()
        session.bounds(Job(benchmark="fpd"))
        session.clear_caches()
        assert all(
            c["size"] == 0 for c in session.cache_stats()["caches"].values()
        )

    def test_concurrent_readers_match_serial_reference(self):
        """Threads hammering one session reproduce the serial records."""
        serial = Session()
        reference = {
            ("bounds", name): serial.bounds(
                Job(benchmark=name)
            ).to_dict(with_timing=False)
            for name in ("fpd", "adder16")
        }
        reference[("mc", "fpd")] = serial.mc(
            Job(benchmark="fpd", mc_samples=64)
        ).to_dict(with_timing=False)

        shared = Session(cache_limit=64)

        def run(task):
            kind, name = task
            if kind == "bounds":
                return task, shared.bounds(
                    Job(benchmark=name)
                ).to_dict(with_timing=False)
            return task, shared.mc(
                Job(benchmark=name, mc_samples=64)
            ).to_dict(with_timing=False)

        tasks = list(reference) * 4
        with ThreadPoolExecutor(max_workers=8) as pool:
            for task, record in pool.map(run, tasks):
                assert record == reference[task]

    def test_populate_lock_single_flight(self):
        """Concurrent misses on one key compute the value exactly once."""
        session = Session()
        calls = []
        lock = threading.Lock()

        def compute():
            with session._populate_lock("probe", "k"):
                value = session._bounds_cache.peek("k")
                if value is None:
                    with lock:
                        calls.append(1)
                    value = object()
                    session._bounds_cache["k"] = value
                return value

        with ThreadPoolExecutor(max_workers=8) as pool:
            values = list(pool.map(lambda _: compute(), range(16)))
        assert len(calls) == 1
        assert all(v is values[0] for v in values)


class TestResultStore:
    def test_round_trip_and_counters(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        key = job_spec_key("bounds", {"benchmark": "fpd"})
        assert store.get(key) is None
        store.put(key, {"kind": "bounds", "x": 1})
        assert store.get(key) == {"kind": "bounds", "x": 1}
        assert key in store
        assert store.stats() == {
            "root": str(tmp_path / "s"),
            "records": 1, "hits": 1, "misses": 1, "writes": 1,
            "quarantined": 0, "corrupt_files": 0,
        }

    def test_corrupt_record_is_a_miss(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        key = "ab" + "0" * 62
        store.put(key, {"ok": True})
        with open(store.path_for(key), "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert store.get(key) is None

    def test_store_survives_daemon_restart(self, tmp_path):
        config = ServeConfig(
            socket_path=str(tmp_path / "a.sock"),
            threads=1,
            heavy_threads=1,
            store_dir=str(tmp_path / "store"),
        )
        server, thread = start_server_thread(config)
        client = ServeClient(socket_path=config.socket_path)
        job = Job(benchmark="fpd")
        first = client.submit("bounds", job)
        assert first["cached"] is False
        server.request_shutdown(drain=True)
        thread.join(timeout=60)

        config2 = ServeConfig(
            socket_path=str(tmp_path / "b.sock"),
            threads=1,
            heavy_threads=1,
            store_dir=str(tmp_path / "store"),
        )
        server2, thread2 = start_server_thread(config2)
        try:
            client2 = ServeClient(socket_path=config2.socket_path)
            again = client2.submit("bounds", job)
            assert again["cached"] is True
            assert again["record"] == first["record"]
            assert server2.stats.store_hits == 1
            assert server2.stats.executed == 0
        finally:
            server2.request_shutdown(drain=True)
            thread2.join(timeout=60)


class TestCoalescing:
    N = 6

    def test_concurrent_identical_submissions_execute_once(self, daemon):
        """The acceptance gate: N identical in-flight submits -> 1 run."""
        server, client = daemon
        job = Job(benchmark="fpd", tc_ratio=1.4)
        server.pause()  # hold workers so all N submissions are in flight

        def submit():
            events = []
            done = client.submit("optimize", job, on_event=events.append)
            return events, done

        with ThreadPoolExecutor(max_workers=self.N) as pool:
            futures = [pool.submit(submit) for _ in range(self.N)]
            # every submission must be queued (subscribed) before workers
            # resume, otherwise latecomers would hit the result store
            while server.stats.submitted < self.N:
                time.sleep(0.005)
            server.resume()
            outcomes = [f.result(timeout=120) for f in futures]

        assert server.stats.executed == 1
        assert server.stats.coalesced == self.N - 1
        coalesced_flags = sorted(
            events[0]["coalesced"] for events, _ in outcomes
        )
        assert coalesced_flags == [False] + [True] * (self.N - 1)
        records = [json.dumps(d["record"], sort_keys=True) for _, d in outcomes]
        assert len(set(records)) == 1  # every waiter got the same record
        assert all(d["waiters"] == self.N for _, d in outcomes)

    def test_distinct_specs_do_not_coalesce(self, daemon):
        server, client = daemon
        jobs = [Job(benchmark="fpd", mc_samples=64, mc_seed=s) for s in (1, 2)]
        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = [pool.submit(client.submit, "mc", j) for j in jobs]
            records = [f.result(timeout=120)["record"] for f in futures]
        assert server.stats.coalesced == 0
        assert server.stats.executed == 2
        assert records[0] != records[1]

    def test_no_cache_still_coalesces_but_skips_store(self, daemon):
        server, client = daemon
        job = Job(benchmark="adder16")
        client.submit("bounds", job)
        assert server.stats.executed == 1
        # a no_cache repeat bypasses the store and re-executes
        done = client.submit("bounds", job, no_cache=True)
        assert done["cached"] is False
        assert server.stats.executed == 2
        # while a plain repeat is a store hit
        done = client.submit("bounds", job)
        assert done["cached"] is True
        assert server.stats.store_hits == 1


class TestByteParity:
    """Server records must be byte-identical to direct Session calls."""

    def check(self, client, kind, spec, direct_record):
        reference = direct_record.to_dict(with_timing=False)
        done = client.submit(kind, spec)
        served = RunRecord.from_dict(done["record"])
        assert served.to_dict(with_timing=False) == reference
        # and through the typed client surface too
        rebuilt = client.submit_record(kind, spec)
        assert rebuilt.to_dict(with_timing=False) == reference

    def test_optimize_parity(self, daemon):
        _, client = daemon
        job = Job(benchmark="fpd", tc_ratio=1.4)
        self.check(client, "optimize", job, Session().optimize(job))

    def test_mc_parity(self, daemon):
        _, client = daemon
        job = Job(benchmark="fpd", mc_samples=128, mc_seed=7)
        self.check(client, "mc", job, Session().mc(job))

    def test_sweep_parity_with_progress(self, daemon):
        from repro.explore import run_sweep

        def strip_timing(obj):
            # sweep payloads embed per-point elapsed_s alongside the
            # top-level timing with_timing=False removes
            if isinstance(obj, dict):
                return {
                    k: strip_timing(v)
                    for k, v in obj.items()
                    if k != "elapsed_s"
                }
            if isinstance(obj, list):
                return [strip_timing(v) for v in obj]
            return obj

        _, client = daemon
        spec = SweepSpec(
            benchmarks=("fpd",),
            tc_ratio_points=(1.3, 1.6),
            scope="path",
        )
        direct = run_sweep(Session(), spec).record()
        events = []
        done = client.submit("sweep", spec, on_event=events.append)
        served = RunRecord.from_dict(done["record"])
        assert strip_timing(served.to_dict(with_timing=False)) == strip_timing(
            direct.to_dict(with_timing=False)
        )
        progress = [e for e in events if e["event"] == "progress"]
        assert [p["done"] for p in progress] == [1, 2]
        assert progress[-1]["total"] == 2


class TestLifecycle:
    def test_graceful_drain_finishes_backlog(self, tmp_path):
        config = ServeConfig(
            socket_path=str(tmp_path / "drain.sock"),
            threads=2,
            heavy_threads=1,
        )
        server, thread = start_server_thread(config)
        client = ServeClient(socket_path=config.socket_path)
        jobs = [Job(benchmark="fpd", mc_samples=64, mc_seed=s) for s in range(3)]

        server.pause()  # build a backlog the drain must finish
        with ThreadPoolExecutor(max_workers=len(jobs)) as pool:
            futures = [pool.submit(client.submit, "mc", j) for j in jobs]
            while server.stats.submitted < len(jobs):
                time.sleep(0.005)
            ack = client.shutdown(drain=True)
            assert ack["event"] == "shutting-down"
            # draining daemons reject new work with a clean error event
            with pytest.raises(ServeClientError, match="draining"):
                client.submit("bounds", Job(benchmark="adder16"))
            assert server.stats.rejected == 1
            server.resume()
            records = [f.result(timeout=120)["record"] for f in futures]

        thread.join(timeout=60)
        assert not thread.is_alive()
        assert len(records) == len(jobs)
        assert server.stats.executed == len(jobs)
        assert server.stats.failed == 0

    def test_immediate_shutdown_fails_backlog(self, tmp_path):
        """drain=False: queued-but-unstarted work fails cleanly; jobs a
        worker already claimed still run to completion."""
        config = ServeConfig(
            socket_path=str(tmp_path / "now.sock"),
            threads=1,
            heavy_threads=1,  # 2 queue workers: 3 jobs leave 1 queued
        )
        server, thread = start_server_thread(config)
        client = ServeClient(socket_path=config.socket_path)
        jobs = [Job(benchmark="fpd", mc_samples=64, mc_seed=s) for s in range(3)]

        server.pause()
        with ThreadPoolExecutor(max_workers=len(jobs)) as pool:
            futures = [pool.submit(client.submit, "mc", j) for j in jobs]
            while server.stats.submitted < len(jobs):
                time.sleep(0.005)
            while server.queue.depth > 1:  # let workers claim their jobs
                time.sleep(0.005)
            client.shutdown(drain=False)
            server.resume()
            outcomes = []
            for future in futures:
                try:
                    outcomes.append(future.result(timeout=120))
                except ServeClientError as exc:
                    outcomes.append(exc)
        thread.join(timeout=60)
        errors = [o for o in outcomes if isinstance(o, ServeClientError)]
        assert len(errors) == 1
        assert "shut down" in str(errors[0])
        assert server.stats.failed == 1
        assert server.stats.executed == len(jobs) - 1

    def test_job_failure_is_an_error_event_not_a_crash(self, daemon):
        server, client = daemon
        with pytest.raises(ServeClientError) as excinfo:
            client.submit("bounds", {"benchmark": "c0000"})
        assert excinfo.value.error["type"] == "KeyError"
        assert server.stats.failed == 1
        # the daemon is still healthy afterwards
        assert client.ping()["event"] == "pong"

    def test_status_snapshot(self, daemon):
        server, client = daemon
        client.submit("bounds", Job(benchmark="fpd"))
        status = client.status()
        assert status["event"] == "status"
        assert status["serve"]["executed"] == 1
        assert status["queue"] == {"depth": 0, "inflight": 0}
        assert status["session"]["limit"] == 128
        assert status["store"]["writes"] == 1
        assert status["pools"]["threads"] == 4

    def test_config_needs_exactly_one_surface(self, tmp_path):
        with pytest.raises(ValueError):
            ServeConfig()
        with pytest.raises(ValueError):
            ServeConfig(socket_path="/tmp/x.sock", host="127.0.0.1")

    def test_tcp_surface(self):
        config = ServeConfig(host="127.0.0.1", port=0, threads=1,
                             heavy_threads=1)
        server, thread = start_server_thread(config)
        try:
            address = server.address
            client = ServeClient(host=address["host"], port=address["port"])
            assert client.ping()["event"] == "pong"
            done = client.submit("bounds", Job(benchmark="fpd"))
            assert done["record"]["kind"] == "bounds"
        finally:
            server.request_shutdown(drain=True)
            thread.join(timeout=60)

    def test_priority_orders_the_backlog(self):
        """Lower priority values dequeue sooner, FIFO within a class,
        and shutdown sentinels sort after every real job."""
        from repro.serve import JobTicket, PriorityJobQueue

        async def scenario():
            queue = PriorityJobQueue()
            for key, priority in (("slow", 5), ("later", 5), ("urgent", -1)):
                queue.put(
                    JobTicket(key=key, kind="mc", payload={}, priority=priority)
                )
            queue.put_sentinel()
            order = []
            while True:
                ticket = await queue.get()
                queue.task_done()
                if ticket is None:
                    return order
                order.append(ticket.key)

        assert asyncio.run(scenario()) == ["urgent", "slow", "later"]

    def test_priority_field_reaches_the_ticket(self, daemon):
        server, client = daemon
        server.pause()
        try:
            with ThreadPoolExecutor(max_workers=1) as pool:
                future = pool.submit(
                    client.submit,
                    "bounds",
                    Job(benchmark="fpd"),
                    priority=-3,
                )
                while not server._inflight:
                    time.sleep(0.005)
                (ticket,) = server._inflight.values()
                assert ticket.priority == -3
                server.resume()
                future.result(timeout=60)
        finally:
            server.resume()
