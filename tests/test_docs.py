"""Docs stay navigable: internal links and anchors must resolve.

Runs scripts/check_docs.py (also a CI step) against README.md and
docs/ARCHITECTURE.md, plus unit checks on the slug/link logic itself.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "scripts" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_docs", check_docs)
_spec.loader.exec_module(check_docs)


class TestSlugging:
    def test_plain_heading(self):
        assert check_docs.github_slug("Subsystem map") == "subsystem-map"

    def test_punctuation_and_code(self):
        slug = check_docs.github_slug(
            "Cache keying: `structure_key` and `state_key`"
        )
        assert slug == "cache-keying-structure_key-and-state_key"

    def test_duplicate_headings_get_suffixes(self, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text("# Same\n\n# Same\n", encoding="utf-8")
        assert check_docs.heading_slugs(doc) == {"same", "same-1"}

    def test_fenced_blocks_ignored(self, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text("```\n# not a heading\n```\n# Real\n", encoding="utf-8")
        assert check_docs.heading_slugs(doc) == {"real"}


class TestChecker:
    def test_detects_broken_file_link(self, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text("[x](missing.md)\n", encoding="utf-8")
        problems = check_docs.check_file(doc)
        assert len(problems) == 1 and "missing.md" in problems[0]

    def test_detects_broken_anchor(self, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text("# Top\n\n[x](#nope)\n", encoding="utf-8")
        problems = check_docs.check_file(doc)
        assert len(problems) == 1 and "#nope" in problems[0]

    def test_accepts_valid_relative_and_anchor(self, tmp_path):
        other = tmp_path / "other.md"
        other.write_text("# Target Section\n", encoding="utf-8")
        doc = tmp_path / "d.md"
        doc.write_text(
            "[a](other.md)\n[b](other.md#target-section)\n[c](#top)\n\n# Top\n",
            encoding="utf-8",
        )
        assert check_docs.check_file(doc) == []

    def test_external_links_skipped(self, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text("[x](https://example.com/nope)\n", encoding="utf-8")
        assert check_docs.check_file(doc) == []


class TestRepoDocs:
    def test_checked_files_exist(self):
        for name in check_docs.CHECKED_FILES:
            assert (REPO_ROOT / name).exists(), name

    def test_repo_docs_are_clean(self, capsys):
        assert check_docs.main(["check_docs"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_readme_links_architecture(self):
        text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "docs/ARCHITECTURE.md" in text
