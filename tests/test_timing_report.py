"""Tests for the circuit timing report."""

import pytest

from repro.netlist.builders import ripple_carry_adder
from repro.timing.report import timing_report
from repro.timing.sta import analyze


@pytest.fixture(scope="module")
def adder(lib):
    return ripple_carry_adder(8)


class TestTimingReport:
    def test_endpoint_count(self, lib, adder):
        report = timing_report(adder, lib, tc_ps=5000.0)
        assert len(report.endpoints) == len(adder.outputs)

    def test_slacks_consistent_with_sta(self, lib, adder):
        sta = analyze(adder, lib)
        report = timing_report(adder, lib, tc_ps=3000.0, sta=sta)
        worst = report.endpoints[0]
        assert worst.arrival_ps == pytest.approx(sta.critical_delay_ps)
        assert worst.slack_ps == pytest.approx(3000.0 - sta.critical_delay_ps)

    def test_violations_counted(self, lib, adder):
        sta = analyze(adder, lib)
        passing = timing_report(adder, lib, tc_ps=2.0 * sta.critical_delay_ps)
        failing = timing_report(adder, lib, tc_ps=0.5 * sta.critical_delay_ps)
        assert passing.violated == 0
        assert failing.violated > 0
        assert failing.worst_slack_ps < 0

    def test_endpoints_sorted_worst_first(self, lib, adder):
        report = timing_report(adder, lib, tc_ps=1000.0)
        slacks = [e.slack_ps for e in report.endpoints]
        assert slacks == sorted(slacks)

    def test_worst_paths_included(self, lib, adder):
        report = timing_report(adder, lib, tc_ps=1000.0, k_paths=2)
        assert len(report.worst_paths) == 2
        (gates, delay), _ = report.worst_paths
        assert delay == pytest.approx(report.critical_delay_ps, rel=1e-9)
        assert len(gates) > 5

    def test_render_contains_key_lines(self, lib, adder):
        report = timing_report(adder, lib, tc_ps=1000.0)
        text = report.render()
        assert "Timing report" in text
        assert "worst slack" in text
        assert "path #1" in text

    def test_tc_validated(self, lib, adder):
        with pytest.raises(ValueError):
            timing_report(adder, lib, tc_ps=0.0)
