"""Unit tests for the circuit DAG."""

import pytest

from repro.cells.gate_types import GateKind
from repro.netlist.circuit import (
    Circuit,
    NetlistError,
    equivalent,
    exhaustive_vectors,
)


@pytest.fixture()
def tiny():
    """y = NAND(a, NOT(b))"""
    c = Circuit("tiny")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("nb", GateKind.INV, ["b"])
    c.add_gate("y", GateKind.NAND2, ["a", "nb"])
    c.add_output("y")
    c.validate()
    return c


class TestConstruction:
    def test_duplicate_gate_rejected(self, tiny):
        with pytest.raises(NetlistError):
            tiny.add_gate("y", GateKind.INV, ["a"])

    def test_gate_shadowing_input_rejected(self, tiny):
        with pytest.raises(NetlistError):
            tiny.add_gate("a", GateKind.INV, ["b"])

    def test_input_shadowing_gate_rejected(self, tiny):
        with pytest.raises(NetlistError):
            tiny.add_input("y")

    def test_wrong_arity_rejected(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(NetlistError):
            c.add_gate("g", GateKind.NAND2, ["a"])

    def test_dangling_net_detected(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("g", GateKind.NAND2, ["a", "ghost"])
        c.add_output("g")
        with pytest.raises(NetlistError):
            c.validate()

    def test_undefined_output_detected(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("g", GateKind.INV, ["a"])
        c.add_output("phantom")
        with pytest.raises(NetlistError):
            c.validate()

    def test_no_outputs_detected(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("g", GateKind.INV, ["a"])
        with pytest.raises(NetlistError):
            c.validate()

    def test_cycle_detected(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("g1", GateKind.NAND2, ["a", "g2"])
        c.add_gate("g2", GateKind.INV, ["g1"])
        c.add_output("g2")
        with pytest.raises(NetlistError):
            c.validate()


class TestStructure:
    def test_topological_order(self, tiny):
        order = tiny.topological_order()
        assert order.index("nb") < order.index("y")

    def test_fanout_map(self, tiny):
        fanout = tiny.fanout_map()
        assert fanout["b"] == ["nb"]
        assert fanout["nb"] == ["y"]
        assert fanout["y"] == []
        assert set(fanout["a"]) == {"y"}

    def test_depth(self, tiny):
        assert tiny.depth() == 2

    def test_stats(self, tiny):
        stats = tiny.stats()
        assert stats["total_gates"] == 2
        assert stats["inv"] == 1
        assert stats["nand2"] == 1
        assert stats["inputs"] == 2
        assert stats["depth"] == 2

    def test_contains(self, tiny):
        assert "a" in tiny
        assert "y" in tiny
        assert "nope" not in tiny

    def test_gate_lookup_error(self, tiny):
        with pytest.raises(NetlistError):
            tiny.gate("missing")


class TestSimulation:
    def test_truth_table(self, tiny):
        # y = NAND(a, NOT b) = NOT(a AND NOT b)
        cases = {
            (False, False): True,
            (False, True): True,
            (True, False): False,
            (True, True): True,
        }
        for (a, b), expected in cases.items():
            out = tiny.output_values({"a": a, "b": b})
            assert out["y"] is expected

    def test_missing_input_rejected(self, tiny):
        with pytest.raises(NetlistError):
            tiny.simulate({"a": True})


class TestCopyAndEquivalence:
    def test_copy_is_deep(self, tiny):
        dup = tiny.copy()
        dup.gates["y"].cin_ff = 42.0
        assert tiny.gates["y"].cin_ff is None

    def test_equivalent_to_self(self, tiny):
        assert equivalent(tiny, tiny.copy(), exhaustive_vectors(tiny.inputs))

    def test_inequivalent_detected(self, tiny):
        other = Circuit("other")
        other.add_input("a")
        other.add_input("b")
        other.add_gate("nb", GateKind.INV, ["b"])
        other.add_gate("y", GateKind.NOR2, ["a", "nb"])
        other.add_output("y")
        assert not equivalent(tiny, other, exhaustive_vectors(tiny.inputs))

    def test_io_mismatch_rejected(self, tiny):
        other = Circuit("other")
        other.add_input("a")
        other.add_gate("y", GateKind.INV, ["a"])
        other.add_output("y")
        with pytest.raises(NetlistError):
            equivalent(tiny, other, [])

    def test_exhaustive_vectors_count(self):
        assert len(list(exhaustive_vectors(["a", "b", "c"]))) == 8

    def test_exhaustive_vectors_limit(self):
        with pytest.raises(ValueError):
            list(exhaustive_vectors([f"i{k}" for k in range(20)]))
