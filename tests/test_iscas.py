"""Tests for the benchmark registry, generator and loader."""

import pytest

from repro.iscas.generator import generate_circuit
from repro.iscas.loader import benchmark_names, load_benchmark
from repro.iscas.profiles import PAPER_ORDER, PROFILES, profile
from repro.netlist.bench_parser import to_bench


class TestRegistry:
    def test_paper_circuits_present(self):
        for name in ("adder16", "c432", "c499", "c880", "c1355", "c1908",
                     "c3540", "c5315", "c6288", "c7552", "fpd"):
            assert name in PROFILES

    def test_paper_order_subset(self):
        assert set(PAPER_ORDER) <= set(PROFILES)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            profile("c9999")

    def test_benchmark_names_ordered(self):
        names = benchmark_names()
        assert names[: len(PAPER_ORDER)] == list(PAPER_ORDER)
        assert "fpd" in names


class TestGenerator:
    @pytest.mark.parametrize("name", ["fpd", "c432", "c1355"])
    def test_deterministic(self, name):
        first = generate_circuit(profile(name))
        second = generate_circuit(profile(name))
        assert to_bench(first) == to_bench(second)

    @pytest.mark.parametrize("name", ["c432", "c880", "c1908"])
    def test_scale_matches_profile(self, name):
        prof = profile(name)
        circuit = generate_circuit(prof)
        assert len(circuit) == pytest.approx(prof.total_gates, rel=0.05)
        # The spine pins the depth at path_gates (+1 for side logic).
        assert abs(circuit.depth() - prof.path_gates) <= 1

    def test_validates(self):
        circuit = generate_circuit(profile("c499"))
        circuit.validate()  # no dangling nets, acyclic

    def test_nor_share_responds_to_profile(self):
        rich = generate_circuit(profile("c1355"))   # nor_fraction 0.22
        poor = generate_circuit(profile("c6288"))   # nor_fraction 0.05
        def nor_share(c):
            spine = [g for g in c.gates.values() if g.name.startswith("sp")]
            nors = [g for g in spine if g.kind.value.startswith("nor")]
            return len(nors) / len(spine)
        assert nor_share(rich) > nor_share(poor)


class TestLoader:
    def test_adder16_is_exact(self):
        adder = load_benchmark("adder16")
        assert len(adder) == 144
        assert adder.name == "adder16"

    def test_loader_returns_fresh_copies(self):
        first = load_benchmark("c432")
        first.gates[next(iter(first.gates))].cin_ff = 99.0
        second = load_benchmark("c432")
        assert second.gates[next(iter(second.gates))].cin_ff is None

    def test_bench_dir_override(self, tmp_path):
        text = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n"
        (tmp_path / "c432.bench").write_text(text)
        c = load_benchmark("c432", bench_dir=str(tmp_path))
        assert len(c) == 1  # the real file won, not the synthetic stand-in

    def test_bench_dir_miss_falls_back(self, tmp_path):
        c = load_benchmark("c432", bench_dir=str(tmp_path))
        assert len(c) > 100
