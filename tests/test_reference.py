"""Cross-validation of the closed-form engines against scipy L-BFGS-B."""

import pytest

from repro.cells.gate_types import GateKind
from repro.sizing.bounds import min_delay_bound
from repro.sizing.reference import (
    reference_min_area_for_delay,
    reference_minimum_delay,
)
from repro.sizing.sensitivity import distribute_constraint
from repro.timing.path import make_path


class TestReferenceTmin:
    def test_agrees_with_link_equations(self, eleven_gate_path, lib):
        ours, _, _, _ = min_delay_bound(eleven_gate_path, lib)
        theirs = reference_minimum_delay(eleven_gate_path, lib)
        assert theirs.converged
        assert ours == pytest.approx(theirs.delay_ps, rel=2e-3)

    def test_agrees_on_loaded_path(self, lib):
        path = make_path(
            [GateKind.INV, GateKind.NAND3, GateKind.NOR2, GateKind.INV],
            lib,
            cterm_ff=80.0 * lib.cref,
            cside_ff=[0.0, 40.0 * lib.cref, 0.0, 0.0],
        )
        ours, _, _, _ = min_delay_bound(path, lib)
        theirs = reference_minimum_delay(path, lib)
        assert ours == pytest.approx(theirs.delay_ps, rel=2e-3)

    def test_single_stage(self, lib):
        path = make_path([GateKind.INV], lib)
        result = reference_minimum_delay(path, lib)
        assert result.converged

    def test_engine_is_cheaper(self, eleven_gate_path, lib):
        """The specialised fixed point beats the general optimizer on
        evaluation count -- the quantitative version of 'why eq. 4'."""
        theirs = reference_minimum_delay(eleven_gate_path, lib)
        # The link-equation engine needs tens of sweeps; L-BFGS-B spends
        # at least as many full gradient evaluations.
        assert theirs.n_evaluations >= 10


class TestReferenceConstrained:
    def test_area_matches_constant_sensitivity(self, eleven_gate_path, lib):
        """The paper's 'provably minimum area' claim, certified externally:
        scipy finds no implementation meaningfully smaller than eq. 6's."""
        tmin, _, _, _ = min_delay_bound(eleven_gate_path, lib)
        tc = 1.3 * tmin
        ours = distribute_constraint(eleven_gate_path, lib, tc,
                                     weight_mode="area")
        theirs = reference_min_area_for_delay(
            eleven_gate_path, lib, tc, start_sizes=ours.sizes
        )
        assert ours.feasible
        assert theirs.delay_ps <= tc * (1 + 1e-3)
        assert ours.area_um <= theirs.area_um * 1.03

    def test_uniform_mode_close_to_optimal(self, eleven_gate_path, lib):
        """The paper's uniform-sensitivity variant is near the true
        minimum-sum-W solution (the gap is what the 'area' mode closes)."""
        tmin, _, _, _ = min_delay_bound(eleven_gate_path, lib)
        tc = 1.3 * tmin
        ours = distribute_constraint(eleven_gate_path, lib, tc,
                                     weight_mode="uniform")
        theirs = reference_min_area_for_delay(
            eleven_gate_path, lib, tc, start_sizes=ours.sizes
        )
        assert ours.area_um <= theirs.area_um * 1.10

    def test_tc_validated(self, eleven_gate_path, lib):
        with pytest.raises(ValueError):
            reference_min_area_for_delay(eleven_gate_path, lib, 0.0)
