"""Cone-sparse batch probes: bit-identity oracles and dispatch behaviour.

The contract under test (see ``repro/timing/batch_probe.py``): a batch
of single-gate candidate edits -- sizing probes, trial buffer pairs --
evaluated as columns of one compiled-circuit propagation must reproduce
the scalar :class:`~repro.timing.incremental.IncrementalSta` probe loop
*bit for bit* on every CORE circuit, under randomized sizings and after
randomized edit sequences; and the public entry points must switch
between the scalar and batch paths exactly at the documented
column-count threshold.
"""

import numpy as np
import pytest

from repro.api import Session
from repro.api.serialization import circuit_result_from_dict, circuit_result_to_dict
from repro.buffering.netlist_insertion import (
    insert_buffer_pair,
    reduce_delay_with_buffers,
    trial_buffer_pairs,
)
from repro.iscas.loader import load_benchmark
from repro.protocol.optimizer import optimize_circuit
from repro.sizing.sensitivity import circuit_gate_sensitivities
from repro.timing import batch_probe
from repro.timing.batch_probe import (
    BATCH_PROBE_MIN_COLUMNS,
    BatchProbeEngine,
    should_batch,
)
from repro.timing.incremental import IncrementalSta
from repro.timing.sta import analyze

#: The paper's benchmark set (mirrors ``benchmarks/conftest.py``).
CORE_CIRCUITS = (
    "adder16",
    "c432",
    "c499",
    "c880",
    "c1355",
    "c1908",
    "c3540",
    "c5315",
    "c7552",
)

#: Circuits small enough for exhaustive all-gate probe comparisons.
FULL_CIRCUITS = ("fpd", "c432")


def _randomly_sized(name: str, lib, seed: int = 11):
    circuit = load_benchmark(name)
    rng = np.random.default_rng(seed)
    for gate in circuit.gates.values():
        base = lib.cell(gate.kind).cin_min(lib.tech)
        gate.cin_ff = base * float(rng.uniform(1.0, 6.0))
    return circuit


def _sample_gates(circuit, n, seed=23):
    names = list(circuit.gates)
    if len(names) <= n:
        return names
    rng = np.random.default_rng(seed)
    picks = rng.choice(len(names), size=n, replace=False)
    return [names[i] for i in sorted(picks)]


def _scalar_sizing_delays(circuit, engine, probes):
    out = []
    for name, cin in probes:
        gate = circuit.gate(name)
        original = gate.cin_ff
        gate.cin_ff = cin
        out.append(engine.update((name,)).critical_delay_ps)
        gate.cin_ff = original
        engine.update((name,))
    return np.array(out)


def _central_probes(circuit, names, rel_step=1e-3):
    probes = []
    for name in names:
        base = circuit.gate(name).cin_ff
        h = max(abs(base) * rel_step, 1e-9)
        probes.append((name, base + h))
        probes.append((name, base - h))
    return probes


class TestBitIdentity:
    @pytest.mark.parametrize("name", CORE_CIRCUITS)
    def test_sizing_probes_match_incremental_sta(self, name, lib):
        circuit = _randomly_sized(name, lib)
        engine = IncrementalSta(circuit, lib)
        pe = BatchProbeEngine(circuit, lib)
        assert pe.critical_delay_base_ps == engine.critical_delay_ps
        probes = _central_probes(circuit, _sample_gates(circuit, 24))
        batch = pe.sizing_delays(probes)
        scalar = _scalar_sizing_delays(circuit, engine, probes)
        assert np.array_equal(batch, scalar)

    @pytest.mark.parametrize("name", CORE_CIRCUITS)
    def test_buffer_probes_match_incremental_sta(self, name, lib):
        circuit = _randomly_sized(name, lib, seed=17)
        engine = IncrementalSta(circuit, lib)
        pe = BatchProbeEngine(circuit, lib)
        candidates = _sample_gates(circuit, 20, seed=29)
        batch = pe.buffer_pair_delays(candidates)
        scalar = trial_buffer_pairs(
            circuit, lib, candidates, engine=engine, min_batch_columns=10**9
        )
        assert np.array_equal(batch, np.array([scalar[c] for c in candidates]))

    @pytest.mark.parametrize("name", FULL_CIRCUITS)
    def test_every_gate_both_probe_kinds(self, name, lib):
        circuit = _randomly_sized(name, lib, seed=3)
        engine = IncrementalSta(circuit, lib)
        pe = BatchProbeEngine(circuit, lib)
        names = list(circuit.gates)
        probes = _central_probes(circuit, names)
        assert np.array_equal(
            pe.sizing_delays(probes), _scalar_sizing_delays(circuit, engine, probes)
        )
        scalar = trial_buffer_pairs(
            circuit, lib, names, engine=engine, min_batch_columns=10**9
        )
        assert np.array_equal(
            pe.buffer_pair_delays(names), np.array([scalar[c] for c in names])
        )

    @pytest.mark.parametrize("name", ("fpd", "c432", "c880"))
    def test_after_randomized_edit_sequence(self, name, lib):
        # Probes must stay exact when the engine is re-bound mid-flight:
        # random size edits land on the circuit, then both paths probe.
        circuit = _randomly_sized(name, lib, seed=5)
        engine = IncrementalSta(circuit, lib)
        pe = BatchProbeEngine(circuit, lib)
        rng = np.random.default_rng(41)
        names = list(circuit.gates)
        for _ in range(4):
            edited = rng.choice(len(names), size=min(10, len(names)), replace=False)
            for i in edited:
                gate = circuit.gate(names[i])
                gate.cin_ff = gate.cin_ff * float(rng.uniform(0.5, 2.0))
            engine.update(tuple(names[i] for i in edited))
            pe.bind(circuit)
            assert pe.critical_delay_base_ps == engine.critical_delay_ps
            probes = _central_probes(
                circuit, _sample_gates(circuit, 12, seed=int(rng.integers(1 << 30)))
            )
            assert np.array_equal(
                pe.sizing_delays(probes),
                _scalar_sizing_delays(circuit, engine, probes),
            )

    def test_dense_mode_matches_sparse(self, lib):
        circuit = _randomly_sized("c880", lib, seed=19)
        sparse = BatchProbeEngine(circuit, lib)
        dense = BatchProbeEngine(circuit, lib, mode="dense")
        probes = _central_probes(circuit, _sample_gates(circuit, 16))
        assert np.array_equal(sparse.sizing_delays(probes), dense.sizing_delays(probes))
        cands = _sample_gates(circuit, 12, seed=31)
        assert np.array_equal(
            sparse.buffer_pair_delays(cands), dense.buffer_pair_delays(cands)
        )

    def test_chunking_is_invisible(self, lib):
        circuit = _randomly_sized("c432", lib)
        whole = BatchProbeEngine(circuit, lib)
        tiny = BatchProbeEngine(circuit, lib, chunk_columns=7)
        probes = _central_probes(circuit, list(circuit.gates))
        assert np.array_equal(whole.sizing_delays(probes), tiny.sizing_delays(probes))

    def test_custom_boundary_conditions(self, lib):
        circuit = _randomly_sized("fpd", lib)
        kwargs = dict(input_transition_ps=12.0, output_load_ff=9.5)
        engine = IncrementalSta(circuit, lib, **kwargs)
        pe = BatchProbeEngine(circuit, lib, **kwargs)
        assert pe.critical_delay_base_ps == engine.critical_delay_ps
        probes = _central_probes(circuit, list(circuit.gates))
        assert np.array_equal(
            pe.sizing_delays(probes), _scalar_sizing_delays(circuit, engine, probes)
        )


class TestDispatch:
    def test_should_batch_threshold(self):
        assert BATCH_PROBE_MIN_COLUMNS == 128
        assert not should_batch(127)
        assert should_batch(128)
        assert should_batch(129)
        assert should_batch(1, min_columns=1)
        assert not should_batch(10**6, min_columns=10**9)

    def test_sensitivities_batch_equals_scalar(self, lib):
        circuit = _randomly_sized("c880", lib, seed=7)
        names = _sample_gates(circuit, 30)
        scalar = circuit_gate_sensitivities(
            circuit, lib, gates=names, min_batch_columns=10**9
        )
        batch = circuit_gate_sensitivities(circuit, lib, gates=names, min_batch_columns=0)
        assert scalar.keys() == batch.keys()
        for key in scalar:
            assert scalar[key] == batch[key], key

    def test_sensitivities_with_engine_and_probe_engine(self, lib):
        circuit = _randomly_sized("fpd", lib)
        engine = IncrementalSta(circuit, lib, output_load_ff=7.0)
        pe = BatchProbeEngine(circuit, lib, output_load_ff=7.0)
        scalar = circuit_gate_sensitivities(
            circuit, lib, engine=engine, min_batch_columns=10**9
        )
        batch = circuit_gate_sensitivities(
            circuit, lib, engine=engine, min_batch_columns=0, probe_engine=pe
        )
        assert scalar == batch

    def test_trial_buffer_pairs_batch_never_mutates(self, lib):
        circuit = _randomly_sized("c432", lib)
        before_key = circuit.state_key()
        cands = list(circuit.gates)[:30]
        scalar = trial_buffer_pairs(circuit, lib, cands, min_batch_columns=10**9)
        batch = trial_buffer_pairs(circuit, lib, cands, min_batch_columns=0)
        assert scalar == batch
        assert circuit.state_key() == before_key

    @pytest.mark.parametrize("n_cands,expect_batch", [(127, False), (128, True), (129, True)])
    def test_buffer_threshold_boundary(self, n_cands, expect_batch, lib, monkeypatch):
        # The documented boundary, at exactly 127/128/129 columns: each
        # buffer candidate is one column.
        circuit = _randomly_sized("c432", lib)
        cands = list(circuit.gates)[:n_cands]
        assert len(cands) == n_cands
        built = []
        real = batch_probe.BatchProbeEngine

        class Recorder(real):
            def __init__(self, *args, **kwargs):
                built.append(1)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(batch_probe, "BatchProbeEngine", Recorder)
        scalar = trial_buffer_pairs(circuit, lib, cands, min_batch_columns=10**9)
        assert not built
        result = trial_buffer_pairs(circuit, lib, cands)
        assert bool(built) is expect_batch
        assert result == scalar

    @pytest.mark.parametrize("n_gates,expect_batch", [(63, False), (64, True)])
    def test_sizing_threshold_boundary(self, n_gates, expect_batch, lib, monkeypatch):
        # Each probed gate contributes two columns (up/down), so the
        # 128-column boundary falls between 63 and 64 gates.
        circuit = _randomly_sized("c432", lib)
        names = list(circuit.gates)[:n_gates]
        built = []
        real = batch_probe.BatchProbeEngine

        class Recorder(real):
            def __init__(self, *args, **kwargs):
                built.append(1)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(batch_probe, "BatchProbeEngine", Recorder)
        scalar = circuit_gate_sensitivities(
            circuit, lib, gates=names, min_batch_columns=10**9
        )
        assert not built
        result = circuit_gate_sensitivities(circuit, lib, gates=names)
        assert bool(built) is expect_batch
        assert result == scalar

    def test_reduce_delay_with_buffers_batch_equals_scalar(self, lib):
        scalar_c = load_benchmark("c880")
        batch_c = load_benchmark("c880")
        _, ins_s, delay_s = reduce_delay_with_buffers(
            scalar_c, lib, max_insertions=2, min_batch_columns=10**9
        )
        _, ins_b, delay_b = reduce_delay_with_buffers(
            batch_c, lib, max_insertions=2, min_batch_columns=0
        )
        assert ins_s == ins_b
        assert delay_s == delay_b


class TestValidation:
    def test_rejects_bad_mode_and_chunk(self, lib):
        circuit = load_benchmark("fpd")
        with pytest.raises(ValueError):
            BatchProbeEngine(circuit, lib, mode="banana")
        with pytest.raises(ValueError):
            BatchProbeEngine(circuit, lib, chunk_columns=0)

    def test_rejects_nonpositive_cin(self, lib):
        pe = BatchProbeEngine(load_benchmark("fpd"), lib)
        with pytest.raises(ValueError):
            pe.sizing_delays([("sp1", 0.0)])
        with pytest.raises(ValueError):
            pe.buffer_pair_delays(["sp1"], cin_ff=-1.0)

    def test_rejects_unknown_gate(self, lib):
        pe = BatchProbeEngine(load_benchmark("fpd"), lib)
        with pytest.raises(KeyError):
            pe.sizing_delays([("nonexistent", 1.0)])

    def test_rejects_already_paired_candidate(self, lib):
        circuit = load_benchmark("fpd")
        name = next(iter(circuit.gates))
        insert_buffer_pair(circuit, name, lib)
        pe = BatchProbeEngine(circuit, lib)
        with pytest.raises(ValueError, match="already carries"):
            pe.buffer_pair_delays([name])

    def test_bind_rejects_other_structure(self, lib):
        pe = BatchProbeEngine(load_benchmark("fpd"), lib)
        with pytest.raises(ValueError):
            pe.bind(load_benchmark("c432"))


class TestSessionProbeCache:
    def test_engine_shared_per_structure(self, lib):
        session = Session()
        circuit = session.benchmark("fpd")
        first = session.probe_engine(circuit)
        assert session.stats.probe_misses == 1
        # A pure re-sizing re-binds the same engine (structure key hit).
        for gate in circuit.gates.values():
            gate.cin_ff = (gate.cin_ff or lib.cref) * 1.5
        again = session.probe_engine(circuit)
        assert again is first
        assert session.stats.probe_hits == 1
        oracle = IncrementalSta(circuit.copy(), session.library)
        assert again.critical_delay_base_ps == oracle.critical_delay_ps

    def test_structural_edit_builds_fresh_engine(self):
        session = Session()
        circuit = session.benchmark("fpd")
        first = session.probe_engine(circuit)
        insert_buffer_pair(circuit, next(iter(circuit.gates)), session.library)
        second = session.probe_engine(circuit)
        assert second is not first
        assert session.stats.probe_misses == 2

    def test_clear_and_stats_cover_probes(self):
        session = Session()
        circuit = session.benchmark("fpd")
        session.probe_engine(circuit)
        stats = session.cache_stats()
        assert stats["caches"]["probes"]["size"] == 1
        session.clear_caches()
        assert session.cache_stats()["caches"]["probes"]["size"] == 0


class TestOptimizerIntegration:
    def test_final_delay_matches_full_sta(self, lib):
        # The consolidated per-pass engine updates must leave the final
        # annotation bit-identical to a from-scratch analysis.
        result = optimize_circuit(
            load_benchmark("c432"), lib, tc_ps=3000.0, max_passes=3
        )
        oracle = analyze(result.circuit, lib)
        assert result.critical_delay_ps == oracle.critical_delay_ps

    def test_rescue_buffers_defaults_off(self, lib):
        plain = optimize_circuit(load_benchmark("fpd"), lib, tc_ps=500.0, max_passes=2)
        assert plain.rescued_gates == ()

    def test_rescue_buffers_only_improves(self, lib):
        plain = optimize_circuit(load_benchmark("fpd"), lib, tc_ps=500.0, max_passes=2)
        rescued = optimize_circuit(
            load_benchmark("fpd"), lib, tc_ps=500.0, max_passes=2, rescue_buffers=True
        )
        assert rescued.critical_delay_ps <= plain.critical_delay_ps
        if rescued.rescued_gates:
            for name in rescued.rescued_gates:
                assert f"{name}_bufa" in rescued.circuit.gates
        oracle = analyze(rescued.circuit, lib)
        assert rescued.critical_delay_ps == oracle.critical_delay_ps

    def test_rescued_gates_round_trip(self, lib):
        result = optimize_circuit(
            load_benchmark("fpd"), lib, tc_ps=500.0, max_passes=2, rescue_buffers=True
        )
        data = circuit_result_to_dict(result)
        back = circuit_result_from_dict(data, lib)
        assert back.rescued_gates == result.rescued_gates
        # Old payloads without the field deserialize to the default.
        data.pop("rescued_gates")
        assert circuit_result_from_dict(data, lib).rescued_gates == ()
