"""Tests for the constraint domains and the Fig. 7 protocol driver."""

import pytest

from repro.cells.gate_types import GateKind
from repro.buffering.insertion import default_flimits
from repro.protocol.domains import (
    ConstraintDomain,
    classify_constraint,
)
from repro.protocol.optimizer import optimize_circuit, optimize_path
from repro.protocol.report import format_gain, format_table
from repro.sizing.bounds import delay_bounds
from repro.timing.path import make_path


@pytest.fixture(scope="module")
def limits(lib):
    return default_flimits(lib)


class TestDomains:
    @pytest.mark.parametrize(
        "ratio, expected",
        [
            (3.0, ConstraintDomain.WEAK),
            (2.5, ConstraintDomain.WEAK),
            (2.0, ConstraintDomain.MEDIUM),
            (1.2, ConstraintDomain.MEDIUM),
            (1.1, ConstraintDomain.HARD),
            (1.0, ConstraintDomain.HARD),
            (0.9, ConstraintDomain.INFEASIBLE),
        ],
    )
    def test_fig6_boundaries(self, ratio, expected):
        tmin = 500.0
        result = classify_constraint(ratio * tmin, tmin)
        assert result.domain is expected
        assert result.severity == pytest.approx(ratio)

    def test_validation(self):
        with pytest.raises(ValueError):
            classify_constraint(-1.0, 10.0)
        with pytest.raises(ValueError):
            classify_constraint(1.0, 0.0)
        with pytest.raises(ValueError):
            classify_constraint(1.0, 1.0, weak_threshold=1.0, hard_threshold=1.2)


class TestPathProtocol:
    def test_weak_uses_sizing(self, eleven_gate_path, lib, limits):
        bounds = delay_bounds(eleven_gate_path, lib)
        outcome = optimize_path(
            eleven_gate_path, lib, 3.0 * bounds.tmin_ps, limits=limits
        )
        assert outcome.domain.domain is ConstraintDomain.WEAK
        assert outcome.method == "sizing"
        assert outcome.feasible
        assert outcome.path is eleven_gate_path  # structure conserved

    def test_medium_constraint_met(self, eleven_gate_path, lib, limits):
        bounds = delay_bounds(eleven_gate_path, lib)
        outcome = optimize_path(
            eleven_gate_path, lib, 1.5 * bounds.tmin_ps, limits=limits
        )
        assert outcome.domain.domain is ConstraintDomain.MEDIUM
        assert outcome.feasible
        assert outcome.method in ("sizing", "buffering")

    def test_hard_constraint_met(self, eleven_gate_path, lib, limits):
        bounds = delay_bounds(eleven_gate_path, lib)
        outcome = optimize_path(
            eleven_gate_path, lib, 1.1 * bounds.tmin_ps, limits=limits
        )
        assert outcome.domain.domain is ConstraintDomain.HARD
        assert outcome.feasible

    def test_infeasible_triggers_structure_modification(self, lib, limits):
        """Tc below Tmin forces buffering or De Morgan rewriting."""
        path = make_path(
            [GateKind.INV, GateKind.NOR2, GateKind.NAND2, GateKind.NOR3,
             GateKind.INV],
            lib,
            cterm_ff=10.0 * lib.cref,
            cside_ff=[0.0, 300.0 * lib.cref, 0.0, 150.0 * lib.cref, 0.0],
        )
        bounds = delay_bounds(path, lib)
        outcome = optimize_path(path, lib, 0.93 * bounds.tmin_ps, limits=limits)
        assert outcome.domain.domain is ConstraintDomain.INFEASIBLE
        assert outcome.method in ("buffering+sizing", "restructuring")
        assert outcome.feasible
        assert len(outcome.path) > len(path)  # structure was modified

    def test_impossible_constraint_reported(self, lib, limits):
        path = make_path([GateKind.INV, GateKind.INV], lib)
        outcome = optimize_path(path, lib, 1.0, limits=limits)  # 1 ps
        assert not outcome.feasible

    def test_area_monotone_across_domains(self, eleven_gate_path, lib, limits):
        """Tighter constraints cost area, protocol-wide (Fig. 8 shape)."""
        bounds = delay_bounds(eleven_gate_path, lib)
        areas = []
        for ratio in (3.0, 1.6, 1.1):
            outcome = optimize_path(
                eleven_gate_path, lib, ratio * bounds.tmin_ps, limits=limits
            )
            assert outcome.feasible
            areas.append(outcome.area_um)
        assert areas[0] < areas[1] < areas[2]

    def test_tc_validation(self, eleven_gate_path, lib, limits):
        with pytest.raises(ValueError):
            optimize_path(eleven_gate_path, lib, 0.0, limits=limits)


class TestCircuitProtocol:
    def test_fpd_end_to_end(self, lib, limits):
        from repro.iscas.loader import load_benchmark
        from repro.timing.sta import analyze

        circuit = load_benchmark("fpd")
        start_delay = analyze(circuit, lib).critical_delay_ps
        result = optimize_circuit(
            circuit, lib, tc_ps=0.75 * start_delay, k_paths=3, limits=limits
        )
        assert result.critical_delay_ps < start_delay
        assert result.path_results  # the protocol actually ran
        # The input circuit is untouched.
        assert all(g.cin_ff is None for g in circuit.gates.values())

    def test_already_met_constraint_is_noop(self, lib, limits):
        from repro.iscas.loader import load_benchmark
        from repro.timing.sta import analyze

        circuit = load_benchmark("fpd")
        start_delay = analyze(circuit, lib).critical_delay_ps
        result = optimize_circuit(
            circuit, lib, tc_ps=2.0 * start_delay, limits=limits
        )
        assert result.feasible
        assert result.path_results == []


class TestReport:
    def test_format_table(self):
        table = format_table(
            ("circuit", "Tmin"),
            [("c432", 1537.85), ("adder16", 870.2)],
            title="demo",
        )
        assert "demo" in table
        assert "c432" in table
        assert "1538" in table  # large floats printed as integers

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [("only-one",)])

    def test_format_gain(self):
        assert format_gain(100.0, 87.0) == "13%"
        assert format_gain(0.0, 1.0) == "n/a"
